//! Ablation — WRITE-COMPLETION delay in read-behind protocols (§7.3).
//!
//! The paper delays completions in VR/NOPaxos until a quorum has *executed*
//! a write, "to reduce the number of rejected fast-path reads". This
//! ablation varies the synchronization cadence (which directly delays
//! completions) and reports: fast-path share, normal-path share, dirty-set
//! residency, and read throughput. Too-frequent syncs burn leader capacity;
//! too-rare syncs leave objects dirty longer, pushing reads onto the
//! normal path — the cadence is a real tuning knob.

use harmonia_bench::{mrps, print_table, run_open_loop, Keys, RunSpec};
use harmonia_core::deployment::DeploymentSpec;
use harmonia_replication::ProtocolKind;
use harmonia_types::Duration;

fn main() {
    let mut rows = Vec::new();
    for protocol in [ProtocolKind::Vr, ProtocolKind::Nopaxos] {
        for sync_us in [50u64, 200, 1_000, 5_000] {
            let cluster = DeploymentSpec::new()
                .protocol(protocol)
                .replicas(3)
                .sync_interval(Duration::from_micros(sync_us));
            let mut spec = RunSpec::new(cluster, 2_500_000.0, 100_000.0);
            spec.keys = Keys::Uniform(100_000);
            let r = run_open_loop(&spec);
            let fast = r.switch.reads_fast_path as f64;
            let normal = r.switch.reads_normal as f64;
            rows.push(vec![
                format!("{protocol:?}"),
                sync_us.to_string(),
                format!("{:.1}%", 100.0 * fast / (fast + normal).max(1.0)),
                r.dirty_len.to_string(),
                mrps(r.reads_mrps),
                mrps(r.writes_mrps),
            ]);
        }
    }
    print_table(
        "Ablation: completion delay (sync cadence) in read-behind protocols",
        "longer sync intervals leave more objects dirty (lower fast-path \
         share, more tail/leader reads); extremely short intervals spend \
         leader capacity on sync traffic",
        &[
            "protocol",
            "sync_interval_us",
            "fast_path_share",
            "dirty_at_end",
            "read_mrps",
            "write_mrps",
        ],
        &rows,
    );
}
