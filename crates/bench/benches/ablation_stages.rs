//! Ablation — pipeline stages vs collision-induced write drops (§6.1).
//!
//! At a fixed slot budget, spreading the dirty set across more stages with
//! independent hash functions resolves collisions that a single stage
//! cannot (Figure 4's open-addressing argument). This ablation drives a
//! write-heavy skewed workload directly against the `MultiStageHashTable`
//! and counts drops, isolating the data-structure effect from the rest of
//! the system.

use harmonia_bench::print_table;
use harmonia_switch::{MultiStageHashTable, TableConfig};
use harmonia_types::{ObjectId, SwitchId, SwitchSeq};
use harmonia_workload::Zipf;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Keep `pending` writes outstanding over a skewed object population and
/// report the drop rate.
fn drop_rate(stages: usize, total_slots: usize, pending: usize, theta: f64) -> f64 {
    let mut table = MultiStageHashTable::new(TableConfig {
        stages,
        slots_per_stage: total_slots / stages,
        entry_bytes: 8,
    });
    let zipf = Zipf::new(100_000, theta);
    let mut rng = SmallRng::seed_from_u64(42);
    let mut outstanding: std::collections::VecDeque<(ObjectId, SwitchSeq)> =
        std::collections::VecDeque::new();
    let mut attempts = 0u64;
    let mut drops = 0u64;
    for i in 0..200_000u64 {
        let obj = ObjectId(zipf.sample(&mut rng) as u32);
        let seq = SwitchSeq::new(SwitchId(1), i + 1);
        attempts += 1;
        if table.insert(obj, seq) {
            outstanding.push_back((obj, seq));
        } else {
            drops += 1;
        }
        // Complete the oldest write once the pending window is full.
        if outstanding.len() > pending {
            let (obj, seq) = outstanding.pop_front().expect("non-empty");
            table.delete(obj, seq);
        }
    }
    drops as f64 / attempts as f64
}

fn main() {
    let mut rows = Vec::new();
    for theta in [0.0, 0.9] {
        for stages in [1usize, 2, 3, 6] {
            for total in [96usize, 384, 1536] {
                let rate = drop_rate(stages, total, total / 3, theta);
                rows.push(vec![
                    format!("{theta:.1}"),
                    stages.to_string(),
                    total.to_string(),
                    format!("{:.2}%", rate * 100.0),
                ]);
            }
        }
    }
    print_table(
        "Ablation: stages vs write drops at fixed slot budget (window = slots/3)",
        "more stages -> fewer collision drops at the same total memory; \
         skew (zipf-0.9) amplifies the single-stage penalty",
        &["zipf_theta", "stages", "total_slots", "drop_rate"],
        &rows,
    );
}
