//! Figure 10 — throughput while the switch is stopped and reactivated.
//!
//! Timeline (scaled from the paper's seconds to milliseconds — virtual
//! time is free but event counts are not; shapes are time-scale invariant):
//! the switch stops at t=20 ms (throughput → 0); a replacement with a fresh
//! incarnation id activates at t=30 ms; reads flow through the normal path
//! until the first WRITE-COMPLETION carrying the new id, after which
//! single-replica reads resume and throughput returns to the pre-failure
//! level (§5.3, §9.6).

use bytes::Bytes;
use harmonia_bench::{mrps, print_table};
use harmonia_core::client::{metrics, OpSpec, SourceFn};
use harmonia_core::deployment::DeploymentSpec;
use harmonia_core::failover::{schedule_switch_failure, schedule_switch_replacement};
use harmonia_types::{ClientId, Duration, Instant, SwitchId};
use harmonia_workload::KeySpace;
use rand::Rng;

const RATE: f64 = 2_000_000.0;
const BUCKET_MS: u64 = 2;
const END_MS: u64 = 60;

fn main() {
    let config = DeploymentSpec::new().replicas(3);
    let mut sim = config.build_sim();
    let keys = KeySpace::uniform(50_000);
    let value = Bytes::from(vec![3u8; 128]);
    let source: SourceFn = Box::new(move |rng| {
        let key = keys.sample(rng);
        if rng.gen_bool(0.05) {
            OpSpec::write(key, value.clone())
        } else {
            OpSpec::read(key)
        }
    });
    let client = sim.add_open_loop_client(ClientId(1), RATE, Duration::from_millis(5), source);
    let t = |ms: u64| Instant::ZERO + Duration::from_millis(ms);
    schedule_switch_failure(sim.world_mut(), t(20), config.switch_addr());
    schedule_switch_replacement(sim.world_mut(), t(30), &config, SwitchId(2), vec![client]);

    let mut rows = Vec::new();
    for bucket in 0..(END_MS / BUCKET_MS) {
        let end = (bucket + 1) * BUCKET_MS;
        sim.run_until(t(bucket * BUCKET_MS));
        sim.world_mut().metrics_mut().reset();
        sim.run_until(t(end));
        let done = sim.world().metrics().counter(metrics::READ_DONE)
            + sim.world().metrics().counter(metrics::WRITE_DONE);
        let tput = done as f64 / (BUCKET_MS as f64 / 1e3) / 1e6;
        let phase = if end <= 20 {
            "normal"
        } else if end <= 30 {
            "switch stopped"
        } else {
            "replacement active"
        };
        rows.push(vec![end.to_string(), mrps(tput), phase.to_string()]);
    }
    print_table(
        "Figure 10: throughput during switch failure and reactivation",
        "steady ~2 MRPS; zero while the switch is down (20–30 ms); full \
         recovery within a few ms of the replacement activating, gated on \
         the first completion with the new switch id",
        &["time_ms", "throughput_mrps", "phase"],
        &rows,
    );
}
