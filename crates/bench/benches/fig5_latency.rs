//! Figure 5 — throughput vs. latency, 3 replicas.
//!
//! (a) read-only: CR saturates at one server (~0.92 MRPS); Harmonia reaches
//!     ~3× that, both with a few-hundred-µs latency floor at low load.
//! (b) write-only: CR and Harmonia are identical (writes take the normal
//!     protocol either way).

use harmonia_bench::{mrps, print_table, run_open_loop, us, Keys, RunSpec};
use harmonia_core::deployment::DeploymentSpec;
use harmonia_replication::ProtocolKind;

fn cluster(harmonia: bool) -> DeploymentSpec {
    DeploymentSpec::new()
        .protocol(ProtocolKind::Chain)
        .harmonia(harmonia)
        .replicas(3)
}

fn sweep_reads(harmonia: bool, rates_mrps: &[f64]) -> Vec<Vec<String>> {
    rates_mrps
        .iter()
        .map(|&rate| {
            let mut spec = RunSpec::new(cluster(harmonia), rate * 1e6, 0.0);
            spec.keys = Keys::Uniform(100_000);
            let r = run_open_loop(&spec);
            vec![
                if harmonia { "Harmonia" } else { "CR" }.to_string(),
                mrps(rate),
                mrps(r.reads_mrps),
                us(r.read_mean_us),
                us(r.read_p99_us),
            ]
        })
        .collect()
}

fn sweep_writes(harmonia: bool, rates_mrps: &[f64]) -> Vec<Vec<String>> {
    rates_mrps
        .iter()
        .map(|&rate| {
            let mut spec = RunSpec::new(cluster(harmonia), 0.0, rate * 1e6);
            spec.keys = Keys::Uniform(100_000);
            let r = run_open_loop(&spec);
            vec![
                if harmonia { "Harmonia" } else { "CR" }.to_string(),
                mrps(rate),
                mrps(r.writes_mrps),
                us(r.write_mean_us),
            ]
        })
        .collect()
}

fn main() {
    // (a) Read-only.
    let read_rates = [0.2, 0.5, 0.8, 0.9, 1.2, 1.6, 2.0, 2.4, 2.7, 3.0];
    let mut rows = sweep_reads(false, &read_rates);
    rows.extend(sweep_reads(true, &read_rates));
    print_table(
        "Figure 5a: read-only throughput vs latency (3 replicas)",
        "CR flattens at ~0.92 MRPS (one server); Harmonia sustains ~3x; \
         latency low until each system's knee, then queueing explodes",
        &[
            "system",
            "offered_mrps",
            "achieved_mrps",
            "mean_us",
            "p99_us",
        ],
        &rows,
    );

    // (b) Write-only.
    let write_rates = [0.1, 0.2, 0.4, 0.6, 0.7, 0.8, 0.9];
    let mut rows = sweep_writes(false, &write_rates);
    rows.extend(sweep_writes(true, &write_rates));
    print_table(
        "Figure 5b: write-only throughput vs latency (3 replicas)",
        "CR and Harmonia identical: both saturate at ~0.8 MRPS (writes \
         traverse the whole chain either way)",
        &["system", "offered_mrps", "achieved_mrps", "mean_us"],
        &rows,
    );
}
