//! Figure 6 — mixed read-write workloads, 3 replicas.
//!
//! (a) maximum read throughput as a function of a fixed write rate:
//!     Harmonia starts at ~3× CR and converges toward CR as writes dominate.
//! (b) saturated total throughput as a function of the write ratio:
//!     same story viewed through the mix instead of the rate.

use harmonia_bench::{max_read_at_fixed_write, mrps, print_table, run_open_loop, Keys, RunSpec};
use harmonia_core::deployment::DeploymentSpec;
use harmonia_replication::ProtocolKind;

fn cluster(harmonia: bool) -> DeploymentSpec {
    DeploymentSpec::new()
        .protocol(ProtocolKind::Chain)
        .harmonia(harmonia)
        .replicas(3)
}

fn main() {
    // (a) Read throughput vs fixed write rate: saturate reads, fix writes.
    let write_rates = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7];
    let keys = Keys::Uniform(100_000);
    let mut rows = Vec::new();
    for harmonia in [false, true] {
        for &w in &write_rates {
            let r = max_read_at_fixed_write(&cluster(harmonia), w * 1e6, &keys);
            rows.push(vec![
                if harmonia { "Harmonia" } else { "CR" }.to_string(),
                mrps(w),
                mrps(r.writes_mrps),
                mrps(r.reads_mrps),
            ]);
        }
    }
    print_table(
        "Figure 6a: max read throughput vs write rate (3 replicas)",
        "at low write rate Harmonia serves ~3x CR's reads; the curves \
         converge as the write rate approaches the chain's write capacity",
        &[
            "system",
            "offered_write_mrps",
            "achieved_write_mrps",
            "read_mrps",
        ],
        &rows,
    );

    // (b) Total saturated throughput vs write ratio.
    let ratios = [0.0, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0];
    let mut rows = Vec::new();
    for harmonia in [false, true] {
        for &ratio in &ratios {
            let total = 3_500_000.0;
            let mut spec = RunSpec::new(cluster(harmonia), total * (1.0 - ratio), total * ratio);
            spec.keys = Keys::Uniform(100_000);
            let r = run_open_loop(&spec);
            rows.push(vec![
                if harmonia { "Harmonia" } else { "CR" }.to_string(),
                format!("{:.0}%", ratio * 100.0),
                mrps(r.reads_mrps),
                mrps(r.writes_mrps),
                mrps(r.total_mrps()),
            ]);
        }
    }
    print_table(
        "Figure 6b: total throughput vs write ratio (3 replicas)",
        "Harmonia's advantage shrinks as the write ratio grows; at 100% \
         writes the systems are identical",
        &[
            "system",
            "write_ratio",
            "read_mrps",
            "write_mrps",
            "total_mrps",
        ],
        &rows,
    );
}
