//! Figure 7 — scalability with the number of replicas (2 → 10).
//!
//! (a) read-only: CR flat at one server; Harmonia near-linear (10× at 10
//!     replicas — the headline result).
//! (b) write-only: both flat (~0.8 MRPS; writes touch every replica).
//! (c) 5 % writes: Harmonia near-linear until the tail's write work caps it.

use harmonia_bench::{mrps, print_table, run_open_loop, Keys, RunSpec};
use harmonia_core::cluster::ClusterConfig;
use harmonia_replication::ProtocolKind;

fn cluster(harmonia: bool, replicas: usize) -> ClusterConfig {
    ClusterConfig {
        protocol: ProtocolKind::Chain,
        harmonia,
        replicas,
        ..ClusterConfig::default()
    }
}

const REPLICAS: [usize; 9] = [2, 3, 4, 5, 6, 7, 8, 9, 10];

fn sweep(read_per_replica: f64, write_ratio: f64) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    for harmonia in [false, true] {
        for &n in &REPLICAS {
            // Offer enough to saturate whichever system is under test.
            let total = read_per_replica * n as f64;
            let mut spec = RunSpec::new(
                cluster(harmonia, n),
                total * (1.0 - write_ratio),
                total * write_ratio,
            );
            spec.keys = Keys::Uniform(100_000);
            let r = run_open_loop(&spec);
            rows.push(vec![
                if harmonia { "Harmonia" } else { "CR" }.to_string(),
                n.to_string(),
                mrps(r.reads_mrps),
                mrps(r.writes_mrps),
                mrps(r.total_mrps()),
            ]);
        }
    }
    rows
}

fn main() {
    print_table(
        "Figure 7a: read-only scalability",
        "CR flat (~0.92 MRPS regardless of replicas); Harmonia grows \
         linearly, ~10x CR at 10 replicas",
        &[
            "system",
            "replicas",
            "read_mrps",
            "write_mrps",
            "total_mrps",
        ],
        &sweep(1_150_000.0, 0.0),
    );

    // Write-only: capacity is one server's write rate for both systems.
    let mut rows = Vec::new();
    for harmonia in [false, true] {
        for &n in &REPLICAS {
            let mut spec = RunSpec::new(cluster(harmonia, n), 0.0, 1_000_000.0);
            spec.keys = Keys::Uniform(100_000);
            let r = run_open_loop(&spec);
            rows.push(vec![
                if harmonia { "Harmonia" } else { "CR" }.to_string(),
                n.to_string(),
                mrps(r.writes_mrps),
            ]);
        }
    }
    print_table(
        "Figure 7b: write-only scalability",
        "both systems flat at ~0.8 MRPS for every replica count (writes \
         are processed by every node)",
        &["system", "replicas", "write_mrps"],
        &rows,
    );

    print_table(
        "Figure 7c: mixed workload (5% writes) scalability",
        "CR flat; Harmonia near-linear, tapering at high replica counts as \
         the tail's write work becomes the bottleneck",
        &[
            "system",
            "replicas",
            "read_mrps",
            "write_mrps",
            "total_mrps",
        ],
        &sweep(1_150_000.0, 0.05),
    );
}
