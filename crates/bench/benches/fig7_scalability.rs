//! Figure 7 — scalability with the number of replicas (2 → 10), plus the
//! §6.3 group-count sweep.
//!
//! (a) read-only: CR flat at one server; Harmonia near-linear (10× at 10
//!     replicas — the headline result).
//! (b) write-only: both flat (~0.8 MRPS; writes touch every replica).
//! (c) 5 % writes: Harmonia near-linear until the tail's write work caps it.
//! (d) sharded scale-out: total throughput vs. the number of replica groups
//!     (1 → 16) behind one spine switch, with the switch's dirty-set SRAM
//!     reported per run — the quantitative form of "the capacity of a
//!     switch far exceeds that of a single replica group".
//!
//! Figure 7d here is the *simulated* sweep. Its live-driver counterpart —
//! real threads through the per-group switch pipelines — is the
//! `live_scaleout` bench.

use harmonia_bench::{mrps, print_table, run_open_loop, Keys, RunSpec};
use harmonia_core::deployment::DeploymentSpec;
use harmonia_replication::ProtocolKind;
use harmonia_types::Duration;

fn cluster(harmonia: bool, replicas: usize) -> DeploymentSpec {
    DeploymentSpec::new()
        .protocol(ProtocolKind::Chain)
        .harmonia(harmonia)
        .replicas(replicas)
}

const REPLICAS: [usize; 9] = [2, 3, 4, 5, 6, 7, 8, 9, 10];

fn sweep(read_per_replica: f64, write_ratio: f64) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    for harmonia in [false, true] {
        for &n in &REPLICAS {
            // Offer enough to saturate whichever system is under test.
            let total = read_per_replica * n as f64;
            let mut spec = RunSpec::new(
                cluster(harmonia, n),
                total * (1.0 - write_ratio),
                total * write_ratio,
            );
            spec.keys = Keys::Uniform(100_000);
            let r = run_open_loop(&spec);
            rows.push(vec![
                if harmonia { "Harmonia" } else { "CR" }.to_string(),
                n.to_string(),
                mrps(r.reads_mrps),
                mrps(r.writes_mrps),
                mrps(r.total_mrps()),
            ]);
        }
    }
    rows
}

fn main() {
    print_table(
        "Figure 7a: read-only scalability",
        "CR flat (~0.92 MRPS regardless of replicas); Harmonia grows \
         linearly, ~10x CR at 10 replicas",
        &[
            "system",
            "replicas",
            "read_mrps",
            "write_mrps",
            "total_mrps",
        ],
        &sweep(1_150_000.0, 0.0),
    );

    // Write-only: capacity is one server's write rate for both systems.
    let mut rows = Vec::new();
    for harmonia in [false, true] {
        for &n in &REPLICAS {
            let mut spec = RunSpec::new(cluster(harmonia, n), 0.0, 1_000_000.0);
            spec.keys = Keys::Uniform(100_000);
            let r = run_open_loop(&spec);
            rows.push(vec![
                if harmonia { "Harmonia" } else { "CR" }.to_string(),
                n.to_string(),
                mrps(r.writes_mrps),
            ]);
        }
    }
    print_table(
        "Figure 7b: write-only scalability",
        "both systems flat at ~0.8 MRPS for every replica count (writes \
         are processed by every node)",
        &["system", "replicas", "write_mrps"],
        &rows,
    );

    print_table(
        "Figure 7c: mixed workload (5% writes) scalability",
        "CR flat; Harmonia near-linear, tapering at high replica counts as \
         the tail's write work becomes the bottleneck",
        &[
            "system",
            "replicas",
            "read_mrps",
            "write_mrps",
            "total_mrps",
        ],
        &sweep(1_150_000.0, 0.05),
    );

    // §6.3: throughput vs. group count through one spine switch. Each group
    // is a 3-replica chain; the offered mixed load (5 % writes) scales with
    // the group count, so near-linear rows mean the spine switch is not the
    // bottleneck. `switch_mem_bytes` grows linearly at ~`per_group` bytes
    // per group — hundreds of groups fit in a tens-of-MB SRAM budget.
    let mut rows = Vec::new();
    for &groups in &[1usize, 2, 4, 8, 16] {
        let per_group_load = 600_000.0;
        let total = per_group_load * groups as f64;
        let mut spec = RunSpec::new(
            DeploymentSpec::new().groups(groups).replicas(3),
            total * 0.95,
            total * 0.05,
        );
        spec.keys = Keys::Uniform(100_000);
        spec.warmup = Duration::from_millis(10);
        spec.measure = harmonia_bench::measure_window();
        let r = run_open_loop(&spec);
        let per_group = r.switch_memory_bytes / r.groups.max(1);
        rows.push(vec![
            groups.to_string(),
            mrps(r.reads_mrps),
            mrps(r.writes_mrps),
            mrps(r.total_mrps()),
            r.switch_memory_bytes.to_string(),
            per_group.to_string(),
        ]);
    }
    print_table(
        "Figure 7d: sharded scale-out (groups of 3 replicas, 5% writes)",
        "total MRPS grows near-linearly with the group count; switch memory \
         grows by a constant ~16-64 KB per group, far below a tens-of-MB \
         SRAM budget (§6.3, §9.4)",
        &[
            "groups",
            "read_mrps",
            "write_mrps",
            "total_mrps",
            "switch_mem_bytes",
            "per_group_bytes",
        ],
        &rows,
    );
}
