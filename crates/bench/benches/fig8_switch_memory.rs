//! Figure 8 — impact of switch memory (hash-table slots).
//!
//! A closed-loop client fleet issues a 5 % write mix; when the dirty set is
//! too small, writes are dropped in the data plane (§6.1) and stall their
//! issuing connection until the retry timeout — throughput collapses. With
//! enough slots to track all outstanding writes, throughput saturates.
//! Under a zipf-0.9 skew the curve rises more slowly: a hot object pins a
//! slot, and writes to colliding objects keep being dropped (§9.4).
//!
//! The knee position scales with (write rate × write duration); our
//! simulated write latency is lower than the paper's loaded testbed, so the
//! knee sits proportionally earlier — the shape is the result.

use harmonia_bench::{mrps, print_table, run_closed_loop, Keys};
use harmonia_core::deployment::DeploymentSpec;
use harmonia_replication::ProtocolKind;
use harmonia_switch::TableConfig;
use harmonia_types::Duration;

fn cluster(total_slots: usize) -> DeploymentSpec {
    // Keep the 3-stage structure of the prototype (§8); tiny tables get one
    // stage so that "4 slots" really means 4.
    let (stages, per_stage) = if total_slots < 12 {
        (1, total_slots)
    } else {
        (3, total_slots / 3)
    };
    DeploymentSpec::new()
        .protocol(ProtocolKind::Chain)
        .replicas(3)
        .table(TableConfig {
            stages,
            slots_per_stage: per_stage,
            entry_bytes: 8,
        })
}

fn main() {
    let slot_counts = [4usize, 16, 64, 256, 1024, 4096, 16384, 65536];
    let mut rows = Vec::new();
    for (name, keys) in [
        ("uniform", Keys::Uniform(1_000_000)),
        ("zipf-0.9", Keys::Zipf(1_000_000, 0.9)),
    ] {
        for &slots in &slot_counts {
            // 512 connections over the paper's 1M-key space; a write dropped
            // by the switch stalls its connection for the 20 ms retry
            // timeout (up to 10 attempts), which is what collapses
            // throughput when the table is undersized.
            let tput = run_closed_loop(
                &cluster(slots),
                512,
                0.05,
                &keys,
                Duration::from_millis(10),
                harmonia_bench::measure_window(),
                Duration::from_millis(20),
            );
            rows.push(vec![name.to_string(), slots.to_string(), mrps(tput)]);
        }
    }
    print_table(
        "Figure 8: throughput vs hash-table slots (log scale), 5% writes",
        "throughput rises with slots and saturates once the table can hold \
         all outstanding writes (~2000 slots in the paper; proportionally \
         earlier here, see header comment); uniform rises faster than \
         zipf-0.9 because hot objects pin slots",
        &["distribution", "total_slots", "throughput_mrps"],
        &rows,
    );
}
