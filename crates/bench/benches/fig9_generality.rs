//! Figure 9 — generality across replication protocols (3 replicas).
//!
//! (a) primary-backup family: PB, CR, CRAQ, Harmonia(PB), Harmonia(CR) —
//!     read throughput as the write rate grows. PB/CR are capped at one
//!     server; CRAQ scales reads but its write curve is much steeper (the
//!     extra clean/dirty phase); Harmonia scales reads with NO write
//!     penalty.
//! (b) quorum family: VR, NOPaxos, Harmonia(VR), Harmonia(NOPaxos) — same
//!     sweep. NOPaxos sustains more writes than VR (no PREPARE round);
//!     Harmonia triples both systems' reads.

use harmonia_bench::{max_read_at_fixed_write, mrps, print_table, Keys};
use harmonia_core::deployment::DeploymentSpec;
use harmonia_replication::ProtocolKind;

fn run(protocol: ProtocolKind, harmonia: bool, write_mrps: f64) -> (f64, f64) {
    let cluster = DeploymentSpec::new()
        .protocol(protocol)
        .harmonia(harmonia)
        .replicas(3);
    let r = max_read_at_fixed_write(&cluster, write_mrps * 1e6, &Keys::Uniform(100_000));
    (r.writes_mrps, r.reads_mrps)
}

fn sweep(
    rows: &mut Vec<Vec<String>>,
    label: &str,
    protocol: ProtocolKind,
    harmonia: bool,
    write_rates: &[f64],
) {
    for &w in write_rates {
        let (aw, ar) = run(protocol, harmonia, w);
        rows.push(vec![label.to_string(), mrps(w), mrps(aw), mrps(ar)]);
    }
}

fn main() {
    // (a) Primary-backup family.
    let writes = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7];
    let mut rows = Vec::new();
    sweep(&mut rows, "PB", ProtocolKind::PrimaryBackup, false, &writes);
    sweep(&mut rows, "CR", ProtocolKind::Chain, false, &writes);
    sweep(&mut rows, "CRAQ", ProtocolKind::Craq, false, &writes);
    sweep(
        &mut rows,
        "Harmonia(PB)",
        ProtocolKind::PrimaryBackup,
        true,
        &writes,
    );
    sweep(
        &mut rows,
        "Harmonia(CR)",
        ProtocolKind::Chain,
        true,
        &writes,
    );
    print_table(
        "Figure 9a: read throughput vs write rate — primary-backup protocols",
        "PB/CR capped at one server; CRAQ scales reads but its write \
         throughput collapses sooner (steeper curve, extra write phase); \
         Harmonia(PB/CR) match CRAQ's reads with CR-level writes",
        &[
            "system",
            "offered_write_mrps",
            "achieved_write_mrps",
            "read_mrps",
        ],
        &rows,
    );

    // (b) Quorum family. VR's leader saturates on ack processing well
    // before the chain protocols do, so sweep a lower write range.
    let writes = [0.0, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4];
    let mut rows = Vec::new();
    sweep(&mut rows, "VR", ProtocolKind::Vr, false, &writes);
    sweep(&mut rows, "NOPaxos", ProtocolKind::Nopaxos, false, &writes);
    sweep(&mut rows, "Harmonia(VR)", ProtocolKind::Vr, true, &writes);
    sweep(
        &mut rows,
        "Harmonia(NOPaxos)",
        ProtocolKind::Nopaxos,
        true,
        &writes,
    );
    print_table(
        "Figure 9b: read throughput vs write rate — quorum protocols",
        "VR and NOPaxos capped at the leader; NOPaxos sustains higher write \
         rates (single-phase, sequencer-ordered); Harmonia triples reads \
         for both",
        &[
            "system",
            "offered_write_mrps",
            "achieved_write_mrps",
            "read_mrps",
        ],
        &rows,
    );
}
