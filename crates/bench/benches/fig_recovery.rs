//! Replica recovery — mean time to repair (MTTR) versus store size.
//!
//! A 3-replica Harmonia(chain) deployment is preloaded with `N` keys, the
//! tail replica fail-stops, background traffic keeps flowing for a dwell
//! window, and then the replica restarts: the switch re-admits it
//! read-gated, and the newcomer catches up via snapshot + log state
//! transfer from a live peer (§5.3, "handling server failures"). MTTR is
//! the virtual time from the restart verb until the transfer finished AND
//! the switch lifted the read gate — the window during which the group runs
//! one replica short of its read capacity.
//!
//! Expected shape: a fixed floor (the gate-settle interval plus the
//! request/first-chunk round trip) plus a per-chunk term that grows
//! linearly with the store, because the snapshot ships in frame-budgeted
//! chunks (~48 KB each) and the newcomer pays a per-message processing
//! cost; the gate lift lands one control message after `Done`. Virtual
//! time makes the numbers machine-independent
//! and seed-deterministic, so the emitted `BENCH_fig_recovery.json` is a
//! reproducible snapshot — regenerating it on unchanged code is a no-op
//! diff.
//!
//! Knobs: `HARMONIA_RECOVERY_KEYS=500,2000` overrides the store sizes (CI
//! smoke-runs a small pair); `HARMONIA_BENCH_JSON=0` suppresses the JSON
//! snapshot.

use bytes::Bytes;
use harmonia_bench::{print_table, Snapshot};
use harmonia_core::client::{ClosedLoopClient, OpSpec, SourceFn};
use harmonia_core::deployment::{Cluster, DeploymentSpec};
use harmonia_core::ReplicaActor;
use harmonia_types::{ClientId, Duration, NodeId, ReplicaId};
use rand::Rng;

/// The replica that fail-stops and recovers (the chain tail).
const TAIL: ReplicaId = ReplicaId(2);
/// Preload fleet size (parallel closed-loop writers).
const LOADERS: usize = 4;
/// Background open-loop rate during the outage and recovery.
const BG_RATE: f64 = 50_000.0;

struct Row {
    store_keys: usize,
    preload_us: f64,
    mttr_us: f64,
    gate_lifted: bool,
}

fn store_sizes() -> Vec<usize> {
    std::env::var("HARMONIA_RECOVERY_KEYS")
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|s| s.trim().parse().ok())
                .collect::<Vec<usize>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![500, 2_000, 8_000, 32_000])
}

fn key(i: usize) -> Bytes {
    Bytes::from(format!("key-{i}"))
}

fn measure(store_keys: usize) -> Row {
    let spec = DeploymentSpec::new().seed(61);
    let mut sim = spec.build_sim();

    // Preload `store_keys` distinct keys through the front door: parallel
    // closed-loop writers splitting the key range.
    let value = Bytes::from(vec![0x5au8; 128]);
    for c in 0..LOADERS {
        let plan: Vec<OpSpec> = (c..store_keys)
            .step_by(LOADERS)
            .map(|i| OpSpec::write(key(i), value.clone()))
            .collect();
        sim.add_closed_loop_client(ClientId(50 + c as u32), plan, Duration::from_millis(5));
    }
    let loaders_done = |sim: &harmonia_core::deployment::SimCluster| {
        (0..LOADERS).all(|c| {
            sim.world()
                .actor::<ClosedLoopClient>(NodeId::Client(ClientId(50 + c as u32)))
                .is_some_and(|cl| cl.is_done())
        })
    };
    let preload_start = sim.now();
    while !loaders_done(&sim) {
        let next = sim.now() + Duration::from_millis(5);
        sim.run_until(next);
    }
    let preload_us = (sim.now().nanos() - preload_start.nanos()) as f64 / 1e3;

    // Background traffic for the rest of the run: mostly reads over the
    // loaded population, enough writes that the catch-up log is non-empty.
    let population = store_keys;
    let bg_value = value.clone();
    let source: SourceFn = Box::new(move |rng| {
        let k = key(rng.gen_range(0..population));
        if rng.gen_bool(0.1) {
            OpSpec::write(k, bg_value.clone())
        } else {
            OpSpec::read(k)
        }
    });
    sim.add_open_loop_client(ClientId(1), BG_RATE, Duration::from_millis(5), source);

    // Fail-stop the tail, dwell (writes land on the survivors), restart.
    sim.kill_replica(TAIL);
    let dwell = sim.now() + Duration::from_millis(2);
    sim.run_until(dwell);
    let t0 = sim.now();
    sim.restart_replica(TAIL);

    // Step until the transfer finished and the switch lifted the gate.
    let horizon = t0 + Duration::from_millis(500);
    let mut mttr_us = f64::NAN;
    let mut gate_lifted = false;
    loop {
        let recovering = sim
            .world()
            .actor::<ReplicaActor>(NodeId::Replica(TAIL))
            .is_none_or(|a| a.is_recovering());
        let gated = sim.switch_actor().is_none_or(|sw| sw.is_gated(TAIL));
        if !recovering && !gated {
            mttr_us = (sim.now().nanos() - t0.nanos()) as f64 / 1e3;
            gate_lifted = true;
            break;
        }
        if sim.now() >= horizon {
            break;
        }
        let next = sim.now() + Duration::from_micros(20);
        sim.run_until(next);
    }
    Row {
        store_keys,
        preload_us,
        mttr_us,
        gate_lifted,
    }
}

fn write_json(rows: &[Row]) {
    let mut snap = Snapshot::new(
        "fig_recovery",
        1,
        "Replica MTTR (restart verb -> transfer done + read gate lifted) \
         vs preloaded store size; deterministic virtual time, seed 61",
    );
    snap.text("unit", "microseconds");
    let rendered: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{ \"store_keys\": {}, \"mttr_us\": {:.1}, \"gate_lifted\": {} }}",
                r.store_keys, r.mttr_us, r.gate_lifted
            )
        })
        .collect();
    snap.rows("rows", &rendered);
    snap.write();
}

fn main() {
    let rows: Vec<Row> = store_sizes().into_iter().map(measure).collect();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.store_keys.to_string(),
                format!("{:.1}", r.preload_us),
                format!("{:.1}", r.mttr_us),
                r.gate_lifted.to_string(),
            ]
        })
        .collect();
    print_table(
        "Replica recovery: MTTR vs store size",
        "a fixed settle+RTT floor plus a per-chunk term growing with the \
         store (chunked snapshot transfer); the read gate lifts in every row",
        &["store_keys", "preload_us", "mttr_us", "gate_lifted"],
        &table,
    );
    assert!(
        rows.iter().all(|r| r.gate_lifted),
        "a recovery never finished inside the horizon"
    );
    write_json(&rows);
}
