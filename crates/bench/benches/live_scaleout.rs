//! Live data-plane scale-out: closed-loop throughput on OS threads vs. the
//! number of replica groups behind one spine.
//!
//! This is the live-driver counterpart of Figure 7d. The sim sweep shows
//! the *protocol* scales with group count; this sweep shows the *driver*
//! does too: per-group switch pipelines exclusively own their group's
//! state, the spine shard-routes statelessly on the sending thread, and no
//! lock is taken on the packet path — so adding groups adds packet-level
//! parallelism, bounded only by the host's cores.
//!
//! Offered concurrency scales with the shape (4 client threads per group),
//! which is how a saturation sweep must be driven. Interpret the ratios
//! against `host_cores`: a `groups(8)` fleet is 8 pipeline + 24 replica
//! threads, so near-linear scaling (and the ≥3× @ 8 groups target) needs a
//! suitably parallel host; on one core every shape collapses to the same
//! single-core packet-processing rate and the ratio is expected to be ~1×.
//!
//! `HARMONIA_LIVE_BENCH_MS` bounds the per-shape window (CI smoke-runs
//! with a small value).

use harmonia_bench::{live_measure_window, mrps, print_table, run_live_closed_loop};
use harmonia_core::deployment::DeploymentSpec;
use harmonia_replication::ProtocolKind;

fn main() {
    let window = live_measure_window();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut rows = Vec::new();
    let mut base = None;
    for &groups in &[1usize, 2, 4, 8] {
        let spec = DeploymentSpec::new()
            .protocol(ProtocolKind::Chain)
            .groups(groups)
            .replicas(3);
        let total = run_live_closed_loop(&spec, 4 * groups, 0.05, 256, window);
        let base_v = *base.get_or_insert(total);
        rows.push(vec![
            groups.to_string(),
            (4 * groups).to_string(),
            mrps(total),
            format!("{:.2}x", total / base_v.max(1e-9)),
        ]);
    }
    print_table(
        &format!("Live scale-out (closed loop, 5% writes, host_cores={cores})"),
        "with cores >= threads: near-linear in groups (>=3x at 8 groups); \
         core-starved hosts flatten toward 1x (single-core packet rate)",
        &["groups", "clients", "total_mrps", "vs_1_group"],
        &rows,
    );
}
