//! Criterion micro-benchmarks for the KV engine (the Redis substitute).
//!
//! Single-node GET/SET costs here are what justify the calibrated service
//! times in `CostModel` — the engine itself is far faster than the
//! ~1.1/1.25 µs budgets, leaving headroom that real Redis spends on
//! protocol parsing and syscalls.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};
use harmonia_kv::{Batch, Store, VersionChain, VersionedValue};
use harmonia_types::{SwitchId, SwitchSeq};

fn seq(n: u64) -> SwitchSeq {
    SwitchSeq::new(SwitchId(1), n)
}

fn bench_store(c: &mut Criterion) {
    let mut g = c.benchmark_group("store");
    g.bench_function("put", |b| {
        let store: Store<VersionedValue> = Store::new();
        let keys: Vec<Bytes> = (0..10_000)
            .map(|i| Bytes::from(format!("key-{i}")))
            .collect();
        let value = Bytes::from_static(b"value-payload-128-bytes-0123456789");
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let key = keys[(i % 10_000) as usize].clone();
            store.put(key, VersionedValue::new(value.clone(), seq(i)));
        });
    });
    g.bench_function("get_hit", |b| {
        let store: Store<VersionedValue> = Store::new();
        let keys: Vec<Bytes> = (0..10_000)
            .map(|i| Bytes::from(format!("key-{i}")))
            .collect();
        for (i, k) in keys.iter().enumerate() {
            store.put(
                k.clone(),
                VersionedValue::new(Bytes::from_static(b"v"), seq(i as u64 + 1)),
            );
        }
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            store.get(&keys[(i % 10_000) as usize])
        });
    });
    g.bench_function("batch_pipeline_16", |b| {
        let store: Store<VersionedValue> = Store::new();
        let keys: Vec<Bytes> = (0..10_000)
            .map(|i| Bytes::from(format!("key-{i}")))
            .collect();
        let value = Bytes::from_static(b"v");
        let mut i = 0u64;
        b.iter(|| {
            let mut batch = Batch::new();
            for _ in 0..8 {
                i += 1;
                batch.put(keys[(i % 10_000) as usize].clone(), value.clone(), seq(i));
                batch.get(keys[((i * 7) % 10_000) as usize].clone());
            }
            batch.execute(&store)
        });
    });
    g.finish();
}

fn bench_version_chain(c: &mut Criterion) {
    c.bench_function("version_chain_stage_commit", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let mut chain = VersionChain::empty();
            chain.stage(VersionedValue::new(
                Bytes::from_static(b"a"),
                seq(i * 3 + 1),
            ));
            chain.stage(VersionedValue::new(
                Bytes::from_static(b"b"),
                seq(i * 3 + 2),
            ));
            chain.commit_up_to(seq(i * 3 + 2));
            chain
        });
    });
}

criterion_group!(benches, bench_store, bench_version_chain);
criterion_main!(benches);
