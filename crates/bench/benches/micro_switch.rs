//! Criterion micro-benchmarks for the switch data plane.
//!
//! The paper's claim is line-rate processing; in the emulation that
//! translates to tens of nanoseconds per operation — far below the
//! per-message costs of any replica, confirming the switch is never the
//! simulated bottleneck.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use harmonia_switch::{
    ConflictConfig, ConflictDetector, MultiStageHashTable, Sequencer, TableConfig,
};
use harmonia_types::{ObjectId, SwitchId, SwitchSeq, WriteCompletion};

fn table() -> MultiStageHashTable {
    MultiStageHashTable::new(TableConfig {
        stages: 3,
        slots_per_stage: 64 * 1024,
        entry_bytes: 8,
    })
}

fn bench_table(c: &mut Criterion) {
    let mut g = c.benchmark_group("hash_table");
    g.bench_function("insert_delete_cycle", |b| {
        let mut t = table();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let obj = ObjectId((i % 50_000) as u32);
            let seq = SwitchSeq::new(SwitchId(1), i);
            t.insert(obj, seq);
            t.delete(obj, seq);
        });
    });
    g.bench_function("search_hit", |b| {
        let mut t = table();
        for i in 1..=10_000u64 {
            t.insert(ObjectId(i as u32), SwitchSeq::new(SwitchId(1), i));
        }
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            t.search(ObjectId((1 + i % 10_000) as u32))
        });
    });
    g.bench_function("search_miss", |b| {
        let mut t = table();
        for i in 1..=10_000u64 {
            t.insert(ObjectId(i as u32), SwitchSeq::new(SwitchId(1), i));
        }
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            t.search(ObjectId(1_000_000 + (i % 10_000) as u32))
        });
    });
    g.finish();
}

fn bench_detector(c: &mut Criterion) {
    let mut g = c.benchmark_group("conflict_detector");
    g.bench_function("write_complete_read_cycle", |b| {
        b.iter_batched(
            || {
                let mut d = ConflictDetector::new(ConflictConfig::default());
                // Enable the fast path.
                if let harmonia_switch::WriteDecision::Stamped(seq) = d.process_write(ObjectId(0)) {
                    d.process_completion(WriteCompletion {
                        obj: ObjectId(0),
                        seq,
                    });
                }
                (d, 0u64)
            },
            |(mut d, mut i)| {
                for _ in 0..1000 {
                    i += 1;
                    let obj = ObjectId((i % 10_000) as u32);
                    if let harmonia_switch::WriteDecision::Stamped(seq) = d.process_write(obj) {
                        d.process_completion(WriteCompletion { obj, seq });
                    }
                    d.process_read(ObjectId(((i + 5_000) % 10_000) as u32));
                }
                d
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_sequencer(c: &mut Criterion) {
    c.bench_function("sequencer_stamp", |b| {
        let mut s = Sequencer::new(1);
        b.iter(|| s.stamp());
    });
}

criterion_group!(benches, bench_table, bench_detector, bench_sequencer);
criterion_main!(benches);
