//! §6.2 / §9.4 — switch resource usage.
//!
//! Prints the paper's analytic capacity model (`u·n·m / (w·t)`) for several
//! configurations, including the §6.2 worked example, then measures the
//! *actual* dirty-set occupancy and memory footprint of a loaded run —
//! demonstrating that a few thousand slots (a few KB of SRAM) suffice,
//! which is the §9.4 claim.

use harmonia_bench::{mrps, print_table, run_open_loop, Keys, RunSpec};
use harmonia_core::deployment::DeploymentSpec;
use harmonia_replication::ProtocolKind;
use harmonia_switch::{ResourceModel, TableConfig};

fn main() {
    // Analytic model.
    let configs = [
        ("paper §6.2 example", ResourceModel::paper_example()),
        (
            "measured knee (§9.4)",
            ResourceModel {
                stages: 3,
                slots_per_stage: 667,
                utilization: 0.5,
                write_duration_s: 1e-3,
                write_ratio: 0.05,
                entry_bytes: 8,
            },
        ),
        (
            "full prototype table (§8)",
            ResourceModel {
                stages: 3,
                slots_per_stage: 64 * 1024,
                utilization: 0.5,
                write_duration_s: 1e-3,
                write_ratio: 0.05,
                entry_bytes: 8,
            },
        ),
    ];
    let rows: Vec<Vec<String>> = configs
        .iter()
        .map(|(name, m)| {
            vec![
                name.to_string(),
                format!("{}x{}", m.stages, m.slots_per_stage),
                format!("{:.0}", m.max_pending_writes()),
                format!("{:.1}", m.write_throughput() / 1e6),
                format!("{:.2}", m.total_throughput() / 1e9),
                format!("{:.1}", m.memory_bytes() as f64 / 1024.0),
                format!("{:.2}%", m.memory_fraction_of(10 * 1000 * 1000) * 100.0),
            ]
        })
        .collect();
    print_table(
        "§6.2 analytic capacity model",
        "the worked example supports 96 MRPS of writes / 1.92 BRPS total in \
         1.5 MB; the measured configuration needs only ~16 KB",
        &[
            "configuration",
            "stages x slots",
            "max_pending",
            "write_MRPS",
            "total_BRPS",
            "sram_KiB",
            "of_10MB_switch",
        ],
        &rows,
    );

    // Measured occupancy under load, across table sizes.
    let mut rows = Vec::new();
    for (stages, per_stage) in [(3usize, 32usize), (3, 256), (3, 2048), (3, 65536)] {
        let cluster = DeploymentSpec::new()
            .protocol(ProtocolKind::Chain)
            .replicas(3)
            .table(TableConfig {
                stages,
                slots_per_stage: per_stage,
                entry_bytes: 8,
            });
        let mut spec = RunSpec::new(cluster, 2_700_000.0, 140_000.0);
        spec.keys = Keys::Uniform(100_000);
        let r = run_open_loop(&spec);
        rows.push(vec![
            format!("{stages}x{per_stage}"),
            (stages * per_stage).to_string(),
            format!("{}", (stages * per_stage * 8) / 1024),
            r.dirty_len.to_string(),
            r.switch.writes_dropped.to_string(),
            mrps(r.total_mrps()),
        ]);
    }
    print_table(
        "Measured dirty-set occupancy (5% writes at saturation)",
        "outstanding writes occupy a handful of slots; write drops appear \
         only when the table is smaller than the pending-write population",
        &[
            "table",
            "total_slots",
            "sram_KiB",
            "dirty_entries_at_end",
            "writes_dropped",
            "total_mrps",
        ],
        &rows,
    );
}
