//! UDP data-plane throughput and latency: scalar vs batched vs coalesced.
//!
//! Two sections, comparing three verb/framing modes: `scalar` (one syscall
//! per datagram, copying decode, `udp_batch = false`), `batched`
//! (`sendmmsg`/`recvmmsg` in 32-datagram bursts, pooled zero-copy receive,
//! one frame per datagram), and `coalesced` (batched verbs plus GSO-style
//! frame packing: per-destination frames ride back-to-back in full
//! datagrams out of the send-side buffer pool, unpacked GRO-style by the
//! receiver's frame iterator):
//!
//! 1. **Pump** — per thread count in {1, 2, 4}, each thread owns one socket
//!    and self-loops 32-packet bursts through it (loopback delivery is
//!    synchronous, so a burst is queued by the time the send returns) for
//!    `live_measure_window()`; delivered MRPS is summed. Send+drain on one
//!    thread keeps the measurement scheduler-independent — what's compared
//!    is the per-packet CPU cost of the verb sets. The batched mode crosses
//!    the kernel ~2 times per 32 datagrams where scalar pays 64; the
//!    coalesced mode goes further and moves the whole burst as **one**
//!    datagram (`frames_per_datagram` in the JSON records the realized
//!    packing), so its margin tracks the host's per-datagram cost — both
//!    the syscall boundary and the kernel's loopback queueing.
//! 2. **Echo RTT** — single in-flight request/reply against an echo server;
//!    client p50/p99/p99.9 µs per mode. Batching and coalescing are
//!    throughput levers, so the expectation here is parity, not speedup —
//!    this section exists to show neither taxes the latency floor (with one
//!    packet in flight a coalesced datagram carries exactly one frame).
//!
//! A third section prices the observability layer: the same pump with a
//! `harmonia-obs` recorder doing per-packet counter increments and
//! per-burst latency observations — exactly what the wired UDP driver pays
//! — against the plain pump. The delta is `obs_overhead_pct` in the JSON;
//! `HARMONIA_OBS_ASSERT=1` makes the run fail if it exceeds 5 % (the CI
//! smoke step sets it).
//!
//! Emits `BENCH_udp_dataplane.json` (suppress with `HARMONIA_BENCH_JSON=0`);
//! `HARMONIA_LIVE_BENCH_MS` shrinks the window for CI smoke runs.

// Wall-clock reads are deliberate here: benchmark: measures real elapsed time.
#![allow(clippy::disallowed_methods)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use harmonia_bench::{live_measure_window, mrps, print_table, us, Snapshot};
use harmonia_net::{AddrBook, Transport, UdpTransport};
use harmonia_obs::{Counter, MonotonicClock, Registry, Series};
use harmonia_types::{ClientId, NodeId, Packet, PacketBody, ReplicaId};

type Pkt = Packet<u64>;

const BURST: usize = 32;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Scalar,
    Batched,
    Coalesced,
}

const MODES: [Mode; 3] = [Mode::Scalar, Mode::Batched, Mode::Coalesced];

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Scalar => "scalar",
            Mode::Batched => "batched",
            Mode::Coalesced => "coalesced",
        }
    }

    fn batched(self) -> bool {
        !matches!(self, Mode::Scalar)
    }

    fn coalesced(self) -> bool {
        matches!(self, Mode::Coalesced)
    }

    fn apply(self, t: &mut UdpTransport<u64>) {
        t.set_batched(self.batched());
        t.set_coalesced(self.coalesced());
    }
}

fn pkt(src: NodeId, dst: NodeId, n: u64) -> Pkt {
    Packet::new(src, dst, PacketBody::Protocol(n))
}

struct PumpResult {
    pairs: usize,
    mode: Mode,
    delivered: u64,
    window: Duration,
    pool_hit_rate: f64,
    send_pool_hit_rate: f64,
    /// Realized packing: frames sent / datagrams sent, summed over workers.
    frames_per_datagram: f64,
}

impl PumpResult {
    fn mrps(&self) -> f64 {
        self.delivered as f64 / self.window.as_secs_f64() / 1e6
    }
}

/// One thread per pump unit, each self-looping bursts through its own
/// socket (send to self, drain what just queued); returns delivered totals.
/// Send and drain on the same thread means throughput measures the verbs'
/// per-packet CPU cost, not how the scheduler interleaves a sender/receiver
/// thread pair — the number is meaningful on any core count.
fn pump(pairs: usize, mode: Mode, window: Duration, obs: Option<&Registry>) -> PumpResult {
    let stop = Arc::new(AtomicBool::new(false));
    let mut workers = Vec::new();
    for i in 0..pairs {
        let book = Arc::new(AddrBook::new());
        let mut t = UdpTransport::<u64>::bind(Arc::clone(&book)).expect("bind pump socket");
        mode.apply(&mut t);
        let me = NodeId::Replica(ReplicaId(i as u32));
        book.register(me, t.local_addr());

        let stop = Arc::clone(&stop);
        let rec = obs.map(|r| r.handle());
        workers.push(std::thread::spawn(move || {
            let src = NodeId::Client(ClientId(0));
            let mut got: Vec<Pkt> = Vec::with_capacity(BURST);
            let mut delivered = 0u64;
            let mut seq = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let burst_started = rec.as_ref().map(|r| r.now());
                if mode.batched() {
                    let mut burst: Vec<(NodeId, Pkt)> = (0..BURST)
                        .map(|_| {
                            seq += 1;
                            (me, pkt(src, me, seq))
                        })
                        .collect();
                    t.send_batch(&mut burst);
                } else {
                    for _ in 0..BURST {
                        seq += 1;
                        t.send(me, pkt(src, me, seq));
                    }
                }
                // Loopback delivery is synchronous: the burst is already in
                // our own receive queue. Drain it the same way it was sent.
                let mut drained = 0;
                while drained < BURST {
                    if mode.batched() {
                        got.clear();
                        let n = t.recv_batch(&mut got, BURST - drained);
                        if n == 0 {
                            break;
                        }
                        drained += n;
                    } else if t.recv_timeout(Duration::ZERO).is_ok() {
                        drained += 1;
                    } else {
                        break;
                    }
                }
                delivered += drained as u64;
                // The priced observability work: one counter increment per
                // delivered packet (the wired driver's per-packet cost) and
                // one histogram observation per burst.
                if let (Some(rec), Some(t0)) = (rec.as_ref(), burst_started) {
                    for _ in 0..drained {
                        rec.incr(Counter::ReadsDone);
                    }
                    rec.observe(Series::ReadLatency, rec.now().since(t0));
                }
            }
            let stats = t.stats();
            (
                delivered,
                t.pool_stats().hit_rate(),
                t.send_pool_stats().hit_rate(),
                stats.sent,
                stats.datagrams_sent,
            )
        }));
    }

    std::thread::sleep(window);
    stop.store(true, Ordering::Relaxed);
    let mut delivered = 0u64;
    let mut hit_rate = 0.0;
    let mut send_hit_rate = 0.0;
    let mut frames = 0u64;
    let mut datagrams = 0u64;
    for w in workers {
        let (d, h, sh, f, dg) = w.join().unwrap();
        delivered += d;
        hit_rate += h;
        send_hit_rate += sh;
        frames += f;
        datagrams += dg;
    }
    PumpResult {
        pairs,
        mode,
        delivered,
        window,
        pool_hit_rate: hit_rate / pairs as f64,
        send_pool_hit_rate: send_hit_rate / pairs as f64,
        frames_per_datagram: frames as f64 / datagrams.max(1) as f64,
    }
}

/// Client-observed RTT samples (µs) against a scalar echo server; the mode
/// under test only changes the client's verbs.
fn echo_rtt(mode: Mode, samples: usize) -> Vec<f64> {
    let book = Arc::new(AddrBook::new());
    let mut server = UdpTransport::<u64>::bind(Arc::clone(&book)).expect("bind server");
    let mut client = UdpTransport::<u64>::bind(Arc::clone(&book)).expect("bind client");
    mode.apply(&mut client);
    let srv = NodeId::Replica(ReplicaId(0));
    let cli = NodeId::Client(ClientId(9));
    book.register(srv, server.local_addr());
    book.register(cli, client.local_addr());

    let stop = Arc::new(AtomicBool::new(false));
    let stop_srv = Arc::clone(&stop);
    let echo = std::thread::spawn(move || {
        while !stop_srv.load(Ordering::Relaxed) {
            if let Ok(p) = server.recv_timeout(Duration::from_millis(1)) {
                let back = pkt(
                    srv,
                    p.src,
                    match p.body {
                        PacketBody::Protocol(n) => n,
                        _ => 0,
                    },
                );
                server.send(p.src, back);
            }
        }
    });

    let mut rtts = Vec::with_capacity(samples);
    let mut got: Vec<Pkt> = Vec::with_capacity(1);
    for n in 0..samples as u64 {
        let t0 = Instant::now();
        if mode.batched() {
            let mut one = vec![(srv, pkt(cli, srv, n))];
            client.send_batch(&mut one);
            // Mirror the UdpLink receive path: drain the nonblocking batch
            // verb first, then block in the scalar verb while idle (busy
            // polling recv_batch would just starve the server of cycles).
            let deadline = t0 + Duration::from_millis(200);
            loop {
                got.clear();
                if client.recv_batch(&mut got, 1) > 0
                    || client.recv_timeout(Duration::from_millis(5)).is_ok()
                    || Instant::now() > deadline
                {
                    break;
                }
            }
        } else {
            client.send(srv, pkt(cli, srv, n));
            let _ = client.recv_timeout(Duration::from_millis(200));
        }
        rtts.push(t0.elapsed().as_nanos() as f64 / 1e3);
    }
    stop.store(true, Ordering::Relaxed);
    echo.join().unwrap();
    rtts
}

struct ObsOverhead {
    baseline_mrps: f64,
    instrumented_mrps: f64,
}

impl ObsOverhead {
    fn pct(&self) -> f64 {
        (1.0 - self.instrumented_mrps / self.baseline_mrps) * 100.0
    }
}

/// Price the recorder on the hottest pump cell: coalesced mode, one worker.
/// Baseline and instrumented runs interleave twice and each side keeps its
/// best, so scheduler noise at CI's short smoke windows is not billed to
/// the recorder; the window has a floor for the same reason.
fn obs_overhead(window: Duration) -> ObsOverhead {
    let window = window.max(Duration::from_millis(200));
    let registry = Registry::with_clock(Arc::new(MonotonicClock::new()));
    let mut baseline: f64 = 0.0;
    let mut instrumented: f64 = 0.0;
    for _ in 0..2 {
        baseline = baseline.max(pump(1, Mode::Coalesced, window, None).mrps());
        instrumented = instrumented.max(pump(1, Mode::Coalesced, window, Some(&registry)).mrps());
    }
    ObsOverhead {
        baseline_mrps: baseline,
        instrumented_mrps: instrumented,
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

struct LatRow {
    mode: Mode,
    p50: f64,
    p99: f64,
    p999: f64,
}

fn write_json(pumps: &[PumpResult], lats: &[LatRow], obs: &ObsOverhead, window: Duration) {
    // Schema 3: adds the shared-writer host preamble and the `obs_overhead`
    // section pricing the harmonia-obs recorder on the packet path.
    let mut snap = Snapshot::new(
        "udp_dataplane",
        3,
        "Loopback UDP data plane: scalar verbs vs sendmmsg/recvmmsg bursts \
         vs GSO/GRO-style frame coalescing with a zero-copy send pool",
    );
    snap.raw("window_ms", window.as_millis());
    snap.raw("mmsg_accelerated", mmsg::accelerated());
    // Kernel crossings per packet in the pump's send+drain loop: the scalar
    // verbs pay one send_to and one recv per packet; the batch verbs pay
    // one sendmmsg and one recvmmsg per 32-packet burst; the coalesced mode
    // moves the whole single-destination burst as one datagram.
    snap.raw(
        "syscalls_per_packet",
        format!(
            "{{ \"scalar\": 2.0, \"batched\": {:.4}, \"coalesced\": {:.4} }}",
            2.0 / BURST as f64,
            2.0 / BURST as f64
        ),
    );
    let pump_rows: Vec<String> = pumps
        .iter()
        .map(|r| {
            format!(
                "{{ \"pairs\": {}, \"mode\": \"{}\", \"mrps\": {:.4}, \"delivered\": {}, \
                 \"pool_hit_rate\": {:.4}, \"send_pool_hit_rate\": {:.4}, \
                 \"frames_per_datagram\": {:.2} }}",
                r.pairs,
                r.mode.name(),
                r.mrps(),
                r.delivered,
                r.pool_hit_rate,
                r.send_pool_hit_rate,
                r.frames_per_datagram
            )
        })
        .collect();
    snap.rows("pump_mrps", &pump_rows);
    let counts: Vec<usize> = {
        let mut c: Vec<usize> = pumps.iter().map(|r| r.pairs).collect();
        c.dedup();
        c
    };
    let speedups: Vec<String> = counts
        .iter()
        .filter_map(|pairs| {
            let find = |mode: Mode| pumps.iter().find(|r| r.pairs == *pairs && r.mode == mode);
            let (s, b, c) = (
                find(Mode::Scalar)?,
                find(Mode::Batched)?,
                find(Mode::Coalesced)?,
            );
            Some(format!(
                "{{ \"pairs\": {}, \"batched_over_scalar\": {:.3}, \
                 \"coalesced_over_batched\": {:.3}, \"coalesced_over_scalar\": {:.3} }}",
                pairs,
                b.mrps() / s.mrps(),
                c.mrps() / b.mrps(),
                c.mrps() / s.mrps()
            ))
        })
        .collect();
    snap.rows("speedup", &speedups);
    let lat_rows: Vec<String> = lats
        .iter()
        .map(|l| {
            format!(
                "{{ \"mode\": \"{}\", \"p50\": {:.1}, \"p99\": {:.1}, \"p999\": {:.1} }}",
                l.mode.name(),
                l.p50,
                l.p99,
                l.p999
            )
        })
        .collect();
    snap.rows("echo_rtt_us", &lat_rows);
    snap.raw(
        "obs_overhead",
        format!(
            "{{ \"baseline_mrps\": {:.4}, \"instrumented_mrps\": {:.4}, \
             \"obs_overhead_pct\": {:.2} }}",
            obs.baseline_mrps,
            obs.instrumented_mrps,
            obs.pct()
        ),
    );
    snap.write();
}

fn main() {
    let window = live_measure_window();
    println!(
        "# udp_dataplane: window {}ms per cell, mmsg accelerated: {}",
        window.as_millis(),
        mmsg::accelerated()
    );

    let mut pumps = Vec::new();
    for pairs in [1usize, 2, 4] {
        for mode in MODES {
            pumps.push(pump(pairs, mode, window, None));
        }
    }
    let rows: Vec<Vec<String>> = pumps
        .iter()
        .map(|r| {
            vec![
                r.pairs.to_string(),
                r.mode.name().to_string(),
                mrps(r.mrps()),
                r.delivered.to_string(),
                format!("{:.3}", r.pool_hit_rate),
                format!("{:.3}", r.send_pool_hit_rate),
                format!("{:.1}", r.frames_per_datagram),
            ]
        })
        .collect();
    print_table(
        "UDP pump: delivered throughput, scalar vs batched vs coalesced",
        "batched at or above scalar with 32x fewer kernel crossings; \
         coalesced above batched by packing the whole burst into one \
         datagram (frames/dgram ~32 here). Pool hit rates ~1.0 once warm",
        &[
            "pairs",
            "mode",
            "MRPS",
            "delivered",
            "pool_hit",
            "send_hit",
            "frames/dgram",
        ],
        &rows,
    );

    let samples = (window.as_millis() as usize * 10).clamp(200, 10_000);
    let mut lats = Vec::new();
    for mode in MODES {
        let mut rtts = echo_rtt(mode, samples);
        rtts.sort_by(|a, b| a.total_cmp(b));
        lats.push(LatRow {
            mode,
            p50: percentile(&rtts, 0.50),
            p99: percentile(&rtts, 0.99),
            p999: percentile(&rtts, 0.999),
        });
    }
    let lat_rows: Vec<Vec<String>> = lats
        .iter()
        .map(|l| vec![l.mode.name().to_string(), us(l.p50), us(l.p99), us(l.p999)])
        .collect();
    print_table(
        "UDP echo RTT: single in-flight request/reply",
        "tens of µs on loopback; batched and coalesced within noise of \
         scalar (throughput levers must not tax the latency floor)",
        &["mode", "p50", "p99", "p99.9"],
        &lat_rows,
    );

    let obs = obs_overhead(window);
    print_table(
        "Observability overhead: per-packet recorder on the coalesced pump",
        "a sharded relaxed-atomic counter bump per packet plus one histogram \
         observation per burst costs well under 5% of delivered MRPS",
        &["baseline_MRPS", "instrumented_MRPS", "overhead_%"],
        &[vec![
            mrps(obs.baseline_mrps),
            mrps(obs.instrumented_mrps),
            format!("{:.2}", obs.pct()),
        ]],
    );
    if std::env::var("HARMONIA_OBS_ASSERT").as_deref() == Ok("1") {
        assert!(
            obs.pct() < 5.0,
            "observability overhead {:.2}% exceeds the 5% budget \
             (baseline {:.4} MRPS, instrumented {:.4} MRPS)",
            obs.pct(),
            obs.baseline_mrps,
            obs.instrumented_mrps
        );
    }

    write_json(&pumps, &lats, &obs, window);
}
