//! UDP data-plane throughput and latency: batched vs scalar verbs.
//!
//! Two sections, both comparing `udp_batch = false` (one syscall per
//! datagram, copying decode) against the default batched path (`sendmmsg`/
//! `recvmmsg` in 32-datagram bursts, pooled zero-copy receive):
//!
//! 1. **Pump** — per thread count in {1, 2, 4}, each thread owns one socket
//!    and self-loops 32-packet bursts through it (loopback delivery is
//!    synchronous, so a burst is queued by the time the send returns) for
//!    `live_measure_window()`; delivered MRPS is summed. Send+drain on one
//!    thread keeps the measurement scheduler-independent — what's compared
//!    is the per-packet CPU cost of the two verb sets. The batched mode
//!    crosses the kernel ~2 times per 32 datagrams, the scalar mode 64
//!    times; the wall-clock margin between them therefore tracks the
//!    host's syscall-boundary cost (modest on an unmitigated VM where
//!    in-kernel loopback work dominates, large where syscall entry is
//!    expensive), while the crossing counts themselves are recorded as
//!    `syscalls_per_packet` in the JSON.
//! 2. **Echo RTT** — single in-flight request/reply against an echo server;
//!    client p50/p99/p99.9 µs per mode. Batching is a throughput lever, so
//!    the expectation here is parity, not speedup — this section exists to
//!    show batching does not tax the latency floor.
//!
//! Emits `BENCH_udp_dataplane.json` (suppress with `HARMONIA_BENCH_JSON=0`);
//! `HARMONIA_LIVE_BENCH_MS` shrinks the window for CI smoke runs.

// Wall-clock reads are deliberate here: benchmark: measures real elapsed time.
#![allow(clippy::disallowed_methods)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use harmonia_bench::{live_measure_window, mrps, print_table, us};
use harmonia_net::{AddrBook, Transport, UdpTransport};
use harmonia_types::{ClientId, NodeId, Packet, PacketBody, ReplicaId};

type Pkt = Packet<u64>;

const BURST: usize = 32;

fn pkt(src: NodeId, dst: NodeId, n: u64) -> Pkt {
    Packet::new(src, dst, PacketBody::Protocol(n))
}

struct PumpResult {
    pairs: usize,
    batched: bool,
    delivered: u64,
    window: Duration,
    pool_hit_rate: f64,
}

impl PumpResult {
    fn mrps(&self) -> f64 {
        self.delivered as f64 / self.window.as_secs_f64() / 1e6
    }
}

/// One thread per pump unit, each self-looping bursts through its own
/// socket (send to self, drain what just queued); returns delivered totals.
/// Send and drain on the same thread means throughput measures the verbs'
/// per-packet CPU cost, not how the scheduler interleaves a sender/receiver
/// thread pair — the number is meaningful on any core count.
fn pump(pairs: usize, batched: bool, window: Duration) -> PumpResult {
    let stop = Arc::new(AtomicBool::new(false));
    let mut workers = Vec::new();
    for i in 0..pairs {
        let book = Arc::new(AddrBook::new());
        let mut t = UdpTransport::<u64>::bind(Arc::clone(&book)).expect("bind pump socket");
        t.set_batched(batched);
        let me = NodeId::Replica(ReplicaId(i as u32));
        book.register(me, t.local_addr());

        let stop = Arc::clone(&stop);
        workers.push(std::thread::spawn(move || {
            let src = NodeId::Client(ClientId(0));
            let mut got: Vec<Pkt> = Vec::with_capacity(BURST);
            let mut delivered = 0u64;
            let mut seq = 0u64;
            while !stop.load(Ordering::Relaxed) {
                if batched {
                    let mut burst: Vec<(NodeId, Pkt)> = (0..BURST)
                        .map(|_| {
                            seq += 1;
                            (me, pkt(src, me, seq))
                        })
                        .collect();
                    t.send_batch(&mut burst);
                } else {
                    for _ in 0..BURST {
                        seq += 1;
                        t.send(me, pkt(src, me, seq));
                    }
                }
                // Loopback delivery is synchronous: the burst is already in
                // our own receive queue. Drain it the same way it was sent.
                let mut drained = 0;
                while drained < BURST {
                    if batched {
                        got.clear();
                        let n = t.recv_batch(&mut got, BURST - drained);
                        if n == 0 {
                            break;
                        }
                        drained += n;
                    } else if t.recv_timeout(Duration::ZERO).is_ok() {
                        drained += 1;
                    } else {
                        break;
                    }
                }
                delivered += drained as u64;
            }
            (delivered, t.pool_stats().hit_rate())
        }));
    }

    std::thread::sleep(window);
    stop.store(true, Ordering::Relaxed);
    let mut delivered = 0u64;
    let mut hit_rate = 0.0;
    for w in workers {
        let (d, h) = w.join().unwrap();
        delivered += d;
        hit_rate += h;
    }
    PumpResult {
        pairs,
        batched,
        delivered,
        window,
        pool_hit_rate: hit_rate / pairs as f64,
    }
}

/// Client-observed RTT samples (µs) against a scalar echo server; the mode
/// under test only changes the client's verbs.
fn echo_rtt(batched: bool, samples: usize) -> Vec<f64> {
    let book = Arc::new(AddrBook::new());
    let mut server = UdpTransport::<u64>::bind(Arc::clone(&book)).expect("bind server");
    let mut client = UdpTransport::<u64>::bind(Arc::clone(&book)).expect("bind client");
    client.set_batched(batched);
    let srv = NodeId::Replica(ReplicaId(0));
    let cli = NodeId::Client(ClientId(9));
    book.register(srv, server.local_addr());
    book.register(cli, client.local_addr());

    let stop = Arc::new(AtomicBool::new(false));
    let stop_srv = Arc::clone(&stop);
    let echo = std::thread::spawn(move || {
        while !stop_srv.load(Ordering::Relaxed) {
            if let Ok(p) = server.recv_timeout(Duration::from_millis(1)) {
                let back = pkt(
                    srv,
                    p.src,
                    match p.body {
                        PacketBody::Protocol(n) => n,
                        _ => 0,
                    },
                );
                server.send(p.src, back);
            }
        }
    });

    let mut rtts = Vec::with_capacity(samples);
    let mut got: Vec<Pkt> = Vec::with_capacity(1);
    for n in 0..samples as u64 {
        let t0 = Instant::now();
        if batched {
            let mut one = vec![(srv, pkt(cli, srv, n))];
            client.send_batch(&mut one);
            // Mirror the UdpLink receive path: drain the nonblocking batch
            // verb first, then block in the scalar verb while idle (busy
            // polling recv_batch would just starve the server of cycles).
            let deadline = t0 + Duration::from_millis(200);
            loop {
                got.clear();
                if client.recv_batch(&mut got, 1) > 0
                    || client.recv_timeout(Duration::from_millis(5)).is_ok()
                    || Instant::now() > deadline
                {
                    break;
                }
            }
        } else {
            client.send(srv, pkt(cli, srv, n));
            let _ = client.recv_timeout(Duration::from_millis(200));
        }
        rtts.push(t0.elapsed().as_nanos() as f64 / 1e3);
    }
    stop.store(true, Ordering::Relaxed);
    echo.join().unwrap();
    rtts
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

struct LatRow {
    batched: bool,
    p50: f64,
    p99: f64,
    p999: f64,
}

fn mode_name(batched: bool) -> &'static str {
    if batched {
        "batched"
    } else {
        "scalar"
    }
}

fn write_json(pumps: &[PumpResult], lats: &[LatRow], window: Duration) {
    if std::env::var("HARMONIA_BENCH_JSON").as_deref() == Ok("0") {
        return;
    }
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"udp_dataplane\",\n");
    out.push_str("  \"schema_version\": 1,\n");
    out.push_str(
        "  \"description\": \"Loopback UDP data plane: sendmmsg/recvmmsg bursts with pooled \
         zero-copy receive vs one-syscall-per-datagram scalar verbs\",\n",
    );
    out.push_str(&format!(
        "  \"window_ms\": {},\n  \"mmsg_accelerated\": {},\n",
        window.as_millis(),
        mmsg::accelerated()
    ));
    // Kernel crossings per packet in the pump's send+drain loop: the scalar
    // verbs pay one send_to and one recv per packet; the batch verbs pay
    // one sendmmsg and one recvmmsg per 32-packet burst.
    out.push_str(&format!(
        "  \"syscalls_per_packet\": {{ \"scalar\": 2.0, \"batched\": {:.4} }},\n",
        2.0 / BURST as f64
    ));
    out.push_str("  \"pump_mrps\": [\n");
    for (i, r) in pumps.iter().enumerate() {
        let sep = if i + 1 == pumps.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{ \"pairs\": {}, \"mode\": \"{}\", \"mrps\": {:.4}, \"delivered\": {}, \
             \"pool_hit_rate\": {:.4} }}{sep}\n",
            r.pairs,
            mode_name(r.batched),
            r.mrps(),
            r.delivered,
            r.pool_hit_rate
        ));
    }
    out.push_str("  ],\n  \"speedup\": [\n");
    let counts: Vec<usize> = {
        let mut c: Vec<usize> = pumps.iter().map(|r| r.pairs).collect();
        c.dedup();
        c
    };
    for (i, pairs) in counts.iter().enumerate() {
        let scalar = pumps.iter().find(|r| r.pairs == *pairs && !r.batched);
        let batched = pumps.iter().find(|r| r.pairs == *pairs && r.batched);
        if let (Some(s), Some(b)) = (scalar, batched) {
            let sep = if i + 1 == counts.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{ \"pairs\": {}, \"batched_over_scalar\": {:.3} }}{sep}\n",
                pairs,
                b.mrps() / s.mrps()
            ));
        }
    }
    out.push_str("  ],\n  \"echo_rtt_us\": [\n");
    for (i, l) in lats.iter().enumerate() {
        let sep = if i + 1 == lats.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{ \"mode\": \"{}\", \"p50\": {:.1}, \"p99\": {:.1}, \"p999\": {:.1} }}{sep}\n",
            mode_name(l.batched),
            l.p50,
            l.p99,
            l.p999
        ));
    }
    out.push_str("  ]\n}\n");
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_udp_dataplane.json"
    );
    match std::fs::write(path, out) {
        Ok(()) => println!("# wrote {path}"),
        Err(e) => eprintln!("# could not write {path}: {e}"),
    }
}

fn main() {
    let window = live_measure_window();
    println!(
        "# udp_dataplane: window {}ms per cell, mmsg accelerated: {}",
        window.as_millis(),
        mmsg::accelerated()
    );

    let mut pumps = Vec::new();
    for pairs in [1usize, 2, 4] {
        for batched in [false, true] {
            pumps.push(pump(pairs, batched, window));
        }
    }
    let rows: Vec<Vec<String>> = pumps
        .iter()
        .map(|r| {
            vec![
                r.pairs.to_string(),
                mode_name(r.batched).to_string(),
                mrps(r.mrps()),
                r.delivered.to_string(),
                format!("{:.3}", r.pool_hit_rate),
            ]
        })
        .collect();
    print_table(
        "UDP pump: delivered throughput, scalar vs batched verbs",
        "batched at or above scalar at equal thread counts with 32x fewer \
         kernel crossings; the margin tracks the host's syscall-entry cost. \
         Pool hit rate ~1.0 once warm",
        &["pairs", "mode", "MRPS", "delivered", "pool_hit"],
        &rows,
    );

    let samples = (window.as_millis() as usize * 10).clamp(200, 10_000);
    let mut lats = Vec::new();
    for batched in [false, true] {
        let mut rtts = echo_rtt(batched, samples);
        rtts.sort_by(|a, b| a.total_cmp(b));
        lats.push(LatRow {
            batched,
            p50: percentile(&rtts, 0.50),
            p99: percentile(&rtts, 0.99),
            p999: percentile(&rtts, 0.999),
        });
    }
    let lat_rows: Vec<Vec<String>> = lats
        .iter()
        .map(|l| {
            vec![
                mode_name(l.batched).to_string(),
                us(l.p50),
                us(l.p99),
                us(l.p999),
            ]
        })
        .collect();
    print_table(
        "UDP echo RTT: single in-flight request/reply",
        "tens of µs on loopback; batched within noise of scalar (batching \
         must not tax the latency floor)",
        &["mode", "p50", "p99", "p99.9"],
        &lat_rows,
    );

    write_json(&pumps, &lats, window);
}
