//! UDP scale-out: closed-loop throughput over real loopback sockets vs. the
//! number of replica groups behind the spine.
//!
//! The datagram counterpart of `live_scaleout`: identical workload and
//! client threads, but every packet crosses a `UdpSocket` through the wire
//! codec and the kernel's UDP stack. Two things to read off the table: the
//! 1→4-group scaling (the per-group pipeline sockets and the sender-side
//! shard routing parallelize just like the channel driver), and the
//! per-packet cost gap vs. the channel numbers (syscalls + codec — the
//! price of a real network; `wire_codec` isolates the codec's share).
//!
//! Interpret ratios against `host_cores` exactly as for `live_scaleout`:
//! scaling needs cores ≥ threads; a starved host flattens toward 1×.
//!
//! `HARMONIA_LIVE_BENCH_MS` bounds the per-shape window (CI smoke-runs
//! with a small value).

use harmonia_bench::{live_measure_window, mrps, print_table, run_udp_closed_loop};
use harmonia_core::deployment::DeploymentSpec;
use harmonia_replication::ProtocolKind;

fn main() {
    let window = live_measure_window();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut rows = Vec::new();
    let mut base = None;
    for &groups in &[1usize, 2, 4] {
        let spec = DeploymentSpec::new()
            .protocol(ProtocolKind::Chain)
            .groups(groups)
            .replicas(3);
        let total = run_udp_closed_loop(&spec, 4 * groups, 0.05, 256, window);
        let base_v = *base.get_or_insert(total);
        rows.push(vec![
            groups.to_string(),
            (4 * groups).to_string(),
            mrps(total),
            format!("{:.2}x", total / base_v.max(1e-9)),
        ]);
    }
    print_table(
        &format!("UDP scale-out (closed loop, 5% writes, host_cores={cores})"),
        "scales with groups when cores >= threads, below the channel \
         driver's rate by the kernel's per-datagram cost",
        &["groups", "clients", "total_mrps", "vs_1_group"],
        &rows,
    );
}
