//! Wire-codec microbenchmarks: encode/decode round-trip cost per packet
//! variant.
//!
//! The UDP driver pays this codec on every datagram, so its per-packet cost
//! bounds the driver's attainable rate the same way the switch emulation's
//! nanoseconds bound the sim's. Requests/replies dominate the data plane;
//! the protocol variants (chain DOWN, NOPaxos SEQUENCED) dominate
//! replica↔replica traffic.

use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use harmonia_replication::messages::{ChainMsg, NopaxosMsg, ProtocolMsg, WriteOp};
use harmonia_types::wire::{decode_frame, encode_frame};
use harmonia_types::{
    ClientId, ClientReply, ClientRequest, ControlMsg, NodeId, ObjectId, Packet, PacketBody,
    ReplicaId, RequestId, SwitchId, SwitchSeq, WriteCompletion, WriteOutcome,
};

type Pkt = Packet<ProtocolMsg>;

fn op() -> WriteOp {
    WriteOp {
        seq: SwitchSeq::new(SwitchId(1), 42),
        obj: ObjectId::from_key(b"bench-key"),
        key: Bytes::from_static(b"bench-key"),
        value: Bytes::from(vec![0x5au8; 128]),
        client: ClientId(7),
        request: RequestId(99),
    }
}

fn variants() -> Vec<(&'static str, Pkt)> {
    let src = NodeId::Client(ClientId(7));
    let dst = NodeId::Switch(SwitchId(1));
    let mut write = ClientRequest::write(
        ClientId(7),
        RequestId(99),
        &b"bench-key"[..],
        vec![0x5au8; 128],
    );
    write.seq = Some(SwitchSeq::new(SwitchId(1), 42));
    let reply = ClientReply {
        client: ClientId(7),
        from: ReplicaId(2),
        request: RequestId(99),
        obj: ObjectId::from_key(b"bench-key"),
        value: None,
        write_outcome: Some(WriteOutcome::Committed),
        completion: Some(WriteCompletion {
            obj: ObjectId::from_key(b"bench-key"),
            seq: SwitchSeq::new(SwitchId(1), 42),
        }),
    };
    vec![
        (
            "request_read",
            Packet::new(
                src,
                dst,
                PacketBody::Request(ClientRequest::read(
                    ClientId(7),
                    RequestId(98),
                    &b"bench-key"[..],
                )),
            ),
        ),
        (
            "request_write_128B",
            Packet::new(src, dst, PacketBody::Request(write)),
        ),
        (
            "reply_with_completion",
            Packet::new(dst, src, PacketBody::Reply(reply)),
        ),
        (
            "completion",
            Packet::new(
                NodeId::Replica(ReplicaId(2)),
                dst,
                PacketBody::Completion(WriteCompletion {
                    obj: ObjectId::from_key(b"bench-key"),
                    seq: SwitchSeq::new(SwitchId(1), 42),
                }),
            ),
        ),
        (
            "protocol_chain_down",
            Packet::new(
                NodeId::Replica(ReplicaId(0)),
                NodeId::Replica(ReplicaId(1)),
                PacketBody::Protocol(ProtocolMsg::Chain(ChainMsg::Down(op()))),
            ),
        ),
        (
            "protocol_nopaxos_sequenced",
            Packet::new(
                dst,
                NodeId::Replica(ReplicaId(1)),
                PacketBody::Protocol(ProtocolMsg::Nopaxos(NopaxosMsg::Sequenced {
                    session: 1,
                    oum_seq: 42,
                    op: op(),
                })),
            ),
        ),
        (
            "control_set_replicas",
            Packet::new(
                NodeId::Controller,
                dst,
                PacketBody::Control(ControlMsg::SetReplicas(vec![
                    ReplicaId(0),
                    ReplicaId(1),
                    ReplicaId(2),
                ])),
            ),
        ),
    ]
}

fn bench_encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire_encode");
    for (name, pkt) in variants() {
        g.bench_function(name, |b| {
            b.iter(|| encode_frame(black_box(&pkt)).unwrap());
        });
    }
    g.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire_decode");
    for (name, pkt) in variants() {
        let frame = encode_frame(&pkt).unwrap();
        g.bench_function(name, |b| {
            b.iter(|| decode_frame::<Pkt>(black_box(&frame)).unwrap().unwrap());
        });
    }
    g.finish();
}

fn bench_roundtrip(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire_roundtrip");
    for (name, pkt) in variants() {
        g.bench_function(name, |b| {
            b.iter(|| {
                let frame = encode_frame(black_box(&pkt)).unwrap();
                decode_frame::<Pkt>(&frame).unwrap().unwrap()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_encode, bench_decode, bench_roundtrip);
criterion_main!(benches);
