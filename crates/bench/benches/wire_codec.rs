//! Wire-codec microbenchmarks: encode/decode cost per packet variant.
//!
//! The UDP driver pays this codec on every datagram, so its per-packet cost
//! bounds the driver's attainable rate the same way the switch emulation's
//! nanoseconds bound the sim's. Requests/replies dominate the data plane;
//! the protocol variants (chain DOWN, NOPaxos SEQUENCED) dominate
//! replica↔replica traffic. `decode_shared` is the zero-copy receive path
//! (payloads alias the frame buffer); `decode` is the copying baseline —
//! the gap between the two columns is what pooled receive saves per packet.
//! `encode_into` is the zero-copy send path (append into a reused
//! `BytesMut`, as the coalescer does); its gap against `encode` is the
//! per-frame allocation the send pool saves.
//!
//! Timed by hand (median of sampled batches) rather than through criterion,
//! so the per-case ns/op can be emitted as `BENCH_wire_codec.json` — the
//! committed perf-trajectory snapshot ROADMAP item 3 calls for. Knobs:
//! `HARMONIA_LIVE_BENCH_MS` scales the sampling effort down for CI smoke
//! runs; `HARMONIA_BENCH_JSON=0` suppresses the snapshot.

// Wall-clock reads are deliberate here: benchmark: measures real elapsed time.
#![allow(clippy::disallowed_methods)]

use std::hint::black_box;
use std::time::Instant;

use bytes::{Bytes, BytesMut};
use harmonia_bench::{print_table, Snapshot};
use harmonia_replication::messages::{ChainMsg, NopaxosMsg, ProtocolMsg, WriteOp};
use harmonia_types::wire::{decode_frame, decode_frame_shared, encode_frame, encode_frame_into};
use harmonia_types::{
    ClientId, ClientReply, ClientRequest, ControlMsg, NodeId, ObjectId, Packet, PacketBody,
    ReplicaId, RequestId, SwitchId, SwitchSeq, WriteCompletion, WriteOutcome,
};

type Pkt = Packet<ProtocolMsg>;

fn op() -> WriteOp {
    WriteOp {
        seq: SwitchSeq::new(SwitchId(1), 42),
        obj: ObjectId::from_key(b"bench-key"),
        key: Bytes::from_static(b"bench-key"),
        value: Bytes::from(vec![0x5au8; 128]),
        client: ClientId(7),
        request: RequestId(99),
    }
}

fn variants() -> Vec<(&'static str, Pkt)> {
    let src = NodeId::Client(ClientId(7));
    let dst = NodeId::Switch(SwitchId(1));
    let mut write = ClientRequest::write(
        ClientId(7),
        RequestId(99),
        &b"bench-key"[..],
        vec![0x5au8; 128],
    );
    write.seq = Some(SwitchSeq::new(SwitchId(1), 42));
    let reply = ClientReply {
        client: ClientId(7),
        from: ReplicaId(2),
        request: RequestId(99),
        obj: ObjectId::from_key(b"bench-key"),
        value: None,
        write_outcome: Some(WriteOutcome::Committed),
        completion: Some(WriteCompletion {
            obj: ObjectId::from_key(b"bench-key"),
            seq: SwitchSeq::new(SwitchId(1), 42),
        }),
    };
    vec![
        (
            "request_read",
            Packet::new(
                src,
                dst,
                PacketBody::Request(ClientRequest::read(
                    ClientId(7),
                    RequestId(98),
                    &b"bench-key"[..],
                )),
            ),
        ),
        (
            "request_write_128B",
            Packet::new(src, dst, PacketBody::Request(write)),
        ),
        (
            "reply_with_completion",
            Packet::new(dst, src, PacketBody::Reply(reply)),
        ),
        (
            "completion",
            Packet::new(
                NodeId::Replica(ReplicaId(2)),
                dst,
                PacketBody::Completion(WriteCompletion {
                    obj: ObjectId::from_key(b"bench-key"),
                    seq: SwitchSeq::new(SwitchId(1), 42),
                }),
            ),
        ),
        (
            "protocol_chain_down",
            Packet::new(
                NodeId::Replica(ReplicaId(0)),
                NodeId::Replica(ReplicaId(1)),
                PacketBody::Protocol(ProtocolMsg::Chain(ChainMsg::Down(op()))),
            ),
        ),
        (
            "protocol_nopaxos_sequenced",
            Packet::new(
                dst,
                NodeId::Replica(ReplicaId(1)),
                PacketBody::Protocol(ProtocolMsg::Nopaxos(NopaxosMsg::Sequenced {
                    session: 1,
                    oum_seq: 42,
                    op: op(),
                })),
            ),
        ),
        (
            "control_set_replicas",
            Packet::new(
                NodeId::Controller,
                dst,
                PacketBody::Control(ControlMsg::SetReplicas(vec![
                    ReplicaId(0),
                    ReplicaId(1),
                    ReplicaId(2),
                ])),
            ),
        ),
    ]
}

/// Median batch time over `SAMPLES` batches of `BATCH` calls, in ns/op.
/// Median (not mean) so a stray scheduler preemption cannot skew a row.
fn time_ns_per_op(mut f: impl FnMut()) -> f64 {
    // Scale effort with the CI smoke knob: the default 400 "ms" window maps
    // to 40 samples of 2000 ops.
    let effort = harmonia_bench::live_measure_window().as_millis() as usize;
    let samples = (effort / 10).clamp(5, 100);
    let batch = 2000usize;
    // Warm-up: touch the allocator and branch predictors off the clock.
    for _ in 0..batch {
        f();
    }
    let mut per_batch: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..batch {
                f();
            }
            t0.elapsed().as_nanos() as f64
        })
        .collect();
    per_batch.sort_by(|a, b| a.total_cmp(b));
    per_batch[per_batch.len() / 2] / batch as f64
}

struct Row {
    case: &'static str,
    frame_bytes: usize,
    encode_ns: f64,
    encode_into_ns: f64,
    decode_ns: f64,
    decode_shared_ns: f64,
    roundtrip_ns: f64,
}

fn measure(case: &'static str, pkt: &Pkt) -> Row {
    let frame = encode_frame(pkt).unwrap();
    let encode_ns = time_ns_per_op(|| {
        black_box(encode_frame(black_box(pkt)).unwrap());
    });
    let mut scratch = BytesMut::with_capacity(frame.len() * 2);
    let encode_into_ns = time_ns_per_op(|| {
        scratch.clear();
        black_box(encode_frame_into(black_box(pkt), &mut scratch).unwrap());
    });
    let decode_ns = time_ns_per_op(|| {
        black_box(decode_frame::<Pkt>(black_box(&frame)).unwrap().unwrap());
    });
    let decode_shared_ns = time_ns_per_op(|| {
        black_box(
            decode_frame_shared::<Pkt>(black_box(&frame))
                .unwrap()
                .unwrap(),
        );
    });
    let roundtrip_ns = time_ns_per_op(|| {
        let f = encode_frame(black_box(pkt)).unwrap();
        black_box(decode_frame_shared::<Pkt>(&f).unwrap().unwrap());
    });
    Row {
        case,
        frame_bytes: frame.len(),
        encode_ns,
        encode_into_ns,
        decode_ns,
        decode_shared_ns,
        roundtrip_ns,
    }
}

fn write_json(rows: &[Row]) {
    // Schema 3: rows unchanged from 2, the shared-writer preamble added the
    // uniform host `{ os, arch }` field.
    let mut snap = Snapshot::new(
        "wire_codec",
        3,
        "Per-variant codec cost; decode_shared is the zero-copy \
         (Bytes-aliasing) receive path, decode the copying baseline; encode_into appends \
         into a reused buffer (the coalescer's zero-copy send path), encode allocates",
    );
    snap.text("unit", "ns_per_op");
    let rendered: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{ \"case\": \"{}\", \"frame_bytes\": {}, \"encode_ns\": {:.1}, \
                 \"encode_into_ns\": {:.1}, \"decode_ns\": {:.1}, \"decode_shared_ns\": {:.1}, \
                 \"roundtrip_ns\": {:.1} }}",
                r.case,
                r.frame_bytes,
                r.encode_ns,
                r.encode_into_ns,
                r.decode_ns,
                r.decode_shared_ns,
                r.roundtrip_ns
            )
        })
        .collect();
    snap.rows("rows", &rendered);
    snap.write();
}

fn main() {
    let rows: Vec<Row> = variants()
        .iter()
        .map(|(name, pkt)| measure(name, pkt))
        .collect();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.case.to_string(),
                r.frame_bytes.to_string(),
                format!("{:.1}", r.encode_ns),
                format!("{:.1}", r.encode_into_ns),
                format!("{:.1}", r.decode_ns),
                format!("{:.1}", r.decode_shared_ns),
                format!("{:.1}", r.roundtrip_ns),
            ]
        })
        .collect();
    print_table(
        "Wire codec: ns/op per packet variant",
        "tens of ns for small frames, growing with payload size; \
         decode_shared at or below decode (no payload memcpy, no body alloc); \
         enc_into at or below enc (reused buffer, no per-frame alloc)",
        &[
            "case",
            "bytes",
            "enc_ns",
            "enc_into_ns",
            "dec_ns",
            "dec_shared_ns",
            "rt_ns",
        ],
        &table,
    );
    // Sanity, not perf assertions: every path decodes what it encoded.
    for (name, pkt) in variants() {
        let frame = encode_frame(&pkt).unwrap();
        let mut buf = BytesMut::new();
        encode_frame_into(&pkt, &mut buf).unwrap();
        assert_eq!(&buf[..], &frame[..], "encode_into mismatch in {name}");
        let (a, _) = decode_frame::<Pkt>(&frame).unwrap().unwrap();
        let (b, _) = decode_frame_shared::<Pkt>(&frame).unwrap().unwrap();
        assert!(a == pkt && b == pkt, "codec mismatch in {name}");
    }
    write_json(&rows);
}
