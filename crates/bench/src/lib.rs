//! Shared harness for the figure-reproduction benchmarks.
//!
//! Every figure benchmark follows the same pattern as the paper's
//! methodology (§9.1): build a deployment from its [`DeploymentSpec`],
//! attach independent open-loop read and write generators (the
//! DPDK-generator substitute), warm up, measure a window, and report
//! completed-operation rates and latency statistics. Saturated points use a
//! timeout longer than the run so the reported throughput is the sustained
//! completion rate (the servers are work-conserving single-server queues).
//!
//! One runner covers every deployment shape: a spec with `groups(1)` is the
//! rack-scale Figure 5–9 setup, `groups(n)` the §6.3 sharded scale-out of
//! Figure 7d — the measurement protocol cannot diverge between them.
//!
//! Figure 8 additionally needs a *closed-loop* client fleet, because its
//! effect — switch-dropped writes throttling the workload — only shows up
//! when dropped writes stall their issuer.

// Wall-clock reads are deliberate here: benchmark harness: measures real elapsed time.
#![allow(clippy::disallowed_methods)]
#![forbid(unsafe_code)]

pub mod snapshot;

pub use snapshot::{snapshots_enabled, Snapshot};

use bytes::Bytes;
use harmonia_core::client::{metrics, ClosedLoopClient, OpSpec, SourceFn};
use harmonia_core::deployment::{DeploymentSpec, SimCluster};
use harmonia_core::switch_actor::SwitchActor;
use harmonia_switch::SwitchStats;
use harmonia_types::{ClientId, Duration, Instant, NodeId};
use harmonia_workload::KeySpace;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Key distribution selector.
#[derive(Clone, Debug)]
pub enum Keys {
    /// Uniform over `n` keys (the paper's default: 1M; benches scale down
    /// to keep table construction fast, which does not change any shape).
    Uniform(usize),
    /// Zipf(θ) over `n` keys.
    Zipf(usize, f64),
}

impl Keys {
    fn build(&self) -> KeySpace {
        match *self {
            Keys::Uniform(n) => KeySpace::uniform(n),
            Keys::Zipf(n, theta) => KeySpace::zipf(n, theta),
        }
    }
}

/// One open-loop measurement.
#[derive(Clone, Debug)]
pub struct RunSpec {
    /// Deployment under test (any shape — `groups(n)` is Figure 7d).
    pub cluster: DeploymentSpec,
    /// Offered read load (requests/second).
    pub read_rate: f64,
    /// Offered write load (requests/second).
    pub write_rate: f64,
    /// Key population.
    pub keys: Keys,
    /// Warmup (discarded).
    pub warmup: Duration,
    /// Measurement window.
    pub measure: Duration,
}

impl RunSpec {
    /// A spec with the paper's defaults and the given rates.
    pub fn new(cluster: DeploymentSpec, read_rate: f64, write_rate: f64) -> Self {
        RunSpec {
            cluster,
            read_rate,
            write_rate,
            keys: Keys::Uniform(100_000),
            warmup: Duration::from_millis(10),
            measure: measure_window(),
        }
    }
}

/// Measured outcome of one run.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunResult {
    /// Completed reads, MRPS.
    pub reads_mrps: f64,
    /// Completed writes, MRPS.
    pub writes_mrps: f64,
    /// Mean read latency, µs.
    pub read_mean_us: f64,
    /// 99th-percentile read latency, µs.
    pub read_p99_us: f64,
    /// Mean write latency, µs.
    pub write_mean_us: f64,
    /// Writes rejected (out-of-order) during the window.
    pub writes_rejected: u64,
    /// Switch data-plane counters at the end of the run.
    pub switch: SwitchStats,
    /// Dirty-set occupancy at the end of the run.
    pub dirty_len: usize,
    /// Dirty-set SRAM consumed on the switch, across every hosted group
    /// (the §6.3 budget check).
    pub switch_memory_bytes: usize,
    /// Replica groups hosted by the switch (1 for rack-scale runs).
    pub groups: usize,
}

impl RunResult {
    /// Total completed throughput, MRPS.
    pub fn total_mrps(&self) -> f64 {
        self.reads_mrps + self.writes_mrps
    }
}

/// Measurement window length (override with `HARMONIA_BENCH_MS`).
pub fn measure_window() -> Duration {
    let ms = std::env::var("HARMONIA_BENCH_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(30);
    Duration::from_millis(ms)
}

fn reader_source(keys: KeySpace) -> SourceFn {
    Box::new(move |rng: &mut SmallRng| OpSpec::read(keys.sample(rng)))
}

fn writer_source(keys: KeySpace, value_len: usize) -> SourceFn {
    let value = Bytes::from(vec![0x5au8; value_len]);
    Box::new(move |rng: &mut SmallRng| OpSpec::write(keys.sample(rng), value.clone()))
}

/// Execute one open-loop measurement — any deployment shape.
pub fn run_open_loop(spec: &RunSpec) -> RunResult {
    let mut sim = spec.cluster.build_sim();
    let keys = spec.keys.build();
    // Bring-up: each group's fast path arms only after the first
    // WRITE-COMPLETION with the switch's id *in that group* (§5.3), so
    // prime every group with one write — as would any real deployment.
    // Keys are probed until every group is covered (the shard map is a pure
    // hash, so a handful suffice; with one group the first key does it).
    if spec.cluster.harmonia {
        let plan = spec
            .cluster
            .group_covering_keys()
            .into_iter()
            .map(|key| OpSpec::write(key, Bytes::from_static(b"1")))
            .collect();
        sim.add_closed_loop_client(ClientId(99), plan, Duration::from_millis(5));
    }
    // Timeout past the end of the run: never cull, always count.
    let timeout = spec.warmup + spec.measure + Duration::from_secs(1);
    if spec.read_rate > 0.0 {
        sim.add_open_loop_client(
            ClientId(1),
            spec.read_rate,
            timeout,
            reader_source(keys.clone()),
        );
    }
    if spec.write_rate > 0.0 {
        sim.add_open_loop_client(
            ClientId(2),
            spec.write_rate,
            timeout,
            writer_source(keys, 128),
        );
    }
    measure_open_loop(sim, spec.warmup, spec.measure)
}

/// Shared open-loop measurement tail: warm up, reset, measure, and fold the
/// world's metrics plus the switch's data-plane state into a [`RunResult`].
fn measure_open_loop(mut sim: SimCluster, warmup: Duration, measure: Duration) -> RunResult {
    sim.run_until(Instant::ZERO + warmup);
    sim.world_mut().metrics_mut().reset();
    sim.run_until(Instant::ZERO + warmup + measure);

    let secs = measure.as_secs_f64();
    let m = sim.world().metrics();
    let hist_us = |name: &'static str, p: f64| {
        m.histogram(name)
            .map(|h| {
                if p < 0.0 {
                    h.mean().as_micros_f64()
                } else {
                    h.percentile(p).as_micros_f64()
                }
            })
            .unwrap_or(0.0)
    };
    let mut result = RunResult {
        reads_mrps: m.counter(metrics::READ_DONE) as f64 / secs / 1e6,
        writes_mrps: m.counter(metrics::WRITE_DONE) as f64 / secs / 1e6,
        read_mean_us: hist_us(metrics::READ_LATENCY, -1.0),
        read_p99_us: hist_us(metrics::READ_LATENCY, 0.99),
        write_mean_us: hist_us(metrics::WRITE_LATENCY, -1.0),
        writes_rejected: m.counter(metrics::WRITE_REJECTED),
        ..RunResult::default()
    };
    if let Some(sw) = sim.switch_actor() {
        result.switch = sw.stats();
        result.dirty_len = sw.detector().dirty_len();
        result.switch_memory_bytes = sw.memory_bytes();
        result.groups = sw.group_count();
    }
    result
}

/// The paper's Figure 6a/9 methodology: "the client fixes its rate of
/// generating write requests, and measures the maximum read throughput that
/// can be handled by the replicas". Binary-search the offered read rate for
/// the largest value at which the system still sustains ≥ 95 % of the fixed
/// write rate, then measure that operating point with the full window.
pub fn max_read_at_fixed_write(
    cluster: &DeploymentSpec,
    write_rate: f64,
    keys: &Keys,
) -> RunResult {
    let probe = |read_rate: f64, measure: Duration| -> RunResult {
        let mut spec = RunSpec::new(cluster.clone(), read_rate, write_rate);
        spec.keys = keys.clone();
        spec.warmup = Duration::from_millis(8);
        spec.measure = measure;
        run_open_loop(&spec)
    };
    let short = Duration::from_millis(12);
    let writes_ok = |r: &RunResult| write_rate == 0.0 || r.writes_mrps * 1e6 >= 0.95 * write_rate;
    // Establish bounds: if even read-free operation cannot sustain the write
    // rate, the operating point is "no reads".
    if !writes_ok(&probe(0.0, short)) {
        return probe(0.0, measure_window());
    }
    let (mut lo, mut hi) = (0.0f64, 12.0e6f64);
    for _ in 0..7 {
        let mid = 0.5 * (lo + hi);
        if writes_ok(&probe(mid, short)) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    probe(lo, measure_window())
}

/// Execute a closed-loop measurement: `clients` logical connections issuing
/// back-to-back operations (reads + `write_ratio` writes); a write dropped
/// by the switch stalls its connection for the retry timeout, which is the
/// Figure 8 mechanism. Returns completed MRPS within the window.
pub fn run_closed_loop(
    cluster: &DeploymentSpec,
    clients: usize,
    write_ratio: f64,
    keys: &Keys,
    warmup: Duration,
    measure: Duration,
    op_timeout: Duration,
) -> f64 {
    let mut sim = cluster.build_sim();
    let keyspace = keys.build();
    let value = Bytes::from(vec![0x5au8; 128]);
    // Enough planned ops that no client finishes early: triple the fleet's
    // fair share of an optimistic 4 MRPS aggregate.
    let horizon = warmup + measure;
    let ops_per_client =
        ((horizon.as_secs_f64() * 4.0e6 / clients as f64) * 3.0).max(64.0) as usize;
    for c in 0..clients {
        let mut rng = SmallRng::seed_from_u64(0xF168 + c as u64);
        let plan: Vec<OpSpec> = (0..ops_per_client)
            .map(|_| {
                let key = keyspace.sample(&mut rng);
                if rng.gen_bool(write_ratio) {
                    OpSpec::write(key, value.clone())
                } else {
                    OpSpec::read(key)
                }
            })
            .collect();
        sim.add_closed_loop_client(ClientId(100 + c as u32), plan, op_timeout);
    }
    sim.run_until(Instant::ZERO + horizon);

    // Count ops completed inside the measurement window.
    let mut done = 0u64;
    for c in 0..clients {
        let node = NodeId::Client(ClientId(100 + c as u32));
        if let Some(cl) = sim.world().actor::<ClosedLoopClient>(node) {
            done += cl
                .records
                .iter()
                .filter(|r| r.ok && r.completed >= Instant::ZERO + warmup)
                .count() as u64;
        }
    }
    done as f64 / measure.as_secs_f64() / 1e6
}

/// Execute a **live** (threaded) closed-loop measurement: spawn the
/// deployment on OS threads, drive `clients` concurrent client threads
/// issuing back-to-back operations (`write_ratio` writes) for `duration`,
/// and return the completed rate in MRPS.
///
/// This is the measurement the sim cannot make: real threads through the
/// parallel data plane — per-group switch pipelines behind the stateless
/// shard-routing spine, no lock on the packet path. Keys and values are
/// precomputed `Bytes`, so the per-op hot loop allocates nothing; each
/// client owns a disjoint key slice spread across every group by the shard
/// hash.
///
/// Scaling caveat: the fleet can only run as parallel as the host. A
/// `groups(8)` deployment has 8 pipeline threads + 24 replica threads;
/// near-linear group scaling needs roughly that many cores. On fewer cores
/// the shapes converge to the single-core packet-processing rate.
pub fn run_live_closed_loop(
    cluster: &DeploymentSpec,
    clients: usize,
    write_ratio: f64,
    keys_per_client: usize,
    duration: std::time::Duration,
) -> f64 {
    let live = cluster.spawn_live();
    let total = drive_closed_loop(
        cluster,
        || live.client(),
        clients,
        write_ratio,
        keys_per_client,
        duration,
    );
    live.shutdown();
    total
}

/// [`run_live_closed_loop`] over the UDP driver: identical workload and
/// client threads, but every packet crosses a loopback `UdpSocket` through
/// the wire codec — the `udp_scaleout` bench sweeps this against the
/// channel driver's numbers (the gap is the kernel's per-datagram cost).
pub fn run_udp_closed_loop(
    cluster: &DeploymentSpec,
    clients: usize,
    write_ratio: f64,
    keys_per_client: usize,
    duration: std::time::Duration,
) -> f64 {
    let udp = cluster.spawn_udp();
    let total = drive_closed_loop(
        cluster,
        || udp.client(),
        clients,
        write_ratio,
        keys_per_client,
        duration,
    );
    udp.shutdown();
    total
}

/// The shared measurement: bootstrap every group's fast path, then hammer
/// the deployment from `clients` threads until the deadline. The client
/// factory is the only driver-specific piece (both threaded drivers hand
/// out the same transport-generic `LiveClient`).
fn drive_closed_loop(
    cluster: &DeploymentSpec,
    make_client: impl Fn() -> harmonia_core::live::LiveClient,
    clients: usize,
    write_ratio: f64,
    keys_per_client: usize,
    duration: std::time::Duration,
) -> f64 {
    use harmonia_core::deployment::KvClient as _;

    // Arm every group's fast path with one committed write (§5.3 rule),
    // exactly as `run_open_loop` does for the sim.
    if cluster.harmonia {
        let mut warm = make_client();
        for key in cluster.group_covering_keys() {
            warm.set(key, "1").expect("bootstrap write");
        }
    }
    let deadline = std::time::Instant::now() + duration;
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let mut client = make_client();
            let keys: Vec<Bytes> = (0..keys_per_client)
                .map(|k| Bytes::from(format!("c{c}-key-{k}")))
                .collect();
            let value = Bytes::from(vec![0x5au8; 128]);
            std::thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(0x11fe + c as u64);
                let mut done = 0u64;
                let mut i = 0usize;
                while std::time::Instant::now() < deadline {
                    let key = keys[i % keys.len()].clone();
                    let ok = if rng.gen_bool(write_ratio) {
                        client.set_bytes(key, value.clone()).is_ok()
                    } else {
                        client.get_bytes(key).is_ok()
                    };
                    if ok {
                        done += 1;
                    }
                    i += 1;
                }
                done
            })
        })
        .collect();
    let done: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
    done as f64 / duration.as_secs_f64() / 1e6
}

/// Live-measurement window length in milliseconds (override with
/// `HARMONIA_LIVE_BENCH_MS`; CI smoke-runs with a small value).
pub fn live_measure_window() -> std::time::Duration {
    let ms = std::env::var("HARMONIA_LIVE_BENCH_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(400);
    std::time::Duration::from_millis(ms)
}

/// Print a TSV table with a title and the paper's expected shape.
pub fn print_table(title: &str, expectation: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    println!("# paper expectation: {expectation}");
    println!("{}", headers.join("\t"));
    for row in rows {
        println!("{}", row.join("\t"));
    }
}

/// Format MRPS with 3 decimals.
pub fn mrps(v: f64) -> String {
    format!("{v:.3}")
}

/// Format µs with 1 decimal.
pub fn us(v: f64) -> String {
    format!("{v:.1}")
}

/// Access a sim's switch actor (post-run inspection).
pub fn switch_of(sim: &SimCluster) -> Option<&SwitchActor> {
    sim.switch_actor()
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_replication::ProtocolKind;

    fn quick(cluster: DeploymentSpec, read: f64, write: f64) -> RunResult {
        let mut spec = RunSpec::new(cluster, read, write);
        spec.warmup = Duration::from_millis(5);
        spec.measure = Duration::from_millis(10);
        spec.keys = Keys::Uniform(10_000);
        run_open_loop(&spec)
    }

    #[test]
    fn open_loop_reports_plausible_numbers() {
        let r = quick(DeploymentSpec::new(), 200_000.0, 10_000.0);
        assert!((0.15..0.25).contains(&r.reads_mrps), "{:?}", r.reads_mrps);
        assert!((0.005..0.015).contains(&r.writes_mrps));
        assert!(r.read_mean_us > 10.0 && r.read_mean_us < 1000.0);
        assert!(r.switch.reads_fast_path > 0);
    }

    #[test]
    fn saturation_measurement_matches_capacity() {
        // Baseline chain read-only at overload: the tail's 0.92 MQPS.
        let r = quick(DeploymentSpec::new().baseline(), 2_000_000.0, 0.0);
        assert!(
            (0.85..0.98).contains(&r.reads_mrps),
            "tail capacity: {}",
            r.reads_mrps
        );
    }

    #[test]
    fn sharded_open_loop_reports_memory_and_scales() {
        let run = |groups: usize| {
            let mut spec = RunSpec::new(
                DeploymentSpec::new().groups(groups),
                200_000.0 * groups as f64,
                10_000.0 * groups as f64,
            );
            spec.keys = Keys::Uniform(10_000);
            spec.warmup = Duration::from_millis(5);
            spec.measure = Duration::from_millis(10);
            run_open_loop(&spec)
        };
        let one = run(1);
        let four = run(4);
        assert_eq!(one.groups, 1);
        assert_eq!(four.groups, 4);
        assert_eq!(four.switch_memory_bytes, 4 * one.switch_memory_bytes);
        assert!(one.switch_memory_bytes > 0);
        // 4 groups absorb 4x the offered load (each group is its own
        // 3-replica chain; the spine switch is pure delay).
        assert!(four.total_mrps() > 3.0 * one.total_mrps() * 0.8);
        assert!(four.switch.reads_fast_path > 0);
    }

    #[test]
    fn closed_loop_throughput_is_positive_and_bounded() {
        let cluster = DeploymentSpec::new().protocol(ProtocolKind::Chain);
        let tput = run_closed_loop(
            &cluster,
            16,
            0.05,
            &Keys::Uniform(1_000),
            Duration::from_millis(5),
            Duration::from_millis(10),
            Duration::from_millis(5),
        );
        assert!(tput > 0.1, "tput={tput}");
        assert!(tput < 5.0);
    }
}
