//! Shared writer for the committed `BENCH_*.json` perf snapshots.
//!
//! The perf-snapshot benches (`udp_dataplane`, `wire_codec`,
//! `fig_recovery`) each emit a JSON file at the repo root that is committed
//! and diffed by CI. They used to hand-roll the serialization
//! independently; this module is the one implementation, so every snapshot
//! carries the same preamble — bench name, `schema_version`, description,
//! and the host `{ os, arch }` the numbers were taken on — and the same
//! suppression knob (`HARMONIA_BENCH_JSON=0`).
//!
//! The output stays deliberately grep-able: CI checks pin exact fragments
//! like `"schema_version": N` and `"mode": "coalesced"`, so fields are
//! emitted one per line with a single space after the colon, never
//! reflowed.

use std::fmt::Display;
use std::fmt::Write as _;

/// Whether snapshot emission is enabled. `HARMONIA_BENCH_JSON=0` turns the
/// writers into no-ops (CI smoke steps that must not dirty the tree).
pub fn snapshots_enabled() -> bool {
    std::env::var("HARMONIA_BENCH_JSON").as_deref() != Ok("0")
}

/// One `BENCH_<name>.json` snapshot under construction.
///
/// Fields append in call order after the uniform preamble; [`write`]
/// (Snapshot::write) seals the object and lands it at the repo root
/// regardless of the invoking directory.
pub struct Snapshot {
    bench: &'static str,
    /// Each entry is one rendered `  "key": value` fragment (arrays span
    /// multiple lines); the writer joins them with `,\n`.
    entries: Vec<String>,
}

impl Snapshot {
    /// Start a snapshot with the uniform preamble: `bench`,
    /// `schema_version` (bump whenever a field is added, renamed, or
    /// changes meaning — CI pins that it never moves backwards), the
    /// one-line `description`, and the host os/arch.
    pub fn new(bench: &'static str, schema_version: u32, description: &str) -> Self {
        let mut snap = Snapshot {
            bench,
            entries: Vec::new(),
        };
        snap.text("bench", bench);
        snap.raw("schema_version", schema_version);
        snap.text("description", description);
        snap.raw(
            "host",
            format!(
                "{{ \"os\": \"{}\", \"arch\": \"{}\" }}",
                std::env::consts::OS,
                std::env::consts::ARCH
            ),
        );
        snap
    }

    /// Append a field whose value is already valid JSON (numbers, booleans,
    /// inline objects).
    pub fn raw(&mut self, key: &str, value: impl Display) {
        self.entries.push(format!("  \"{key}\": {value}"));
    }

    /// Append a string field (quoted; the value must not need escaping —
    /// these snapshots carry identifiers and prose, not arbitrary data).
    pub fn text(&mut self, key: &str, value: &str) {
        self.entries.push(format!("  \"{key}\": \"{value}\""));
    }

    /// Append an array field: each element of `rows` is one already-valid
    /// JSON fragment (typically an inline object per measured row).
    pub fn rows<S: AsRef<str>>(&mut self, key: &str, rows: &[S]) {
        let mut out = format!("  \"{key}\": [\n");
        for (i, row) in rows.iter().enumerate() {
            let sep = if i + 1 == rows.len() { "" } else { "," };
            let _ = writeln!(out, "    {}{sep}", row.as_ref());
        }
        out.push_str("  ]");
        self.entries.push(out);
    }

    /// Seal the object and write `BENCH_<bench>.json` at the repo root.
    /// No-op (silently) when [`snapshots_enabled`] is false; a write error
    /// is reported but never panics — losing a perf snapshot must not fail
    /// the bench run itself.
    pub fn write(self) {
        if !snapshots_enabled() {
            return;
        }
        let mut out = String::from("{\n");
        out.push_str(&self.entries.join(",\n"));
        out.push_str("\n}\n");
        // Repo root, regardless of the invoking directory: this crate lives
        // at `crates/bench`, two levels down.
        let path = format!(
            "{}/../../BENCH_{}.json",
            env!("CARGO_MANIFEST_DIR"),
            self.bench
        );
        match std::fs::write(&path, out) {
            Ok(()) => println!("# wrote {path}"),
            Err(e) => eprintln!("# could not write {path}: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn render(snap: Snapshot) -> String {
        let mut out = String::from("{\n");
        out.push_str(&snap.entries.join(",\n"));
        out.push_str("\n}\n");
        out
    }

    #[test]
    fn preamble_is_uniform_and_greppable() {
        let snap = Snapshot::new("example", 3, "what this measures");
        let text = render(snap);
        // The exact fragments CI greps for: single space after the colon,
        // one field per line.
        assert!(text.contains("\"bench\": \"example\""), "{text}");
        assert!(text.contains("\"schema_version\": 3"), "{text}");
        assert!(text.contains("\"description\": \"what this measures\""));
        assert!(text.contains(&format!("\"os\": \"{}\"", std::env::consts::OS)));
        assert!(text.contains(&format!("\"arch\": \"{}\"", std::env::consts::ARCH)));
    }

    #[test]
    fn rows_and_commas_form_valid_json_shape() {
        let mut snap = Snapshot::new("example", 1, "d");
        snap.raw("window_ms", 50);
        snap.rows(
            "rows",
            &["{ \"a\": 1 }".to_string(), "{ \"a\": 2 }".to_string()],
        );
        let text = render(snap);
        // No trailing comma before a closing bracket/brace.
        assert!(!text.contains(",\n  ]"), "{text}");
        assert!(!text.contains(",\n}}"), "{text}");
        assert!(
            text.contains("{ \"a\": 1 },\n    { \"a\": 2 }\n  ]"),
            "{text}"
        );
        // Balanced braces/brackets (cheap structural sanity).
        let opens = text.matches(['{', '[']).count();
        let closes = text.matches(['}', ']']).count();
        assert_eq!(opens, closes, "{text}");
    }
}
