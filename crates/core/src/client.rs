//! Client library: an open-loop load generator (the paper's DPDK generator
//! substitute) and a closed-loop client for correctness tests.
//!
//! Both clients speak the Harmonia packet format and address the switch;
//! they never know which replica serves them — that is the whole point of
//! the architecture (§4).

use std::collections::{HashMap, VecDeque};

use bytes::Bytes;
use harmonia_obs::{Counter, Recorder, Series, TraceStage};
use harmonia_sim::{Actor, Context, TimerToken};
use harmonia_types::{
    ClientId, ClientRequest, Duration, Instant, NodeId, ObjectId, OpKind, PacketBody, ReplicaId,
    RequestId, TraceId, WriteOutcome,
};
use rand::rngs::SmallRng;

use crate::msg::Msg;

/// One operation to issue.
#[derive(Clone, Debug)]
pub struct OpSpec {
    /// Read or write.
    pub kind: OpKind,
    /// Application key.
    pub key: Bytes,
    /// Value for writes.
    pub value: Option<Bytes>,
}

impl OpSpec {
    /// A read of `key`.
    pub fn read(key: impl Into<Bytes>) -> Self {
        OpSpec {
            kind: OpKind::Read,
            key: key.into(),
            value: None,
        }
    }

    /// A write of `key := value`.
    pub fn write(key: impl Into<Bytes>, value: impl Into<Bytes>) -> Self {
        OpSpec {
            kind: OpKind::Write,
            key: key.into(),
            value: Some(value.into()),
        }
    }
}

/// Pull-based request source for the open-loop generator.
pub type SourceFn = Box<dyn FnMut(&mut SmallRng) -> OpSpec + Send>;

/// Open-loop generator configuration.
pub struct OpenLoopConfig {
    /// Where to send requests (the switch).
    pub switch: NodeId,
    /// Offered load in requests per second.
    pub rate_rps: f64,
    /// Replies needed to count a write complete (1 for most protocols;
    /// a majority for NOPaxos, whose replicas acknowledge the client
    /// directly).
    pub write_replies: usize,
    /// Forget a request after this long (counts as `client.timeout.*`).
    pub timeout: Duration,
}

impl OpenLoopConfig {
    /// Default rates and timeout, targeting `switch`. There is deliberately
    /// no `Default` impl: the switch address is deployment state, and a
    /// hardcoded default once masked specs whose address never reached the
    /// generator.
    pub fn new(switch: NodeId) -> Self {
        OpenLoopConfig {
            switch,
            rate_rps: 10_000.0,
            write_replies: 1,
            timeout: Duration::from_millis(20),
        }
    }

    /// The configuration a generator attached to `spec` needs: the spec's
    /// switch address and per-protocol write-reply count.
    pub fn for_deployment(spec: &crate::deployment::DeploymentSpec) -> Self {
        OpenLoopConfig {
            write_replies: spec.write_replies(),
            ..OpenLoopConfig::new(spec.switch_addr())
        }
    }
}

struct PendingReq {
    sent: Instant,
    kind: OpKind,
    obj: ObjectId,
    /// Distinct replicas that have replied (multi-reply protocols count a
    /// write complete only after a quorum of distinct repliers).
    repliers: Vec<ReplicaId>,
}

/// Fire-and-record load generator. Requests are emitted at a fixed rate
/// regardless of completions (open loop), so saturation shows up as rising
/// latency and timeouts — exactly how the paper's throughput/latency curves
/// are measured (§9.2).
pub struct OpenLoopClient {
    id: ClientId,
    cfg: OpenLoopConfig,
    source: SourceFn,
    next_request: u64,
    pending: HashMap<u64, PendingReq>,
    interval_ns: f64,
    ideal_next: f64,
    arrival_token: Option<TimerToken>,
    gc_token: Option<TimerToken>,
    recorder: Recorder,
}

/// Metric names recorded by [`OpenLoopClient`].
pub mod metrics {
    /// Reads issued.
    pub const READ_SENT: &str = "client.read.sent";
    /// Writes issued.
    pub const WRITE_SENT: &str = "client.write.sent";
    /// Reads completed.
    pub const READ_DONE: &str = "client.read.done";
    /// Writes completed.
    pub const WRITE_DONE: &str = "client.write.done";
    /// Writes rejected by the protocol (out-of-order sequence).
    pub const WRITE_REJECTED: &str = "client.write.rejected";
    /// Reads abandoned after the timeout.
    pub const READ_TIMEOUT: &str = "client.read.timeout";
    /// Writes abandoned after the timeout (includes switch-dropped writes).
    pub const WRITE_TIMEOUT: &str = "client.write.timeout";
    /// Read replies that arrived after their request was abandoned. For
    /// saturation measurements, prefer a timeout longer than the run so
    /// these stay zero.
    pub const READ_DONE_LATE: &str = "client.read.done_late";
    /// Write replies that arrived after their request was abandoned.
    pub const WRITE_DONE_LATE: &str = "client.write.done_late";
    /// Read latency histogram.
    pub const READ_LATENCY: &str = "client.read.latency";
    /// Write latency histogram.
    pub const WRITE_LATENCY: &str = "client.write.latency";
}

impl OpenLoopClient {
    /// Build a generator with the given source of operations.
    pub fn new(id: ClientId, cfg: OpenLoopConfig, source: SourceFn) -> Self {
        let interval_ns = 1e9 / cfg.rate_rps.max(1e-9);
        OpenLoopClient {
            id,
            cfg,
            source,
            next_request: 0,
            pending: HashMap::new(),
            interval_ns,
            ideal_next: 0.0,
            arrival_token: None,
            gc_token: None,
            recorder: Recorder::detached(),
        }
    }

    /// Attach an observability recorder (counters, latency histograms,
    /// request traces).
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Redirect traffic (switch replacement, §5.3).
    pub fn set_switch(&mut self, switch: NodeId) {
        self.cfg.switch = switch;
    }

    /// Requests currently awaiting replies.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    fn send_one(&mut self, ctx: &mut Context<'_, Msg>) {
        let spec = (self.source)(ctx.rng());
        let rid = self.next_request;
        self.next_request += 1;
        let obj = ObjectId::from_key(&spec.key);
        let req = match spec.kind {
            OpKind::Read => ClientRequest::read(self.id, RequestId(rid), spec.key),
            OpKind::Write => ClientRequest::write(
                self.id,
                RequestId(rid),
                spec.key,
                spec.value.unwrap_or_default(),
            ),
        };
        ctx.metrics().incr(match spec.kind {
            OpKind::Read => metrics::READ_SENT,
            OpKind::Write => metrics::WRITE_SENT,
        });
        self.recorder.incr(match spec.kind {
            OpKind::Read => Counter::ReadsSent,
            OpKind::Write => Counter::WritesSent,
        });
        self.recorder.trace_at(
            ctx.now(),
            NodeId::Client(self.id),
            TraceId::new(self.id, RequestId(rid)),
            obj,
            TraceStage::ClientSend,
        );
        self.pending.insert(
            rid,
            PendingReq {
                sent: ctx.now(),
                kind: spec.kind,
                obj,
                repliers: Vec::new(),
            },
        );
        let dst = self.cfg.switch;
        ctx.send(
            dst,
            Msg::new(NodeId::Client(self.id), dst, PacketBody::Request(req)),
        );
    }

    /// Emit every arrival whose ideal time has passed, then re-arm.
    fn emit_due(&mut self, ctx: &mut Context<'_, Msg>) {
        let now = ctx.now().nanos() as f64;
        while self.ideal_next <= now {
            self.send_one(ctx);
            self.ideal_next += self.interval_ns;
        }
        let delay = (self.ideal_next - now).max(1.0) as u64;
        self.arrival_token = Some(ctx.set_timer(Duration::from_nanos(delay)));
    }

    fn gc(&mut self, ctx: &mut Context<'_, Msg>) {
        let deadline = self.cfg.timeout;
        let now = ctx.now();
        let mut read_timeouts = 0;
        let mut write_timeouts = 0;
        let me = NodeId::Client(self.id);
        let id = self.id;
        let recorder = &self.recorder;
        self.pending.retain(|rid, p| {
            if now.since(p.sent) > deadline {
                match p.kind {
                    OpKind::Read => read_timeouts += 1,
                    OpKind::Write => write_timeouts += 1,
                }
                recorder.trace_at(
                    now,
                    me,
                    TraceId::new(id, RequestId(*rid)),
                    p.obj,
                    TraceStage::ClientTimeout,
                );
                false
            } else {
                true
            }
        });
        self.recorder
            .add(Counter::Timeouts, read_timeouts + write_timeouts);
        ctx.metrics().add(metrics::READ_TIMEOUT, read_timeouts);
        ctx.metrics().add(metrics::WRITE_TIMEOUT, write_timeouts);
        self.gc_token = Some(ctx.set_timer(self.cfg.timeout));
    }
}

impl Actor<Msg> for OpenLoopClient {
    fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
        self.ideal_next = ctx.now().nanos() as f64 + self.interval_ns;
        self.arrival_token = Some(ctx.set_timer(Duration::from_nanos(self.interval_ns as u64)));
        self.gc_token = Some(ctx.set_timer(self.cfg.timeout));
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _from: NodeId, msg: Msg) {
        let PacketBody::Reply(reply) = msg.body else {
            return;
        };
        let rid = reply.request.0;
        let Some(p) = self.pending.get_mut(&rid) else {
            // Reply to an abandoned (timed-out) request: the work was still
            // done by the system; track it separately.
            ctx.metrics().incr(if reply.write_outcome.is_some() {
                metrics::WRITE_DONE_LATE
            } else {
                metrics::READ_DONE_LATE
            });
            return;
        };
        if reply.write_outcome == Some(WriteOutcome::Rejected)
            || reply.write_outcome == Some(WriteOutcome::DroppedBySwitch)
        {
            ctx.metrics().incr(metrics::WRITE_REJECTED);
            self.recorder.incr(Counter::WritesRejected);
            self.pending.remove(&rid);
            return;
        }
        if !p.repliers.contains(&reply.from) {
            p.repliers.push(reply.from);
        }
        let needed = match p.kind {
            OpKind::Read => 1,
            OpKind::Write => self.cfg.write_replies,
        };
        if p.repliers.len() >= needed {
            let latency = ctx.now().since(p.sent);
            let (done, hist, obs_done, obs_series) = match p.kind {
                OpKind::Read => (
                    metrics::READ_DONE,
                    metrics::READ_LATENCY,
                    Counter::ReadsDone,
                    Series::ReadLatency,
                ),
                OpKind::Write => (
                    metrics::WRITE_DONE,
                    metrics::WRITE_LATENCY,
                    Counter::WritesDone,
                    Series::WriteLatency,
                ),
            };
            ctx.metrics().incr(done);
            ctx.metrics().observe(hist, latency);
            self.recorder.incr(obs_done);
            self.recorder.observe(obs_series, latency);
            self.recorder.trace_at(
                ctx.now(),
                NodeId::Client(self.id),
                TraceId::new(self.id, reply.request),
                p.obj,
                TraceStage::ClientDone,
            );
            self.pending.remove(&rid);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, token: TimerToken) {
        if Some(token) == self.arrival_token {
            self.emit_due(ctx);
        } else if Some(token) == self.gc_token {
            self.gc(ctx);
        }
    }
}

/// Result of one closed-loop operation, for history checking.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecordedOp {
    /// Read or write.
    pub kind: OpKind,
    /// Key.
    pub key: Bytes,
    /// Written value (writes only).
    pub value: Option<Bytes>,
    /// Invocation time (first attempt).
    pub invoked: Instant,
    /// Completion time.
    pub completed: Instant,
    /// Observed value (reads only; `None` for key-absent).
    pub result: Option<Bytes>,
    /// False if the op was abandoned (all attempts failed).
    pub ok: bool,
}

enum Phase {
    Inflight(Current),
    Idle,
    Done,
}

struct Current {
    spec: OpSpec,
    rid: u64,
    attempt: u32,
    invoked: Instant,
    /// Distinct replicas that have replied to this operation, carried
    /// across retries (which reuse the request id): a late original reply
    /// plus a deduplicated re-send must not count as two acknowledgements.
    repliers: Vec<ReplicaId>,
    timer: TimerToken,
}

/// Issues a fixed plan of operations one at a time, retrying on rejection
/// and timeout, and records a history for the linearizability checker.
pub struct ClosedLoopClient {
    id: ClientId,
    switch: NodeId,
    write_replies: usize,
    timeout: Duration,
    max_attempts: u32,
    plan: VecDeque<OpSpec>,
    phase: Phase,
    /// Completed operations in invocation order.
    pub records: Vec<RecordedOp>,
    next_request: u64,
    recorder: Recorder,
}

impl ClosedLoopClient {
    /// Build a client that will execute `plan` then stop.
    pub fn new(id: ClientId, switch: NodeId, plan: Vec<OpSpec>) -> Self {
        ClosedLoopClient {
            id,
            switch,
            write_replies: 1,
            timeout: Duration::from_millis(5),
            max_attempts: 10,
            plan: plan.into(),
            phase: Phase::Idle,
            records: Vec::new(),
            next_request: 0,
            recorder: Recorder::detached(),
        }
    }

    /// Attach an observability recorder (counters, latency histograms,
    /// request traces).
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Quorum size for write completion (NOPaxos).
    pub fn with_write_replies(mut self, n: usize) -> Self {
        self.write_replies = n;
        self
    }

    /// Per-attempt timeout.
    pub fn with_timeout(mut self, t: Duration) -> Self {
        self.timeout = t;
        self
    }

    /// True once the whole plan has run.
    pub fn is_done(&self) -> bool {
        matches!(self.phase, Phase::Done)
    }

    /// Redirect traffic (switch replacement, §5.3).
    pub fn set_switch(&mut self, switch: NodeId) {
        self.switch = switch;
    }

    #[allow(clippy::too_many_arguments)]
    fn send_current(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        spec: OpSpec,
        rid: u64,
        attempt: u32,
        invoked: Instant,
        repliers: Vec<ReplicaId>,
    ) {
        let req = match spec.kind {
            OpKind::Read => ClientRequest::read(self.id, RequestId(rid), spec.key.clone()),
            OpKind::Write => ClientRequest::write(
                self.id,
                RequestId(rid),
                spec.key.clone(),
                spec.value.clone().unwrap_or_default(),
            ),
        };
        let dst = self.switch;
        ctx.send(
            dst,
            Msg::new(NodeId::Client(self.id), dst, PacketBody::Request(req)),
        );
        if attempt == 1 {
            self.recorder.incr(match spec.kind {
                OpKind::Read => Counter::ReadsSent,
                OpKind::Write => Counter::WritesSent,
            });
        } else {
            self.recorder.incr(Counter::Retries);
        }
        self.recorder.trace_at(
            ctx.now(),
            NodeId::Client(self.id),
            TraceId::new(self.id, RequestId(rid)),
            ObjectId::from_key(&spec.key),
            if attempt == 1 {
                TraceStage::ClientSend
            } else {
                TraceStage::ClientRetry
            },
        );
        let timer = ctx.set_timer(self.timeout);
        self.phase = Phase::Inflight(Current {
            spec,
            rid,
            attempt,
            invoked,
            repliers,
            timer,
        });
    }

    fn issue_next(&mut self, ctx: &mut Context<'_, Msg>) {
        match self.plan.pop_front() {
            Some(spec) => {
                let now = ctx.now();
                // One request id per logical operation: retries REUSE it so
                // the exactly-once session layer can deduplicate
                // re-executions and re-send cached replies.
                let rid = self.next_request;
                self.next_request += 1;
                self.send_current(ctx, spec, rid, 1, now, Vec::new());
            }
            None => self.phase = Phase::Done,
        }
    }

    fn complete(&mut self, ctx: &mut Context<'_, Msg>, result: Option<Bytes>, ok: bool) {
        let Phase::Inflight(cur) = std::mem::replace(&mut self.phase, Phase::Idle) else {
            return;
        };
        let obj = ObjectId::from_key(&cur.spec.key);
        if ok {
            let latency = ctx.now().since(cur.invoked);
            let (done, series) = match cur.spec.kind {
                OpKind::Read => (Counter::ReadsDone, Series::ReadLatency),
                OpKind::Write => (Counter::WritesDone, Series::WriteLatency),
            };
            self.recorder.incr(done);
            self.recorder.observe(series, latency);
        } else {
            self.recorder.incr(Counter::Timeouts);
        }
        self.recorder.trace_at(
            ctx.now(),
            NodeId::Client(self.id),
            TraceId::new(self.id, RequestId(cur.rid)),
            obj,
            if ok {
                TraceStage::ClientDone
            } else {
                TraceStage::ClientTimeout
            },
        );
        self.records.push(RecordedOp {
            kind: cur.spec.kind,
            key: cur.spec.key.clone(),
            value: cur.spec.value.clone(),
            invoked: cur.invoked,
            completed: ctx.now(),
            result,
            ok,
        });
        self.issue_next(ctx);
    }

    fn retry(&mut self, ctx: &mut Context<'_, Msg>) {
        let Phase::Inflight(cur) = std::mem::replace(&mut self.phase, Phase::Idle) else {
            return;
        };
        if cur.attempt >= self.max_attempts {
            self.phase = Phase::Inflight(cur);
            self.complete(ctx, None, false);
        } else {
            self.send_current(
                ctx,
                cur.spec,
                cur.rid,
                cur.attempt + 1,
                cur.invoked,
                cur.repliers,
            );
        }
    }
}

impl Actor<Msg> for ClosedLoopClient {
    fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
        self.issue_next(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _from: NodeId, msg: Msg) {
        let PacketBody::Reply(reply) = msg.body else {
            return;
        };
        let Phase::Inflight(cur) = &mut self.phase else {
            return;
        };
        if reply.request.0 != cur.rid {
            return; // reply to an abandoned attempt
        }
        if reply.write_outcome == Some(WriteOutcome::Rejected)
            || reply.write_outcome == Some(WriteOutcome::DroppedBySwitch)
        {
            self.recorder.incr(Counter::WritesRejected);
            self.retry(ctx);
            return;
        }
        if !cur.repliers.contains(&reply.from) {
            cur.repliers.push(reply.from);
        }
        let needed = match cur.spec.kind {
            OpKind::Read => 1,
            OpKind::Write => self.write_replies,
        };
        if cur.repliers.len() >= needed {
            self.complete(ctx, reply.value, true);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, token: TimerToken) {
        if let Phase::Inflight(cur) = &self.phase {
            if cur.timer == token {
                self.retry(ctx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_sim::{LinkConfig, NetworkModel, Service, World, WorldConfig};
    use harmonia_types::{ClientReply, ObjectId, ReplicaId, SwitchId};

    const SWITCH: NodeId = NodeId::Switch(SwitchId(1));
    const CLIENT: NodeId = NodeId::Client(ClientId(7));

    /// A fake "rack" that answers every request after a service delay.
    struct FakeRack {
        reject_writes: bool,
        served: u64,
    }
    impl Actor<Msg> for FakeRack {
        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _from: NodeId, msg: Msg) {
            let PacketBody::Request(req) = msg.body else {
                return;
            };
            self.served += 1;
            let outcome = match req.op {
                OpKind::Read => None,
                OpKind::Write if self.reject_writes => Some(WriteOutcome::Rejected),
                OpKind::Write => Some(WriteOutcome::Committed),
            };
            let reply = ClientReply {
                client: req.client,
                from: ReplicaId(0),
                request: req.request,
                obj: ObjectId::from_key(&req.key),
                value: match req.op {
                    OpKind::Read => Some(Bytes::from_static(b"stored")),
                    OpKind::Write => None,
                },
                write_outcome: outcome,
                completion: None,
            };
            let dst = NodeId::Client(req.client);
            ctx.send(dst, Msg::new(ctx.node(), dst, PacketBody::Reply(reply)));
        }
        fn service(&self, _msg: &Msg) -> Service {
            Service::Queued(Duration::from_micros(1))
        }
    }

    fn world() -> World<Msg> {
        World::new(WorldConfig {
            seed: 5,
            network: NetworkModel::uniform(LinkConfig::ideal(Duration::from_micros(5))),
        })
    }

    #[test]
    fn open_loop_emits_at_configured_rate() {
        let mut w = world();
        w.add_node(
            SWITCH,
            Box::new(FakeRack {
                reject_writes: false,
                served: 0,
            }),
        );
        let cfg = OpenLoopConfig {
            rate_rps: 100_000.0,
            ..OpenLoopConfig::new(SWITCH)
        };
        let source: SourceFn = Box::new(|_| OpSpec::read(Bytes::from_static(b"k")));
        w.add_node(
            CLIENT,
            Box::new(OpenLoopClient::new(ClientId(7), cfg, source)),
        );
        // 10 ms at 100 kRPS = 1000 requests.
        w.run_until(Instant::ZERO + Duration::from_millis(10));
        let sent = w.metrics().counter(metrics::READ_SENT);
        assert!((990..=1010).contains(&sent), "sent={sent}");
        let done = w.metrics().counter(metrics::READ_DONE);
        assert!(done > 900, "done={done}");
        let lat = w.metrics().histogram(metrics::READ_LATENCY).unwrap();
        // 2 × 5 µs links + 1 µs service ≈ 11 µs.
        assert!(lat.mean() >= Duration::from_micros(11));
        assert!(lat.mean() < Duration::from_micros(20));
    }

    #[test]
    fn open_loop_counts_rejections_and_timeouts() {
        let mut w = world();
        w.add_node(
            SWITCH,
            Box::new(FakeRack {
                reject_writes: true,
                served: 0,
            }),
        );
        let cfg = OpenLoopConfig {
            rate_rps: 10_000.0,
            timeout: Duration::from_millis(2),
            ..OpenLoopConfig::new(SWITCH)
        };
        let source: SourceFn =
            Box::new(|_| OpSpec::write(Bytes::from_static(b"k"), Bytes::from_static(b"v")));
        w.add_node(
            CLIENT,
            Box::new(OpenLoopClient::new(ClientId(7), cfg, source)),
        );
        w.run_until(Instant::ZERO + Duration::from_millis(5));
        assert!(w.metrics().counter(metrics::WRITE_REJECTED) > 0);
        assert_eq!(w.metrics().counter(metrics::WRITE_DONE), 0);
    }

    #[test]
    fn open_loop_timeout_gc_purges_lost_requests() {
        let mut w = world();
        // No rack at all: every request vanishes ("net.dead_dst").
        let cfg = OpenLoopConfig {
            rate_rps: 10_000.0,
            timeout: Duration::from_millis(1),
            ..OpenLoopConfig::new(SWITCH)
        };
        let source: SourceFn = Box::new(|_| OpSpec::read(Bytes::from_static(b"k")));
        w.add_node(
            CLIENT,
            Box::new(OpenLoopClient::new(ClientId(7), cfg, source)),
        );
        w.run_until(Instant::ZERO + Duration::from_millis(10));
        assert!(w.metrics().counter(metrics::READ_TIMEOUT) > 50);
        let client: &OpenLoopClient = w.actor(CLIENT).unwrap();
        assert!(client.in_flight() < 30, "gc keeps the table bounded");
    }

    #[test]
    fn closed_loop_runs_plan_in_order_and_records() {
        let mut w = world();
        w.add_node(
            SWITCH,
            Box::new(FakeRack {
                reject_writes: false,
                served: 0,
            }),
        );
        let plan = vec![
            OpSpec::write(Bytes::from_static(b"a"), Bytes::from_static(b"1")),
            OpSpec::read(Bytes::from_static(b"a")),
            OpSpec::write(Bytes::from_static(b"b"), Bytes::from_static(b"2")),
        ];
        w.add_node(
            CLIENT,
            Box::new(ClosedLoopClient::new(ClientId(7), SWITCH, plan)),
        );
        w.run_until_idle(10_000);
        let c: &ClosedLoopClient = w.actor(CLIENT).unwrap();
        assert!(c.is_done());
        assert_eq!(c.records.len(), 3);
        assert!(c.records.iter().all(|r| r.ok));
        assert_eq!(c.records[1].result, Some(Bytes::from_static(b"stored")));
        assert!(c.records[0].completed <= c.records[1].invoked);
    }

    #[test]
    fn closed_loop_retries_until_giving_up() {
        let mut w = world();
        w.add_node(
            SWITCH,
            Box::new(FakeRack {
                reject_writes: true,
                served: 0,
            }),
        );
        let plan = vec![OpSpec::write(
            Bytes::from_static(b"a"),
            Bytes::from_static(b"1"),
        )];
        w.add_node(
            CLIENT,
            Box::new(
                ClosedLoopClient::new(ClientId(7), SWITCH, plan)
                    .with_timeout(Duration::from_millis(1)),
            ),
        );
        w.run_until_idle(10_000);
        let c: &ClosedLoopClient = w.actor(CLIENT).unwrap();
        assert!(c.is_done());
        assert_eq!(c.records.len(), 1);
        assert!(!c.records[0].ok, "all attempts rejected");
        let rack: &FakeRack = w.actor(SWITCH).unwrap();
        assert_eq!(rack.served, 10, "max_attempts bounded the retries");
    }

    #[test]
    fn closed_loop_recovers_from_lost_replies() {
        // Rack that drops the first request silently, then behaves.
        struct Flaky {
            dropped: bool,
        }
        impl Actor<Msg> for Flaky {
            fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _from: NodeId, msg: Msg) {
                let PacketBody::Request(req) = msg.body else {
                    return;
                };
                if !self.dropped {
                    self.dropped = true;
                    return;
                }
                let reply = ClientReply {
                    client: req.client,
                    from: ReplicaId(0),
                    request: req.request,
                    obj: ObjectId::from_key(&req.key),
                    value: None,
                    write_outcome: Some(WriteOutcome::Committed),
                    completion: None,
                };
                let dst = NodeId::Client(req.client);
                ctx.send(dst, Msg::new(ctx.node(), dst, PacketBody::Reply(reply)));
            }
        }
        let mut w = world();
        w.add_node(SWITCH, Box::new(Flaky { dropped: false }));
        let plan = vec![OpSpec::write(
            Bytes::from_static(b"a"),
            Bytes::from_static(b"1"),
        )];
        w.add_node(
            CLIENT,
            Box::new(
                ClosedLoopClient::new(ClientId(7), SWITCH, plan)
                    .with_timeout(Duration::from_millis(1)),
            ),
        );
        w.run_until_idle(10_000);
        let c: &ClosedLoopClient = w.actor(CLIENT).unwrap();
        assert!(c.is_done());
        assert!(c.records[0].ok, "second attempt succeeded");
    }
}
