//! Deprecated single-group assembly API.
//!
//! Superseded by [`DeploymentSpec`]: the
//! unsharded deployment is literally `DeploymentSpec::new()` (one group),
//! and the world these shims build is bit-identical to
//! `spec.build_sim()` — locked by `tests/determinism.rs`. Kept for one
//! release so downstream migrations are a mechanical rename.

#![allow(deprecated)]

use harmonia_replication::{GroupConfig, ProtocolKind};
use harmonia_sim::{LinkConfig, World};
use harmonia_switch::TableConfig;
use harmonia_types::{ClientId, Duration, NodeId, SwitchId};

use crate::client::SourceFn;
use crate::deployment::DeploymentSpec;
use crate::msg::{CostModel, Msg};
use crate::switch_actor::SwitchActor;

/// Full deployment description (single replica group).
#[deprecated(note = "use `deployment::DeploymentSpec` (unsharded is `groups(1)`, the default)")]
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Which replication protocol the group runs.
    pub protocol: ProtocolKind,
    /// Harmonia on or off (baseline).
    pub harmonia: bool,
    /// Replication factor.
    pub replicas: usize,
    /// Simulation seed.
    pub seed: u64,
    /// Per-message service costs at replicas.
    pub costs: CostModel,
    /// Dirty-set geometry on the switch.
    pub table: TableConfig,
    /// Link model (see [`DeploymentSpec::link`]).
    pub link: LinkConfig,
    /// VR commit / NOPaxos sync cadence.
    pub sync_interval: Duration,
    /// Switch stale-entry sweep cadence.
    pub sweep_interval: Option<Duration>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        DeploymentSpec::default().into()
    }
}

impl From<DeploymentSpec> for ClusterConfig {
    fn from(spec: DeploymentSpec) -> Self {
        assert_eq!(spec.groups, 1, "ClusterConfig is single-group");
        ClusterConfig {
            protocol: spec.protocol,
            harmonia: spec.harmonia,
            replicas: spec.replicas,
            seed: spec.seed,
            costs: spec.costs,
            table: spec.table,
            link: spec.link,
            sync_interval: spec.sync_interval,
            sweep_interval: spec.sweep_interval,
        }
    }
}

impl ClusterConfig {
    /// The equivalent unified spec: same fields, `groups(1)`.
    pub fn to_spec(&self) -> DeploymentSpec {
        DeploymentSpec {
            protocol: self.protocol,
            harmonia: self.harmonia,
            groups: 1,
            replicas: self.replicas,
            seed: self.seed,
            costs: self.costs,
            table: self.table,
            link: self.link,
            sync_interval: self.sync_interval,
            sweep_interval: self.sweep_interval,
        }
    }

    /// The initial switch's address.
    pub fn switch_addr(&self) -> NodeId {
        self.to_spec().switch_addr()
    }

    /// Replies a client must collect per write under this protocol.
    pub fn write_replies(&self) -> usize {
        self.to_spec().write_replies()
    }

    /// Build a fresh switch actor for the given incarnation.
    pub fn make_switch(&self, incarnation: SwitchId) -> SwitchActor {
        self.to_spec().make_switch(incarnation)
    }

    /// Per-replica group configuration as seen by member `idx`.
    pub fn group_config(&self, idx: usize) -> GroupConfig {
        self.to_spec().group_config(0, idx)
    }
}

/// Build a world containing the switch and the replica group (no clients).
#[deprecated(note = "use `DeploymentSpec::build_sim()`")]
pub fn build_world(cfg: &ClusterConfig) -> World<Msg> {
    cfg.to_spec().build_sim().into_world()
}

/// Attach an open-loop load generator. Returns its node id.
#[deprecated(note = "use `SimCluster::add_open_loop_client`")]
pub fn add_open_loop_client(
    world: &mut World<Msg>,
    cluster: &ClusterConfig,
    client: ClientId,
    rate_rps: f64,
    timeout: Duration,
    source: SourceFn,
) -> NodeId {
    use crate::client::{OpenLoopClient, OpenLoopConfig};
    let node = NodeId::Client(client);
    let cfg = OpenLoopConfig {
        rate_rps,
        timeout,
        ..OpenLoopConfig::for_deployment(&cluster.to_spec())
    };
    world.add_node(node, Box::new(OpenLoopClient::new(client, cfg, source)));
    node
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{metrics, OpSpec};
    use bytes::Bytes;
    use harmonia_types::Instant;
    use rand::Rng;

    /// The deprecated shims still assemble a working deployment.
    #[test]
    fn deprecated_build_world_still_serves_traffic() {
        let cfg = ClusterConfig::default();
        assert_eq!(cfg.write_replies(), 1);
        let mut world = build_world(&cfg);
        let source: SourceFn = Box::new(|rng| {
            let key = Bytes::from(format!("key-{}", rng.gen_range(0..100u32)));
            if rng.gen_bool(0.1) {
                OpSpec::write(key, Bytes::from_static(b"v"))
            } else {
                OpSpec::read(key)
            }
        });
        add_open_loop_client(
            &mut world,
            &cfg,
            ClientId(1),
            50_000.0,
            Duration::from_millis(10),
            source,
        );
        world.run_until(Instant::ZERO + Duration::from_millis(10));
        assert!(world.metrics().counter(metrics::READ_DONE) > 300);
        assert!(world.metrics().counter(metrics::WRITE_DONE) > 10);
    }

    #[test]
    fn config_and_spec_round_trip() {
        let cfg = ClusterConfig {
            protocol: ProtocolKind::Nopaxos,
            replicas: 5,
            ..ClusterConfig::default()
        };
        assert_eq!(cfg.write_replies(), 3, "NOPaxos quorum");
        let spec = cfg.to_spec();
        assert_eq!(spec.groups, 1);
        assert_eq!(spec.replicas, 5);
        assert_eq!(spec.write_replies(), cfg.write_replies());
        assert_eq!(spec.switch_addr(), cfg.switch_addr());
    }
}
