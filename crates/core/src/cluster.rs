//! One-call assembly of a simulated Harmonia deployment.

use harmonia_replication::{build_replica, GroupConfig, ProtocolKind};
use harmonia_sim::{LinkConfig, NetworkModel, World, WorldConfig};
use harmonia_switch::TableConfig;
use harmonia_types::{ClientId, Duration, NodeId, ReplicaId, SwitchId};

use crate::client::{OpenLoopClient, OpenLoopConfig, SourceFn};
use crate::msg::{CostModel, Msg};
use crate::replica_actor::ReplicaActor;
use crate::switch_actor::{SwitchActor, SwitchActorConfig, SwitchMode};

/// Full deployment description.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Which replication protocol the group runs.
    pub protocol: ProtocolKind,
    /// Harmonia on or off (baseline).
    pub harmonia: bool,
    /// Replication factor.
    pub replicas: usize,
    /// Simulation seed.
    pub seed: u64,
    /// Per-message service costs at replicas.
    pub costs: CostModel,
    /// Dirty-set geometry on the switch.
    pub table: TableConfig,
    /// Link model. The default is an ideal 5 µs intra-rack hop with zero
    /// jitter: one switched path delivers FIFO, which is what the paper's
    /// in-order write processing relies on. Tests override this to inject
    /// loss and reordering.
    pub link: LinkConfig,
    /// VR commit / NOPaxos sync cadence.
    pub sync_interval: Duration,
    /// Switch stale-entry sweep cadence.
    pub sweep_interval: Option<Duration>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            protocol: ProtocolKind::Chain,
            harmonia: true,
            replicas: 3,
            seed: 0xBEEF,
            costs: CostModel::paper_calibrated(),
            table: TableConfig::default(),
            link: LinkConfig::ideal(Duration::from_micros(5)),
            sync_interval: Duration::from_micros(200),
            sweep_interval: Some(Duration::from_millis(1)),
        }
    }
}

impl ClusterConfig {
    /// The initial switch's address.
    pub fn switch_addr(&self) -> NodeId {
        NodeId::Switch(SwitchId(1))
    }

    /// Replies a client must collect per write under this protocol
    /// (NOPaxos replicas acknowledge the client directly; everyone else
    /// replies once).
    pub fn write_replies(&self) -> usize {
        match self.protocol {
            ProtocolKind::Nopaxos => self.protocol.quorum(self.replicas),
            _ => 1,
        }
    }

    fn switch_actor_config(&self, incarnation: SwitchId) -> SwitchActorConfig {
        SwitchActorConfig {
            incarnation,
            mode: if self.harmonia {
                SwitchMode::Harmonia
            } else {
                SwitchMode::Baseline
            },
            protocol: self.protocol,
            replicas: self.replicas,
            table: self.table,
            sweep_interval: self.sweep_interval,
        }
    }

    /// Build a fresh switch actor for the given incarnation (used by the
    /// failover orchestration to create replacements).
    pub fn make_switch(&self, incarnation: SwitchId) -> SwitchActor {
        SwitchActor::new(self.switch_actor_config(incarnation))
    }
}

/// Build a world containing the switch and the replica group (no clients).
pub fn build_world(cfg: &ClusterConfig) -> World<Msg> {
    let mut world = World::new(WorldConfig {
        seed: cfg.seed,
        network: NetworkModel::uniform(cfg.link),
    });
    world.add_node(cfg.switch_addr(), Box::new(cfg.make_switch(SwitchId(1))));
    for i in 0..cfg.replicas as u32 {
        let group = GroupConfig {
            protocol: cfg.protocol,
            me: ReplicaId(i),
            members: (0..cfg.replicas as u32).map(ReplicaId).collect(),
            harmonia: cfg.harmonia,
            active_switch: SwitchId(1),
            sync_interval: cfg.sync_interval,
        };
        world.add_node(
            NodeId::Replica(ReplicaId(i)),
            Box::new(ReplicaActor::new(build_replica(group), cfg.costs)),
        );
    }
    world
}

/// Attach an open-loop load generator. Returns its node id.
pub fn add_open_loop_client(
    world: &mut World<Msg>,
    cluster: &ClusterConfig,
    client: ClientId,
    rate_rps: f64,
    timeout: Duration,
    source: SourceFn,
) -> NodeId {
    let node = NodeId::Client(client);
    let cfg = OpenLoopConfig {
        switch: cluster.switch_addr(),
        rate_rps,
        write_replies: cluster.write_replies(),
        timeout,
    };
    world.add_node(node, Box::new(OpenLoopClient::new(client, cfg, source)));
    node
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{metrics, OpSpec};
    use bytes::Bytes;
    use harmonia_types::Instant;
    use rand::Rng;

    fn run_mixed(protocol: ProtocolKind, harmonia: bool, rate: f64, millis: u64) -> (u64, u64) {
        let cfg = ClusterConfig {
            protocol,
            harmonia,
            ..ClusterConfig::default()
        };
        let mut world = build_world(&cfg);
        let source: SourceFn = Box::new(|rng| {
            let key = Bytes::from(format!("key-{}", rng.gen_range(0..1000u32)));
            if rng.gen_bool(0.05) {
                OpSpec::write(key, Bytes::from_static(b"value"))
            } else {
                OpSpec::read(key)
            }
        });
        add_open_loop_client(
            &mut world,
            &cfg,
            ClientId(1),
            rate,
            Duration::from_millis(10),
            source,
        );
        world.run_until(Instant::ZERO + Duration::from_millis(millis));
        (
            world.metrics().counter(metrics::READ_DONE),
            world.metrics().counter(metrics::WRITE_DONE),
        )
    }

    #[test]
    fn every_protocol_serves_a_light_mixed_workload() {
        for protocol in [
            ProtocolKind::PrimaryBackup,
            ProtocolKind::Chain,
            ProtocolKind::Craq,
            ProtocolKind::Vr,
            ProtocolKind::Nopaxos,
        ] {
            for harmonia in [false, true] {
                if protocol == ProtocolKind::Craq && harmonia {
                    continue; // CRAQ is baseline-only
                }
                let (reads, writes) = run_mixed(protocol, harmonia, 50_000.0, 20);
                assert!(
                    reads > 700,
                    "{protocol:?} harmonia={harmonia}: reads={reads}"
                );
                assert!(
                    writes > 20,
                    "{protocol:?} harmonia={harmonia}: writes={writes}"
                );
            }
        }
    }

    #[test]
    fn harmonia_chain_outperforms_baseline_on_read_heavy_load() {
        // Offered read load well beyond one server's 0.92 MQPS capacity:
        // baseline CR is capped at the tail, Harmonia spreads over 3.
        let (base_reads, _) = run_mixed(ProtocolKind::Chain, false, 2_400_000.0, 20);
        let (harm_reads, _) = run_mixed(ProtocolKind::Chain, true, 2_400_000.0, 20);
        let ratio = harm_reads as f64 / base_reads.max(1) as f64;
        assert!(
            ratio > 2.0,
            "expected ≈3× read scaling, got {ratio:.2} ({harm_reads} vs {base_reads})"
        );
    }

    #[test]
    fn write_replies_quorum_only_for_nopaxos() {
        let mut cfg = ClusterConfig {
            protocol: ProtocolKind::Nopaxos,
            replicas: 5,
            ..ClusterConfig::default()
        };
        assert_eq!(cfg.write_replies(), 3);
        cfg.protocol = ProtocolKind::Chain;
        assert_eq!(cfg.write_replies(), 1);
    }
}
