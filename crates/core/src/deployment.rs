//! One `Deployment` API: every deployment shape behind one spec, every
//! driver behind one trait.
//!
//! The paper's whole pitch is that Harmonia is a drop-in layer: the same
//! protocol group runs unmodified whether there is one replica group or
//! sixteen behind a spine switch (§6.3), and whether it is evaluated in the
//! calibrated simulator or on real threads. This module makes the API say
//! the same thing:
//!
//! * [`DeploymentSpec`] describes *what* to deploy — protocol, Harmonia
//!   on/off, replicas per group, `groups(n)` (where unsharded is literally
//!   `groups(1)`), seed, costs, switch table geometry, link model, and the
//!   sync/sweep cadences. One spec, builder-style, no parallel config types.
//! * [`Cluster`] is *how* to talk to a running deployment, regardless of
//!   driver: a synchronous [`KvClient`], the §5.3 failover verbs
//!   ([`kill_switch`](Cluster::kill_switch) /
//!   [`replace_switch`](Cluster::replace_switch)), switch inspection
//!   ([`switch_stats`](Cluster::switch_stats),
//!   [`group_stats`](Cluster::group_stats),
//!   [`fast_path_enabled`](Cluster::fast_path_enabled),
//!   [`switch_memory_bytes`](Cluster::switch_memory_bytes)), and closed-loop
//!   scenario driving ([`run_plans`](Cluster::run_plans)).
//! * [`DeploymentSpec::build_sim`] returns the deterministic-sim
//!   implementation ([`SimCluster`]); [`DeploymentSpec::spawn_live`] the
//!   threaded one ([`LiveCluster`]); [`DeploymentSpec::spawn_udp`] the
//!   datagram one ([`UdpCluster`], every packet on a real `UdpSocket`).
//!   Tests can hold any of the three as `Box<dyn Cluster>` and never care
//!   which.

use bytes::Bytes;
use harmonia_obs::{FaultObs, GroupObs, ObsSnapshot, Registry, SwitchObs, TraceEvent};
use harmonia_replication::messages::{ProtocolMsg, ReplicaControlMsg};
use harmonia_replication::{build_replica, GroupConfig, ProtocolKind};
use harmonia_sim::{Actor, Context, LinkConfig, NetworkModel, World, WorldConfig};
use harmonia_switch::{GroupId, SpineView, SwitchStats, TableConfig};
use harmonia_types::{
    ClientId, ClientReply, ClientRequest, ControlMsg, Duration, Instant, NodeId, OpKind,
    PacketBody, ReplicaId, RequestId, SwitchId, WriteOutcome,
};
use harmonia_workload::ShardMap;

use crate::client::{
    ClosedLoopClient, OpSpec, OpenLoopClient, OpenLoopConfig, RecordedOp, SourceFn,
};
use crate::live::{LiveCluster, LiveError};
use crate::msg::{CostModel, Msg};
use crate::replica_actor::ReplicaActor;
use crate::switch_actor::{SwitchActor, SwitchActorConfig, SwitchMode};
use crate::udp::UdpCluster;

/// Full description of a Harmonia deployment, for either driver.
///
/// Unsharded (rack-scale, Figure 1) is literally [`groups(1)`](Self::groups)
/// — the default. The §6.3 cloud-scale deployment is the same spec with
/// `groups(n)`: `n` replica groups behind one spine switch, keyspace
/// partitioned by a pure hash ([`ShardMap`]).
///
/// Construct with the builder methods:
///
/// ```
/// use harmonia_core::deployment::DeploymentSpec;
/// use harmonia_replication::ProtocolKind;
///
/// let spec = DeploymentSpec::new()
///     .protocol(ProtocolKind::Chain)
///     .replicas(3)
///     .groups(4)
///     .seed(7);
/// assert_eq!(spec.total_replicas(), 12);
/// ```
///
/// or with struct-update syntax — every field is public.
#[derive(Clone, Debug)]
pub struct DeploymentSpec {
    /// The replication protocol every group runs.
    pub protocol: ProtocolKind,
    /// Harmonia on or off (baseline).
    pub harmonia: bool,
    /// Number of replica groups sharing the switch (1 = unsharded).
    pub groups: usize,
    /// Replication factor within each group.
    pub replicas: usize,
    /// Simulation seed (ignored by the live driver).
    pub seed: u64,
    /// Per-message service costs at replicas.
    pub costs: CostModel,
    /// Per-group dirty-set geometry on the switch.
    pub table: TableConfig,
    /// Link model. The default is an ideal 5 µs intra-rack hop with zero
    /// jitter: one switched path delivers FIFO, which is what the paper's
    /// in-order write processing relies on. Tests override this to inject
    /// loss and reordering.
    pub link: LinkConfig,
    /// VR commit / NOPaxos sync cadence.
    pub sync_interval: Duration,
    /// Switch stale-entry sweep cadence (`None` disables the sweep).
    pub sweep_interval: Option<Duration>,
    /// Whether the UDP driver's endpoints use the batched
    /// `sendmmsg`/`recvmmsg` fast path (ignored by the sim and channel
    /// drivers). On by default; the `udp_dataplane` bench turns it off to
    /// measure the scalar baseline.
    pub udp_batch: bool,
    /// Whether the UDP driver's batched send path coalesces multiple wire
    /// frames into each datagram (GSO/GRO-style; ignored by the sim and
    /// channel drivers, and moot when `udp_batch` is off). On by default;
    /// off keeps the faithful one-frame-per-datagram baseline runnable —
    /// the `udp_dataplane` bench measures both.
    pub udp_coalesce: bool,
}

impl Default for DeploymentSpec {
    fn default() -> Self {
        DeploymentSpec {
            protocol: ProtocolKind::Chain,
            harmonia: true,
            groups: 1,
            replicas: 3,
            seed: 0xBEEF,
            costs: CostModel::paper_calibrated(),
            table: TableConfig::default(),
            link: LinkConfig::ideal(Duration::from_micros(5)),
            sync_interval: Duration::from_micros(200),
            sweep_interval: Some(Duration::from_millis(1)),
            udp_batch: true,
            udp_coalesce: true,
        }
    }
}

impl DeploymentSpec {
    /// The paper's default setup: a 3-replica Harmonia chain group.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the replication protocol.
    pub fn protocol(mut self, protocol: ProtocolKind) -> Self {
        self.protocol = protocol;
        self
    }

    /// Turn the conflict-detection module on or off.
    pub fn harmonia(mut self, on: bool) -> Self {
        self.harmonia = on;
        self
    }

    /// Shorthand for [`harmonia(false)`](Self::harmonia): the §9 baselines.
    pub fn baseline(self) -> Self {
        self.harmonia(false)
    }

    /// Set the replication factor (per group).
    pub fn replicas(mut self, n: usize) -> Self {
        assert!(n > 0, "at least one replica per group");
        self.replicas = n;
        self
    }

    /// Set the number of replica groups behind the switch. `groups(1)` is
    /// the rack-scale deployment; `groups(n)` the §6.3 sharded one.
    pub fn groups(mut self, n: usize) -> Self {
        assert!(n > 0, "at least one replica group");
        self.groups = n;
        self
    }

    /// Set the simulation seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the per-message service-cost model.
    pub fn costs(mut self, costs: CostModel) -> Self {
        self.costs = costs;
        self
    }

    /// Set the per-group dirty-set geometry.
    pub fn table(mut self, table: TableConfig) -> Self {
        self.table = table;
        self
    }

    /// Set the link model.
    pub fn link(mut self, link: LinkConfig) -> Self {
        self.link = link;
        self
    }

    /// Set the VR commit / NOPaxos sync cadence.
    pub fn sync_interval(mut self, interval: Duration) -> Self {
        self.sync_interval = interval;
        self
    }

    /// Set (or disable) the switch stale-entry sweep cadence.
    pub fn sweep_interval(mut self, interval: Option<Duration>) -> Self {
        self.sweep_interval = interval;
        self
    }

    /// Toggle the UDP driver's batched-syscall fast path (on by default).
    /// Only the `udp_dataplane` bench should need the scalar baseline.
    pub fn udp_batch(mut self, on: bool) -> Self {
        self.udp_batch = on;
        self
    }

    /// Toggle GSO/GRO-style frame coalescing on the UDP driver's batched
    /// send path (on by default). Off, every frame rides its own datagram
    /// — the per-frame baseline the `udp_dataplane` bench compares against.
    pub fn udp_coalesce(mut self, on: bool) -> Self {
        self.udp_coalesce = on;
        self
    }

    // ----- topology (the one definition both legacy configs delegate to) --

    /// The initial switch incarnation.
    pub fn initial_switch(&self) -> SwitchId {
        SwitchId(1)
    }

    /// The stable client-facing switch address.
    pub fn switch_addr(&self) -> NodeId {
        NodeId::Switch(self.initial_switch())
    }

    /// Replies a client must collect per write under this protocol
    /// (NOPaxos replicas acknowledge the client directly; everyone else
    /// replies once).
    pub fn write_replies(&self) -> usize {
        match self.protocol {
            ProtocolKind::Nopaxos => self.protocol.quorum(self.replicas),
            _ => 1,
        }
    }

    /// The deployment's object→group map.
    pub fn shard_map(&self) -> ShardMap {
        ShardMap::new(self.groups)
    }

    /// One key per group, in group order, covering every group of the
    /// deployment (found by probing the shard hash). Bring-up harnesses
    /// write one committed value per key to arm each group's fast path —
    /// the §5.3 first-own-completion rule — exactly as a real deployment
    /// would.
    pub fn group_covering_keys(&self) -> Vec<Bytes> {
        let map = self.shard_map();
        let mut keys: Vec<Option<Bytes>> = vec![None; self.groups];
        let mut remaining = self.groups;
        let mut probe = 0u32;
        while remaining > 0 {
            let key = Bytes::from(format!("__bootstrap-{probe}__"));
            let g = map.shard_of_key(&key) as usize;
            if keys[g].is_none() {
                keys[g] = Some(key);
                remaining -= 1;
            }
            probe += 1;
        }
        keys.into_iter().map(|k| k.expect("covered")).collect()
    }

    /// Total replica count across every group.
    pub fn total_replicas(&self) -> usize {
        self.groups * self.replicas
    }

    /// The global id of replica `idx` of group `group`. Groups own disjoint
    /// contiguous slices of the replica-id space.
    pub fn replica_id(&self, group: usize, idx: usize) -> ReplicaId {
        assert!(group < self.groups && idx < self.replicas);
        ReplicaId((group * self.replicas + idx) as u32)
    }

    /// The group that provisioned replica `r` (inverse of
    /// [`replica_id`](Self::replica_id)).
    pub fn group_of_replica(&self, r: ReplicaId) -> usize {
        let g = r.0 as usize / self.replicas;
        assert!(g < self.groups, "replica {r:?} outside the deployment");
        g
    }

    /// Group `group`'s membership in role order (head/primary/leader first).
    pub fn group_members(&self, group: usize) -> Vec<ReplicaId> {
        (0..self.replicas)
            .map(|i| self.replica_id(group, i))
            .collect()
    }

    /// Every group's membership, in group order.
    pub fn memberships(&self) -> Vec<Vec<ReplicaId>> {
        (0..self.groups).map(|g| self.group_members(g)).collect()
    }

    /// Per-replica group configuration for group `group` as seen by its
    /// member `idx`.
    pub fn group_config(&self, group: usize, idx: usize) -> GroupConfig {
        GroupConfig {
            protocol: self.protocol,
            me: self.replica_id(group, idx),
            members: self.group_members(group),
            harmonia: self.harmonia,
            active_switch: self.initial_switch(),
            sync_interval: self.sync_interval,
        }
    }

    /// The switch-actor configuration for incarnation `incarnation`.
    pub fn switch_actor_config(&self, incarnation: SwitchId) -> SwitchActorConfig {
        SwitchActorConfig {
            incarnation,
            mode: if self.harmonia {
                SwitchMode::Harmonia
            } else {
                SwitchMode::Baseline
            },
            protocol: self.protocol,
            replicas: self.replicas,
            table: self.table,
            sweep_interval: self.sweep_interval,
        }
    }

    /// Build a fresh switch actor for the given incarnation (initial
    /// bring-up and §5.3 replacements). Hosts every group of the spec.
    pub fn make_switch(&self, incarnation: SwitchId) -> SwitchActor {
        SwitchActor::for_deployment(self, incarnation)
    }

    // ----- the two drivers ------------------------------------------------

    /// Assemble this deployment in the deterministic simulator.
    pub fn build_sim(&self) -> SimCluster {
        let mut world = World::new(WorldConfig {
            seed: self.seed,
            network: NetworkModel::uniform(self.link),
        });
        // Virtual time only: the registry's clock stays null, every recorder
        // call passes the world's `now` explicitly, so same-seed runs yield
        // bit-identical snapshots.
        let registry = Registry::new();
        let mut switch = self.make_switch(self.initial_switch());
        switch.set_recorder(&registry.handle());
        world.add_node(self.switch_addr(), Box::new(switch));
        for g in 0..self.groups {
            for i in 0..self.replicas {
                world.add_node(
                    NodeId::Replica(self.replica_id(g, i)),
                    Box::new(
                        ReplicaActor::new(build_replica(self.group_config(g, i)), self.costs)
                            .with_recorder(registry.handle()),
                    ),
                );
            }
        }
        SimCluster {
            spec: self.clone(),
            world,
            switch: self.switch_addr(),
            workload_clients: Vec::new(),
            next_client: 900,
            registry,
        }
    }

    /// Spawn this deployment on OS threads (the live driver).
    pub fn spawn_live(&self) -> LiveCluster {
        LiveCluster::new(self)
    }

    /// Spawn this deployment over real UDP loopback sockets (the datagram
    /// driver): same threads and packet-handling logic as
    /// [`spawn_live`](Self::spawn_live), but every packet crosses a
    /// `UdpSocket` through the wire codec, and the spec's
    /// [`link`](Self::link) fault probabilities are injected at the client
    /// and switch sockets (see [`UdpCluster`]).
    pub fn spawn_udp(&self) -> UdpCluster {
        UdpCluster::new(self)
    }
}

/// A synchronous key-value handle onto a running deployment — the same
/// GET/SET surface whether the deployment is simulated or live.
///
/// The required methods take [`Bytes`]: a refcounted handle that requests,
/// retries, and histories can share without copying, so a driver's per-op
/// hot loop allocates nothing. The slice forms ([`get`](Self::get) /
/// [`set`](Self::set)) are borrowed-data conveniences that pay one copy at
/// the boundary.
pub trait KvClient {
    /// Read `key`, blocking (or simulating) until the reply, with retry.
    fn get_bytes(&mut self, key: Bytes) -> Result<Option<Bytes>, LiveError>;

    /// Write `key := value`, blocking (or simulating) until committed, with
    /// retry.
    fn set_bytes(&mut self, key: Bytes, value: Bytes) -> Result<(), LiveError>;

    /// [`get_bytes`](Self::get_bytes), copying the borrowed key once.
    fn get(&mut self, key: &[u8]) -> Result<Option<Bytes>, LiveError> {
        self.get_bytes(Bytes::copy_from_slice(key))
    }

    /// [`set_bytes`](Self::set_bytes), copying the borrowed data once.
    fn set(&mut self, key: &[u8], value: &[u8]) -> Result<(), LiveError> {
        self.set_bytes(Bytes::copy_from_slice(key), Bytes::copy_from_slice(value))
    }
}

/// The runtime surface of a running deployment, common to the simulated and
/// the live driver. Obtain one from [`DeploymentSpec::build_sim`] or
/// [`DeploymentSpec::spawn_live`]; hold it as `Box<dyn Cluster>` to write
/// driver-agnostic harnesses.
pub trait Cluster {
    /// The spec this deployment was built from.
    fn spec(&self) -> &DeploymentSpec;

    /// A synchronous client handle. The simulated implementation advances
    /// virtual time under the hood, so it borrows the cluster exclusively;
    /// the live implementation is backed by its own channel.
    fn client(&mut self) -> Box<dyn KvClient + '_>;

    /// §5.3 step 1: the switch fails. It retains no state and forwards
    /// nothing; in-flight and subsequent requests are lost until a
    /// replacement is activated.
    fn kill_switch(&mut self);

    /// §5.3 steps 2–3: activate a replacement switch under `new_id` (must
    /// exceed every predecessor) and move every replica's lease to it. Step
    /// 4 — fast-path re-enable on the first own-id WRITE-COMPLETION — is the
    /// conflict detector's gating, no orchestration needed.
    fn replace_switch(&mut self, new_id: SwitchId);

    /// Fail-stop replica `r` (§5.3, "handling server failures"): it loses
    /// all state, the switch drops it from the forwarding table, and its
    /// group's membership shrinks to the survivors so the protocol keeps
    /// committing without it.
    fn kill_replica(&mut self, r: ReplicaId);

    /// Bring `r` back as a *fresh, empty* replica. The group's canonical
    /// membership is restored and the switch re-admits `r` **read-gated**:
    /// no read is offloaded to it until it has caught up. The newcomer
    /// performs snapshot + log state transfer from a live peer; when the
    /// transfer completes it reports its applied point and the switch lifts
    /// the gate only if that point has passed the gate-time floor.
    fn restart_replica(&mut self, r: ReplicaId);

    /// Aggregate data-plane counters across every hosted group (`None` if
    /// the switch is down).
    fn switch_stats(&self) -> Option<SwitchStats>;

    /// One group's data-plane counters.
    fn group_stats(&self, group: GroupId) -> Option<SwitchStats>;

    /// Whether the switch currently issues single-replica reads (group 0 —
    /// the whole answer in an unsharded deployment).
    fn fast_path_enabled(&self) -> Option<bool>;

    /// Whether `group`'s fast path is currently enabled.
    fn group_fast_path_enabled(&self, group: GroupId) -> Option<bool>;

    /// Total dirty-set SRAM across every hosted group (§6.3 budget check).
    fn switch_memory_bytes(&self) -> Option<usize>;

    /// The current switch incarnation (`None` if the switch is down).
    fn switch_incarnation(&self) -> Option<SwitchId>;

    /// One unified observability snapshot: switch/spine counters, transport
    /// and pool counters (UDP driver), injected-fault counters, client and
    /// replica counters, and client-observed latency summaries — the same
    /// typed shape from every driver. Render it with
    /// [`prometheus_text`](harmonia_obs::prometheus_text) or
    /// [`json_text`](harmonia_obs::json_text).
    fn obs_snapshot(&self) -> ObsSnapshot;

    /// Every request-lifecycle trace event still held in the deployment's
    /// bounded per-thread trace rings, unsorted. Feed them to
    /// [`format_trace`](harmonia_obs::format_trace) /
    /// [`dump_for_key`](harmonia_obs::dump_for_key) for a per-request
    /// timeline (client send → switch verdict → replica execute → done).
    fn trace_events(&self) -> Vec<TraceEvent>;

    /// Closed-loop scenario driving, expressed once for both drivers: run
    /// each plan on its own logical client and return each client's
    /// completed-operation history, checker-ready (histories are returned
    /// in plan order). Client-id allocation is driver-internal: the sim
    /// gives plan `i` node id `10 + i` (the integration-test convention,
    /// so tests can inspect the actors afterwards); the live driver draws
    /// from its shared client-id counter.
    fn run_plans(&mut self, plans: Vec<Vec<OpSpec>>) -> Vec<Vec<RecordedOp>>;
}

/// A deployment assembled in the deterministic simulator: the spec plus the
/// [`World`] hosting the switch and every group's replicas.
///
/// Beyond the [`Cluster`] surface it exposes the world itself
/// ([`world`](Self::world) / [`world_mut`](Self::world_mut) /
/// [`into_world`](Self::into_world)) for metrics, network shaping, and
/// scheduled fault scripting, plus open-loop/closed-loop load-generator
/// attachment ([`add_open_loop_client`](Self::add_open_loop_client)).
pub struct SimCluster {
    spec: DeploymentSpec,
    world: World<Msg>,
    /// The address clients currently target (moves on `replace_switch`).
    switch: NodeId,
    /// Workload generators attached so far (retargeted on replacement).
    workload_clients: Vec<NodeId>,
    next_client: u32,
    /// Observability: every actor's recorder shards into this registry.
    registry: Registry,
}

impl SimCluster {
    /// The world hosting this deployment.
    pub fn world(&self) -> &World<Msg> {
        &self.world
    }

    /// Mutable world access (network shaping, scheduled controls, metrics).
    pub fn world_mut(&mut self) -> &mut World<Msg> {
        &mut self.world
    }

    /// Unwrap into the bare world.
    pub fn into_world(self) -> World<Msg> {
        self.world
    }

    /// The address client traffic currently targets.
    pub fn client_switch_addr(&self) -> NodeId {
        self.switch
    }

    /// Advance virtual time to `t`.
    pub fn run_until(&mut self, t: Instant) {
        self.world.run_until(t);
    }

    /// Current virtual time.
    pub fn now(&self) -> Instant {
        self.world.now()
    }

    /// The switch actor, if it is up.
    pub fn switch_actor(&self) -> Option<&SwitchActor> {
        if self.world.is_down(self.switch) {
            return None;
        }
        self.world.actor(self.switch)
    }

    /// Attach an open-loop load generator (the paper's DPDK-generator
    /// substitute). Returns its node id. The generator addresses the
    /// current switch; [`replace_switch`](Cluster::replace_switch)
    /// retargets it.
    pub fn add_open_loop_client(
        &mut self,
        client: ClientId,
        rate_rps: f64,
        timeout: Duration,
        source: SourceFn,
    ) -> NodeId {
        let node = NodeId::Client(client);
        let cfg = OpenLoopConfig {
            rate_rps,
            timeout,
            ..OpenLoopConfig::for_deployment(&self.spec)
        };
        self.world.add_node(
            node,
            Box::new(
                OpenLoopClient::new(client, cfg, source).with_recorder(self.registry.handle()),
            ),
        );
        self.workload_clients.push(node);
        node
    }

    /// Attach a closed-loop client that executes `plan` then stops.
    /// Returns its node id.
    pub fn add_closed_loop_client(
        &mut self,
        client: ClientId,
        plan: Vec<OpSpec>,
        timeout: Duration,
    ) -> NodeId {
        let node = NodeId::Client(client);
        let actor = ClosedLoopClient::new(client, self.switch, plan)
            .with_write_replies(self.spec.write_replies())
            .with_timeout(timeout)
            .with_recorder(self.registry.handle());
        self.world.add_node(node, Box::new(actor));
        self.workload_clients.push(node);
        node
    }

    /// [`Cluster::run_plans`] with an explicit per-attempt timeout (the
    /// trait method uses a driver-appropriate default).
    pub fn run_plans_with(
        &mut self,
        plans: Vec<Vec<OpSpec>>,
        timeout: Duration,
    ) -> Vec<Vec<RecordedOp>> {
        let clients: Vec<ClientId> = (0..plans.len()).map(|i| ClientId(10 + i as u32)).collect();
        for (&id, plan) in clients.iter().zip(plans) {
            self.add_closed_loop_client(id, plan, timeout);
        }
        // Advance in chunks until every client finished AND every scheduled
        // control action (failovers, removals) has fired, bounded by a
        // generous 2-second horizon; then drain. Protocol timers would keep
        // ticking harmlessly but expensively, so there is no point
        // simulating dead air — but a control event scheduled after the
        // clients finish must still run.
        let horizon = Instant::ZERO + Duration::from_secs(2);
        loop {
            let next = self.world.now() + Duration::from_millis(10);
            self.world.run_until(next);
            let all_done = clients.iter().all(|&id| {
                self.world
                    .actor::<ClosedLoopClient>(NodeId::Client(id))
                    .is_some_and(|cl| cl.is_done())
            });
            if (all_done && self.world.pending_controls() == 0) || next >= horizon {
                break;
            }
        }
        // Let in-flight protocol traffic (commit broadcasts, chain DOWNs of
        // the final writes) settle so state assertions see quiescence.
        let drain = self.world.now() + Duration::from_millis(20);
        self.world.run_until(drain);
        clients
            .iter()
            .map(|&id| {
                let client: &ClosedLoopClient =
                    self.world.actor(NodeId::Client(id)).expect("client exists");
                assert!(client.is_done(), "client {id:?} still has work");
                client.records.clone()
            })
            .collect()
    }
}

impl Cluster for SimCluster {
    fn spec(&self) -> &DeploymentSpec {
        &self.spec
    }

    fn client(&mut self) -> Box<dyn KvClient + '_> {
        let id = ClientId(self.next_client);
        self.next_client += 1;
        let node = NodeId::Client(id);
        self.world.add_node(
            node,
            Box::new(SimMailbox {
                replies: Vec::new(),
            }),
        );
        Box::new(SimClient {
            cluster: self,
            id,
            node,
            next_request: 0,
            timeout: Duration::from_millis(20),
            retries: 5,
        })
    }

    fn kill_switch(&mut self) {
        self.world.set_down(self.switch);
    }

    fn replace_switch(&mut self, new_id: SwitchId) {
        self.world.set_down(self.switch);
        let new_addr = NodeId::Switch(new_id);
        let mut replacement = self.spec.make_switch(new_id);
        replacement.set_recorder(&self.registry.handle());
        self.world.add_node(new_addr, Box::new(replacement));
        // Configuration service: move the lease (replicas reject fast-path
        // reads from older incarnations from now on).
        for r in 0..self.spec.total_replicas() as u32 {
            let dst = NodeId::Replica(ReplicaId(r));
            self.world.inject(
                NodeId::Controller,
                dst,
                Msg::new(
                    NodeId::Controller,
                    dst,
                    PacketBody::Protocol(ProtocolMsg::Control(ReplicaControlMsg::SetActiveSwitch(
                        new_id,
                    ))),
                ),
            );
        }
        // Clients learn the replacement out of band (harness affordance —
        // in a deployment this is the same L2 address).
        for &c in &self.workload_clients {
            if let Some(cl) = self.world.actor_mut::<OpenLoopClient>(c) {
                cl.set_switch(new_addr);
            } else if let Some(cl) = self.world.actor_mut::<ClosedLoopClient>(c) {
                cl.set_switch(new_addr);
            }
        }
        self.switch = new_addr;
    }

    fn kill_replica(&mut self, r: ReplicaId) {
        self.world.set_down(NodeId::Replica(r));
        self.world.inject(
            NodeId::Controller,
            self.switch,
            Msg::new(
                NodeId::Controller,
                self.switch,
                PacketBody::Control(ControlMsg::RemoveReplica(r)),
            ),
        );
        let members = self.spec.group_members(self.spec.group_of_replica(r));
        let survivors: Vec<ReplicaId> = members.into_iter().filter(|&m| m != r).collect();
        for &s in &survivors {
            let dst = NodeId::Replica(s);
            self.world.inject(
                NodeId::Controller,
                dst,
                Msg::new(
                    NodeId::Controller,
                    dst,
                    PacketBody::Protocol(ProtocolMsg::Control(ReplicaControlMsg::SetMembers(
                        survivors.clone(),
                    ))),
                ),
            );
        }
        // Let the removal land before the caller's next operation.
        let settle = self.world.now() + Duration::from_micros(100);
        self.world.run_until(settle);
    }

    fn restart_replica(&mut self, r: ReplicaId) {
        let group = self.spec.group_of_replica(r);
        let canonical = self.spec.group_members(group);
        let idx = canonical
            .iter()
            .position(|&m| m == r)
            .expect("replica belongs to its group");
        let peer = canonical
            .iter()
            .copied()
            .find(|&m| m != r)
            .expect("restart_replica needs a live peer to transfer from");
        // Switch first: restore the canonical table with the newcomer
        // gated, then the survivors' membership, so no read reaches `r`
        // before its catch-up finishes.
        for ctl in [
            ControlMsg::SetReplicas(canonical.clone()),
            ControlMsg::GateReplica(r),
        ] {
            self.world.inject(
                NodeId::Controller,
                self.switch,
                Msg::new(NodeId::Controller, self.switch, PacketBody::Control(ctl)),
            );
        }
        for &m in &canonical {
            if m == r {
                continue;
            }
            let dst = NodeId::Replica(m);
            self.world.inject(
                NodeId::Controller,
                dst,
                Msg::new(
                    NodeId::Controller,
                    dst,
                    PacketBody::Protocol(ProtocolMsg::Control(ReplicaControlMsg::SetMembers(
                        canonical.clone(),
                    ))),
                ),
            );
        }
        // Let the gate land before the newcomer's transfer can complete.
        let settle = self.world.now() + Duration::from_micros(100);
        self.world.run_until(settle);
        let mut cfg = self.spec.group_config(group, idx);
        // The newcomer must report its catch-up to the *current* switch
        // incarnation, not the one the deployment booted with.
        if let Some(cur) = self.switch_incarnation() {
            cfg.active_switch = cur;
        }
        self.world.replace_node(
            NodeId::Replica(r),
            Box::new(
                ReplicaActor::recovering(build_replica(cfg), self.spec.costs, peer)
                    .with_recorder(self.registry.handle()),
            ),
        );
    }

    fn switch_stats(&self) -> Option<SwitchStats> {
        self.switch_actor().map(|sw| sw.stats())
    }

    fn group_stats(&self, group: GroupId) -> Option<SwitchStats> {
        self.switch_actor().and_then(|sw| sw.group_stats(group))
    }

    fn fast_path_enabled(&self) -> Option<bool> {
        self.group_fast_path_enabled(GroupId(0))
    }

    fn group_fast_path_enabled(&self, group: GroupId) -> Option<bool> {
        self.switch_actor()
            .and_then(|sw| sw.group_detector(group).map(|d| d.fast_path_enabled()))
    }

    fn switch_memory_bytes(&self) -> Option<usize> {
        self.switch_actor().map(|sw| sw.memory_bytes())
    }

    fn switch_incarnation(&self) -> Option<SwitchId> {
        self.switch_actor().map(|sw| sw.incarnation())
    }

    fn obs_snapshot(&self) -> ObsSnapshot {
        let rs = self.registry.snapshot();
        let mut snap = ObsSnapshot {
            driver: "sim",
            protocol: self.spec.protocol.name(),
            groups: self.spec.groups as u32,
            replicas: self.spec.replicas as u32,
            taken_at_ns: self.world.now().nanos(),
            ..ObsSnapshot::default()
        };
        snap.apply_recorder(&rs);
        if let Some(sw) = self.switch_actor() {
            let view = sw.view();
            let (switch, per_group) =
                spine_obs(&view, rs.counter(harmonia_obs::Counter::SwitchSwept));
            snap.switch = switch;
            snap.per_group = per_group;
        }
        let m = self.world.metrics();
        snap.faults = FaultObs {
            dropped: m.counter("net.dropped"),
            duplicated: m.counter("net.duplicated"),
            reordered: m.counter("net.reordered"),
            discarded: m.counter("net.dead_dst") + m.counter("net.down_dst"),
        };
        snap
    }

    fn trace_events(&self) -> Vec<TraceEvent> {
        self.registry.trace_events()
    }

    fn run_plans(&mut self, plans: Vec<Vec<OpSpec>>) -> Vec<Vec<RecordedOp>> {
        self.run_plans_with(plans, Duration::from_millis(5))
    }
}

/// Project a [`SpineView`] into the snapshot's switch sections. `swept` is
/// recorder-side (the sweep happens off the observation path), so the caller
/// supplies it from the merged counters.
pub(crate) fn spine_obs(view: &SpineView, swept: u64) -> (SwitchObs, Vec<GroupObs>) {
    let stats = view.stats();
    let switch = SwitchObs {
        reads_fast_path: stats.reads_fast_path,
        reads_normal: stats.reads_normal,
        writes_forwarded: stats.writes_forwarded,
        writes_dropped: stats.writes_dropped,
        completions: stats.completions,
        forwarded_other: stats.forwarded_other,
        swept,
        fast_path_groups: view.fast_path_groups() as u64,
        dirty_len: view.dirty_len() as u64,
        memory_bytes: view.memory_bytes() as u64,
    };
    let per_group = view
        .groups()
        .iter()
        .map(|o| GroupObs {
            group: o.group.0,
            reads_fast_path: o.stats.reads_fast_path,
            reads_normal: o.stats.reads_normal,
            writes_forwarded: o.stats.writes_forwarded,
            writes_dropped: o.stats.writes_dropped,
            fast_path_enabled: o.fast_path_enabled,
            dirty_len: o.dirty_len as u64,
            memory_bytes: o.memory_bytes as u64,
        })
        .collect();
    (switch, per_group)
}

/// Reply collector for [`SimClient`].
struct SimMailbox {
    replies: Vec<ClientReply>,
}

impl Actor<Msg> for SimMailbox {
    fn on_message(&mut self, _ctx: &mut Context<'_, Msg>, _from: NodeId, msg: Msg) {
        if let PacketBody::Reply(reply) = msg.body {
            self.replies.push(reply);
        }
    }
}

/// The simulated [`KvClient`]: each operation injects a request and advances
/// virtual time until enough replies arrive (or the virtual timeout passes,
/// then retries — the same envelope as the live client, under virtual time).
struct SimClient<'a> {
    cluster: &'a mut SimCluster,
    id: ClientId,
    node: NodeId,
    next_request: u64,
    timeout: Duration,
    retries: u32,
}

impl SimClient<'_> {
    fn run_op(
        &mut self,
        kind: OpKind,
        key: Bytes,
        value: Option<Bytes>,
    ) -> Result<Option<Bytes>, LiveError> {
        // One request id per logical operation, reused across retries, so
        // the replicas' exactly-once session layer dedups re-executions —
        // the same contract as `LiveClient` and the closed-loop client.
        let rid = RequestId(self.next_request);
        self.next_request += 1;
        for _attempt in 0..=self.retries {
            let req = match kind {
                OpKind::Read => ClientRequest::read(self.id, rid, key.clone()),
                OpKind::Write => ClientRequest::write(
                    self.id,
                    rid,
                    key.clone(),
                    value.clone().unwrap_or_default(),
                ),
            };
            let switch = self.cluster.switch;
            self.cluster.world.inject(
                self.node,
                switch,
                Msg::new(self.node, switch, PacketBody::Request(req)),
            );
            if let Some(result) = self.await_replies(kind, rid) {
                return Ok(result);
            }
            // timed out or rejected: retry
        }
        Err(LiveError::TimedOut)
    }

    /// Advance virtual time until enough replies to `rid` arrive.
    /// `Some(v)` = completed, `None` = retry-worthy failure. Write quorums
    /// count *distinct repliers*: retries reuse the request id, so a late
    /// original reply plus a deduplicated re-send must not count twice.
    fn await_replies(&mut self, kind: OpKind, rid: RequestId) -> Option<Option<Bytes>> {
        let needed = match kind {
            OpKind::Read => 1,
            OpKind::Write => self.cluster.spec.write_replies(),
        };
        let deadline = self.cluster.world.now() + self.timeout;
        let mut repliers: Vec<ReplicaId> = Vec::new();
        let mut result = None;
        while self.cluster.world.now() < deadline {
            let step = (self.cluster.world.now() + Duration::from_micros(50)).min(deadline);
            self.cluster.world.run_until(step);
            let mailbox = self
                .cluster
                .world
                .actor_mut::<SimMailbox>(self.node)
                .expect("mailbox exists");
            for reply in std::mem::take(&mut mailbox.replies) {
                if reply.request != rid {
                    continue; // stale reply from an earlier operation
                }
                match reply.write_outcome {
                    Some(WriteOutcome::Rejected) | Some(WriteOutcome::DroppedBySwitch) => {
                        return None;
                    }
                    _ => {}
                }
                if reply.value.is_some() {
                    result = reply.value;
                }
                if !repliers.contains(&reply.from) {
                    repliers.push(reply.from);
                }
                if repliers.len() >= needed {
                    return Some(result);
                }
            }
        }
        None
    }
}

impl KvClient for SimClient<'_> {
    fn get_bytes(&mut self, key: Bytes) -> Result<Option<Bytes>, LiveError> {
        self.run_op(OpKind::Read, key, None)
    }

    fn set_bytes(&mut self, key: Bytes, value: Bytes) -> Result<(), LiveError> {
        self.run_op(OpKind::Write, key, Some(value)).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::metrics;
    use rand::Rng;

    fn run_mixed(protocol: ProtocolKind, harmonia: bool, rate: f64, millis: u64) -> (u64, u64) {
        let mut sim = DeploymentSpec::new()
            .protocol(protocol)
            .harmonia(harmonia)
            .build_sim();
        let source: SourceFn = Box::new(|rng| {
            let key = Bytes::from(format!("key-{}", rng.gen_range(0..1000u32)));
            if rng.gen_bool(0.05) {
                OpSpec::write(key, Bytes::from_static(b"value"))
            } else {
                OpSpec::read(key)
            }
        });
        sim.add_open_loop_client(ClientId(1), rate, Duration::from_millis(10), source);
        sim.run_until(Instant::ZERO + Duration::from_millis(millis));
        (
            sim.world().metrics().counter(metrics::READ_DONE),
            sim.world().metrics().counter(metrics::WRITE_DONE),
        )
    }

    #[test]
    fn every_protocol_serves_a_light_mixed_workload() {
        for protocol in [
            ProtocolKind::PrimaryBackup,
            ProtocolKind::Chain,
            ProtocolKind::Craq,
            ProtocolKind::Vr,
            ProtocolKind::Nopaxos,
        ] {
            for harmonia in [false, true] {
                if protocol == ProtocolKind::Craq && harmonia {
                    continue; // CRAQ is baseline-only
                }
                let (reads, writes) = run_mixed(protocol, harmonia, 50_000.0, 20);
                assert!(
                    reads > 700,
                    "{protocol:?} harmonia={harmonia}: reads={reads}"
                );
                assert!(
                    writes > 20,
                    "{protocol:?} harmonia={harmonia}: writes={writes}"
                );
            }
        }
    }

    #[test]
    fn harmonia_chain_outperforms_baseline_on_read_heavy_load() {
        // Offered read load well beyond one server's 0.92 MQPS capacity:
        // baseline CR is capped at the tail, Harmonia spreads over 3.
        let (base_reads, _) = run_mixed(ProtocolKind::Chain, false, 2_400_000.0, 20);
        let (harm_reads, _) = run_mixed(ProtocolKind::Chain, true, 2_400_000.0, 20);
        let ratio = harm_reads as f64 / base_reads.max(1) as f64;
        assert!(
            ratio > 2.0,
            "expected ≈3× read scaling, got {ratio:.2} ({harm_reads} vs {base_reads})"
        );
    }

    #[test]
    fn write_replies_quorum_only_for_nopaxos() {
        let spec = DeploymentSpec::new()
            .protocol(ProtocolKind::Nopaxos)
            .replicas(5);
        assert_eq!(spec.write_replies(), 3);
        assert_eq!(spec.protocol(ProtocolKind::Chain).write_replies(), 1);
    }

    #[test]
    fn replica_ids_are_disjoint_and_contiguous() {
        let spec = DeploymentSpec::new().groups(3);
        let all: Vec<u32> = (0..3)
            .flat_map(|g| spec.group_members(g))
            .map(|r| r.0)
            .collect();
        assert_eq!(all, (0..9).collect::<Vec<u32>>());
        assert_eq!(spec.group_members(2)[0], ReplicaId(6));
        assert_eq!(spec.total_replicas(), 9);
        assert_eq!(spec.group_of_replica(ReplicaId(7)), 2);
    }

    #[test]
    fn spine_memory_accounting_scales_with_group_count() {
        let one = DeploymentSpec::new().build_sim();
        let four = DeploymentSpec::new().groups(4).build_sim();
        let m1 = one.switch_memory_bytes().unwrap();
        let m4 = four.switch_memory_bytes().unwrap();
        assert_eq!(m4, 4 * m1);
        assert_eq!(four.switch_actor().unwrap().group_count(), 4);
    }

    #[test]
    fn sim_client_round_trips_through_virtual_time() {
        let mut sim = DeploymentSpec::new().build_sim();
        let mut client = sim.client();
        assert_eq!(client.get(b"missing").unwrap(), None);
        client.set(b"alpha", b"1").unwrap();
        client.set(b"alpha", b"2").unwrap();
        assert_eq!(
            client.get(b"alpha").unwrap(),
            Some(Bytes::from_static(b"2"))
        );
        drop(client);
        assert!(sim.now() > Instant::ZERO, "virtual time advanced");
        assert!(sim.fast_path_enabled().unwrap());
    }

    #[test]
    fn sim_failover_verbs_match_the_live_vocabulary() {
        let mut sim = DeploymentSpec::new().build_sim();
        {
            let mut client = sim.client();
            client.set(b"warm", b"1").unwrap();
        }
        assert_eq!(sim.fast_path_enabled(), Some(true));
        assert_eq!(sim.switch_incarnation(), Some(SwitchId(1)));

        sim.kill_switch();
        assert_eq!(sim.switch_stats(), None);
        {
            let mut client = sim.client();
            assert!(client.get(b"warm").is_err(), "no switch, no service");
        }

        sim.replace_switch(SwitchId(2));
        assert_eq!(sim.switch_incarnation(), Some(SwitchId(2)));
        assert_eq!(sim.fast_path_enabled(), Some(false));
        {
            let mut client = sim.client();
            assert_eq!(client.get(b"warm").unwrap(), Some(Bytes::from_static(b"1")));
            client.set(b"rearm", b"2").unwrap();
        }
        assert_eq!(sim.fast_path_enabled(), Some(true));
    }

    #[test]
    fn sharded_world_serves_a_mixed_workload_on_every_group() {
        let mut sim = DeploymentSpec::new().groups(4).build_sim();
        let source: SourceFn = Box::new(|rng| {
            let key = Bytes::from(format!("key-{}", rng.gen_range(0..2000u32)));
            if rng.gen_bool(0.1) {
                OpSpec::write(key, Bytes::from_static(b"value"))
            } else {
                OpSpec::read(key)
            }
        });
        sim.add_open_loop_client(ClientId(1), 100_000.0, Duration::from_millis(10), source);
        sim.run_until(Instant::ZERO + Duration::from_millis(20));
        assert!(sim.world().metrics().counter(metrics::READ_DONE) > 1000);
        assert!(sim.world().metrics().counter(metrics::WRITE_DONE) > 50);
        for g in 0..4 {
            let stats = sim.group_stats(GroupId(g)).unwrap();
            assert!(
                stats.writes_forwarded > 0,
                "group {g} never saw a write: {stats:?}"
            );
            assert!(
                stats.reads_fast_path + stats.reads_normal > 0,
                "group {g} never saw a read: {stats:?}"
            );
        }
    }

    #[test]
    fn single_group_stats_equal_aggregate_stats() {
        // groups = 1 must behave exactly like the classic rack deployment:
        // the shard map is the identity onto group 0.
        let mut sim = DeploymentSpec::new().build_sim();
        let source: SourceFn = Box::new(|rng| {
            let key = Bytes::from(format!("key-{}", rng.gen_range(0..100u32)));
            if rng.gen_bool(0.1) {
                OpSpec::write(key, Bytes::from_static(b"v"))
            } else {
                OpSpec::read(key)
            }
        });
        sim.add_open_loop_client(ClientId(1), 50_000.0, Duration::from_millis(10), source);
        sim.run_until(Instant::ZERO + Duration::from_millis(10));
        assert_eq!(sim.switch_stats(), sim.group_stats(GroupId(0)));
        assert!(sim.world().metrics().counter(metrics::READ_DONE) > 300);
    }
}
