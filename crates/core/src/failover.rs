//! Failure orchestration — the §5.3 sequences, scripted onto a simulation.
//!
//! Switch replacement follows the paper exactly:
//!
//! 1. the failed switch stops forwarding (throughput collapses — Figure 10);
//! 2. the operator activates a replacement with a **fresh, larger switch
//!    id** and no soft state;
//! 3. the configuration service tells every replica to honour fast-path
//!    reads only from the new incarnation (the lease moves, monotonically);
//! 4. the new switch forwards everything through the normal protocol until
//!    the first WRITE-COMPLETION bearing its own id proves its dirty set and
//!    last-committed point current — then single-replica reads resume.
//!
//! Steps 1–2 are world mutations; 3 is control traffic; 4 is the
//! [`ConflictDetector`]'s gating, no orchestration needed.
//!
//! These helpers script the sequence at a *future virtual time* on a
//! running world (mid-workload fault injection). For the immediate form —
//! and for the live driver, where the same verbs are the only form — use
//! [`Cluster::kill_switch`](crate::deployment::Cluster::kill_switch) and
//! [`Cluster::replace_switch`](crate::deployment::Cluster::replace_switch).
//!
//! [`ConflictDetector`]: harmonia_switch::ConflictDetector

use harmonia_replication::{build_replica, messages::ReplicaControlMsg, ProtocolMsg};
use harmonia_sim::World;
use harmonia_types::{ControlMsg, Duration, Instant, NodeId, PacketBody, ReplicaId, SwitchId};

use crate::client::{ClosedLoopClient, OpenLoopClient};
use crate::deployment::DeploymentSpec;
use crate::msg::Msg;
use crate::replica_actor::ReplicaActor;

/// Stop a switch at `at`: it retains no state and forwards nothing.
pub fn schedule_switch_failure(world: &mut World<Msg>, at: Instant, switch: NodeId) {
    world.schedule_control(at, move |w| {
        w.set_down(switch);
    });
}

/// Activate a replacement switch at `at` with incarnation `new_id`,
/// re-point every replica's lease and every listed client at it. Hosts
/// every group of the deployment (fresh dirty sets and sequence spaces).
pub fn schedule_switch_replacement(
    world: &mut World<Msg>,
    at: Instant,
    spec: &DeploymentSpec,
    new_id: SwitchId,
    clients: Vec<NodeId>,
) {
    let spec = spec.clone();
    world.schedule_control(at, move |w| {
        let new_addr = NodeId::Switch(new_id);
        w.add_node(new_addr, Box::new(spec.make_switch(new_id)));
        // Configuration service: move the lease (replicas reject fast-path
        // reads from older incarnations from now on) and retarget replies.
        for i in 0..spec.total_replicas() as u32 {
            let dst = NodeId::Replica(ReplicaId(i));
            w.inject(
                NodeId::Controller,
                dst,
                Msg::new(
                    NodeId::Controller,
                    dst,
                    PacketBody::Protocol(ProtocolMsg::Control(ReplicaControlMsg::SetActiveSwitch(
                        new_id,
                    ))),
                ),
            );
        }
        // Clients learn the replacement out of band (harness affordance —
        // in a deployment this is the same L2 address).
        for c in clients {
            if let Some(cl) = w.actor_mut::<OpenLoopClient>(c) {
                cl.set_switch(new_addr);
            } else if let Some(cl) = w.actor_mut::<ClosedLoopClient>(c) {
                cl.set_switch(new_addr);
            }
        }
    });
}

/// Remove a failed replica at `at`: take it offline, drop it from the
/// switch's forwarding table, and shrink its group's membership (§5.3,
/// "handling server failures"). Only the failed replica's group is touched.
pub fn schedule_replica_removal(
    world: &mut World<Msg>,
    at: Instant,
    spec: &DeploymentSpec,
    switch: NodeId,
    failed: ReplicaId,
) {
    let members = spec.group_members(spec.group_of_replica(failed));
    world.schedule_control(at, move |w| {
        w.set_down(NodeId::Replica(failed));
        w.inject(
            NodeId::Controller,
            switch,
            Msg::new(
                NodeId::Controller,
                switch,
                PacketBody::Control(ControlMsg::RemoveReplica(failed)),
            ),
        );
        let survivors: Vec<ReplicaId> = members.into_iter().filter(|&r| r != failed).collect();
        for &r in &survivors {
            let dst = NodeId::Replica(r);
            w.inject(
                NodeId::Controller,
                dst,
                Msg::new(
                    NodeId::Controller,
                    dst,
                    PacketBody::Protocol(ProtocolMsg::Control(ReplicaControlMsg::SetMembers(
                        survivors.clone(),
                    ))),
                ),
            );
        }
    });
}

/// Restart a previously removed replica at `at` as a fresh, empty node:
/// the switch re-admits it **read-gated** and its group's canonical
/// membership is restored; shortly after (one settle interval, so the gate
/// is in place first) the newcomer is spawned in recovering mode and
/// catches up via snapshot + log state transfer from a live peer. The gate
/// lifts when the transfer's completion report proves the newcomer's
/// applied point has passed the gate-time floor.
pub fn schedule_replica_recovery(
    world: &mut World<Msg>,
    at: Instant,
    spec: &DeploymentSpec,
    switch: NodeId,
    replica: ReplicaId,
) {
    let spec = spec.clone();
    world.schedule_control(at, move |w| {
        let group = spec.group_of_replica(replica);
        let canonical = spec.group_members(group);
        let idx = canonical
            .iter()
            .position(|&m| m == replica)
            .expect("replica belongs to its group");
        let peer = canonical
            .iter()
            .copied()
            .find(|&m| m != replica)
            .expect("recovery needs a live peer to transfer from");
        for ctl in [
            ControlMsg::SetReplicas(canonical.clone()),
            ControlMsg::GateReplica(replica),
        ] {
            w.inject(
                NodeId::Controller,
                switch,
                Msg::new(NodeId::Controller, switch, PacketBody::Control(ctl)),
            );
        }
        for &m in &canonical {
            if m == replica {
                continue;
            }
            let dst = NodeId::Replica(m);
            w.inject(
                NodeId::Controller,
                dst,
                Msg::new(
                    NodeId::Controller,
                    dst,
                    PacketBody::Protocol(ProtocolMsg::Control(ReplicaControlMsg::SetMembers(
                        canonical.clone(),
                    ))),
                ),
            );
        }
        let mut cfg = spec.group_config(group, idx);
        // Report catch-up to the incarnation the caller targeted, not the
        // one the deployment booted with.
        if let NodeId::Switch(id) = switch {
            cfg.active_switch = id;
        }
        let costs = spec.costs;
        let settle = w.now() + Duration::from_micros(200);
        w.schedule_control(settle, move |w| {
            w.replace_node(
                NodeId::Replica(replica),
                Box::new(ReplicaActor::recovering(build_replica(cfg), costs, peer)),
            );
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{metrics, OpSpec, SourceFn};
    use crate::switch_actor::SwitchActor;
    use bytes::Bytes;
    use harmonia_types::{ClientId, Duration};
    use rand::Rng;

    fn mixed_source() -> SourceFn {
        Box::new(|rng| {
            let key = Bytes::from(format!("key-{}", rng.gen_range(0..500u32)));
            if rng.gen_bool(0.05) {
                OpSpec::write(key, Bytes::from_static(b"v"))
            } else {
                OpSpec::read(key)
            }
        })
    }

    #[test]
    fn switch_failover_restores_fast_path_after_first_completion() {
        let spec = DeploymentSpec::new();
        let mut sim = spec.build_sim();
        let client = sim.add_open_loop_client(
            ClientId(1),
            100_000.0,
            Duration::from_millis(5),
            mixed_source(),
        );
        let t = |ms| Instant::ZERO + Duration::from_millis(ms);
        schedule_switch_failure(sim.world_mut(), t(10), spec.switch_addr());
        schedule_switch_replacement(sim.world_mut(), t(15), &spec, SwitchId(2), vec![client]);

        // Phase 1: normal operation.
        sim.run_until(t(10));
        let before = sim.world().metrics().counter(metrics::READ_DONE);
        assert!(before > 500);

        // Phase 2: outage — nothing completes (allow 1 ms for replies that
        // were already in flight toward clients when the switch died).
        sim.run_until(t(11));
        sim.world_mut().metrics_mut().reset();
        sim.run_until(t(15));
        assert_eq!(sim.world().metrics().counter(metrics::READ_DONE), 0);

        // Phase 3: replacement active; traffic flows again and the new
        // incarnation's fast path turns on after the first completion.
        sim.world_mut().metrics_mut().reset();
        sim.run_until(t(40));
        let after = sim.world().metrics().counter(metrics::READ_DONE);
        assert!(after > 1000, "after={after}");
        let sw: &SwitchActor = sim.world().actor(NodeId::Switch(SwitchId(2))).unwrap();
        assert!(sw.detector().fast_path_enabled());
        assert!(sw.stats().reads_fast_path > 0);
        assert_eq!(sw.incarnation(), SwitchId(2));
    }

    #[test]
    fn replica_removal_keeps_chain_serving() {
        let spec = DeploymentSpec::new();
        let mut sim = spec.build_sim();
        sim.add_open_loop_client(
            ClientId(1),
            50_000.0,
            Duration::from_millis(5),
            mixed_source(),
        );
        let t = |ms| Instant::ZERO + Duration::from_millis(ms);
        // Kill the tail (replica 2) at 10 ms.
        schedule_replica_removal(
            sim.world_mut(),
            t(10),
            &spec,
            spec.switch_addr(),
            ReplicaId(2),
        );
        sim.run_until(t(12));
        sim.world_mut().metrics_mut().reset();
        sim.run_until(t(30));
        let reads = sim.world().metrics().counter(metrics::READ_DONE);
        let writes = sim.world().metrics().counter(metrics::WRITE_DONE);
        assert!(reads > 400, "reads={reads}");
        assert!(writes > 20, "writes={writes}");
    }

    #[test]
    fn replica_recovery_transfers_state_and_lifts_the_read_gate() {
        let spec = DeploymentSpec::new();
        let mut sim = spec.build_sim();
        sim.add_open_loop_client(
            ClientId(1),
            50_000.0,
            Duration::from_millis(5),
            mixed_source(),
        );
        let t = |ms| Instant::ZERO + Duration::from_millis(ms);
        // Kill the tail at 5 ms, bring it back at 12 ms.
        schedule_replica_removal(
            sim.world_mut(),
            t(5),
            &spec,
            spec.switch_addr(),
            ReplicaId(2),
        );
        schedule_replica_recovery(
            sim.world_mut(),
            t(12),
            &spec,
            spec.switch_addr(),
            ReplicaId(2),
        );
        sim.run_until(t(30));

        // The transfer finished, the newcomer holds real state, and the
        // switch lifted its read gate.
        let actor: &crate::replica_actor::ReplicaActor = sim
            .world()
            .actor(NodeId::Replica(ReplicaId(2)))
            .expect("replaced node exists");
        assert!(!actor.is_recovering(), "transfer still in flight");
        assert!(
            actor.replica().applied_seq() > harmonia_types::SwitchSeq::ZERO,
            "recovered tail applied nothing"
        );
        let sw: &SwitchActor = sim.world().actor(spec.switch_addr()).unwrap();
        assert!(!sw.is_gated(ReplicaId(2)), "gate never lifted");

        // Service kept flowing after the recovery.
        sim.world_mut().metrics_mut().reset();
        sim.run_until(t(50));
        let reads = sim.world().metrics().counter(metrics::READ_DONE);
        let writes = sim.world().metrics().counter(metrics::WRITE_DONE);
        assert!(reads > 400, "reads={reads}");
        assert!(writes > 20, "writes={writes}");
    }
}
