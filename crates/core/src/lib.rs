//! Harmonia cluster assembly: the switch actor, replica actors, client
//! library, failure orchestration, and the two drivers.
//!
//! The pieces from the other crates meet here:
//!
//! * [`switch_actor::SwitchActor`] wires the conflict detector, forwarding
//!   table, and NOPaxos sequencer from `harmonia-switch` into a node that
//!   processes every packet of the rack (Figure 1 of the paper).
//! * [`replica_actor::ReplicaActor`] runs any `harmonia-replication` state
//!   machine behind the calibrated service-cost model ([`msg::CostModel`]).
//! * [`client`] provides an open-loop load generator (the DPDK-generator
//!   substitute) and a closed-loop client that records histories for
//!   linearizability checking.
//! * [`cluster`] builds a full simulated deployment in one call;
//!   [`sharded`] builds the §6.3 multi-group deployment (N replica groups
//!   sharing one spine switch, keyspace partitioned by [`ShardMap`]);
//!   [`failover`] scripts the §5.3 switch failure/replacement sequence and
//!   server removal.
//!
//! [`ShardMap`]: harmonia_workload::ShardMap
//! * [`live`] runs the very same state machines on OS threads connected by
//!   channels — the "it's a real system, not only a simulator" driver.

pub mod client;
pub mod cluster;
pub mod failover;
pub mod live;
pub mod msg;
pub mod replica_actor;
pub mod sharded;
pub mod switch_actor;

pub use client::{ClosedLoopClient, OpSpec, OpenLoopClient, OpenLoopConfig, RecordedOp};
pub use cluster::{add_open_loop_client, build_world, ClusterConfig};
pub use live::{LiveCluster, ShardedLiveCluster};
pub use msg::{CostModel, Msg};
pub use replica_actor::ReplicaActor;
pub use sharded::{add_sharded_open_loop_client, build_sharded_world, ShardedClusterConfig};
pub use switch_actor::{SwitchActor, SwitchMode};
