//! Harmonia cluster assembly: the switch actor, replica actors, client
//! library, failure orchestration, and the two drivers behind one API.
//!
//! The pieces from the other crates meet here:
//!
//! * [`deployment`] is the public face: one [`DeploymentSpec`] describes any
//!   deployment shape (unsharded is `groups(1)`, the §6.3 sharded
//!   deployment is `groups(n)`), and the [`Cluster`] trait is the uniform
//!   runtime surface over both drivers — [`DeploymentSpec::build_sim`]
//!   returns the deterministic-sim implementation,
//!   [`DeploymentSpec::spawn_live`] the threaded one.
//! * [`switch_actor::SwitchActor`] wires the conflict detector, forwarding
//!   table, and NOPaxos sequencer from `harmonia-switch` into a node that
//!   processes every packet of the rack (Figure 1 of the paper).
//! * [`replica_actor::ReplicaActor`] runs any `harmonia-replication` state
//!   machine behind the calibrated service-cost model ([`msg::CostModel`]).
//! * [`client`] provides an open-loop load generator (the DPDK-generator
//!   substitute) and a closed-loop client that records histories for
//!   linearizability checking.
//! * [`failover`] scripts the §5.3 switch failure/replacement sequence and
//!   server removal at future virtual times; the immediate forms are the
//!   [`Cluster`] verbs.
//! * [`live`] runs the very same state machines on OS threads connected by
//!   channels — the "it's a real system, not only a simulator" driver. Its
//!   data plane is parallel: one pipeline thread per replica group, each
//!   exclusively owning that group's [`switch_actor::GroupCore`], behind a
//!   stateless shard-routing spine — no lock on the packet path.
//! * [`udp`] runs those same threads over real `UdpSocket` loopback
//!   datagrams ([`DeploymentSpec::spawn_udp`]): the `harmonia-net`
//!   transport, the wire codec on every hop, and seeded loss/duplication/
//!   reordering at the socket boundary.

#![forbid(unsafe_code)]

pub mod client;
pub mod deployment;
pub mod failover;
pub mod live;
pub mod msg;
pub mod replica_actor;
pub mod switch_actor;
pub mod udp;

pub use client::{ClosedLoopClient, OpSpec, OpenLoopClient, OpenLoopConfig, RecordedOp};
pub use deployment::{Cluster, DeploymentSpec, KvClient, SimCluster};
pub use live::{LiveClient, LiveCluster, LiveError};
pub use msg::{CostModel, Msg};
pub use replica_actor::ReplicaActor;
pub use switch_actor::{GroupCore, SwitchActor, SwitchCore, SwitchMode};
pub use udp::UdpCluster;
