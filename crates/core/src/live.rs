//! The live driver: the same state machines on OS threads.
//!
//! Every node — the switch and each replica — runs on its own thread,
//! connected by crossbeam channels (the "links"). Nothing in the protocol
//! or switch logic changes relative to the simulation; only the driver
//! differs. This is the deployment mode the examples use, demonstrating the
//! library runs as a real in-process storage service, not only under
//! virtual time.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration as StdDuration, Instant as StdInstant};

use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::RwLock;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use harmonia_replication::{build_replica, Effects, GroupConfig, Replica};
use harmonia_types::{
    ClientId, ClientRequest, NodeId, OpKind, PacketBody, ReplicaId, RequestId, SwitchId,
    WriteOutcome,
};

use crate::cluster::ClusterConfig;
use crate::msg::Msg;
use crate::switch_actor::SwitchCore;

enum Envelope {
    Packet(Msg),
    Stop,
}

#[derive(Default)]
struct Router {
    routes: RwLock<HashMap<NodeId, Sender<Envelope>>>,
}

impl Router {
    fn register(&self, node: NodeId, tx: Sender<Envelope>) {
        self.routes.write().insert(node, tx);
    }

    fn send(&self, to: NodeId, msg: Msg) {
        if let Some(tx) = self.routes.read().get(&to) {
            let _ = tx.send(Envelope::Packet(msg));
        }
    }
}

/// Errors a live client can observe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LiveError {
    /// No (complete) reply within the deadline, after all retries.
    TimedOut,
    /// The cluster is shutting down.
    Disconnected,
}

impl std::fmt::Display for LiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LiveError::TimedOut => write!(f, "request timed out"),
            LiveError::Disconnected => write!(f, "cluster is shut down"),
        }
    }
}

impl std::error::Error for LiveError {}

/// A synchronous client handle onto a [`LiveCluster`].
pub struct LiveClient {
    id: ClientId,
    router: Arc<Router>,
    rx: Receiver<Envelope>,
    switch: NodeId,
    write_replies: usize,
    timeout: StdDuration,
    retries: u32,
    next_request: u64,
}

impl LiveClient {
    /// Read `key`, blocking until the reply (with retry).
    pub fn get(&mut self, key: impl Into<Bytes>) -> Result<Option<Bytes>, LiveError> {
        let key = key.into();
        self.run_op(OpKind::Read, key, None)
    }

    /// Write `key := value`, blocking until committed (with retry).
    pub fn set(&mut self, key: impl Into<Bytes>, value: impl Into<Bytes>) -> Result<(), LiveError> {
        let (key, value) = (key.into(), value.into());
        self.run_op(OpKind::Write, key, Some(value)).map(|_| ())
    }

    fn run_op(
        &mut self,
        kind: OpKind,
        key: Bytes,
        value: Option<Bytes>,
    ) -> Result<Option<Bytes>, LiveError> {
        for _attempt in 0..=self.retries {
            let rid = RequestId(self.next_request);
            self.next_request += 1;
            let req = match kind {
                OpKind::Read => ClientRequest::read(self.id, rid, key.clone()),
                OpKind::Write => ClientRequest::write(
                    self.id,
                    rid,
                    key.clone(),
                    value.clone().unwrap_or_default(),
                ),
            };
            self.router.send(
                self.switch,
                Msg::new(
                    NodeId::Client(self.id),
                    self.switch,
                    PacketBody::Request(req),
                ),
            );
            match self.await_replies(kind, rid)? {
                Some(result) => return Ok(result),
                None => continue, // timed out or rejected: retry
            }
        }
        Err(LiveError::TimedOut)
    }

    /// Wait for enough replies to `rid`. `Ok(Some(v))` = completed,
    /// `Ok(None)` = retry-worthy failure.
    #[allow(clippy::type_complexity)]
    fn await_replies(
        &mut self,
        kind: OpKind,
        rid: RequestId,
    ) -> Result<Option<Option<Bytes>>, LiveError> {
        let needed = match kind {
            OpKind::Read => 1,
            OpKind::Write => self.write_replies,
        };
        let deadline = StdInstant::now() + self.timeout;
        let mut got = 0;
        let mut result = None;
        loop {
            let now = StdInstant::now();
            if now >= deadline {
                return Ok(None);
            }
            match self.rx.recv_timeout(deadline - now) {
                Ok(Envelope::Packet(msg)) => {
                    let PacketBody::Reply(reply) = msg.body else {
                        continue;
                    };
                    if reply.request != rid {
                        continue; // stale reply from an earlier attempt
                    }
                    match reply.write_outcome {
                        Some(WriteOutcome::Rejected) | Some(WriteOutcome::DroppedBySwitch) => {
                            return Ok(None);
                        }
                        _ => {}
                    }
                    got += 1;
                    if reply.value.is_some() {
                        result = reply.value;
                    }
                    if got >= needed {
                        return Ok(Some(result));
                    }
                }
                Ok(Envelope::Stop) => return Err(LiveError::Disconnected),
                Err(RecvTimeoutError::Timeout) => return Ok(None),
                Err(RecvTimeoutError::Disconnected) => return Err(LiveError::Disconnected),
            }
        }
    }
}

/// An in-process cluster on OS threads.
pub struct LiveCluster {
    router: Arc<Router>,
    switch: NodeId,
    write_replies: usize,
    threads: Vec<(Sender<Envelope>, JoinHandle<()>)>,
    next_client: AtomicU32,
}

impl LiveCluster {
    /// Spawn the switch and replica threads for `cfg`.
    pub fn spawn(cfg: &ClusterConfig) -> Self {
        let router = Arc::new(Router::default());
        let mut threads = Vec::new();

        // Switch thread.
        let switch_addr = cfg.switch_addr();
        let (sw_tx, sw_rx) = unbounded::<Envelope>();
        router.register(switch_addr, sw_tx.clone());
        {
            let router = Arc::clone(&router);
            let mut core = SwitchCore::new_for(cfg, SwitchId(1));
            let sweep = cfg
                .sweep_interval
                .map(|d| d.to_std())
                .unwrap_or(StdDuration::from_millis(10));
            let handle = std::thread::Builder::new()
                .name("harmonia-switch".into())
                .spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(0x5717c4);
                    let mut out = Vec::new();
                    loop {
                        match sw_rx.recv_timeout(sweep) {
                            Ok(Envelope::Packet(msg)) => {
                                core.handle(switch_addr, msg, &mut rng, &mut out);
                                for (dst, m) in out.drain(..) {
                                    router.send(dst, m);
                                }
                            }
                            Ok(Envelope::Stop) => break,
                            Err(RecvTimeoutError::Timeout) => {
                                core.sweep();
                            }
                            Err(RecvTimeoutError::Disconnected) => break,
                        }
                    }
                })
                .expect("spawn switch thread");
            threads.push((sw_tx, handle));
        }

        // Replica threads.
        for i in 0..cfg.replicas as u32 {
            let me = NodeId::Replica(ReplicaId(i));
            let (tx, rx) = unbounded::<Envelope>();
            router.register(me, tx.clone());
            let router2 = Arc::clone(&router);
            let group = GroupConfig {
                protocol: cfg.protocol,
                me: ReplicaId(i),
                members: (0..cfg.replicas as u32).map(ReplicaId).collect(),
                harmonia: cfg.harmonia,
                active_switch: SwitchId(1),
                sync_interval: cfg.sync_interval,
            };
            let handle = std::thread::Builder::new()
                .name(format!("harmonia-replica-{i}"))
                .spawn(move || replica_main(me, build_replica(group), rx, router2))
                .expect("spawn replica thread");
            threads.push((tx, handle));
        }

        LiveCluster {
            router,
            switch: switch_addr,
            write_replies: cfg.write_replies(),
            threads,
            next_client: AtomicU32::new(1),
        }
    }

    /// Create a synchronous client handle.
    pub fn client(&self) -> LiveClient {
        let id = ClientId(self.next_client.fetch_add(1, Ordering::Relaxed));
        let (tx, rx) = bounded::<Envelope>(1024);
        self.router.register(NodeId::Client(id), tx);
        LiveClient {
            id,
            router: Arc::clone(&self.router),
            rx,
            switch: self.switch,
            write_replies: self.write_replies,
            timeout: StdDuration::from_millis(200),
            retries: 5,
            next_request: 0,
        }
    }

    /// Stop every thread and wait for them.
    pub fn shutdown(self) {
        for (tx, _) in &self.threads {
            let _ = tx.send(Envelope::Stop);
        }
        for (_, handle) in self.threads {
            let _ = handle.join();
        }
    }
}

fn replica_main(
    me: NodeId,
    mut replica: Box<dyn Replica>,
    rx: Receiver<Envelope>,
    router: Arc<Router>,
) {
    let tick = replica.tick_interval().map(|d| d.to_std());
    let mut next_tick = tick.map(|t| StdInstant::now() + t);
    loop {
        let wait = match next_tick {
            Some(at) => at.saturating_duration_since(StdInstant::now()),
            None => StdDuration::from_millis(50),
        };
        match rx.recv_timeout(wait) {
            Ok(Envelope::Packet(msg)) => {
                let mut fx = Effects::new();
                match msg.body {
                    PacketBody::Request(req) => replica.on_request(msg.src, req, &mut fx),
                    PacketBody::Protocol(p) => replica.on_protocol(msg.src, p, &mut fx),
                    _ => {}
                }
                for (dst, body) in fx.out {
                    router.send(dst, Msg::new(me, dst, body));
                }
            }
            Ok(Envelope::Stop) => break,
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
        if let (Some(at), Some(iv)) = (next_tick, tick) {
            if StdInstant::now() >= at {
                let mut fx = Effects::new();
                replica.on_tick(&mut fx);
                for (dst, body) in fx.out {
                    router.send(dst, Msg::new(me, dst, body));
                }
                next_tick = Some(StdInstant::now() + iv);
            }
        }
    }
}

impl SwitchCore {
    /// Build a core straight from a cluster config (live driver).
    pub fn new_for(cfg: &ClusterConfig, incarnation: SwitchId) -> Self {
        SwitchCore::new(crate::switch_actor::SwitchActorConfig {
            incarnation,
            mode: if cfg.harmonia {
                crate::switch_actor::SwitchMode::Harmonia
            } else {
                crate::switch_actor::SwitchMode::Baseline
            },
            protocol: cfg.protocol,
            replicas: cfg.replicas,
            table: cfg.table,
            sweep_interval: cfg.sweep_interval,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_replication::ProtocolKind;

    fn roundtrip(protocol: ProtocolKind, harmonia: bool) {
        let cfg = ClusterConfig {
            protocol,
            harmonia,
            ..ClusterConfig::default()
        };
        let cluster = LiveCluster::spawn(&cfg);
        let mut client = cluster.client();
        assert_eq!(client.get("missing").unwrap(), None);
        client.set("alpha", "1").unwrap();
        client.set("beta", "2").unwrap();
        client.set("alpha", "3").unwrap();
        assert_eq!(client.get("alpha").unwrap(), Some(Bytes::from_static(b"3")));
        assert_eq!(client.get("beta").unwrap(), Some(Bytes::from_static(b"2")));
        cluster.shutdown();
    }

    #[test]
    fn live_chain_harmonia_roundtrip() {
        roundtrip(ProtocolKind::Chain, true);
    }

    #[test]
    fn live_chain_baseline_roundtrip() {
        roundtrip(ProtocolKind::Chain, false);
    }

    #[test]
    fn live_pb_roundtrip() {
        roundtrip(ProtocolKind::PrimaryBackup, true);
    }

    #[test]
    fn live_craq_roundtrip() {
        roundtrip(ProtocolKind::Craq, false);
    }

    #[test]
    fn live_vr_roundtrip() {
        roundtrip(ProtocolKind::Vr, true);
    }

    #[test]
    fn live_nopaxos_roundtrip() {
        roundtrip(ProtocolKind::Nopaxos, true);
    }

    #[test]
    fn two_clients_see_each_others_writes() {
        let cfg = ClusterConfig::default();
        let cluster = LiveCluster::spawn(&cfg);
        let mut a = cluster.client();
        let mut b = cluster.client();
        a.set("shared", "from-a").unwrap();
        assert_eq!(
            b.get("shared").unwrap(),
            Some(Bytes::from_static(b"from-a"))
        );
        b.set("shared", "from-b").unwrap();
        assert_eq!(
            a.get("shared").unwrap(),
            Some(Bytes::from_static(b"from-b"))
        );
        cluster.shutdown();
    }
}
