//! The live driver: the same state machines on OS threads.
//!
//! Every node — the switch and each replica — runs on its own thread,
//! connected by crossbeam channels (the "links"). Nothing in the protocol
//! or switch logic changes relative to the simulation; only the driver
//! differs. This is the deployment mode the examples use, demonstrating the
//! library runs as a real in-process storage service, not only under
//! virtual time.
//!
//! One type serves every deployment shape: [`LiveCluster`] spawns whatever
//! its [`DeploymentSpec`] describes — the rack-scale single replica group of
//! Figure 1 (`groups(1)`) or the §6.3 cloud-scale deployment (`groups(n)`:
//! N replica groups, one thread per replica across all groups, all of their
//! traffic serialized through one spine-switch thread that routes by
//! shard). Obtain one with [`DeploymentSpec::spawn_live`].
//!
//! The §5.3 switch failure/replacement sequence
//! ([`kill_switch`](LiveCluster::kill_switch) /
//! [`replace_switch`](LiveCluster::replace_switch)) is supported for every
//! shape: the replacement runs under a fresh, larger incarnation id at the
//! same client-facing address, the lease moves to it, and single-replica
//! reads stay disabled until the first WRITE-COMPLETION bearing its own id.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration as StdDuration, Instant as StdInstant};

use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::{Mutex, RwLock};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use harmonia_replication::messages::{ProtocolMsg, ReplicaControlMsg};
use harmonia_replication::{build_replica, Effects, GroupConfig, Replica};
use harmonia_switch::{GroupId, SwitchStats};
use harmonia_types::{
    ClientId, ClientRequest, Duration, Instant, NodeId, OpKind, PacketBody, RequestId, SwitchId,
    WriteOutcome,
};

use crate::client::{OpSpec, RecordedOp};
use crate::deployment::{Cluster, DeploymentSpec, KvClient};
use crate::msg::Msg;
use crate::switch_actor::SwitchCore;

enum Envelope {
    Packet(Msg),
    Stop,
}

#[derive(Default)]
struct Router {
    routes: RwLock<HashMap<NodeId, Sender<Envelope>>>,
}

impl Router {
    fn register(&self, node: NodeId, tx: Sender<Envelope>) {
        self.routes.write().insert(node, tx);
    }

    fn send(&self, to: NodeId, msg: Msg) {
        if let Some(tx) = self.routes.read().get(&to) {
            let _ = tx.send(Envelope::Packet(msg));
        }
    }
}

/// Errors a live client can observe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LiveError {
    /// No (complete) reply within the deadline, after all retries.
    TimedOut,
    /// The cluster is shutting down.
    Disconnected,
}

impl std::fmt::Display for LiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LiveError::TimedOut => write!(f, "request timed out"),
            LiveError::Disconnected => write!(f, "cluster is shut down"),
        }
    }
}

impl std::error::Error for LiveError {}

/// A synchronous client handle onto a live cluster.
pub struct LiveClient {
    id: ClientId,
    router: Arc<Router>,
    rx: Receiver<Envelope>,
    switch: NodeId,
    write_replies: usize,
    timeout: StdDuration,
    retries: u32,
    next_request: u64,
}

impl LiveClient {
    /// Read `key`, blocking until the reply (with retry).
    pub fn get(&mut self, key: impl Into<Bytes>) -> Result<Option<Bytes>, LiveError> {
        let key = key.into();
        self.run_op(OpKind::Read, key, None)
    }

    /// Write `key := value`, blocking until committed (with retry).
    pub fn set(&mut self, key: impl Into<Bytes>, value: impl Into<Bytes>) -> Result<(), LiveError> {
        let (key, value) = (key.into(), value.into());
        self.run_op(OpKind::Write, key, Some(value)).map(|_| ())
    }

    fn run_op(
        &mut self,
        kind: OpKind,
        key: Bytes,
        value: Option<Bytes>,
    ) -> Result<Option<Bytes>, LiveError> {
        for _attempt in 0..=self.retries {
            let rid = RequestId(self.next_request);
            self.next_request += 1;
            let req = match kind {
                OpKind::Read => ClientRequest::read(self.id, rid, key.clone()),
                OpKind::Write => ClientRequest::write(
                    self.id,
                    rid,
                    key.clone(),
                    value.clone().unwrap_or_default(),
                ),
            };
            self.router.send(
                self.switch,
                Msg::new(
                    NodeId::Client(self.id),
                    self.switch,
                    PacketBody::Request(req),
                ),
            );
            match self.await_replies(kind, rid)? {
                Some(result) => return Ok(result),
                None => continue, // timed out or rejected: retry
            }
        }
        Err(LiveError::TimedOut)
    }

    /// Wait for enough replies to `rid`. `Ok(Some(v))` = completed,
    /// `Ok(None)` = retry-worthy failure.
    #[allow(clippy::type_complexity)]
    fn await_replies(
        &mut self,
        kind: OpKind,
        rid: RequestId,
    ) -> Result<Option<Option<Bytes>>, LiveError> {
        let needed = match kind {
            OpKind::Read => 1,
            OpKind::Write => self.write_replies,
        };
        let deadline = StdInstant::now() + self.timeout;
        let mut got = 0;
        let mut result = None;
        loop {
            let now = StdInstant::now();
            if now >= deadline {
                return Ok(None);
            }
            match self.rx.recv_timeout(deadline - now) {
                Ok(Envelope::Packet(msg)) => {
                    let PacketBody::Reply(reply) = msg.body else {
                        continue;
                    };
                    if reply.request != rid {
                        continue; // stale reply from an earlier attempt
                    }
                    match reply.write_outcome {
                        Some(WriteOutcome::Rejected) | Some(WriteOutcome::DroppedBySwitch) => {
                            return Ok(None);
                        }
                        _ => {}
                    }
                    got += 1;
                    if reply.value.is_some() {
                        result = reply.value;
                    }
                    if got >= needed {
                        return Ok(Some(result));
                    }
                }
                Ok(Envelope::Stop) => return Err(LiveError::Disconnected),
                Err(RecvTimeoutError::Timeout) => return Ok(None),
                Err(RecvTimeoutError::Disconnected) => return Err(LiveError::Disconnected),
            }
        }
    }
}

impl KvClient for LiveClient {
    fn get(&mut self, key: &[u8]) -> Result<Option<Bytes>, LiveError> {
        LiveClient::get(self, Bytes::from(key.to_vec()))
    }

    fn set(&mut self, key: &[u8], value: &[u8]) -> Result<(), LiveError> {
        LiveClient::set(self, Bytes::from(key.to_vec()), Bytes::from(value.to_vec()))
    }
}

/// The spine/ToR switch thread plus the shared handle tests inspect.
struct SwitchThread {
    core: Arc<Mutex<SwitchCore>>,
    tx: Sender<Envelope>,
    join: JoinHandle<()>,
}

/// Driver plumbing: router, switch thread, replica threads.
struct LiveRig {
    router: Arc<Router>,
    /// The stable client-facing switch address. Replacements re-register
    /// here (same L2 address in a deployment) in addition to their own
    /// incarnation's address.
    switch_addr: NodeId,
    write_replies: usize,
    sweep: StdDuration,
    replica_ids: Vec<harmonia_types::ReplicaId>,
    replica_threads: Vec<(Sender<Envelope>, JoinHandle<()>)>,
    switch: Option<SwitchThread>,
    next_client: AtomicU32,
}

impl LiveRig {
    fn new(switch_addr: NodeId, write_replies: usize, sweep: Option<StdDuration>) -> Self {
        LiveRig {
            router: Arc::new(Router::default()),
            switch_addr,
            write_replies,
            sweep: sweep.unwrap_or(StdDuration::from_millis(10)),
            replica_ids: Vec::new(),
            replica_threads: Vec::new(),
            switch: None,
            next_client: AtomicU32::new(1),
        }
    }

    /// Spawn (or re-spawn after a failure) the switch thread for `core`.
    /// The thread receives on the stable client-facing address and on its
    /// own incarnation's address (replicas reply to the lease holder).
    fn spawn_switch(&mut self, core: SwitchCore) {
        assert!(self.switch.is_none(), "kill the old switch first");
        let incarnation = core.incarnation();
        let (tx, rx) = unbounded::<Envelope>();
        self.router.register(self.switch_addr, tx.clone());
        self.router
            .register(NodeId::Switch(incarnation), tx.clone());
        let core = Arc::new(Mutex::new(core));
        let shared = Arc::clone(&core);
        let router = Arc::clone(&self.router);
        let me = self.switch_addr;
        let sweep = self.sweep;
        let join = std::thread::Builder::new()
            .name(format!("harmonia-switch-{}", incarnation.0))
            .spawn(move || {
                let mut rng = SmallRng::seed_from_u64(0x5717c4 ^ u64::from(incarnation.0));
                let mut out = Vec::new();
                loop {
                    match rx.recv_timeout(sweep) {
                        Ok(Envelope::Packet(msg)) => {
                            shared.lock().handle(me, msg, &mut rng, &mut out);
                            for (dst, m) in out.drain(..) {
                                router.send(dst, m);
                            }
                        }
                        Ok(Envelope::Stop) => break,
                        Err(RecvTimeoutError::Timeout) => {
                            shared.lock().sweep();
                        }
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
            })
            .expect("spawn switch thread");
        self.switch = Some(SwitchThread { core, tx, join });
    }

    fn spawn_replica(&mut self, group: GroupConfig) {
        let me = NodeId::Replica(group.me);
        let (tx, rx) = unbounded::<Envelope>();
        self.router.register(me, tx.clone());
        let router = Arc::clone(&self.router);
        self.replica_ids.push(group.me);
        let name = format!("harmonia-replica-{}", group.me.0);
        let handle = std::thread::Builder::new()
            .name(name)
            .spawn(move || replica_main(me, build_replica(group), rx, router))
            .expect("spawn replica thread");
        self.replica_threads.push((tx, handle));
    }

    /// Stop the switch thread and wait for it. Requests already queued or
    /// subsequently routed to the dead switch vanish — clients time out and
    /// retry, exactly the Figure 10 outage.
    fn kill_switch(&mut self) {
        if let Some(sw) = self.switch.take() {
            let _ = sw.tx.send(Envelope::Stop);
            let _ = sw.join.join();
        }
    }

    /// Run `f` on the live switch core (stats inspection).
    fn with_switch<T>(&self, f: impl FnOnce(&SwitchCore) -> T) -> Option<T> {
        self.switch.as_ref().map(|sw| f(&sw.core.lock()))
    }

    /// Configuration service: move every replica's lease to `new_id`.
    fn move_lease(&self, new_id: SwitchId) {
        for &r in &self.replica_ids {
            let dst = NodeId::Replica(r);
            self.router.send(
                dst,
                Msg::new(
                    NodeId::Controller,
                    dst,
                    PacketBody::Protocol(ProtocolMsg::Control(ReplicaControlMsg::SetActiveSwitch(
                        new_id,
                    ))),
                ),
            );
        }
    }

    fn client(&self) -> LiveClient {
        let id = ClientId(self.next_client.fetch_add(1, Ordering::Relaxed));
        let (tx, rx) = bounded::<Envelope>(1024);
        self.router.register(NodeId::Client(id), tx);
        LiveClient {
            id,
            router: Arc::clone(&self.router),
            rx,
            switch: self.switch_addr,
            write_replies: self.write_replies,
            timeout: StdDuration::from_millis(200),
            retries: 5,
            next_request: 0,
        }
    }

    fn shutdown_in_place(&mut self) {
        self.kill_switch();
        for (tx, _) in &self.replica_threads {
            let _ = tx.send(Envelope::Stop);
        }
        for (_, handle) in self.replica_threads.drain(..) {
            let _ = handle.join();
        }
    }
}

/// An in-process deployment on OS threads — one replica group or many,
/// exactly as its [`DeploymentSpec`] describes.
pub struct LiveCluster {
    rig: LiveRig,
    spec: DeploymentSpec,
}

impl LiveCluster {
    /// Spawn the switch and every group's replica threads for `spec`
    /// (equivalently: [`DeploymentSpec::spawn_live`]).
    pub fn new(spec: &DeploymentSpec) -> Self {
        let mut rig = LiveRig::new(
            spec.switch_addr(),
            spec.write_replies(),
            spec.sweep_interval.map(|d| d.to_std()),
        );
        rig.spawn_switch(SwitchCore::for_deployment(spec, spec.initial_switch()));
        for g in 0..spec.groups {
            for i in 0..spec.replicas {
                rig.spawn_replica(spec.group_config(g, i));
            }
        }
        LiveCluster {
            rig,
            spec: spec.clone(),
        }
    }

    /// Spawn the single-group deployment `cfg` describes.
    #[allow(deprecated)]
    #[deprecated(note = "use `DeploymentSpec::spawn_live()`")]
    pub fn spawn(cfg: &crate::cluster::ClusterConfig) -> Self {
        LiveCluster::new(&cfg.to_spec())
    }

    /// The deployment's spec.
    pub fn spec(&self) -> &DeploymentSpec {
        &self.spec
    }

    /// Create a synchronous client handle. Clients address the switch;
    /// in a sharded deployment the switch routes each request to its key's
    /// group — clients never know, which is the §4 philosophy.
    pub fn client(&self) -> LiveClient {
        self.rig.client()
    }

    /// §5.3 step 1: the switch fails. It retains no state and forwards
    /// nothing; in a sharded deployment every hosted group loses its
    /// scheduler at once.
    pub fn kill_switch(&mut self) {
        self.rig.kill_switch();
    }

    /// §5.3 steps 2–3: activate a replacement switch under `new_id` (must
    /// exceed every predecessor) at the same client-facing address — fresh
    /// dirty sets and sequence spaces for *every* hosted group — and move
    /// every replica's lease to it. Step 4 — fast-path re-enable on the
    /// first own-id WRITE-COMPLETION — is the conflict detector's gating.
    pub fn replace_switch(&mut self, new_id: SwitchId) {
        self.rig.kill_switch();
        self.rig
            .spawn_switch(SwitchCore::for_deployment(&self.spec, new_id));
        self.rig.move_lease(new_id);
    }

    /// Aggregate data-plane counters of the live switch (None if killed).
    pub fn switch_stats(&self) -> Option<SwitchStats> {
        self.rig.with_switch(|c| c.stats())
    }

    /// One group's data-plane counters.
    pub fn group_stats(&self, group: GroupId) -> Option<SwitchStats> {
        self.rig.with_switch(|c| c.group_stats(group)).flatten()
    }

    /// Whether the live switch currently issues single-replica reads
    /// (group 0 — the whole answer in an unsharded deployment).
    pub fn fast_path_enabled(&self) -> Option<bool> {
        self.group_fast_path_enabled(GroupId(0))
    }

    /// Whether `group`'s fast path is currently enabled.
    pub fn group_fast_path_enabled(&self, group: GroupId) -> Option<bool> {
        self.rig
            .with_switch(|c| c.group_detector(group).map(|d| d.fast_path_enabled()))
            .flatten()
    }

    /// Total dirty-set SRAM across every hosted group.
    pub fn switch_memory_bytes(&self) -> Option<usize> {
        self.rig.with_switch(|c| c.memory_bytes())
    }

    /// The live switch's incarnation id (None if killed).
    pub fn switch_incarnation(&self) -> Option<SwitchId> {
        self.rig.with_switch(|c| c.incarnation())
    }

    /// Stop every thread and wait for them. (Dropping the cluster does the
    /// same; this form just makes the teardown point explicit.)
    pub fn shutdown(mut self) {
        self.rig.shutdown_in_place();
    }
}

impl Drop for LiveCluster {
    fn drop(&mut self) {
        self.rig.shutdown_in_place();
    }
}

impl Cluster for LiveCluster {
    fn spec(&self) -> &DeploymentSpec {
        &self.spec
    }

    fn client(&mut self) -> Box<dyn KvClient + '_> {
        Box::new(LiveCluster::client(self))
    }

    fn kill_switch(&mut self) {
        LiveCluster::kill_switch(self);
    }

    fn replace_switch(&mut self, new_id: SwitchId) {
        LiveCluster::replace_switch(self, new_id);
    }

    fn switch_stats(&self) -> Option<SwitchStats> {
        LiveCluster::switch_stats(self)
    }

    fn group_stats(&self, group: GroupId) -> Option<SwitchStats> {
        LiveCluster::group_stats(self, group)
    }

    fn fast_path_enabled(&self) -> Option<bool> {
        LiveCluster::fast_path_enabled(self)
    }

    fn group_fast_path_enabled(&self, group: GroupId) -> Option<bool> {
        LiveCluster::group_fast_path_enabled(self, group)
    }

    fn switch_memory_bytes(&self) -> Option<usize> {
        LiveCluster::switch_memory_bytes(self)
    }

    fn switch_incarnation(&self) -> Option<SwitchId> {
        LiveCluster::switch_incarnation(self)
    }

    fn run_plans(&mut self, plans: Vec<Vec<OpSpec>>) -> Vec<Vec<RecordedOp>> {
        // One thread per plan, all sharing one wall-clock epoch so the
        // recorded intervals are mutually comparable (real-time order is
        // what the linearizability checker needs).
        let epoch = StdInstant::now();
        let handles: Vec<_> = plans
            .into_iter()
            .map(|plan| {
                let mut client = self.rig.client();
                std::thread::spawn(move || {
                    let stamp = |at: StdInstant| {
                        Instant::ZERO
                            + Duration::from_nanos(at.duration_since(epoch).as_nanos() as u64)
                    };
                    let mut records = Vec::with_capacity(plan.len());
                    for op in plan {
                        let invoked = StdInstant::now();
                        let (result, ok) = match op.kind {
                            OpKind::Read => match client.get(op.key.clone()) {
                                Ok(v) => (v, true),
                                Err(_) => (None, false),
                            },
                            OpKind::Write => {
                                let value = op.value.clone().unwrap_or_default();
                                (None, client.set(op.key.clone(), value).is_ok())
                            }
                        };
                        records.push(RecordedOp {
                            kind: op.kind,
                            key: op.key,
                            value: op.value,
                            invoked: stamp(invoked),
                            completed: stamp(StdInstant::now()),
                            result,
                            ok,
                        });
                    }
                    records
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("plan thread panicked"))
            .collect()
    }
}

/// Deprecated alias surface for the §6.3 sharded deployment. The unified
/// [`LiveCluster`] spawns any number of groups; this wrapper only survives
/// so pre-redesign call sites keep compiling for one release.
#[allow(deprecated)]
#[deprecated(note = "use `DeploymentSpec::spawn_live()` — `LiveCluster` is multi-group")]
pub struct ShardedLiveCluster {
    inner: LiveCluster,
    cfg: crate::sharded::ShardedClusterConfig,
}

#[allow(deprecated)]
impl ShardedLiveCluster {
    /// Spawn the spine switch and every group's replica threads.
    pub fn spawn(cfg: &crate::sharded::ShardedClusterConfig) -> Self {
        ShardedLiveCluster {
            inner: LiveCluster::new(&cfg.to_spec()),
            cfg: cfg.clone(),
        }
    }

    /// Create a synchronous client handle.
    pub fn client(&self) -> LiveClient {
        self.inner.client()
    }

    /// §5.3 step 1 for the spine switch.
    pub fn kill_switch(&mut self) {
        self.inner.kill_switch();
    }

    /// §5.3 steps 2–3: a replacement spine switch takes over.
    pub fn replace_switch(&mut self, new_id: SwitchId) {
        self.inner.replace_switch(new_id);
    }

    /// Aggregate data-plane counters across every group (None if killed).
    pub fn switch_stats(&self) -> Option<SwitchStats> {
        self.inner.switch_stats()
    }

    /// One group's data-plane counters.
    pub fn group_stats(&self, group: GroupId) -> Option<SwitchStats> {
        self.inner.group_stats(group)
    }

    /// Whether `group`'s fast path is currently enabled.
    pub fn group_fast_path_enabled(&self, group: GroupId) -> Option<bool> {
        self.inner.group_fast_path_enabled(group)
    }

    /// Total dirty-set SRAM across every hosted group.
    pub fn switch_memory_bytes(&self) -> Option<usize> {
        self.inner.switch_memory_bytes()
    }

    /// The live switch's incarnation id (None if killed).
    pub fn switch_incarnation(&self) -> Option<SwitchId> {
        self.inner.switch_incarnation()
    }

    /// The deployment's configuration.
    pub fn config(&self) -> &crate::sharded::ShardedClusterConfig {
        &self.cfg
    }

    /// Stop every thread and wait for them.
    pub fn shutdown(self) {
        self.inner.shutdown();
    }
}

fn replica_main(
    me: NodeId,
    mut replica: Box<dyn Replica>,
    rx: Receiver<Envelope>,
    router: Arc<Router>,
) {
    let tick = replica.tick_interval().map(|d| d.to_std());
    let mut next_tick = tick.map(|t| StdInstant::now() + t);
    loop {
        let wait = match next_tick {
            Some(at) => at.saturating_duration_since(StdInstant::now()),
            None => StdDuration::from_millis(50),
        };
        match rx.recv_timeout(wait) {
            Ok(Envelope::Packet(msg)) => {
                let mut fx = Effects::new();
                match msg.body {
                    PacketBody::Request(req) => replica.on_request(msg.src, req, &mut fx),
                    PacketBody::Protocol(p) => replica.on_protocol(msg.src, p, &mut fx),
                    _ => {}
                }
                for (dst, body) in fx.out {
                    router.send(dst, Msg::new(me, dst, body));
                }
            }
            Ok(Envelope::Stop) => break,
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
        if let (Some(at), Some(iv)) = (next_tick, tick) {
            if StdInstant::now() >= at {
                let mut fx = Effects::new();
                replica.on_tick(&mut fx);
                for (dst, body) in fx.out {
                    router.send(dst, Msg::new(me, dst, body));
                }
                next_tick = Some(StdInstant::now() + iv);
            }
        }
    }
}

impl SwitchCore {
    /// Build a single-group core straight from a cluster config (live
    /// driver).
    #[allow(deprecated)]
    #[deprecated(note = "use `SwitchCore::for_deployment`")]
    pub fn new_for(cfg: &crate::cluster::ClusterConfig, incarnation: SwitchId) -> Self {
        SwitchCore::for_deployment(&cfg.to_spec(), incarnation)
    }

    /// Build a multi-group spine core straight from a sharded cluster
    /// config (live driver).
    #[allow(deprecated)]
    #[deprecated(note = "use `SwitchCore::for_deployment`")]
    pub fn new_for_sharded(
        cfg: &crate::sharded::ShardedClusterConfig,
        incarnation: SwitchId,
    ) -> Self {
        SwitchCore::for_deployment(&cfg.to_spec(), incarnation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_replication::ProtocolKind;

    fn roundtrip(protocol: ProtocolKind, harmonia: bool) {
        let cluster = DeploymentSpec::new()
            .protocol(protocol)
            .harmonia(harmonia)
            .spawn_live();
        let mut client = cluster.client();
        assert_eq!(client.get("missing").unwrap(), None);
        client.set("alpha", "1").unwrap();
        client.set("beta", "2").unwrap();
        client.set("alpha", "3").unwrap();
        assert_eq!(client.get("alpha").unwrap(), Some(Bytes::from_static(b"3")));
        assert_eq!(client.get("beta").unwrap(), Some(Bytes::from_static(b"2")));
        cluster.shutdown();
    }

    #[test]
    fn live_chain_harmonia_roundtrip() {
        roundtrip(ProtocolKind::Chain, true);
    }

    #[test]
    fn live_chain_baseline_roundtrip() {
        roundtrip(ProtocolKind::Chain, false);
    }

    #[test]
    fn live_pb_roundtrip() {
        roundtrip(ProtocolKind::PrimaryBackup, true);
    }

    #[test]
    fn live_craq_roundtrip() {
        roundtrip(ProtocolKind::Craq, false);
    }

    #[test]
    fn live_vr_roundtrip() {
        roundtrip(ProtocolKind::Vr, true);
    }

    #[test]
    fn live_nopaxos_roundtrip() {
        roundtrip(ProtocolKind::Nopaxos, true);
    }

    #[test]
    fn two_clients_see_each_others_writes() {
        let cluster = DeploymentSpec::new().spawn_live();
        let mut a = cluster.client();
        let mut b = cluster.client();
        a.set("shared", "from-a").unwrap();
        assert_eq!(
            b.get("shared").unwrap(),
            Some(Bytes::from_static(b"from-a"))
        );
        b.set("shared", "from-b").unwrap();
        assert_eq!(
            a.get("shared").unwrap(),
            Some(Bytes::from_static(b"from-b"))
        );
        cluster.shutdown();
    }

    #[test]
    fn sharded_live_roundtrip_touches_every_group() {
        let cluster = DeploymentSpec::new().groups(4).spawn_live();
        let mut client = cluster.client();
        for i in 0..40 {
            client.set(format!("k{i}"), format!("v{i}")).unwrap();
        }
        for i in 0..40 {
            assert_eq!(
                client.get(format!("k{i}")).unwrap(),
                Some(Bytes::from(format!("v{i}")))
            );
        }
        for g in 0..4 {
            let stats = cluster.group_stats(GroupId(g)).unwrap();
            assert!(stats.writes_forwarded > 0, "group {g}: {stats:?}");
        }
        cluster.shutdown();
    }

    /// The deprecated constructors still spawn working deployments.
    #[test]
    #[allow(deprecated)]
    fn deprecated_spawn_shims_still_work() {
        let cluster = LiveCluster::spawn(&crate::cluster::ClusterConfig::default());
        let mut client = cluster.client();
        client.set("k", "v").unwrap();
        assert_eq!(client.get("k").unwrap(), Some(Bytes::from_static(b"v")));
        cluster.shutdown();

        let sharded = ShardedLiveCluster::spawn(&crate::sharded::ShardedClusterConfig::default());
        assert_eq!(sharded.config().groups, 4);
        let mut client = sharded.client();
        client.set("k", "v").unwrap();
        assert_eq!(client.get("k").unwrap(), Some(Bytes::from_static(b"v")));
        sharded.shutdown();
    }
}
