//! The live driver: the same state machines on OS threads — with a
//! **parallel data plane**.
//!
//! Every node runs on its own thread, connected by crossbeam channels (the
//! "links"). Nothing in the protocol or switch logic changes relative to
//! the simulation; only the driver differs. This is the deployment mode the
//! examples use, demonstrating the library runs as a real in-process
//! storage service, not only under virtual time.
//!
//! # Per-group switch pipelines
//!
//! A real Tofino processes different groups' packets in parallel at line
//! rate, so a driver that serializes every group's traffic through one
//! switch thread (let alone one mutex) is an artifact, not the paper's
//! design. The live switch is therefore a *fleet*: one pipeline thread per
//! replica group, each exclusively owning that group's
//! [`GroupCore`] — conflict detector,
//! sequencer, forwarding table, and counters. **No lock is taken on the
//! packet path.**
//!
//! The spine itself is a thin, stateless shard-router: sending to the
//! switch address resolves the packet's object through the deployment's
//! [`ShardMap`] *on the sender's thread* and enqueues straight onto the
//! owning group's pipeline — client threads and replica threads deliver to
//! the right pipeline without any intermediate hop or shared switch state.
//! Pipelines drain their ingress in batches (everything already queued is
//! processed before any output is flushed), amortizing channel wakeups
//! under load.
//!
//! Aggregate inspection ([`switch_stats`](LiveCluster::switch_stats),
//! [`switch_memory_bytes`](LiveCluster::switch_memory_bytes)) works by
//! message: each pipeline answers with a
//! [`GroupObservation`] snapshot and the facade folds them through
//! [`SpineView`] — the control plane reads totals without ever touching a
//! worker's state.
//!
//! The §5.3 switch failure/replacement sequence
//! ([`kill_switch`](LiveCluster::kill_switch) /
//! [`replace_switch`](LiveCluster::replace_switch)) applies to the whole
//! fleet atomically: every pipeline of the old incarnation is torn down and
//! joined, and a fresh fleet (fresh dirty sets and sequence spaces for
//! *every* hosted group) spawns under a larger incarnation id at the same
//! client-facing address. Single-replica reads stay disabled per group
//! until the first WRITE-COMPLETION bearing the new incarnation's id.

// Wall-clock reads are deliberate here: live threaded driver: ticks and timeouts are real time.
#![allow(clippy::disallowed_methods)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration as StdDuration, Instant as StdInstant};

use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use harmonia_obs::{
    Counter, MonotonicClock, ObsSnapshot, Recorder, Registry, Series, TraceEvent, TraceStage,
};
use harmonia_replication::messages::{ProtocolMsg, ReplicaControlMsg};
use harmonia_replication::{build_replica, Effects, Replica, StateTransfer};
use harmonia_switch::{GroupId, GroupObservation, SpineView, SwitchStats};
use harmonia_types::{
    ClientId, ClientRequest, ControlMsg, Duration, Instant, NodeId, ObjectId, OpKind, PacketBody,
    ReplicaId, RequestId, SwitchId, TraceId, WriteOutcome,
};
use harmonia_workload::ShardMap;

use crate::client::{OpSpec, RecordedOp};
use crate::deployment::{spine_obs, Cluster, DeploymentSpec, KvClient};
use crate::msg::Msg;
use crate::switch_actor::{GroupCore, SwitchCore};

/// What a node-loop can be handed: a data-plane packet or a control-plane
/// verb from its own driver. The channel driver multiplexes these on one
/// channel; the UDP driver splits them (packets on the socket, control on a
/// side channel) — [`NodeLink`] hides the difference.
pub(crate) enum Envelope {
    Packet(Msg),
    /// Ask the receiving pipeline for a snapshot of its group's state.
    Inspect(Sender<GroupObservation>),
    Stop,
}

/// Per-attempt client reply deadline — one value for both threaded
/// drivers, so their retry envelopes can never drift apart.
pub(crate) const CLIENT_TIMEOUT: StdDuration = StdDuration::from_millis(200);

/// Client retry budget (attempts = retries + 1), shared likewise.
pub(crate) const CLIENT_RETRIES: u32 = 5;

/// How long the control plane waits for a pipeline's Inspect answer.
pub(crate) const INSPECT_TIMEOUT: StdDuration = StdDuration::from_secs(10);

/// Snapshot one pipeline's group state over its control channel (stats
/// inspection) — rig-agnostic: any driver whose pipelines drain
/// [`Envelope`]s can be observed this way.
pub(crate) fn observe_pipeline(ctl: &Sender<Envelope>) -> Option<GroupObservation> {
    let (otx, orx) = bounded(1);
    ctl.send(Envelope::Inspect(otx)).ok()?;
    orx.recv_timeout(INSPECT_TIMEOUT).ok()
}

/// Snapshot every pipeline and fold into the aggregate-only view. The
/// inspects fan out first, so the fleet answers concurrently.
pub(crate) fn observe_fleet<'a>(
    ctls: impl Iterator<Item = &'a Sender<Envelope>>,
) -> Option<SpineView> {
    let mut pending = Vec::new();
    for ctl in ctls {
        let (otx, orx) = bounded(1);
        ctl.send(Envelope::Inspect(otx)).ok()?;
        pending.push(orx);
    }
    let mut observations = Vec::with_capacity(pending.len());
    for orx in pending {
        observations.push(orx.recv_timeout(INSPECT_TIMEOUT).ok()?);
    }
    Some(SpineView::new(observations))
}

/// Why a [`NodeLink::recv`] returned nothing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum LinkError {
    /// Nothing arrived within the deadline.
    TimedOut,
    /// The link can never deliver again (driver shut down).
    Closed,
}

/// One node's connection to its deployment, whatever the substrate.
///
/// Everything that *handles* packets — the per-group switch pipelines
/// ([`pipeline_main`]), the replica loops ([`replica_main`]), and the
/// [`LiveClient`] retry loop — is written against this trait, so the
/// channel driver and the UDP driver share all packet-handling logic and
/// differ only in how bytes move: an in-process channel behind the
/// copy-on-write [`Router`], or a `UdpSocket` behind the deployment's
/// [`AddrBook`](harmonia_net::AddrBook).
pub(crate) trait NodeLink: Send {
    /// Send `msg` toward `to`. Never blocks on the receiver; undeliverable
    /// packets are dropped (clients retry — that is the reliability layer).
    fn send(&mut self, to: NodeId, msg: Msg);

    /// Flush a whole outbox, draining `batch` in order. The default loops
    /// the scalar verb (exactly what the channel driver wants); the UDP
    /// link overrides it to feed the transport's coalescer — per-destination
    /// frames pack back-to-back into full datagrams — and batch kernel
    /// crossings through `sendmmsg`.
    fn send_many(&mut self, batch: &mut Vec<(NodeId, Msg)>) {
        for (to, msg) in batch.drain(..) {
            self.send(to, msg);
        }
    }

    /// Wait up to `timeout` for the next envelope.
    fn recv(&mut self, timeout: StdDuration) -> Result<Envelope, LinkError>;

    /// Drain without blocking (the pipelines' batched drain).
    fn try_recv(&mut self) -> Option<Envelope>;
}

/// The channel driver's link: a [`RouterHandle`] out, a channel in.
struct ChannelLink {
    router: RouterHandle,
    rx: Receiver<Envelope>,
}

impl NodeLink for ChannelLink {
    fn send(&mut self, to: NodeId, msg: Msg) {
        self.router.send(to, msg);
    }

    fn recv(&mut self, timeout: StdDuration) -> Result<Envelope, LinkError> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => LinkError::TimedOut,
            RecvTimeoutError::Disconnected => LinkError::Closed,
        })
    }

    fn try_recv(&mut self) -> Option<Envelope> {
        self.rx.try_recv().ok()
    }
}

/// Where a destination's packets go.
#[derive(Clone)]
enum Route {
    /// A single node's ingress channel (replicas, clients).
    Unicast(Sender<Envelope>),
    /// The switch: stateless shard-routing onto per-group pipelines,
    /// resolved on the sending thread.
    Spine(Arc<SpinePlan>),
}

/// The stateless routing a spine performs: object → group, on the sender's
/// thread. Holds no group state — the pipelines own all of it.
struct SpinePlan {
    shards: ShardMap,
    /// Pipeline ingress channels, indexed by group id.
    groups: Vec<Sender<Envelope>>,
}

impl SpinePlan {
    fn route(&self, msg: Msg) {
        let g = match msg.body.object() {
            Some(obj) => self.shards.shard_of(obj),
            // Membership changes carry a replica, not an object, and only
            // the pipelines know where a replica currently lives — so the
            // stateless spine broadcasts, and each group's core applies
            // only the changes addressed to it (`GroupCore::handle_control`
            // is membership-guarded).
            None if matches!(msg.body, PacketBody::Control(_)) => {
                for tx in &self.groups {
                    let _ = tx.send(Envelope::Packet(msg.clone()));
                }
                return;
            }
            // Plain L2/L3 forwarding has no object; any pipeline can do it.
            None => 0,
        };
        if let Some(tx) = self.groups.get(g as usize) {
            let _ = tx.send(Envelope::Packet(msg));
        }
    }
}

/// The route table. Registrations copy-on-write a shared snapshot and bump
/// a generation counter; senders go through a [`RouterHandle`] that caches
/// the snapshot and revalidates it with a single atomic load per send — the
/// steady-state packet path takes **no lock** here either.
#[derive(Default)]
struct Router {
    table: Mutex<Arc<HashMap<NodeId, Route>>>,
    generation: AtomicU64,
}

impl Router {
    /// Apply a route-table mutation (copy-on-write, then publish).
    fn install(&self, f: impl FnOnce(&mut HashMap<NodeId, Route>)) {
        let mut guard = self.table.lock();
        let mut next = (**guard).clone();
        f(&mut next);
        *guard = Arc::new(next);
        // Publish while still holding the lock so a handle that observes
        // the new generation and then locks is guaranteed the new table.
        self.generation.fetch_add(1, Ordering::Release);
    }

    fn register(&self, node: NodeId, tx: Sender<Envelope>) {
        self.install(|t| {
            t.insert(node, Route::Unicast(tx));
        });
    }

    /// A sender-side handle with its own cached snapshot.
    fn handle(self: &Arc<Self>) -> RouterHandle {
        let seen = self.generation.load(Ordering::Acquire);
        let cache = Arc::clone(&self.table.lock());
        RouterHandle {
            router: Arc::clone(self),
            cache,
            seen,
        }
    }
}

/// A per-thread sending handle: one relaxed atomic load per send in steady
/// state; the route table is re-snapshotted only after a registration.
struct RouterHandle {
    router: Arc<Router>,
    cache: Arc<HashMap<NodeId, Route>>,
    seen: u64,
}

impl RouterHandle {
    fn send(&mut self, to: NodeId, msg: Msg) {
        let generation = self.router.generation.load(Ordering::Acquire);
        if generation != self.seen {
            self.cache = Arc::clone(&self.router.table.lock());
            self.seen = generation;
        }
        match self.cache.get(&to) {
            Some(Route::Unicast(tx)) => {
                let _ = tx.send(Envelope::Packet(msg));
            }
            Some(Route::Spine(plan)) => plan.route(msg),
            None => {}
        }
    }
}

/// Errors a live client can observe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LiveError {
    /// No (complete) reply within the deadline, after all retries.
    TimedOut,
    /// The cluster is shutting down.
    Disconnected,
}

impl std::fmt::Display for LiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LiveError::TimedOut => write!(f, "request timed out"),
            LiveError::Disconnected => write!(f, "cluster is shut down"),
        }
    }
}

impl std::error::Error for LiveError {}

/// A synchronous client handle onto a live deployment — threaded-channel or
/// UDP; the retry loop is identical, only the link substrate underneath
/// differs.
pub struct LiveClient {
    id: ClientId,
    link: Box<dyn NodeLink>,
    switch: NodeId,
    write_replies: usize,
    timeout: StdDuration,
    retries: u32,
    next_request: u64,
    recorder: Recorder,
}

impl LiveClient {
    /// Assemble a client over any link (driver plumbing).
    pub(crate) fn over_link(
        id: ClientId,
        link: Box<dyn NodeLink>,
        switch: NodeId,
        write_replies: usize,
        timeout: StdDuration,
        retries: u32,
    ) -> Self {
        LiveClient {
            id,
            link,
            switch,
            write_replies,
            timeout,
            retries,
            next_request: 0,
            recorder: Recorder::detached(),
        }
    }

    /// Attach an observability recorder (builder style; driver plumbing).
    pub(crate) fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }
    /// Read `key`, blocking until the reply (with retry).
    pub fn get(&mut self, key: impl Into<Bytes>) -> Result<Option<Bytes>, LiveError> {
        let key = key.into();
        self.run_op(OpKind::Read, key, None)
    }

    /// Write `key := value`, blocking until committed (with retry).
    pub fn set(&mut self, key: impl Into<Bytes>, value: impl Into<Bytes>) -> Result<(), LiveError> {
        let (key, value) = (key.into(), value.into());
        self.run_op(OpKind::Write, key, Some(value)).map(|_| ())
    }

    fn run_op(
        &mut self,
        kind: OpKind,
        key: Bytes,
        value: Option<Bytes>,
    ) -> Result<Option<Bytes>, LiveError> {
        // `Bytes` clones below are refcount bumps, not copies: the op's key
        // and value are allocated once by the caller and shared from there.
        //
        // One request id per logical operation: retries REUSE it so the
        // replicas' exactly-once session layer can deduplicate
        // re-executions (same contract as the sim's closed-loop client). A
        // retried write whose original landed but whose reply was lost —
        // the §5.3 switch-outage case — must not be applied twice.
        let rid = RequestId(self.next_request);
        self.next_request += 1;
        let me = NodeId::Client(self.id);
        let trace_id = TraceId::new(self.id, rid);
        let obj = ObjectId::from_key(&key);
        let started = self.recorder.now();
        for attempt in 0..=self.retries {
            if attempt == 0 {
                self.recorder.incr(match kind {
                    OpKind::Read => Counter::ReadsSent,
                    OpKind::Write => Counter::WritesSent,
                });
                self.recorder
                    .trace(me, trace_id, obj, TraceStage::ClientSend);
            } else {
                self.recorder.incr(Counter::Retries);
                self.recorder
                    .trace(me, trace_id, obj, TraceStage::ClientRetry);
            }
            let req = match kind {
                OpKind::Read => ClientRequest::read(self.id, rid, key.clone()),
                OpKind::Write => ClientRequest::write(
                    self.id,
                    rid,
                    key.clone(),
                    value.clone().unwrap_or_default(),
                ),
            };
            self.link.send(
                self.switch,
                Msg::new(
                    NodeId::Client(self.id),
                    self.switch,
                    PacketBody::Request(req),
                ),
            );
            match self.await_replies(kind, rid)? {
                Some(result) => {
                    let (done, series) = match kind {
                        OpKind::Read => (Counter::ReadsDone, Series::ReadLatency),
                        OpKind::Write => (Counter::WritesDone, Series::WriteLatency),
                    };
                    self.recorder.incr(done);
                    self.recorder
                        .observe(series, self.recorder.now().since(started));
                    self.recorder
                        .trace(me, trace_id, obj, TraceStage::ClientDone);
                    return Ok(result);
                }
                None => continue, // timed out or rejected: retry
            }
        }
        self.recorder.incr(Counter::Timeouts);
        self.recorder
            .trace(me, trace_id, obj, TraceStage::ClientTimeout);
        Err(LiveError::TimedOut)
    }

    /// Wait for enough replies to `rid`. `Ok(Some(v))` = completed,
    /// `Ok(None)` = retry-worthy failure.
    ///
    /// Because retries reuse the request id, a replica's original reply and
    /// its deduplicated re-send are indistinguishable by id — so a write
    /// quorum counts *distinct repliers* (`reply.from`), never raw replies.
    #[allow(clippy::type_complexity)]
    fn await_replies(
        &mut self,
        kind: OpKind,
        rid: RequestId,
    ) -> Result<Option<Option<Bytes>>, LiveError> {
        let needed = match kind {
            OpKind::Read => 1,
            OpKind::Write => self.write_replies,
        };
        let deadline = StdInstant::now() + self.timeout;
        let mut repliers: Vec<ReplicaId> = Vec::new();
        let mut result = None;
        loop {
            let now = StdInstant::now();
            if now >= deadline {
                return Ok(None);
            }
            match self.link.recv(deadline - now) {
                Ok(Envelope::Packet(msg)) => {
                    let PacketBody::Reply(reply) = msg.body else {
                        continue;
                    };
                    if reply.request != rid {
                        continue; // stale reply from an earlier operation
                    }
                    match reply.write_outcome {
                        Some(WriteOutcome::Rejected) | Some(WriteOutcome::DroppedBySwitch) => {
                            self.recorder.incr(Counter::WritesRejected);
                            return Ok(None);
                        }
                        _ => {}
                    }
                    if reply.value.is_some() {
                        result = reply.value;
                    }
                    if !repliers.contains(&reply.from) {
                        repliers.push(reply.from);
                    }
                    if repliers.len() >= needed {
                        return Ok(Some(result));
                    }
                }
                Ok(Envelope::Inspect(_)) => continue, // not a pipeline
                Ok(Envelope::Stop) => return Err(LiveError::Disconnected),
                Err(LinkError::TimedOut) => return Ok(None),
                Err(LinkError::Closed) => return Err(LiveError::Disconnected),
            }
        }
    }
}

impl KvClient for LiveClient {
    fn get_bytes(&mut self, key: Bytes) -> Result<Option<Bytes>, LiveError> {
        LiveClient::get(self, key)
    }

    fn set_bytes(&mut self, key: Bytes, value: Bytes) -> Result<(), LiveError> {
        LiveClient::set(self, key, value)
    }
}

/// One per-group pipeline thread: the ingress channel the spine routes
/// onto, and the join handle for teardown.
struct Pipeline {
    group: GroupId,
    tx: Sender<Envelope>,
    join: JoinHandle<()>,
}

/// The whole switch of one incarnation: a fleet of per-group pipelines.
struct SwitchFleet {
    incarnation: SwitchId,
    pipelines: Vec<Pipeline>,
}

/// Driver plumbing: router, switch pipeline fleet, replica threads.
struct LiveRig {
    router: Arc<Router>,
    /// The stable client-facing switch address. Replacements re-register
    /// here (same L2 address in a deployment) in addition to their own
    /// incarnation's address.
    switch_addr: NodeId,
    write_replies: usize,
    sweep: StdDuration,
    replica_ids: Vec<ReplicaId>,
    replica_threads: Vec<(Sender<Envelope>, JoinHandle<()>)>,
    switch: Option<SwitchFleet>,
    next_client: AtomicU32,
    /// Observability: every pipeline, replica loop, and client shards into
    /// this registry; the clock is the rig's single monotonic epoch.
    registry: Arc<Registry>,
}

impl LiveRig {
    fn new(switch_addr: NodeId, write_replies: usize, sweep: Option<StdDuration>) -> Self {
        LiveRig {
            router: Arc::new(Router::default()),
            switch_addr,
            write_replies,
            sweep: sweep.unwrap_or(StdDuration::from_millis(10)),
            replica_ids: Vec::new(),
            replica_threads: Vec::new(),
            switch: None,
            next_client: AtomicU32::new(1),
            registry: Arc::new(Registry::with_clock(Arc::new(MonotonicClock::new()))),
        }
    }

    /// Spawn (or re-spawn after a failure) the pipeline fleet for `core`:
    /// one thread per hosted group, each taking exclusive ownership of its
    /// group's state. The fleet receives on the stable client-facing
    /// address and on its own incarnation's address (replicas reply to the
    /// lease holder); both resolve through the same stateless shard router.
    fn spawn_switch(&mut self, core: SwitchCore) {
        // lint:allow(panic_path): harness control plane — a misuse by the
        // test driver, not live traffic; no packet is in flight here.
        assert!(self.switch.is_none(), "kill the old switch first");
        let incarnation = core.incarnation();
        let shards = core.shard_map();
        let cores = core.into_group_cores();
        let me = self.switch_addr;
        let sweep = self.sweep;
        let mut pipelines = Vec::with_capacity(cores.len());
        let mut ingress = Vec::with_capacity(cores.len());
        for mut core in cores {
            // One recorder shard per pipeline: counters and traces stay
            // thread-local on the packet path, merged only on snapshot.
            core.set_recorder(self.registry.handle());
            let group = core.group();
            let (tx, rx) = unbounded::<Envelope>();
            let link = ChannelLink {
                router: self.router.handle(),
                rx,
            };
            let join = std::thread::Builder::new()
                .name(format!("harmonia-switch-{}-g{}", incarnation.0, group.0))
                .spawn(move || pipeline_main(core, link, me, sweep))
                // lint:allow(panic_path): deployment bring-up, not the data
                // plane — thread-spawn failure means the host is out of
                // resources before any traffic exists.
                .expect("spawn switch pipeline thread");
            ingress.push(tx.clone());
            pipelines.push(Pipeline { group, tx, join });
        }
        let plan = Arc::new(SpinePlan {
            shards,
            groups: ingress,
        });
        self.router.install(|t| {
            t.insert(me, Route::Spine(Arc::clone(&plan)));
            t.insert(NodeId::Switch(incarnation), Route::Spine(Arc::clone(&plan)));
        });
        self.switch = Some(SwitchFleet {
            incarnation,
            pipelines,
        });
    }

    fn spawn_replica(&mut self, group: harmonia_replication::GroupConfig) {
        self.spawn_replica_inner(group, None);
    }

    /// Spawn a *fresh* replica that must catch up from `peer` via state
    /// transfer before serving (a restart after a fail-stop).
    fn spawn_recovering_replica(
        &mut self,
        group: harmonia_replication::GroupConfig,
        peer: ReplicaId,
    ) {
        self.spawn_replica_inner(group, Some(peer));
    }

    fn spawn_replica_inner(
        &mut self,
        group: harmonia_replication::GroupConfig,
        recover_from: Option<ReplicaId>,
    ) {
        let me = NodeId::Replica(group.me);
        let (tx, rx) = unbounded::<Envelope>();
        self.router.register(me, tx.clone());
        let link = ChannelLink {
            router: self.router.handle(),
            rx,
        };
        self.replica_ids.push(group.me);
        let name = format!("harmonia-replica-{}", group.me.0);
        let recorder = self.registry.handle();
        let handle = std::thread::Builder::new()
            .name(name)
            .spawn(move || replica_main(me, build_replica(group), link, recover_from, recorder))
            // lint:allow(panic_path): deployment bring-up (see spawn_switch).
            .expect("spawn replica thread");
        self.replica_threads.push((tx, handle));
    }

    /// Fail-stop one replica: stop and join its thread, drop its route (any
    /// in-flight packets toward it vanish, like a dead NIC).
    fn kill_replica(&mut self, r: ReplicaId) {
        if let Some(idx) = self.replica_ids.iter().position(|&m| m == r) {
            self.replica_ids.remove(idx);
            let (tx, handle) = self.replica_threads.remove(idx);
            let _ = tx.send(Envelope::Stop);
            let _ = handle.join();
            self.router.install(|t| {
                t.remove(&NodeId::Replica(r));
            });
        }
    }

    /// Control-plane packet to the switch fleet (broadcast to every group's
    /// pipeline; each applies only changes addressed to it).
    fn send_switch_control(&self, ctl: ControlMsg) {
        let mut router = self.router.handle();
        router.send(
            self.switch_addr,
            Msg::new(
                NodeId::Controller,
                self.switch_addr,
                PacketBody::Control(ctl),
            ),
        );
    }

    /// Configuration service: set one replica's view of its group.
    fn send_set_members(&self, to: ReplicaId, members: Vec<ReplicaId>) {
        let mut router = self.router.handle();
        let dst = NodeId::Replica(to);
        router.send(
            dst,
            Msg::new(
                NodeId::Controller,
                dst,
                PacketBody::Protocol(ProtocolMsg::Control(ReplicaControlMsg::SetMembers(members))),
            ),
        );
    }

    /// Stop every pipeline of the fleet and wait for them. Requests already
    /// queued or subsequently routed to the dead switch vanish — clients
    /// time out and retry, exactly the Figure 10 outage.
    fn kill_switch(&mut self) {
        if let Some(fleet) = self.switch.take() {
            for p in &fleet.pipelines {
                let _ = p.tx.send(Envelope::Stop);
            }
            for p in fleet.pipelines {
                let _ = p.join.join();
            }
        }
    }

    /// Snapshot one group's pipeline state (stats inspection).
    fn observe_group(&self, group: GroupId) -> Option<GroupObservation> {
        let fleet = self.switch.as_ref()?;
        let p = fleet.pipelines.iter().find(|p| p.group == group)?;
        observe_pipeline(&p.tx)
    }

    /// Snapshot every pipeline and fold into the aggregate-only view.
    fn observe(&self) -> Option<SpineView> {
        let fleet = self.switch.as_ref()?;
        observe_fleet(fleet.pipelines.iter().map(|p| &p.tx))
    }

    /// Configuration service: move every replica's lease to `new_id`.
    fn move_lease(&self, new_id: SwitchId) {
        let mut router = self.router.handle();
        for &r in &self.replica_ids {
            let dst = NodeId::Replica(r);
            router.send(
                dst,
                Msg::new(
                    NodeId::Controller,
                    dst,
                    PacketBody::Protocol(ProtocolMsg::Control(ReplicaControlMsg::SetActiveSwitch(
                        new_id,
                    ))),
                ),
            );
        }
    }

    fn client(&self) -> LiveClient {
        let id = ClientId(self.next_client.fetch_add(1, Ordering::Relaxed));
        let (tx, rx) = bounded::<Envelope>(1024);
        self.router.register(NodeId::Client(id), tx);
        let link = ChannelLink {
            router: self.router.handle(),
            rx,
        };
        LiveClient::over_link(
            id,
            Box::new(link),
            self.switch_addr,
            self.write_replies,
            CLIENT_TIMEOUT,
            CLIENT_RETRIES,
        )
        .with_recorder(self.registry.handle())
    }

    fn shutdown_in_place(&mut self) {
        self.kill_switch();
        for (tx, _) in &self.replica_threads {
            let _ = tx.send(Envelope::Stop);
        }
        for (_, handle) in self.replica_threads.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A per-group pipeline: exclusively owns one group's switch state, drains
/// its ingress in batches, and sweeps stale dirty entries when idle. Generic
/// over the [`NodeLink`]: the same loop serves the channel driver and the
/// UDP driver.
pub(crate) fn pipeline_main(
    mut core: GroupCore,
    mut link: impl NodeLink,
    me: NodeId,
    sweep: StdDuration,
) {
    let mut rng = SmallRng::seed_from_u64(
        0x5717c4 ^ u64::from(core.incarnation().0) ^ (u64::from(core.group().0) << 32),
    );
    let mut out: Vec<(NodeId, Msg)> = Vec::new();
    loop {
        let mut next = match link.recv(sweep) {
            Ok(env) => env,
            Err(LinkError::TimedOut) => {
                core.sweep();
                continue;
            }
            Err(LinkError::Closed) => return,
        };
        // Batched drain: process everything already queued before flushing
        // any output, amortizing downstream wakeups across the batch.
        loop {
            match next {
                Envelope::Packet(msg) => {
                    let now = core.recorder().now();
                    core.handle(now, me, msg, &mut rng, &mut out);
                }
                Envelope::Inspect(reply) => {
                    let _ = reply.send(core.observe());
                }
                Envelope::Stop => {
                    link.send_many(&mut out);
                    return;
                }
            }
            match link.try_recv() {
                Some(env) => next = env,
                None => break,
            }
        }
        link.send_many(&mut out);
    }
}

/// An in-process deployment on OS threads — one replica group or many,
/// exactly as its [`DeploymentSpec`] describes.
pub struct LiveCluster {
    rig: LiveRig,
    spec: DeploymentSpec,
}

impl LiveCluster {
    /// Spawn the switch pipeline fleet and every group's replica threads
    /// for `spec` (equivalently: [`DeploymentSpec::spawn_live`]).
    pub fn new(spec: &DeploymentSpec) -> Self {
        let mut rig = LiveRig::new(
            spec.switch_addr(),
            spec.write_replies(),
            spec.sweep_interval.map(|d| d.to_std()),
        );
        rig.spawn_switch(SwitchCore::for_deployment(spec, spec.initial_switch()));
        for g in 0..spec.groups {
            for i in 0..spec.replicas {
                rig.spawn_replica(spec.group_config(g, i));
            }
        }
        LiveCluster {
            rig,
            spec: spec.clone(),
        }
    }

    /// The deployment's spec.
    pub fn spec(&self) -> &DeploymentSpec {
        &self.spec
    }

    /// Create a synchronous client handle. Clients address the switch; the
    /// spine routes each request to its key's group on the sending thread —
    /// clients never know, which is the §4 philosophy.
    pub fn client(&self) -> LiveClient {
        self.rig.client()
    }

    /// §5.3 step 1: the switch fails. Every per-group pipeline of the
    /// incarnation stops; it retains no state and forwards nothing. In a
    /// sharded deployment every hosted group loses its scheduler at once.
    pub fn kill_switch(&mut self) {
        self.rig.kill_switch();
    }

    /// §5.3 steps 2–3: activate a replacement switch under `new_id` (must
    /// exceed every predecessor) at the same client-facing address — a
    /// fresh pipeline fleet with fresh dirty sets and sequence spaces for
    /// *every* hosted group — and move every replica's lease to it. Step 4
    /// — fast-path re-enable on the first own-id WRITE-COMPLETION — is each
    /// group's conflict-detector gating.
    pub fn replace_switch(&mut self, new_id: SwitchId) {
        self.rig.kill_switch();
        self.rig
            .spawn_switch(SwitchCore::for_deployment(&self.spec, new_id));
        self.rig.move_lease(new_id);
    }

    /// Fail-stop replica `r` (§5.3, "handling server failures"): its thread
    /// stops and is joined, its route disappears (in-flight packets toward
    /// it vanish), the switch drops it from the forwarding table, and its
    /// group shrinks to the survivors.
    pub fn kill_replica(&mut self, r: ReplicaId) {
        self.rig.kill_replica(r);
        self.rig.send_switch_control(ControlMsg::RemoveReplica(r));
        let members = self.spec.group_members(self.spec.group_of_replica(r));
        let survivors: Vec<ReplicaId> = members.into_iter().filter(|&m| m != r).collect();
        for &s in &survivors {
            self.rig.send_set_members(s, survivors.clone());
        }
    }

    /// Restart `r` as a fresh, empty replica: canonical membership is
    /// restored, the switch re-admits it read-gated, and the newcomer
    /// catches up via snapshot + log state transfer from a live peer; the
    /// gate lifts once its reported applied point passes the gate floor.
    pub fn restart_replica(&mut self, r: ReplicaId) {
        let group = self.spec.group_of_replica(r);
        let canonical = self.spec.group_members(group);
        let idx = canonical
            .iter()
            .position(|&m| m == r)
            // lint:allow(panic_path): fault-injection control plane — the
            // scenario script named a replica outside its own spec.
            .expect("replica belongs to its group");
        let peer = canonical
            .iter()
            .copied()
            .find(|&m| m != r)
            // lint:allow(panic_path): fault-injection control plane — a
            // 1-replica group cannot state-transfer; scripts must not ask.
            .expect("restart_replica needs a live peer to transfer from");
        // Switch first: restore the canonical table with the newcomer
        // gated, then the survivors' membership. A short settle keeps the
        // gate ahead of the newcomer's ungate report.
        self.rig
            .send_switch_control(ControlMsg::SetReplicas(canonical.clone()));
        self.rig.send_switch_control(ControlMsg::GateReplica(r));
        for &m in &canonical {
            if m != r {
                self.rig.send_set_members(m, canonical.clone());
            }
        }
        std::thread::sleep(StdDuration::from_millis(2));
        let mut cfg = self.spec.group_config(group, idx);
        // The newcomer must report its catch-up to the *current* switch
        // incarnation, not the one the deployment booted with.
        if let Some(cur) = self.switch_incarnation() {
            cfg.active_switch = cur;
        }
        self.rig.spawn_recovering_replica(cfg, peer);
    }

    /// Aggregate data-plane counters of the live switch (None if killed).
    pub fn switch_stats(&self) -> Option<SwitchStats> {
        self.rig.observe().map(|v| v.stats())
    }

    /// One group's data-plane counters.
    pub fn group_stats(&self, group: GroupId) -> Option<SwitchStats> {
        self.rig.observe_group(group).map(|o| o.stats)
    }

    /// Whether the live switch currently issues single-replica reads
    /// (group 0 — the whole answer in an unsharded deployment).
    pub fn fast_path_enabled(&self) -> Option<bool> {
        self.group_fast_path_enabled(GroupId(0))
    }

    /// Whether `group`'s fast path is currently enabled.
    pub fn group_fast_path_enabled(&self, group: GroupId) -> Option<bool> {
        self.rig.observe_group(group).map(|o| o.fast_path_enabled)
    }

    /// Total dirty-set SRAM across every hosted group.
    pub fn switch_memory_bytes(&self) -> Option<usize> {
        self.rig.observe().map(|v| v.memory_bytes())
    }

    /// Aggregate-only view across every pipeline (per-group snapshots).
    pub fn switch_view(&self) -> Option<SpineView> {
        self.rig.observe()
    }

    /// The live switch's incarnation id (None if killed).
    pub fn switch_incarnation(&self) -> Option<SwitchId> {
        self.rig.switch.as_ref().map(|f| f.incarnation)
    }

    /// Stop every thread and wait for them. (Dropping the cluster does the
    /// same; this form just makes the teardown point explicit.)
    pub fn shutdown(mut self) {
        self.rig.shutdown_in_place();
    }
}

impl Drop for LiveCluster {
    fn drop(&mut self) {
        self.rig.shutdown_in_place();
    }
}

impl Cluster for LiveCluster {
    fn spec(&self) -> &DeploymentSpec {
        &self.spec
    }

    fn client(&mut self) -> Box<dyn KvClient + '_> {
        Box::new(LiveCluster::client(self))
    }

    fn kill_switch(&mut self) {
        LiveCluster::kill_switch(self);
    }

    fn replace_switch(&mut self, new_id: SwitchId) {
        LiveCluster::replace_switch(self, new_id);
    }

    fn kill_replica(&mut self, r: ReplicaId) {
        LiveCluster::kill_replica(self, r);
    }

    fn restart_replica(&mut self, r: ReplicaId) {
        LiveCluster::restart_replica(self, r);
    }

    fn switch_stats(&self) -> Option<SwitchStats> {
        LiveCluster::switch_stats(self)
    }

    fn group_stats(&self, group: GroupId) -> Option<SwitchStats> {
        LiveCluster::group_stats(self, group)
    }

    fn fast_path_enabled(&self) -> Option<bool> {
        LiveCluster::fast_path_enabled(self)
    }

    fn group_fast_path_enabled(&self, group: GroupId) -> Option<bool> {
        LiveCluster::group_fast_path_enabled(self, group)
    }

    fn switch_memory_bytes(&self) -> Option<usize> {
        LiveCluster::switch_memory_bytes(self)
    }

    fn switch_incarnation(&self) -> Option<SwitchId> {
        LiveCluster::switch_incarnation(self)
    }

    fn obs_snapshot(&self) -> ObsSnapshot {
        let rs = self.rig.registry.snapshot();
        let mut snap = ObsSnapshot {
            driver: "live",
            protocol: self.spec.protocol.name(),
            groups: self.spec.groups as u32,
            replicas: self.spec.replicas as u32,
            taken_at_ns: self.rig.registry.clock().now().nanos(),
            ..ObsSnapshot::default()
        };
        snap.apply_recorder(&rs);
        if let Some(view) = self.rig.observe() {
            let (switch, per_group) = spine_obs(&view, rs.counter(Counter::SwitchSwept));
            snap.switch = switch;
            snap.per_group = per_group;
        }
        // The channel substrate injects no faults; the section stays zero.
        snap
    }

    fn trace_events(&self) -> Vec<TraceEvent> {
        self.rig.registry.trace_events()
    }

    fn run_plans(&mut self, plans: Vec<Vec<OpSpec>>) -> Vec<Vec<RecordedOp>> {
        run_plans_threaded(|| self.rig.client(), plans)
    }
}

/// Closed-loop plan execution on real threads, shared by every threaded
/// driver (channels or UDP): one thread per plan, all sharing one
/// wall-clock epoch so the recorded intervals are mutually comparable
/// (real-time order is what the linearizability checker needs).
pub(crate) fn run_plans_threaded(
    mut make_client: impl FnMut() -> LiveClient,
    plans: Vec<Vec<OpSpec>>,
) -> Vec<Vec<RecordedOp>> {
    let epoch = StdInstant::now();
    let handles: Vec<_> = plans
        .into_iter()
        .map(|plan| {
            let mut client = make_client();
            std::thread::spawn(move || {
                let stamp = |at: StdInstant| {
                    Instant::ZERO + Duration::from_nanos(at.duration_since(epoch).as_nanos() as u64)
                };
                let mut records = Vec::with_capacity(plan.len());
                for op in plan {
                    // Keys and values move by refcount from the plan
                    // into the request and the record — the hot loop
                    // allocates nothing per op.
                    let invoked = StdInstant::now();
                    let (result, ok) = match op.kind {
                        OpKind::Read => match client.get(op.key.clone()) {
                            Ok(v) => (v, true),
                            Err(_) => (None, false),
                        },
                        OpKind::Write => {
                            let value = op.value.clone().unwrap_or_default();
                            (None, client.set(op.key.clone(), value).is_ok())
                        }
                    };
                    records.push(RecordedOp {
                        kind: op.kind,
                        key: op.key,
                        value: op.value,
                        invoked: stamp(invoked),
                        completed: stamp(StdInstant::now()),
                        result,
                        ok,
                    });
                }
                records
            })
        })
        .collect();
    handles
        .into_iter()
        // lint:allow(panic_path): harness teardown — propagating a worker
        // panic into the test failure is exactly what we want here.
        .map(|h| h.join().expect("plan thread panicked"))
        .collect()
}

/// A replica's event loop — deliver packets, drive ticks. Generic over the
/// [`NodeLink`]: the same loop serves the channel driver and the UDP driver.
///
/// With `recover_from` set, the replica starts *empty* and first performs
/// snapshot + log state transfer from that peer; client requests are shed
/// (clients retry elsewhere — the switch read-gates it anyway) until the
/// transfer completes and the loop asks the switch to lift the gate.
pub(crate) fn replica_main(
    me: NodeId,
    mut replica: Box<dyn Replica>,
    mut link: impl NodeLink,
    recover_from: Option<ReplicaId>,
    recorder: Recorder,
) {
    let NodeId::Replica(my_id) = me else {
        // lint:allow(panic_path): loop precondition — callers construct
        // `me` as `NodeId::Replica` two lines above each spawn site.
        unreachable!("replica loop hosted at {me:?}")
    };
    let mut transfer = StateTransfer::new(my_id);
    // Reusable outbox: per-effect packets accumulate here and go out in one
    // batched flush (one `sendmmsg` run on the UDP link).
    let mut outbox: Vec<(NodeId, Msg)> = Vec::new();
    if let Some(peer) = recover_from {
        let mut fx = Effects::new();
        transfer.begin(peer, &mut fx);
        outbox.extend(
            fx.out
                .into_iter()
                .map(|(dst, body)| (dst, Msg::new(me, dst, body))),
        );
        link.send_many(&mut outbox);
    }
    let tick = replica.tick_interval().map(|d| d.to_std());
    let mut next_tick = tick.map(|t| StdInstant::now() + t);
    loop {
        let wait = match next_tick {
            Some(at) => at.saturating_duration_since(StdInstant::now()),
            None => StdDuration::from_millis(50),
        };
        match link.recv(wait) {
            Ok(Envelope::Packet(msg)) => {
                let mut fx = Effects::new();
                match msg.body {
                    // State-transfer traffic is brokered outside the
                    // protocol state machine: the engine both answers
                    // peers' snapshot requests and installs our catch-up.
                    PacketBody::Protocol(ProtocolMsg::StateTransfer(m)) => {
                        recorder.incr(Counter::ReplicaTransfer);
                        transfer.on_msg(replica.as_mut(), m, &mut fx);
                    }
                    // Not caught up yet: shed the request, the client
                    // retries against a replica that can serve it.
                    PacketBody::Request(req) if transfer.is_recovering() => {
                        recorder.incr(Counter::ReplicaShed);
                        recorder.trace(
                            me,
                            TraceId::new(req.client, req.request),
                            req.obj,
                            TraceStage::ReplicaShed,
                        );
                    }
                    PacketBody::Request(req) => {
                        recorder.incr(Counter::ReplicaRequests);
                        let (trace_id, obj) = (TraceId::new(req.client, req.request), req.obj);
                        replica.on_request(msg.src, req, &mut fx);
                        recorder.trace(me, trace_id, obj, TraceStage::ReplicaExecute);
                    }
                    PacketBody::Protocol(p) => {
                        recorder.incr(Counter::ReplicaProtocol);
                        replica.on_protocol(msg.src, p, &mut fx);
                    }
                    _ => {
                        recorder.incr(Counter::ReplicaStray);
                    }
                }
                outbox.extend(
                    fx.out
                        .into_iter()
                        .map(|(dst, body)| (dst, Msg::new(me, dst, body))),
                );
                link.send_many(&mut outbox);
            }
            Ok(Envelope::Inspect(_)) => {}
            Ok(Envelope::Stop) => break,
            Err(LinkError::TimedOut) => {}
            Err(LinkError::Closed) => break,
        }
        if let (Some(at), Some(iv)) = (next_tick, tick) {
            if StdInstant::now() >= at {
                let mut fx = Effects::new();
                replica.on_tick(&mut fx);
                outbox.extend(
                    fx.out
                        .into_iter()
                        .map(|(dst, body)| (dst, Msg::new(me, dst, body))),
                );
                link.send_many(&mut outbox);
                next_tick = Some(StdInstant::now() + iv);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_replication::ProtocolKind;

    fn roundtrip(protocol: ProtocolKind, harmonia: bool) {
        let cluster = DeploymentSpec::new()
            .protocol(protocol)
            .harmonia(harmonia)
            .spawn_live();
        let mut client = cluster.client();
        assert_eq!(client.get("missing").unwrap(), None);
        client.set("alpha", "1").unwrap();
        client.set("beta", "2").unwrap();
        client.set("alpha", "3").unwrap();
        assert_eq!(client.get("alpha").unwrap(), Some(Bytes::from_static(b"3")));
        assert_eq!(client.get("beta").unwrap(), Some(Bytes::from_static(b"2")));
        cluster.shutdown();
    }

    #[test]
    fn live_chain_harmonia_roundtrip() {
        roundtrip(ProtocolKind::Chain, true);
    }

    #[test]
    fn live_chain_baseline_roundtrip() {
        roundtrip(ProtocolKind::Chain, false);
    }

    #[test]
    fn live_pb_roundtrip() {
        roundtrip(ProtocolKind::PrimaryBackup, true);
    }

    #[test]
    fn live_craq_roundtrip() {
        roundtrip(ProtocolKind::Craq, false);
    }

    #[test]
    fn live_vr_roundtrip() {
        roundtrip(ProtocolKind::Vr, true);
    }

    #[test]
    fn live_nopaxos_roundtrip() {
        roundtrip(ProtocolKind::Nopaxos, true);
    }

    #[test]
    fn two_clients_see_each_others_writes() {
        let cluster = DeploymentSpec::new().spawn_live();
        let mut a = cluster.client();
        let mut b = cluster.client();
        a.set("shared", "from-a").unwrap();
        assert_eq!(
            b.get("shared").unwrap(),
            Some(Bytes::from_static(b"from-a"))
        );
        b.set("shared", "from-b").unwrap();
        assert_eq!(
            a.get("shared").unwrap(),
            Some(Bytes::from_static(b"from-b"))
        );
        cluster.shutdown();
    }

    #[test]
    fn sharded_live_roundtrip_touches_every_group() {
        let cluster = DeploymentSpec::new().groups(4).spawn_live();
        let mut client = cluster.client();
        for i in 0..40 {
            client.set(format!("k{i}"), format!("v{i}")).unwrap();
        }
        for i in 0..40 {
            assert_eq!(
                client.get(format!("k{i}")).unwrap(),
                Some(Bytes::from(format!("v{i}")))
            );
        }
        for g in 0..4 {
            let stats = cluster.group_stats(GroupId(g)).unwrap();
            assert!(stats.writes_forwarded > 0, "group {g}: {stats:?}");
        }
        // The aggregate-only view folds the same per-pipeline snapshots.
        let view = cluster.switch_view().unwrap();
        assert_eq!(view.group_count(), 4);
        assert_eq!(view.stats(), cluster.switch_stats().unwrap());
        cluster.shutdown();
    }

    /// Every group's state is owned by exactly one pipeline thread — the
    /// fleet has one thread per group, and per-group counters are disjoint
    /// (a packet shows up in exactly one group's stats).
    #[test]
    fn per_group_pipelines_keep_disjoint_counters() {
        let cluster = DeploymentSpec::new().groups(3).spawn_live();
        assert_eq!(
            cluster.rig.switch.as_ref().unwrap().pipelines.len(),
            3,
            "one pipeline per group"
        );
        let mut client = cluster.client();
        for i in 0..30 {
            client.set(format!("key-{i}"), "v").unwrap();
        }
        let view = cluster.switch_view().unwrap();
        let sum: u64 = view.groups().iter().map(|o| o.stats.writes_forwarded).sum();
        assert_eq!(sum, cluster.switch_stats().unwrap().writes_forwarded);
        assert_eq!(sum, 30);
        cluster.shutdown();
    }
}
