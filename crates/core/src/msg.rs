//! The concrete network message type and the calibrated cost model.

use harmonia_replication::messages::{ChainMsg, CraqMsg, NopaxosMsg, PbMsg, ProtocolMsg, VrMsg};
use harmonia_types::{Duration, OpKind, Packet, PacketBody};

/// Every packet in a Harmonia deployment.
pub type Msg = Packet<ProtocolMsg>;

/// Per-message service costs for a storage server.
///
/// Calibrated to the paper's measured single-server Redis numbers (§8):
/// 0.92 MQPS for reads (≈ 1087 ns each) and 0.8 MQPS for writes
/// (≈ 1250 ns each). Lightweight protocol messages (acks, commit notices)
/// are charged a fraction of a write — they skip storage work but still
/// consume server cycles, which is what makes an ack-heavy leader (VR) slower
/// than a sequencer-driven one (NOPaxos) in Figure 9b.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Serving one read from local state.
    pub read: Duration,
    /// Applying one write (including staging/propagation bookkeeping).
    pub write: Duration,
    /// Handling one lightweight protocol message.
    pub ack: Duration,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::paper_calibrated()
    }
}

impl CostModel {
    /// The calibration used by every figure reproduction.
    pub fn paper_calibrated() -> Self {
        CostModel {
            read: Duration::from_nanos(1_087),
            write: Duration::from_nanos(1_250),
            ack: Duration::from_nanos(375),
        }
    }

    /// Service cost of one inbound message at a replica.
    pub fn cost_of(&self, body: &PacketBody<ProtocolMsg>) -> Duration {
        match body {
            PacketBody::Request(req) => match req.op {
                OpKind::Read => self.read,
                OpKind::Write => self.write,
            },
            // Protocol messages that carry (and apply) a write.
            PacketBody::Protocol(
                ProtocolMsg::Pb(PbMsg::Update(_))
                | ProtocolMsg::Chain(ChainMsg::Down(_))
                | ProtocolMsg::Craq(CraqMsg::Down(_))
                | ProtocolMsg::Vr(VrMsg::Prepare { .. })
                | ProtocolMsg::Nopaxos(NopaxosMsg::Sequenced { .. })
                | ProtocolMsg::Nopaxos(NopaxosMsg::GapReply { .. }),
            ) => self.write,
            // Every other protocol message is bookkeeping.
            PacketBody::Protocol(_) => self.ack,
            // Replies/completions/control at a replica are incidental.
            _ => self.ack,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use harmonia_types::{ClientId, ClientRequest, ReplicaId, RequestId};

    #[test]
    fn paper_calibration_matches_measured_rates() {
        let c = CostModel::paper_calibrated();
        let read_mqps = 1e9 / c.read.nanos() as f64 / 1e6;
        let write_mqps = 1e9 / c.write.nanos() as f64 / 1e6;
        assert!((read_mqps - 0.92).abs() < 0.01, "read {read_mqps} MQPS");
        assert!((write_mqps - 0.80).abs() < 0.01, "write {write_mqps} MQPS");
    }

    #[test]
    fn request_costs_follow_op_kind() {
        let c = CostModel::paper_calibrated();
        let read = ClientRequest::read(ClientId(1), RequestId(1), &b"k"[..]);
        let write = ClientRequest::write(ClientId(1), RequestId(2), &b"k"[..], &b"v"[..]);
        assert_eq!(c.cost_of(&PacketBody::Request(read)), c.read);
        assert_eq!(c.cost_of(&PacketBody::Request(write)), c.write);
    }

    #[test]
    fn protocol_costs_distinguish_writes_from_acks() {
        let c = CostModel::paper_calibrated();
        let ack = ProtocolMsg::Pb(PbMsg::Ack {
            seq: harmonia_types::SwitchSeq::ZERO,
            from: ReplicaId(1),
        });
        assert_eq!(c.cost_of(&PacketBody::Protocol(ack)), c.ack);
        let down = ProtocolMsg::Chain(ChainMsg::Down(harmonia_replication::messages::WriteOp {
            seq: harmonia_types::SwitchSeq::ZERO,
            obj: harmonia_types::ObjectId(1),
            key: Bytes::from_static(b"k"),
            value: Bytes::from_static(b"v"),
            client: ClientId(1),
            request: RequestId(1),
        }));
        assert_eq!(c.cost_of(&PacketBody::Protocol(down)), c.write);
    }
}
