//! A replication state machine as a simulated storage server.
//!
//! Wraps any `harmonia-replication` [`Replica`] behind the calibrated
//! service-cost model: each inbound message occupies the server for its
//! [`CostModel`] duration, so saturation and queueing delay arise exactly as
//! on the paper's testbed, where the tail/leader CPU is the bottleneck.

use harmonia_obs::{Counter, Recorder, TraceStage};
use harmonia_replication::{Effects, ProtocolMsg, Replica, StateTransfer};
use harmonia_sim::{Actor, Context, Service, TimerToken};
use harmonia_types::{NodeId, PacketBody, ReplicaId, TraceId};

use crate::msg::{CostModel, Msg};

/// One storage server.
pub struct ReplicaActor {
    inner: Box<dyn Replica>,
    costs: CostModel,
    /// The state-transfer broker: serves peers' snapshot requests, and runs
    /// this replica's own catch-up after a restart. Built lazily because the
    /// actor only learns its node id from the world.
    transfer: Option<StateTransfer>,
    /// Set by [`recovering`](Self::recovering): `on_start` requests a
    /// snapshot from this peer before serving anything.
    recover_from: Option<ReplicaId>,
    /// Observability handle; detached unless a registry wires one in.
    recorder: Recorder,
}

impl ReplicaActor {
    /// Wrap a protocol state machine with the given cost model.
    pub fn new(inner: Box<dyn Replica>, costs: CostModel) -> Self {
        ReplicaActor {
            inner,
            costs,
            transfer: None,
            recover_from: None,
            recorder: Recorder::detached(),
        }
    }

    /// Attach an observability recorder (builder style).
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Wrap a *fresh* state machine that must catch up from `peer` before
    /// it may serve: on start it begins snapshot + log state transfer, and
    /// client requests are dropped (clients retry) until the transfer
    /// completes and the switch is asked to lift the read gate.
    pub fn recovering(inner: Box<dyn Replica>, costs: CostModel, peer: ReplicaId) -> Self {
        ReplicaActor {
            inner,
            costs,
            transfer: None,
            recover_from: Some(peer),
            recorder: Recorder::detached(),
        }
    }

    /// Inspect the wrapped state machine.
    pub fn replica(&self) -> &dyn Replica {
        self.inner.as_ref()
    }

    /// Whether a state transfer into this replica is still in flight.
    pub fn is_recovering(&self) -> bool {
        self.recover_from.is_some() || self.transfer.as_ref().is_some_and(|t| t.is_recovering())
    }

    fn engine(&mut self, node: NodeId) -> &mut StateTransfer {
        let me = match node {
            NodeId::Replica(r) => r,
            other => unreachable!("replica actor hosted at {other:?}"),
        };
        self.transfer.get_or_insert_with(|| StateTransfer::new(me))
    }

    fn flush(&self, ctx: &mut Context<'_, Msg>, fx: Effects) {
        let me = ctx.node();
        for (dst, body) in fx.out {
            ctx.send(dst, Msg::new(me, dst, body));
        }
    }
}

impl Actor<Msg> for ReplicaActor {
    fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
        if let Some(iv) = self.inner.tick_interval() {
            ctx.set_timer(iv);
        }
        if let Some(peer) = self.recover_from.take() {
            let mut fx = Effects::new();
            self.engine(ctx.node()).begin(peer, &mut fx);
            self.flush(ctx, fx);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, msg: Msg) {
        let mut fx = Effects::new();
        match msg.body {
            // State-transfer traffic is brokered outside the protocol state
            // machine: the engine both answers peers' snapshot requests and
            // installs this replica's own catch-up.
            PacketBody::Protocol(ProtocolMsg::StateTransfer(m)) => {
                self.recorder.incr(Counter::ReplicaTransfer);
                self.engine(ctx.node());
                // Split the borrow: engine and state machine are disjoint.
                let ReplicaActor {
                    inner, transfer, ..
                } = self;
                transfer.as_mut().expect("engine initialised above").on_msg(
                    inner.as_mut(),
                    m,
                    &mut fx,
                );
            }
            PacketBody::Request(req) if self.is_recovering() => {
                // Not caught up yet: shed the request, the client retries
                // against a replica that can actually serve it.
                ctx.metrics().incr("replica.recovering_drop");
                self.recorder.incr(Counter::ReplicaShed);
                self.recorder.trace_at(
                    ctx.now(),
                    ctx.node(),
                    TraceId::new(req.client, req.request),
                    req.obj,
                    TraceStage::ReplicaShed,
                );
            }
            PacketBody::Request(req) => {
                self.recorder.incr(Counter::ReplicaRequests);
                let (trace_id, obj) = (TraceId::new(req.client, req.request), req.obj);
                self.inner.on_request(from, req, &mut fx);
                self.recorder.trace_at(
                    ctx.now(),
                    ctx.node(),
                    trace_id,
                    obj,
                    TraceStage::ReplicaExecute,
                );
            }
            PacketBody::Protocol(p) => {
                self.recorder.incr(Counter::ReplicaProtocol);
                self.inner.on_protocol(from, p, &mut fx);
            }
            // Replies, completions and switch-control packets are not
            // addressed to replicas; tolerate strays.
            _ => {
                ctx.metrics().incr("replica.stray_packet");
                self.recorder.incr(Counter::ReplicaStray);
            }
        }
        self.flush(ctx, fx);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, _token: TimerToken) {
        let mut fx = Effects::new();
        self.inner.on_tick(&mut fx);
        self.flush(ctx, fx);
        if let Some(iv) = self.inner.tick_interval() {
            ctx.set_timer(iv);
        }
    }

    fn service(&self, msg: &Msg) -> Service {
        Service::Queued(self.costs.cost_of(&msg.body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_replication::{build_replica, GroupConfig, ProtocolKind};
    use harmonia_sim::{LinkConfig, NetworkModel, World, WorldConfig};
    use harmonia_types::{ClientId, ClientRequest, Duration, ReplicaId, RequestId, SwitchId};

    /// Three chain replicas + a sink switch; verifies the actor plumbing
    /// end-to-end through the simulator.
    #[test]
    fn chain_write_flows_through_actors() {
        struct Sink {
            got: Vec<Msg>,
        }
        impl Actor<Msg> for Sink {
            fn on_message(&mut self, _ctx: &mut Context<'_, Msg>, _from: NodeId, msg: Msg) {
                self.got.push(msg);
            }
        }

        let mut w: World<Msg> = World::new(WorldConfig {
            seed: 3,
            network: NetworkModel::uniform(LinkConfig::ideal(Duration::from_micros(2))),
        });
        for i in 0..3u32 {
            let sm = build_replica(GroupConfig::new(ProtocolKind::Chain, 3, i, true));
            w.add_node(
                NodeId::Replica(ReplicaId(i)),
                Box::new(ReplicaActor::new(sm, CostModel::paper_calibrated())),
            );
        }
        w.add_node(NodeId::Switch(SwitchId(1)), Box::new(Sink { got: vec![] }));

        let mut req = ClientRequest::write(ClientId(1), RequestId(1), &b"k"[..], &b"v"[..]);
        req.seq = Some(harmonia_types::SwitchSeq::new(SwitchId(1), 1));
        let head = NodeId::Replica(ReplicaId(0));
        w.inject(
            NodeId::Switch(SwitchId(1)),
            head,
            Msg::new(NodeId::Switch(SwitchId(1)), head, PacketBody::Request(req)),
        );
        w.run_until_idle(1000);

        // The tail's committed reply (with piggybacked completion) reached
        // the switch sink.
        let sink: &Sink = w.actor(NodeId::Switch(SwitchId(1))).unwrap();
        assert_eq!(sink.got.len(), 1);
        let PacketBody::Reply(r) = &sink.got[0].body else {
            panic!("expected reply, got {:?}", sink.got[0])
        };
        assert!(r.completion.is_some());
        // All replicas hold the value.
        for i in 0..3u32 {
            let actor: &ReplicaActor = w.actor(NodeId::Replica(ReplicaId(i))).unwrap();
            assert_eq!(
                actor.replica().local_value(b"k"),
                Some(bytes::Bytes::from_static(b"v"))
            );
        }
    }

    #[test]
    fn service_costs_queue_requests() {
        let sm = build_replica(GroupConfig::new(ProtocolKind::Chain, 1, 0, false));
        let actor = ReplicaActor::new(sm, CostModel::paper_calibrated());
        let read = Msg::new(
            NodeId::Client(ClientId(1)),
            NodeId::Replica(ReplicaId(0)),
            PacketBody::Request(ClientRequest::read(ClientId(1), RequestId(1), &b"k"[..])),
        );
        assert_eq!(
            actor.service(&read),
            Service::Queued(Duration::from_nanos(1_087))
        );
    }

    #[test]
    fn vr_tick_timer_rearms() {
        let mut w: World<Msg> = World::new(WorldConfig::default());
        for i in 0..3u32 {
            let sm = build_replica(GroupConfig::new(ProtocolKind::Vr, 3, i, true));
            w.add_node(
                NodeId::Replica(ReplicaId(i)),
                Box::new(ReplicaActor::new(sm, CostModel::paper_calibrated())),
            );
        }
        // Run 5 ms: the leader's 200 µs tick must keep firing without
        // external stimulus (ticks re-arm themselves).
        w.run_until(harmonia_types::Instant::ZERO + Duration::from_millis(5));
        // No panic + world stays live is the assertion; backlog stays 0
        // because commit_num == 0 means no broadcast.
        assert_eq!(w.backlog(NodeId::Replica(ReplicaId(0))), 0);
    }
}
