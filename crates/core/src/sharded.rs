//! Sharded multi-group deployments through one spine switch (§6.3).
//!
//! Rack-scale Harmonia puts one replica group behind one ToR switch. The
//! cloud-scale deployment of §6.3 serializes *many* replica groups through a
//! single designated (spine) switch: each group's dirty set is tiny (§9.4
//! measures ~16 KB), so one switch's SRAM hosts hundreds of groups. This
//! module assembles that deployment for both drivers:
//!
//! * the keyspace is partitioned across `groups` replica groups by the
//!   [`ShardMap`] (a pure function of the `ObjectId`, so every component
//!   agrees on the routing without coordination);
//! * every group runs the same replication protocol over its own disjoint
//!   slice of the global replica-id space;
//! * one [`SwitchActor`]/[`SwitchCore`](crate::switch_actor::SwitchCore)
//!   hosts all groups' conflict detection through a
//!   [`SpineSwitch`](harmonia_switch::SpineSwitch): per-group dirty sets and
//!   sequence spaces, shared memory accounting (`memory_bytes`).
//!
//! Clients stay oblivious: they address the switch, and the switch routes by
//! shard — exactly the §4 philosophy ("clients never know which replica
//! serves them") extended to "nor which group".

use harmonia_replication::{build_replica, GroupConfig, ProtocolKind};
use harmonia_sim::{LinkConfig, NetworkModel, World, WorldConfig};
use harmonia_switch::TableConfig;
use harmonia_types::{ClientId, Duration, NodeId, ReplicaId, SwitchId};
use harmonia_workload::ShardMap;

use crate::client::{OpenLoopClient, OpenLoopConfig, SourceFn};
use crate::msg::{CostModel, Msg};
use crate::replica_actor::ReplicaActor;
use crate::switch_actor::{SwitchActor, SwitchActorConfig, SwitchMode};

/// Full description of a sharded multi-group deployment.
#[derive(Clone, Debug)]
pub struct ShardedClusterConfig {
    /// The protocol every group runs.
    pub protocol: ProtocolKind,
    /// Harmonia on or off (baseline).
    pub harmonia: bool,
    /// Number of replica groups sharing the spine switch.
    pub groups: usize,
    /// Replication factor within each group.
    pub replicas_per_group: usize,
    /// Simulation seed.
    pub seed: u64,
    /// Per-message service costs at replicas.
    pub costs: CostModel,
    /// Per-group dirty-set geometry on the switch.
    pub table: TableConfig,
    /// Link model (see [`crate::cluster::ClusterConfig::link`]).
    pub link: LinkConfig,
    /// VR commit / NOPaxos sync cadence.
    pub sync_interval: Duration,
    /// Switch stale-entry sweep cadence.
    pub sweep_interval: Option<Duration>,
}

impl Default for ShardedClusterConfig {
    fn default() -> Self {
        ShardedClusterConfig {
            protocol: ProtocolKind::Chain,
            harmonia: true,
            groups: 4,
            replicas_per_group: 3,
            seed: 0xBEEF,
            costs: CostModel::paper_calibrated(),
            table: TableConfig::default(),
            link: LinkConfig::ideal(Duration::from_micros(5)),
            sync_interval: Duration::from_micros(200),
            sweep_interval: Some(Duration::from_millis(1)),
        }
    }
}

impl ShardedClusterConfig {
    /// The spine switch's address.
    pub fn switch_addr(&self) -> NodeId {
        NodeId::Switch(SwitchId(1))
    }

    /// The deployment's object→group map.
    pub fn shard_map(&self) -> ShardMap {
        ShardMap::new(self.groups)
    }

    /// Total replica count across every group.
    pub fn total_replicas(&self) -> usize {
        self.groups * self.replicas_per_group
    }

    /// The global id of replica `idx` of group `group`. Groups own disjoint
    /// contiguous slices of the replica-id space.
    pub fn replica_id(&self, group: usize, idx: usize) -> ReplicaId {
        assert!(group < self.groups && idx < self.replicas_per_group);
        ReplicaId((group * self.replicas_per_group + idx) as u32)
    }

    /// Group `group`'s membership in role order (head/primary/leader first).
    pub fn group_members(&self, group: usize) -> Vec<ReplicaId> {
        (0..self.replicas_per_group)
            .map(|i| self.replica_id(group, i))
            .collect()
    }

    /// Every group's membership, in group order.
    pub fn memberships(&self) -> Vec<Vec<ReplicaId>> {
        (0..self.groups).map(|g| self.group_members(g)).collect()
    }

    /// Replies a client must collect per write (see
    /// [`crate::cluster::ClusterConfig::write_replies`]).
    pub fn write_replies(&self) -> usize {
        match self.protocol {
            ProtocolKind::Nopaxos => self.protocol.quorum(self.replicas_per_group),
            _ => 1,
        }
    }

    fn switch_actor_config(&self, incarnation: SwitchId) -> SwitchActorConfig {
        SwitchActorConfig {
            incarnation,
            mode: if self.harmonia {
                SwitchMode::Harmonia
            } else {
                SwitchMode::Baseline
            },
            protocol: self.protocol,
            replicas: self.replicas_per_group,
            table: self.table,
            sweep_interval: self.sweep_interval,
        }
    }

    /// Build a fresh multi-group switch actor for the given incarnation
    /// (initial bring-up and §5.3 replacements).
    pub fn make_switch(&self, incarnation: SwitchId) -> SwitchActor {
        SwitchActor::new_sharded(self.switch_actor_config(incarnation), self.memberships())
    }

    /// Per-replica group configuration for group `group` as seen by its
    /// member `idx`.
    pub fn group_config(&self, group: usize, idx: usize) -> GroupConfig {
        GroupConfig {
            protocol: self.protocol,
            me: self.replica_id(group, idx),
            members: self.group_members(group),
            harmonia: self.harmonia,
            active_switch: SwitchId(1),
            sync_interval: self.sync_interval,
        }
    }
}

/// Build a world containing the spine switch and every group's replicas
/// (no clients).
pub fn build_sharded_world(cfg: &ShardedClusterConfig) -> World<Msg> {
    let mut world = World::new(WorldConfig {
        seed: cfg.seed,
        network: NetworkModel::uniform(cfg.link),
    });
    world.add_node(cfg.switch_addr(), Box::new(cfg.make_switch(SwitchId(1))));
    for g in 0..cfg.groups {
        for i in 0..cfg.replicas_per_group {
            world.add_node(
                NodeId::Replica(cfg.replica_id(g, i)),
                Box::new(ReplicaActor::new(
                    build_replica(cfg.group_config(g, i)),
                    cfg.costs,
                )),
            );
        }
    }
    world
}

/// Attach an open-loop load generator to a sharded world. Returns its node
/// id. The client addresses the spine switch; the switch routes each
/// request to its object's group.
pub fn add_sharded_open_loop_client(
    world: &mut World<Msg>,
    cluster: &ShardedClusterConfig,
    client: ClientId,
    rate_rps: f64,
    timeout: Duration,
    source: SourceFn,
) -> NodeId {
    let node = NodeId::Client(client);
    let cfg = OpenLoopConfig {
        switch: cluster.switch_addr(),
        rate_rps,
        write_replies: cluster.write_replies(),
        timeout,
    };
    world.add_node(node, Box::new(OpenLoopClient::new(client, cfg, source)));
    node
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{metrics, OpSpec};
    use bytes::Bytes;
    use harmonia_switch::GroupId;
    use harmonia_types::Instant;
    use rand::Rng;

    fn small(groups: usize) -> ShardedClusterConfig {
        ShardedClusterConfig {
            groups,
            ..ShardedClusterConfig::default()
        }
    }

    #[test]
    fn replica_ids_are_disjoint_and_contiguous() {
        let cfg = small(3);
        let all: Vec<u32> = (0..3)
            .flat_map(|g| cfg.group_members(g))
            .map(|r| r.0)
            .collect();
        assert_eq!(all, (0..9).collect::<Vec<u32>>());
        assert_eq!(cfg.group_members(2)[0], ReplicaId(6));
        assert_eq!(cfg.total_replicas(), 9);
    }

    #[test]
    fn sharded_world_serves_a_mixed_workload_on_every_group() {
        let cfg = small(4);
        let mut world = build_sharded_world(&cfg);
        let source: SourceFn = Box::new(|rng| {
            let key = Bytes::from(format!("key-{}", rng.gen_range(0..2000u32)));
            if rng.gen_bool(0.1) {
                OpSpec::write(key, Bytes::from_static(b"value"))
            } else {
                OpSpec::read(key)
            }
        });
        add_sharded_open_loop_client(
            &mut world,
            &cfg,
            ClientId(1),
            100_000.0,
            Duration::from_millis(10),
            source,
        );
        world.run_until(Instant::ZERO + Duration::from_millis(20));
        assert!(world.metrics().counter(metrics::READ_DONE) > 1000);
        assert!(world.metrics().counter(metrics::WRITE_DONE) > 50);
        let sw: &SwitchActor = world.actor(cfg.switch_addr()).unwrap();
        for g in 0..4 {
            let stats = sw.group_stats(GroupId(g)).unwrap();
            assert!(
                stats.writes_forwarded > 0,
                "group {g} never saw a write: {stats:?}"
            );
            assert!(
                stats.reads_fast_path + stats.reads_normal > 0,
                "group {g} never saw a read: {stats:?}"
            );
        }
    }

    #[test]
    fn spine_memory_accounting_scales_with_group_count() {
        let one = small(1);
        let four = small(4);
        let w1 = build_sharded_world(&one);
        let w4 = build_sharded_world(&four);
        let s1: &SwitchActor = w1.actor(one.switch_addr()).unwrap();
        let s4: &SwitchActor = w4.actor(four.switch_addr()).unwrap();
        assert_eq!(s4.memory_bytes(), 4 * s1.memory_bytes());
        assert_eq!(s4.spine().group_count(), 4);
    }

    #[test]
    fn single_group_sharded_world_matches_the_rack_deployment() {
        // groups = 1 must behave exactly like the classic ClusterConfig
        // world: the shard map is the identity onto group 0.
        let cfg = small(1);
        let mut world = build_sharded_world(&cfg);
        let source: SourceFn = Box::new(|rng| {
            let key = Bytes::from(format!("key-{}", rng.gen_range(0..100u32)));
            if rng.gen_bool(0.1) {
                OpSpec::write(key, Bytes::from_static(b"v"))
            } else {
                OpSpec::read(key)
            }
        });
        add_sharded_open_loop_client(
            &mut world,
            &cfg,
            ClientId(1),
            50_000.0,
            Duration::from_millis(10),
            source,
        );
        world.run_until(Instant::ZERO + Duration::from_millis(10));
        let sw: &SwitchActor = world.actor(cfg.switch_addr()).unwrap();
        assert_eq!(sw.stats(), sw.group_stats(GroupId(0)).unwrap());
        assert!(world.metrics().counter(metrics::READ_DONE) > 300);
    }
}
