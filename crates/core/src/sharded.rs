//! Deprecated sharded-assembly API (§6.3).
//!
//! Superseded by [`DeploymentSpec`]: a
//! sharded deployment is `DeploymentSpec::new().groups(n)`, and every helper
//! here is a delegation to the spec's single definition. Kept for one
//! release so downstream migrations are a mechanical rename.

#![allow(deprecated)]

use harmonia_replication::{GroupConfig, ProtocolKind};
use harmonia_sim::{LinkConfig, World};
use harmonia_switch::TableConfig;
use harmonia_types::{ClientId, Duration, NodeId, ReplicaId, SwitchId};
use harmonia_workload::ShardMap;

use crate::client::SourceFn;
use crate::deployment::DeploymentSpec;
use crate::msg::{CostModel, Msg};
use crate::switch_actor::SwitchActor;

/// Full description of a sharded multi-group deployment.
#[deprecated(note = "use `deployment::DeploymentSpec` with `groups(n)`")]
#[derive(Clone, Debug)]
pub struct ShardedClusterConfig {
    /// The protocol every group runs.
    pub protocol: ProtocolKind,
    /// Harmonia on or off (baseline).
    pub harmonia: bool,
    /// Number of replica groups sharing the spine switch.
    pub groups: usize,
    /// Replication factor within each group.
    pub replicas_per_group: usize,
    /// Simulation seed.
    pub seed: u64,
    /// Per-message service costs at replicas.
    pub costs: CostModel,
    /// Per-group dirty-set geometry on the switch.
    pub table: TableConfig,
    /// Link model (see [`DeploymentSpec::link`]).
    pub link: LinkConfig,
    /// VR commit / NOPaxos sync cadence.
    pub sync_interval: Duration,
    /// Switch stale-entry sweep cadence.
    pub sweep_interval: Option<Duration>,
}

impl Default for ShardedClusterConfig {
    fn default() -> Self {
        // The historical sharded default: four groups.
        ShardedClusterConfig::from(DeploymentSpec::default().groups(4))
    }
}

impl From<DeploymentSpec> for ShardedClusterConfig {
    fn from(spec: DeploymentSpec) -> Self {
        ShardedClusterConfig {
            protocol: spec.protocol,
            harmonia: spec.harmonia,
            groups: spec.groups,
            replicas_per_group: spec.replicas,
            seed: spec.seed,
            costs: spec.costs,
            table: spec.table,
            link: spec.link,
            sync_interval: spec.sync_interval,
            sweep_interval: spec.sweep_interval,
        }
    }
}

impl ShardedClusterConfig {
    /// The equivalent unified spec.
    pub fn to_spec(&self) -> DeploymentSpec {
        DeploymentSpec {
            protocol: self.protocol,
            harmonia: self.harmonia,
            groups: self.groups,
            replicas: self.replicas_per_group,
            seed: self.seed,
            costs: self.costs,
            table: self.table,
            link: self.link,
            sync_interval: self.sync_interval,
            sweep_interval: self.sweep_interval,
        }
    }

    /// The spine switch's address.
    pub fn switch_addr(&self) -> NodeId {
        self.to_spec().switch_addr()
    }

    /// The deployment's object→group map.
    pub fn shard_map(&self) -> ShardMap {
        self.to_spec().shard_map()
    }

    /// Total replica count across every group.
    pub fn total_replicas(&self) -> usize {
        self.to_spec().total_replicas()
    }

    /// The global id of replica `idx` of group `group`.
    pub fn replica_id(&self, group: usize, idx: usize) -> ReplicaId {
        self.to_spec().replica_id(group, idx)
    }

    /// Group `group`'s membership in role order.
    pub fn group_members(&self, group: usize) -> Vec<ReplicaId> {
        self.to_spec().group_members(group)
    }

    /// Every group's membership, in group order.
    pub fn memberships(&self) -> Vec<Vec<ReplicaId>> {
        self.to_spec().memberships()
    }

    /// Replies a client must collect per write.
    pub fn write_replies(&self) -> usize {
        self.to_spec().write_replies()
    }

    /// Build a fresh multi-group switch actor for the given incarnation.
    pub fn make_switch(&self, incarnation: SwitchId) -> SwitchActor {
        self.to_spec().make_switch(incarnation)
    }

    /// Per-replica group configuration for group `group`, member `idx`.
    pub fn group_config(&self, group: usize, idx: usize) -> GroupConfig {
        self.to_spec().group_config(group, idx)
    }
}

/// Build a world containing the spine switch and every group's replicas
/// (no clients).
#[deprecated(note = "use `DeploymentSpec::build_sim()` with `groups(n)`")]
pub fn build_sharded_world(cfg: &ShardedClusterConfig) -> World<Msg> {
    cfg.to_spec().build_sim().into_world()
}

/// Attach an open-loop load generator to a sharded world. Returns its node
/// id.
#[deprecated(note = "use `SimCluster::add_open_loop_client`")]
pub fn add_sharded_open_loop_client(
    world: &mut World<Msg>,
    cluster: &ShardedClusterConfig,
    client: ClientId,
    rate_rps: f64,
    timeout: Duration,
    source: SourceFn,
) -> NodeId {
    use crate::client::{OpenLoopClient, OpenLoopConfig};
    let node = NodeId::Client(client);
    let cfg = OpenLoopConfig {
        rate_rps,
        timeout,
        ..OpenLoopConfig::for_deployment(&cluster.to_spec())
    };
    world.add_node(node, Box::new(OpenLoopClient::new(client, cfg, source)));
    node
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{metrics, OpSpec};
    use bytes::Bytes;
    use harmonia_types::Instant;
    use rand::Rng;

    /// The deprecated sharded shims still assemble a working deployment.
    #[test]
    fn deprecated_build_sharded_world_still_serves_traffic() {
        let cfg = ShardedClusterConfig::default();
        assert_eq!(cfg.groups, 4, "historical default preserved");
        let mut world = build_sharded_world(&cfg);
        let source: SourceFn = Box::new(|rng| {
            let key = Bytes::from(format!("key-{}", rng.gen_range(0..500u32)));
            if rng.gen_bool(0.1) {
                OpSpec::write(key, Bytes::from_static(b"v"))
            } else {
                OpSpec::read(key)
            }
        });
        add_sharded_open_loop_client(
            &mut world,
            &cfg,
            ClientId(1),
            50_000.0,
            Duration::from_millis(10),
            source,
        );
        world.run_until(Instant::ZERO + Duration::from_millis(10));
        assert!(world.metrics().counter(metrics::READ_DONE) > 300);
    }

    #[test]
    fn sharded_config_and_spec_agree_on_topology() {
        let cfg = ShardedClusterConfig {
            groups: 3,
            replicas_per_group: 3,
            ..ShardedClusterConfig::default()
        };
        let spec = cfg.to_spec();
        assert_eq!(cfg.memberships(), spec.memberships());
        assert_eq!(cfg.total_replicas(), 9);
        assert_eq!(cfg.group_members(2)[0], ReplicaId(6));
        assert_eq!(cfg.write_replies(), spec.write_replies());
    }
}
