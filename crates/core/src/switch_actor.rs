//! The switch as a simulated node.
//!
//! Every packet of the rack traverses this actor (Figure 1): client requests
//! are run through Algorithm 1 (Harmonia mode) or plain entry-point routing
//! (baseline mode); replies flowing back to clients are snooped for
//! piggybacked WRITE-COMPLETIONs; standalone completions update the conflict
//! detector; protocol traffic would be forwarded by L2/L3 (the simulation
//! sends replica↔replica messages directly, so none arrives here).
//!
//! The actor's service model is [`Service::Immediate`]: a Tofino processes
//! packets at line rate, so the switch is pure delay, never a queue — the
//! property that lets Harmonia claim zero overhead (§6).

use std::collections::BTreeMap;

use harmonia_obs::{Counter, Recorder, TraceStage};
use harmonia_replication::messages::{NopaxosMsg, ProtocolMsg, WriteOp};
use harmonia_replication::ProtocolKind;
use harmonia_sim::{Actor, Context, Service, TimerToken};
use harmonia_switch::{
    ConflictConfig, ConflictDetector, ForwardingTable, GroupId, GroupObservation, ReadDecision,
    ReadEntry, Sequencer, SpineView, SwitchStats, TableConfig, WriteDecision, WriteEntry,
};
use harmonia_types::{
    ClientRequest, ControlMsg, Duration, Instant, NodeId, ObjectId, OpKind, PacketBody, ReadMode,
    ReplicaId, SwitchId, SwitchSeq, TraceId,
};
use harmonia_workload::ShardMap;

use crate::msg::Msg;

/// Is the conflict-detection module loaded on this switch?
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SwitchMode {
    /// Plain L2/L3 + protocol entry-point routing (the "without Harmonia"
    /// baselines of §9). CRAQ additionally gets anycast reads — its protocol
    /// handles per-object cleanliness itself.
    Baseline,
    /// In-network conflict detection per Algorithm 1.
    Harmonia,
}

/// Switch actor configuration.
#[derive(Clone, Copy, Debug)]
pub struct SwitchActorConfig {
    /// This incarnation's id (bump on every replacement, §5.3).
    pub incarnation: SwitchId,
    /// Baseline or Harmonia.
    pub mode: SwitchMode,
    /// The protocol the replica group runs (decides entry points).
    pub protocol: ProtocolKind,
    /// Number of replicas initially registered.
    pub replicas: usize,
    /// Dirty-set geometry.
    pub table: TableConfig,
    /// Cadence of the control-plane stale-entry sweep (§5.2); `None`
    /// disables it (lazy read-time scrubbing still runs).
    pub sweep_interval: Option<Duration>,
}

/// One replica group's complete switch-side state — conflict detector,
/// forwarding table, OUM sequencer, and data-plane counters — plus the full
/// per-packet logic that operates on it.
///
/// A `GroupCore` is the unit of ownership of the parallel live data plane:
/// every group's core is owned by exactly one pipeline thread, so no lock
/// guards the packet path (the property a real Tofino gets for free by
/// processing groups' packets in parallel at line rate). The deterministic
/// simulator keeps all cores behind one [`SwitchCore`] actor instead —
/// identical logic, single-threaded dispatch.
pub struct GroupCore {
    group: GroupId,
    incarnation: SwitchId,
    mode: SwitchMode,
    protocol: ProtocolKind,
    detector: ConflictDetector,
    fwd: ForwardingTable,
    sequencer: Sequencer,
    stats: SwitchStats,
    /// The members this group was provisioned with — control-plane
    /// addressing for a replica that was removed and is being re-added.
    provisioned: Vec<ReplicaId>,
    /// Observability sink (detached unless a driver attaches one).
    recorder: Recorder,
}

impl GroupCore {
    fn new(
        cfg: &SwitchActorConfig,
        group: GroupId,
        members: Vec<ReplicaId>,
        write_entry: WriteEntry,
        read_entry: ReadEntry,
    ) -> Self {
        GroupCore {
            group,
            incarnation: cfg.incarnation,
            mode: cfg.mode,
            protocol: cfg.protocol,
            detector: ConflictDetector::new(ConflictConfig {
                switch_id: cfg.incarnation,
                table: cfg.table,
            }),
            fwd: ForwardingTable::with_members(members.clone(), write_entry, read_entry),
            sequencer: Sequencer::new(u64::from(cfg.incarnation.0)),
            stats: SwitchStats::default(),
            provisioned: members,
            recorder: Recorder::detached(),
        }
    }

    /// Attach an observability recorder. The live driver gives every
    /// pipeline its own registry shard; the simulator shares one clone
    /// across all groups (single-threaded, so there is no contention to
    /// shard away).
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// The attached observability recorder (the live pipeline reads its
    /// clock for packet timestamps).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The group this core schedules.
    pub fn group(&self) -> GroupId {
        self.group
    }

    /// This incarnation's id.
    pub fn incarnation(&self) -> SwitchId {
        self.incarnation
    }

    /// The group's data-plane counters.
    pub fn stats(&self) -> SwitchStats {
        self.stats
    }

    /// The group's conflict detector (inspection).
    pub fn detector(&self) -> &ConflictDetector {
        &self.detector
    }

    /// Dirty-set SRAM consumed by this group.
    pub fn memory_bytes(&self) -> usize {
        self.detector.memory_bytes()
    }

    /// Whether replica `r` is currently read-gated in this group's table.
    pub fn is_gated(&self, r: ReplicaId) -> bool {
        self.fwd.is_gated(r)
    }

    /// A point-in-time snapshot for aggregate-only views ([`SpineView`]).
    pub fn observe(&self) -> GroupObservation {
        GroupObservation {
            group: self.group,
            stats: self.stats,
            fast_path_enabled: self.detector.fast_path_enabled(),
            memory_bytes: self.detector.memory_bytes(),
            dirty_len: self.detector.dirty_len(),
        }
    }

    fn handle_write(
        &mut self,
        now: Instant,
        me: NodeId,
        mut req: ClientRequest,
        out: &mut Vec<(NodeId, Msg)>,
    ) {
        let trace_id = TraceId::new(req.client, req.request);
        // Harmonia: Algorithm 1 lines 1–4, on this object's group.
        if self.mode == SwitchMode::Harmonia {
            match self.detector.process_write(req.obj) {
                WriteDecision::Stamped(seq) => req.seq = Some(seq),
                WriteDecision::Dropped => {
                    // §6.1: no dirty-set slot — the write is dropped in the
                    // data plane; the client will time out and retry.
                    self.stats.writes_dropped += 1;
                    self.recorder
                        .trace_at(now, me, trace_id, req.obj, TraceStage::SwitchWriteDrop);
                    return;
                }
            }
        }
        self.stats.writes_forwarded += 1;
        self.recorder
            .trace_at(now, me, trace_id, req.obj, TraceStage::SwitchWriteForward);
        if self.protocol == ProtocolKind::Nopaxos {
            // Ordered unreliable multicast: stamp and fan out (§7.3) within
            // the object's group; sessions are per group so gap detection
            // never crosses shard boundaries.
            let stamp = self.sequencer.stamp();
            let seq = req
                .seq
                .unwrap_or(SwitchSeq::new(self.incarnation, stamp.seq));
            let op = WriteOp {
                seq,
                obj: req.obj,
                key: req.key.clone(),
                value: req.value.clone().unwrap_or_default(),
                client: req.client,
                request: req.request,
            };
            for &r in self.fwd.replicas() {
                let dst = NodeId::Replica(r);
                out.push((
                    dst,
                    Msg::new(
                        me,
                        dst,
                        PacketBody::Protocol(ProtocolMsg::Nopaxos(NopaxosMsg::Sequenced {
                            session: stamp.session,
                            oum_seq: stamp.seq,
                            op: op.clone(),
                        })),
                    ),
                ));
            }
        } else if let Some(&dst) = self.fwd.write_destinations().first() {
            out.push((dst, Msg::new(me, dst, PacketBody::Request(req))));
        }
    }

    fn handle_read(
        &mut self,
        now: Instant,
        me: NodeId,
        mut req: ClientRequest,
        rng: &mut rand::rngs::SmallRng,
        out: &mut Vec<(NodeId, Msg)>,
    ) {
        let trace_id = TraceId::new(req.client, req.request);
        let dst = match self.mode {
            SwitchMode::Harmonia => match self.detector.process_read(req.obj) {
                ReadDecision::FastPath { last_committed } => {
                    // Algorithm 1 lines 10–12.
                    req.last_committed = Some(last_committed);
                    req.read_mode = ReadMode::FastPath {
                        switch: self.incarnation,
                    };
                    self.stats.reads_fast_path += 1;
                    self.recorder.trace_at(
                        now,
                        me,
                        trace_id,
                        req.obj,
                        TraceStage::SwitchFastPathRead,
                    );
                    self.fwd.random_replica(rng)
                }
                ReadDecision::Normal => {
                    self.stats.reads_normal += 1;
                    self.recorder.trace_at(
                        now,
                        me,
                        trace_id,
                        req.obj,
                        TraceStage::SwitchNormalRead,
                    );
                    self.fwd.normal_read_destination()
                }
            },
            SwitchMode::Baseline => {
                self.stats.reads_normal += 1;
                self.recorder
                    .trace_at(now, me, trace_id, req.obj, TraceStage::SwitchNormalRead);
                if self.protocol == ProtocolKind::Craq {
                    // CRAQ serves reads at any replica natively.
                    self.fwd.random_replica(rng)
                } else {
                    self.fwd.normal_read_destination()
                }
            }
        };
        if let Some(dst) = dst {
            out.push((dst, Msg::new(me, dst, PacketBody::Request(req))));
        }
    }

    fn snoop_completion(&mut self, c: harmonia_types::WriteCompletion) {
        self.detector.process_completion(c);
        self.stats.completions += 1;
    }

    fn handle_reply(
        &mut self,
        me: NodeId,
        reply: harmonia_types::ClientReply,
        out: &mut Vec<(NodeId, Msg)>,
    ) {
        // Snoop the piggybacked completion (Figure 2b), then forward the
        // reply to its client.
        if self.mode == SwitchMode::Harmonia {
            if let Some(c) = reply.completion {
                self.snoop_completion(c);
            }
        }
        let dst = NodeId::Client(reply.client);
        out.push((dst, Msg::new(me, dst, PacketBody::Reply(reply))));
    }

    /// Whether a control-plane message about `r` addresses this group:
    /// the replica is currently served here, or was provisioned here.
    fn owns(&self, r: ReplicaId) -> bool {
        self.fwd.replicas().contains(&r) || self.provisioned.contains(&r)
    }

    /// Control-plane membership changes in the live fleet arrive by
    /// broadcast (the stateless spine cannot know which group a replica
    /// currently lives in), so each group applies only the changes
    /// addressed to it. The monolithic [`SwitchCore::handle`] routes
    /// exactly instead — sim behavior is unchanged. Residual divergence:
    /// live cross-group replica moves (which no §5.3 flow performs) and
    /// controls naming replicas unknown to every group (the monolith
    /// defaults those to group 0; a fleet drops them).
    fn handle_control(&mut self, ctl: ControlMsg) {
        match ctl {
            ControlMsg::AddReplica(r) => {
                if self.owns(r) {
                    self.fwd.add_replica(r);
                }
            }
            ControlMsg::RemoveReplica(r) => {
                if self.fwd.replicas().contains(&r) {
                    self.fwd.remove_replica(r);
                }
            }
            ControlMsg::SetReplicas(rs) => {
                if rs.first().is_some_and(|&r| self.owns(r)) {
                    self.fwd.set_replicas(rs);
                }
            }
            ControlMsg::GateReplica(r) => {
                if self.owns(r) {
                    // Gate floor: the group's last-committed point right
                    // now. Every write in the replica's recovery window is
                    // at or below it, so an ungate proving catch-up past
                    // the floor proves the window is covered.
                    let floor = self.detector.last_committed();
                    self.fwd.gate_replica(r, floor);
                }
            }
            ControlMsg::UngateReplica { replica, caught_up } => {
                if self.owns(replica) {
                    self.fwd.ungate_replica(replica, caught_up);
                }
            }
        }
    }

    /// Process one packet addressed to this group, pushing forwarded
    /// packets onto `out`. This is the whole per-packet pipeline of a live
    /// worker; the monolithic [`SwitchCore::handle`] dispatches to the same
    /// arms after shard-routing.
    pub fn handle(
        &mut self,
        now: Instant,
        me: NodeId,
        msg: Msg,
        rng: &mut rand::rngs::SmallRng,
        out: &mut Vec<(NodeId, Msg)>,
    ) {
        self.recorder.incr(Counter::SwitchPackets);
        match msg.body {
            PacketBody::Request(req) => match req.op {
                OpKind::Write => self.handle_write(now, me, req, out),
                OpKind::Read => self.handle_read(now, me, req, rng, out),
            },
            PacketBody::Reply(reply) => self.handle_reply(me, reply, out),
            PacketBody::Completion(c) => {
                if self.mode == SwitchMode::Harmonia {
                    self.snoop_completion(c);
                }
            }
            PacketBody::Control(ctl) => self.handle_control(ctl),
            PacketBody::Protocol(p) => {
                // L2/L3 forwarding of protocol traffic routed through the
                // switch (replicas normally talk to each other direct).
                self.stats.forwarded_other += 1;
                let dst = msg.dst;
                out.push((dst, Msg::new(msg.src, dst, PacketBody::Protocol(p))));
            }
        }
    }

    /// Control-plane sweep of stale dirty entries (§5.2).
    pub fn sweep(&mut self) -> usize {
        let swept = self.detector.sweep();
        self.recorder.add(Counter::SwitchSwept, swept as u64);
        swept
    }
}

/// Transport-agnostic switch logic, shared by the simulated actor and the
/// live threaded driver.
///
/// One `SwitchCore` hosts the Harmonia scheduler for one **or many** replica
/// groups (§6.3): each group's conflict detector, forwarding table, OUM
/// sequencer, and counters live in that group's [`GroupCore`]. Requests are
/// routed to their group by the deployment's [`ShardMap`] — for the
/// rack-scale single-group case that map is the identity onto group 0 and
/// the behavior is exactly the paper's Figure 1 pipeline.
///
/// The simulator drives the core whole (one deterministic actor); the live
/// driver calls [`into_group_cores`](Self::into_group_cores) and moves each
/// group's core onto its own pipeline thread.
pub struct SwitchCore {
    cfg: SwitchActorConfig,
    groups: BTreeMap<GroupId, GroupCore>,
    shards: ShardMap,
    /// Where each replica was provisioned (control-plane routing for
    /// `AddReplica` after a removal emptied its group entry).
    home: BTreeMap<ReplicaId, GroupId>,
    /// Counters not attributable to any one group (L2/L3 forwards).
    misc: SwitchStats,
}

impl SwitchCore {
    /// Build the data-plane state for `cfg`: a single replica group with
    /// members `0..cfg.replicas` (the rack-scale deployment).
    pub fn new(cfg: SwitchActorConfig) -> Self {
        let members = (0..cfg.replicas as u32).map(ReplicaId).collect();
        Self::new_sharded(cfg, vec![members])
    }

    /// The one constructor both drivers use: build the core for incarnation
    /// `incarnation` of `spec`, hosting every group of the deployment —
    /// whether that is one ([`groups(1)`](crate::deployment::DeploymentSpec::groups),
    /// the rack-scale case) or many (§6.3).
    pub fn for_deployment(spec: &crate::deployment::DeploymentSpec, incarnation: SwitchId) -> Self {
        SwitchCore::new_sharded(spec.switch_actor_config(incarnation), spec.memberships())
    }

    /// Build a spine switch hosting one group per entry of `memberships`
    /// (§6.3 cloud-scale deployment). Group `g` serves the objects
    /// `ShardMap::new(memberships.len()).shard_of(obj) == g`; every group
    /// gets its own `cfg.table`-sized dirty set and sequence space, all
    /// under this one incarnation. `cfg.replicas` is ignored — memberships
    /// are explicit.
    pub fn new_sharded(cfg: SwitchActorConfig, memberships: Vec<Vec<ReplicaId>>) -> Self {
        assert!(!memberships.is_empty(), "at least one replica group");
        let (write_entry, read_entry) = match cfg.protocol {
            ProtocolKind::PrimaryBackup => (WriteEntry::Primary, ReadEntry::Primary),
            ProtocolKind::Chain | ProtocolKind::Craq => {
                (WriteEntry::ChainHead, ReadEntry::ChainTail)
            }
            ProtocolKind::Vr => (WriteEntry::Leader, ReadEntry::Leader),
            ProtocolKind::Nopaxos => (WriteEntry::Multicast, ReadEntry::Leader),
        };
        let shards = ShardMap::new(memberships.len());
        let mut groups = BTreeMap::new();
        let mut home = BTreeMap::new();
        for (g, members) in memberships.into_iter().enumerate() {
            let gid = GroupId(g as u32);
            for &r in &members {
                home.insert(r, gid);
            }
            groups.insert(
                gid,
                GroupCore::new(&cfg, gid, members, write_entry, read_entry),
            );
        }
        SwitchCore {
            cfg,
            groups,
            shards,
            home,
            misc: SwitchStats::default(),
        }
    }

    fn group_of(&self, obj: ObjectId) -> GroupId {
        GroupId(self.shards.shard_of(obj))
    }

    /// Aggregate data-plane counters across every hosted group.
    pub fn stats(&self) -> SwitchStats {
        let mut total = self.misc;
        for core in self.groups.values() {
            total.merge(&core.stats);
        }
        total
    }

    /// One group's data-plane counters.
    pub fn group_stats(&self, group: GroupId) -> Option<SwitchStats> {
        self.groups.get(&group).map(|c| c.stats)
    }

    /// Number of replica groups hosted by this switch.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// The deployment's object→group map.
    pub fn shard_map(&self) -> ShardMap {
        self.shards
    }

    /// Aggregate-only view across every hosted group — the same snapshots
    /// a fleet of live pipeline workers exports.
    pub fn view(&self) -> SpineView {
        SpineView::new(self.groups.values().map(|c| c.observe()).collect())
    }

    /// Group 0's conflict detector — the whole detector in a single-group
    /// deployment (inspection).
    pub fn detector(&self) -> &ConflictDetector {
        self.group_detector(GroupId(0))
            .expect("group 0 always exists")
    }

    /// A specific group's conflict detector (inspection).
    pub fn group_detector(&self, group: GroupId) -> Option<&ConflictDetector> {
        self.groups.get(&group).map(|c| &c.detector)
    }

    /// Dirty-set SRAM consumed by one hosted group.
    pub fn group_memory_bytes(&self, group: GroupId) -> Option<usize> {
        self.groups.get(&group).map(|c| c.memory_bytes())
    }

    /// Total dirty-set SRAM across every hosted group (§6.3 budget check).
    pub fn memory_bytes(&self) -> usize {
        self.groups.values().map(|c| c.memory_bytes()).sum()
    }

    /// This incarnation's id.
    pub fn incarnation(&self) -> SwitchId {
        self.cfg.incarnation
    }

    /// Whether replica `r` is currently read-gated (recovering, not yet
    /// proven caught up) in its group's forwarding table.
    pub fn is_gated(&self, r: ReplicaId) -> bool {
        self.groups.values().any(|c| c.fwd.is_gated(r))
    }

    /// Tear the core into independently-ownable per-group pipelines (the
    /// live driver), in group order. Each [`GroupCore`] takes its group's
    /// detector, forwarding table, sequencer, counters, and provisioned
    /// membership with it; nothing shared remains.
    pub fn into_group_cores(self) -> Vec<GroupCore> {
        self.groups.into_values().collect()
    }

    /// The group a control-plane membership change addresses: wherever the
    /// replica currently lives, falling back to where it was provisioned,
    /// then to group 0 (single-group deployments never hit the fallbacks).
    fn control_group(&self, r: ReplicaId) -> GroupId {
        self.groups
            .iter()
            .find(|(_, c)| c.fwd.replicas().contains(&r))
            .map(|(&g, _)| g)
            .or_else(|| self.home.get(&r).copied())
            .unwrap_or(GroupId(0))
    }

    /// Attach an observability recorder, shared (cloned) across every
    /// hosted group — the single-threaded simulator's wiring. The live
    /// driver instead attaches one recorder per group after
    /// [`into_group_cores`](Self::into_group_cores).
    pub fn set_recorder(&mut self, recorder: &Recorder) {
        for core in self.groups.values_mut() {
            core.set_recorder(recorder.clone());
        }
    }

    /// Process one packet, pushing forwarded packets onto `out`.
    pub fn handle(
        &mut self,
        now: Instant,
        me: NodeId,
        msg: Msg,
        rng: &mut rand::rngs::SmallRng,
        out: &mut Vec<(NodeId, Msg)>,
    ) {
        match msg.body {
            PacketBody::Request(req) => {
                let gid = self.group_of(req.obj);
                if let Some(core) = self.groups.get_mut(&gid) {
                    core.recorder.incr(Counter::SwitchPackets);
                    match req.op {
                        OpKind::Write => core.handle_write(now, me, req, out),
                        OpKind::Read => core.handle_read(now, me, req, rng, out),
                    }
                }
            }
            PacketBody::Reply(reply) => {
                // Snoop the piggybacked completion (Figure 2b) into its
                // object's group, then forward the reply to its client.
                if self.cfg.mode == SwitchMode::Harmonia {
                    if let Some(c) = reply.completion {
                        let gid = self.group_of(c.obj);
                        if let Some(core) = self.groups.get_mut(&gid) {
                            core.snoop_completion(c);
                        }
                    }
                }
                let dst = NodeId::Client(reply.client);
                out.push((dst, Msg::new(me, dst, PacketBody::Reply(reply))));
            }
            PacketBody::Completion(c) => {
                if self.cfg.mode == SwitchMode::Harmonia {
                    let gid = self.group_of(c.obj);
                    if let Some(core) = self.groups.get_mut(&gid) {
                        core.snoop_completion(c);
                    }
                }
            }
            PacketBody::Control(ctl) => match ctl {
                ControlMsg::AddReplica(r) => {
                    let gid = self.control_group(r);
                    self.home.insert(r, gid);
                    if let Some(core) = self.groups.get_mut(&gid) {
                        core.fwd.add_replica(r);
                    }
                }
                ControlMsg::RemoveReplica(r) => {
                    let gid = self.control_group(r);
                    if let Some(core) = self.groups.get_mut(&gid) {
                        core.fwd.remove_replica(r);
                    }
                }
                ControlMsg::SetReplicas(rs) => {
                    let gid = rs
                        .first()
                        .map(|&r| self.control_group(r))
                        .unwrap_or(GroupId(0));
                    for &r in &rs {
                        self.home.insert(r, gid);
                    }
                    if let Some(core) = self.groups.get_mut(&gid) {
                        core.fwd.set_replicas(rs);
                    }
                }
                ControlMsg::GateReplica(r) => {
                    let gid = self.control_group(r);
                    if let Some(core) = self.groups.get_mut(&gid) {
                        let floor = core.detector.last_committed();
                        core.fwd.gate_replica(r, floor);
                    }
                }
                ControlMsg::UngateReplica { replica, caught_up } => {
                    let gid = self.control_group(replica);
                    if let Some(core) = self.groups.get_mut(&gid) {
                        core.fwd.ungate_replica(replica, caught_up);
                    }
                }
            },
            PacketBody::Protocol(p) => {
                // L2/L3 forwarding of protocol traffic routed through the
                // switch (the sim normally sends these direct).
                self.misc.forwarded_other += 1;
                let dst = msg.dst;
                out.push((dst, Msg::new(msg.src, dst, PacketBody::Protocol(p))));
            }
        }
    }

    /// Control-plane sweep of stale dirty entries (§5.2), across every
    /// hosted group.
    pub fn sweep(&mut self) -> usize {
        self.groups.values_mut().map(|c| c.sweep()).sum()
    }
}

/// The switch as a simulated node: [`SwitchCore`] plus timers and the
/// line-rate service model.
pub struct SwitchActor {
    core: SwitchCore,
    out: Vec<(NodeId, Msg)>,
}

impl SwitchActor {
    /// Build a switch for `cfg`.
    pub fn new(cfg: SwitchActorConfig) -> Self {
        SwitchActor {
            core: SwitchCore::new(cfg),
            out: Vec::new(),
        }
    }

    /// Build a spine switch hosting one group per membership list.
    pub fn new_sharded(cfg: SwitchActorConfig, memberships: Vec<Vec<ReplicaId>>) -> Self {
        SwitchActor {
            core: SwitchCore::new_sharded(cfg, memberships),
            out: Vec::new(),
        }
    }

    /// Build the switch actor for incarnation `incarnation` of `spec`,
    /// hosting every group of the deployment (see
    /// [`SwitchCore::for_deployment`]).
    pub fn for_deployment(spec: &crate::deployment::DeploymentSpec, incarnation: SwitchId) -> Self {
        SwitchActor {
            core: SwitchCore::for_deployment(spec, incarnation),
            out: Vec::new(),
        }
    }

    /// Attach an observability recorder (shared across hosted groups).
    pub fn set_recorder(&mut self, recorder: &Recorder) {
        self.core.set_recorder(recorder);
    }

    /// Aggregate data-plane counters.
    pub fn stats(&self) -> SwitchStats {
        self.core.stats()
    }

    /// One group's data-plane counters.
    pub fn group_stats(&self, group: GroupId) -> Option<SwitchStats> {
        self.core.group_stats(group)
    }

    /// The conflict-detection module (inspection; group 0).
    pub fn detector(&self) -> &ConflictDetector {
        self.core.detector()
    }

    /// A specific group's conflict detector (inspection).
    pub fn group_detector(&self, group: GroupId) -> Option<&ConflictDetector> {
        self.core.group_detector(group)
    }

    /// Number of replica groups hosted by this switch.
    pub fn group_count(&self) -> usize {
        self.core.group_count()
    }

    /// Dirty-set SRAM consumed by one hosted group.
    pub fn group_memory_bytes(&self, group: GroupId) -> Option<usize> {
        self.core.group_memory_bytes(group)
    }

    /// Aggregate-only view across every hosted group (the same shape live
    /// pipeline fleets export).
    pub fn view(&self) -> SpineView {
        self.core.view()
    }

    /// Total dirty-set SRAM across every hosted group.
    pub fn memory_bytes(&self) -> usize {
        self.core.memory_bytes()
    }

    /// This incarnation's id.
    pub fn incarnation(&self) -> SwitchId {
        self.core.incarnation()
    }

    /// Whether replica `r` is currently read-gated in its group's table.
    pub fn is_gated(&self, r: ReplicaId) -> bool {
        self.core.is_gated(r)
    }
}

impl Actor<Msg> for SwitchActor {
    fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
        if let Some(iv) = self.core.cfg.sweep_interval {
            ctx.set_timer(iv);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _from: NodeId, msg: Msg) {
        let was_drops = self.core.stats().writes_dropped;
        let mut out = std::mem::take(&mut self.out);
        let now = ctx.now();
        self.core.handle(now, ctx.node(), msg, ctx.rng(), &mut out);
        if self.core.stats().writes_dropped > was_drops {
            ctx.metrics().incr("switch.write_dropped");
        }
        for (dst, m) in out.drain(..) {
            ctx.send(dst, m);
        }
        self.out = out;
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, _token: TimerToken) {
        let swept = self.core.sweep();
        if swept > 0 {
            ctx.metrics().add("switch.swept", swept as u64);
        }
        if let Some(iv) = self.core.cfg.sweep_interval {
            ctx.set_timer(iv);
        }
    }

    fn service(&self, _msg: &Msg) -> Service {
        // Line rate: pure delay, never a queue (§6).
        Service::Immediate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_sim::{LinkConfig, NetworkModel, World, WorldConfig};
    use harmonia_types::{ClientId, RequestId, WriteCompletion};

    const SWITCH: NodeId = NodeId::Switch(SwitchId(1));

    fn cfg(mode: SwitchMode, protocol: ProtocolKind) -> SwitchActorConfig {
        SwitchActorConfig {
            incarnation: SwitchId(1),
            mode,
            protocol,
            replicas: 3,
            table: TableConfig {
                stages: 2,
                slots_per_stage: 64,
                entry_bytes: 8,
            },
            sweep_interval: None,
        }
    }

    /// Collects everything addressed to it.
    struct Sink {
        got: Vec<Msg>,
    }
    impl Actor<Msg> for Sink {
        fn on_message(&mut self, _ctx: &mut Context<'_, Msg>, _from: NodeId, msg: Msg) {
            self.got.push(msg);
        }
    }

    fn world_with_switch(mode: SwitchMode, protocol: ProtocolKind) -> World<Msg> {
        let mut w = World::new(WorldConfig {
            seed: 1,
            network: NetworkModel::uniform(LinkConfig::ideal(
                harmonia_types::Duration::from_micros(1),
            )),
        });
        w.add_node(SWITCH, Box::new(SwitchActor::new(cfg(mode, protocol))));
        for r in 0..3 {
            w.add_node(
                NodeId::Replica(harmonia_types::ReplicaId(r)),
                Box::new(Sink { got: vec![] }),
            );
        }
        w.add_node(NodeId::Client(ClientId(1)), Box::new(Sink { got: vec![] }));
        w
    }

    fn send_req(w: &mut World<Msg>, req: ClientRequest) {
        let from = NodeId::Client(req.client);
        w.inject(
            from,
            SWITCH,
            Msg::new(from, SWITCH, PacketBody::Request(req)),
        );
        w.run_until_idle(1000);
    }

    fn replica_msgs(w: &World<Msg>, r: u32) -> &Vec<Msg> {
        &w.actor::<Sink>(NodeId::Replica(harmonia_types::ReplicaId(r)))
            .unwrap()
            .got
    }

    #[test]
    fn harmonia_write_is_stamped_and_sent_to_entry_point() {
        let mut w = world_with_switch(SwitchMode::Harmonia, ProtocolKind::Chain);
        send_req(
            &mut w,
            ClientRequest::write(ClientId(1), RequestId(1), &b"k"[..], &b"v"[..]),
        );
        let head = replica_msgs(&w, 0);
        assert_eq!(head.len(), 1);
        let PacketBody::Request(req) = &head[0].body else {
            panic!()
        };
        assert_eq!(req.seq, Some(SwitchSeq::new(SwitchId(1), 1)));
        let sw: &SwitchActor = w.actor(SWITCH).unwrap();
        assert_eq!(sw.detector().dirty_len(), 1);
    }

    #[test]
    fn reads_use_normal_path_until_first_completion_then_fast_path() {
        let mut w = world_with_switch(SwitchMode::Harmonia, ProtocolKind::Chain);
        send_req(
            &mut w,
            ClientRequest::read(ClientId(1), RequestId(1), &b"a"[..]),
        );
        // Normal path -> tail (replica 2).
        assert_eq!(replica_msgs(&w, 2).len(), 1);
        // Write commits: completion arrives.
        send_req(
            &mut w,
            ClientRequest::write(ClientId(1), RequestId(2), &b"k"[..], &b"v"[..]),
        );
        w.inject(
            NodeId::Replica(harmonia_types::ReplicaId(2)),
            SWITCH,
            Msg::new(
                NodeId::Replica(harmonia_types::ReplicaId(2)),
                SWITCH,
                PacketBody::Completion(WriteCompletion {
                    obj: harmonia_types::ObjectId::from_key(b"k"),
                    seq: SwitchSeq::new(SwitchId(1), 1),
                }),
            ),
        );
        w.run_until_idle(100);
        // Fast path now on: an uncontended read is stamped and randomized.
        send_req(
            &mut w,
            ClientRequest::read(ClientId(1), RequestId(3), &b"a"[..]),
        );
        let sw: &SwitchActor = w.actor(SWITCH).unwrap();
        assert_eq!(sw.stats().reads_fast_path, 1);
        assert_eq!(sw.stats().reads_normal, 1);
        let fast: Vec<_> = (0..3)
            .flat_map(|r| replica_msgs(&w, r).iter())
            .filter_map(|m| match &m.body {
                PacketBody::Request(r) if r.read_mode.is_fast_path() => Some(r),
                _ => None,
            })
            .collect();
        assert_eq!(fast.len(), 1);
        assert_eq!(fast[0].last_committed, Some(SwitchSeq::new(SwitchId(1), 1)));
    }

    #[test]
    fn contended_read_takes_normal_path() {
        let mut w = world_with_switch(SwitchMode::Harmonia, ProtocolKind::Chain);
        // Prime fast path.
        send_req(
            &mut w,
            ClientRequest::write(ClientId(1), RequestId(1), &b"k"[..], &b"v"[..]),
        );
        w.inject(
            NodeId::Replica(harmonia_types::ReplicaId(2)),
            SWITCH,
            Msg::new(
                NodeId::Replica(harmonia_types::ReplicaId(2)),
                SWITCH,
                PacketBody::Completion(WriteCompletion {
                    obj: harmonia_types::ObjectId::from_key(b"k"),
                    seq: SwitchSeq::new(SwitchId(1), 1),
                }),
            ),
        );
        w.run_until_idle(100);
        // A pending write to "hot" makes reads of it contended.
        send_req(
            &mut w,
            ClientRequest::write(ClientId(1), RequestId(2), &b"hot"[..], &b"v"[..]),
        );
        send_req(
            &mut w,
            ClientRequest::read(ClientId(1), RequestId(3), &b"hot"[..]),
        );
        let sw: &SwitchActor = w.actor(SWITCH).unwrap();
        assert_eq!(sw.stats().reads_normal, 1);
        assert_eq!(sw.stats().reads_fast_path, 0);
    }

    #[test]
    fn baseline_routes_reads_to_entry_point_only() {
        let mut w = world_with_switch(SwitchMode::Baseline, ProtocolKind::Chain);
        for i in 0..5 {
            send_req(
                &mut w,
                ClientRequest::read(ClientId(1), RequestId(i), &b"k"[..]),
            );
        }
        assert_eq!(replica_msgs(&w, 2).len(), 5, "all reads at the tail");
        assert_eq!(replica_msgs(&w, 0).len(), 0);
        let sw: &SwitchActor = w.actor(SWITCH).unwrap();
        assert_eq!(sw.detector().dirty_len(), 0, "baseline tracks nothing");
    }

    #[test]
    fn craq_baseline_anycasts_reads() {
        let mut w = world_with_switch(SwitchMode::Baseline, ProtocolKind::Craq);
        for i in 0..30 {
            send_req(
                &mut w,
                ClientRequest::read(ClientId(1), RequestId(i), &b"k"[..]),
            );
        }
        let counts: Vec<usize> = (0..3).map(|r| replica_msgs(&w, r).len()).collect();
        assert_eq!(counts.iter().sum::<usize>(), 30);
        assert!(
            counts.iter().all(|&c| c > 0),
            "spread across replicas: {counts:?}"
        );
    }

    #[test]
    fn nopaxos_write_is_sequenced_and_multicast() {
        let mut w = world_with_switch(SwitchMode::Harmonia, ProtocolKind::Nopaxos);
        send_req(
            &mut w,
            ClientRequest::write(ClientId(1), RequestId(1), &b"k"[..], &b"v"[..]),
        );
        for r in 0..3 {
            let msgs = replica_msgs(&w, r);
            assert_eq!(msgs.len(), 1, "replica {r}");
            let PacketBody::Protocol(ProtocolMsg::Nopaxos(NopaxosMsg::Sequenced {
                session,
                oum_seq,
                op,
            })) = &msgs[0].body
            else {
                panic!("expected sequenced multicast")
            };
            assert_eq!(*session, 1);
            assert_eq!(*oum_seq, 1);
            assert_eq!(op.seq, SwitchSeq::new(SwitchId(1), 1));
        }
    }

    #[test]
    fn reply_snooping_processes_piggybacked_completion() {
        let mut w = world_with_switch(SwitchMode::Harmonia, ProtocolKind::Chain);
        send_req(
            &mut w,
            ClientRequest::write(ClientId(1), RequestId(1), &b"k"[..], &b"v"[..]),
        );
        let sw: &SwitchActor = w.actor(SWITCH).unwrap();
        assert_eq!(sw.detector().dirty_len(), 1);
        // Tail's reply with the piggybacked completion passes the switch.
        let reply = harmonia_types::ClientReply {
            client: ClientId(1),
            from: harmonia_types::ReplicaId(2),
            request: RequestId(1),
            obj: harmonia_types::ObjectId::from_key(b"k"),
            value: None,
            write_outcome: Some(harmonia_types::WriteOutcome::Committed),
            completion: Some(WriteCompletion {
                obj: harmonia_types::ObjectId::from_key(b"k"),
                seq: SwitchSeq::new(SwitchId(1), 1),
            }),
        };
        w.inject(
            NodeId::Replica(harmonia_types::ReplicaId(2)),
            SWITCH,
            Msg::new(
                NodeId::Replica(harmonia_types::ReplicaId(2)),
                SWITCH,
                PacketBody::Reply(reply),
            ),
        );
        w.run_until_idle(100);
        let sw: &SwitchActor = w.actor(SWITCH).unwrap();
        assert_eq!(sw.detector().dirty_len(), 0, "completion cleared the entry");
        assert!(sw.detector().fast_path_enabled());
        // And the client received the forwarded reply.
        let client_msgs = &w.actor::<Sink>(NodeId::Client(ClientId(1))).unwrap().got;
        assert_eq!(client_msgs.len(), 1);
    }

    #[test]
    fn control_messages_update_forwarding() {
        let mut w = world_with_switch(SwitchMode::Harmonia, ProtocolKind::Chain);
        w.inject(
            NodeId::Controller,
            SWITCH,
            Msg::new(
                NodeId::Controller,
                SWITCH,
                PacketBody::Control(ControlMsg::RemoveReplica(harmonia_types::ReplicaId(2))),
            ),
        );
        w.run_until_idle(10);
        // Normal reads now land on replica 1 (new tail).
        send_req(
            &mut w,
            ClientRequest::read(ClientId(1), RequestId(1), &b"k"[..]),
        );
        assert_eq!(replica_msgs(&w, 1).len(), 1);
        assert_eq!(replica_msgs(&w, 2).len(), 0);
    }
}
