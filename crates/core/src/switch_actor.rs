//! The switch as a simulated node.
//!
//! Every packet of the rack traverses this actor (Figure 1): client requests
//! are run through Algorithm 1 (Harmonia mode) or plain entry-point routing
//! (baseline mode); replies flowing back to clients are snooped for
//! piggybacked WRITE-COMPLETIONs; standalone completions update the conflict
//! detector; protocol traffic would be forwarded by L2/L3 (the simulation
//! sends replica↔replica messages directly, so none arrives here).
//!
//! The actor's service model is [`Service::Immediate`]: a Tofino processes
//! packets at line rate, so the switch is pure delay, never a queue — the
//! property that lets Harmonia claim zero overhead (§6).

use std::collections::BTreeMap;

use harmonia_replication::messages::{NopaxosMsg, ProtocolMsg, WriteOp};
use harmonia_replication::ProtocolKind;
use harmonia_sim::{Actor, Context, Service, TimerToken};
use harmonia_switch::{
    ConflictDetector, ForwardingTable, GroupId, ReadDecision, ReadEntry, Sequencer, SpineSwitch,
    SwitchStats, TableConfig, WriteDecision, WriteEntry,
};
use harmonia_types::{
    ClientRequest, ControlMsg, Duration, NodeId, ObjectId, OpKind, PacketBody, ReadMode, ReplicaId,
    SwitchId, SwitchSeq,
};
use harmonia_workload::ShardMap;

use crate::msg::Msg;

/// Is the conflict-detection module loaded on this switch?
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SwitchMode {
    /// Plain L2/L3 + protocol entry-point routing (the "without Harmonia"
    /// baselines of §9). CRAQ additionally gets anycast reads — its protocol
    /// handles per-object cleanliness itself.
    Baseline,
    /// In-network conflict detection per Algorithm 1.
    Harmonia,
}

/// Switch actor configuration.
#[derive(Clone, Copy, Debug)]
pub struct SwitchActorConfig {
    /// This incarnation's id (bump on every replacement, §5.3).
    pub incarnation: SwitchId,
    /// Baseline or Harmonia.
    pub mode: SwitchMode,
    /// The protocol the replica group runs (decides entry points).
    pub protocol: ProtocolKind,
    /// Number of replicas initially registered.
    pub replicas: usize,
    /// Dirty-set geometry.
    pub table: TableConfig,
    /// Cadence of the control-plane stale-entry sweep (§5.2); `None`
    /// disables it (lazy read-time scrubbing still runs).
    pub sweep_interval: Option<Duration>,
}

/// One hosted group's forwarding state: replica addresses, the per-group
/// NOPaxos sequencer session, and per-group data-plane counters.
struct GroupPlane {
    fwd: ForwardingTable,
    sequencer: Sequencer,
    stats: SwitchStats,
}

/// Transport-agnostic switch logic, shared by the simulated actor and the
/// live threaded driver.
///
/// One `SwitchCore` hosts the Harmonia scheduler for one **or many** replica
/// groups (§6.3): conflict detection lives in a [`SpineSwitch`] (per-group
/// dirty sets and sequence spaces, shared SRAM accounting), and each group
/// keeps its own forwarding table and OUM sequencer. Requests are routed to
/// their group by the deployment's [`ShardMap`] — for the rack-scale
/// single-group case that map is the identity onto group 0 and the behavior
/// is exactly the paper's Figure 1 pipeline.
pub struct SwitchCore {
    cfg: SwitchActorConfig,
    spine: SpineSwitch,
    planes: BTreeMap<GroupId, GroupPlane>,
    shards: ShardMap,
    /// Where each replica was provisioned (control-plane routing for
    /// `AddReplica` after a removal emptied its group entry).
    home: BTreeMap<ReplicaId, GroupId>,
    /// Counters not attributable to any one group (L2/L3 forwards).
    misc: SwitchStats,
}

impl SwitchCore {
    /// Build the data-plane state for `cfg`: a single replica group with
    /// members `0..cfg.replicas` (the rack-scale deployment).
    pub fn new(cfg: SwitchActorConfig) -> Self {
        let members = (0..cfg.replicas as u32).map(ReplicaId).collect();
        Self::new_sharded(cfg, vec![members])
    }

    /// The one constructor both drivers use: build the core for incarnation
    /// `incarnation` of `spec`, hosting every group of the deployment —
    /// whether that is one ([`groups(1)`](crate::deployment::DeploymentSpec::groups),
    /// the rack-scale case) or many (§6.3).
    pub fn for_deployment(spec: &crate::deployment::DeploymentSpec, incarnation: SwitchId) -> Self {
        SwitchCore::new_sharded(spec.switch_actor_config(incarnation), spec.memberships())
    }

    /// Build a spine switch hosting one group per entry of `memberships`
    /// (§6.3 cloud-scale deployment). Group `g` serves the objects
    /// `ShardMap::new(memberships.len()).shard_of(obj) == g`; every group
    /// gets its own `cfg.table`-sized dirty set and sequence space, all
    /// under this one incarnation. `cfg.replicas` is ignored — memberships
    /// are explicit.
    pub fn new_sharded(cfg: SwitchActorConfig, memberships: Vec<Vec<ReplicaId>>) -> Self {
        assert!(!memberships.is_empty(), "at least one replica group");
        let (write_entry, read_entry) = match cfg.protocol {
            ProtocolKind::PrimaryBackup => (WriteEntry::Primary, ReadEntry::Primary),
            ProtocolKind::Chain | ProtocolKind::Craq => {
                (WriteEntry::ChainHead, ReadEntry::ChainTail)
            }
            ProtocolKind::Vr => (WriteEntry::Leader, ReadEntry::Leader),
            ProtocolKind::Nopaxos => (WriteEntry::Multicast, ReadEntry::Leader),
        };
        let shards = ShardMap::new(memberships.len());
        let mut spine = SpineSwitch::new(cfg.incarnation, cfg.table);
        let mut planes = BTreeMap::new();
        let mut home = BTreeMap::new();
        for (g, members) in memberships.into_iter().enumerate() {
            let gid = GroupId(g as u32);
            spine.add_group(gid);
            for &r in &members {
                home.insert(r, gid);
            }
            planes.insert(
                gid,
                GroupPlane {
                    fwd: ForwardingTable::with_members(members, write_entry, read_entry),
                    sequencer: Sequencer::new(u64::from(cfg.incarnation.0)),
                    stats: SwitchStats::default(),
                },
            );
        }
        SwitchCore {
            cfg,
            spine,
            planes,
            shards,
            home,
            misc: SwitchStats::default(),
        }
    }

    fn group_of(&self, obj: ObjectId) -> GroupId {
        GroupId(self.shards.shard_of(obj))
    }

    /// Aggregate data-plane counters across every hosted group.
    pub fn stats(&self) -> SwitchStats {
        let mut total = self.misc;
        for plane in self.planes.values() {
            total.merge(&plane.stats);
        }
        total
    }

    /// One group's data-plane counters.
    pub fn group_stats(&self, group: GroupId) -> Option<SwitchStats> {
        self.planes.get(&group).map(|p| p.stats)
    }

    /// Number of replica groups hosted by this switch.
    pub fn group_count(&self) -> usize {
        self.planes.len()
    }

    /// The deployment's object→group map.
    pub fn shard_map(&self) -> ShardMap {
        self.shards
    }

    /// The multi-group conflict-detection module (inspection).
    pub fn spine(&self) -> &SpineSwitch {
        &self.spine
    }

    /// Group 0's conflict detector — the whole detector in a single-group
    /// deployment (inspection).
    pub fn detector(&self) -> &ConflictDetector {
        self.spine.group(GroupId(0)).expect("group 0 always exists")
    }

    /// A specific group's conflict detector (inspection).
    pub fn group_detector(&self, group: GroupId) -> Option<&ConflictDetector> {
        self.spine.group(group)
    }

    /// Total dirty-set SRAM across every hosted group (§6.3 budget check).
    pub fn memory_bytes(&self) -> usize {
        self.spine.memory_bytes()
    }

    /// This incarnation's id.
    pub fn incarnation(&self) -> SwitchId {
        self.cfg.incarnation
    }

    fn handle_write(&mut self, me: NodeId, mut req: ClientRequest, out: &mut Vec<(NodeId, Msg)>) {
        let gid = self.group_of(req.obj);
        let Some(plane) = self.planes.get_mut(&gid) else {
            return;
        };
        // Harmonia: Algorithm 1 lines 1–4, on this object's group.
        if self.cfg.mode == SwitchMode::Harmonia {
            match self.spine.process_write(gid, req.obj) {
                Some(WriteDecision::Stamped(seq)) => req.seq = Some(seq),
                Some(WriteDecision::Dropped) | None => {
                    // §6.1: no dirty-set slot — the write is dropped in the
                    // data plane; the client will time out and retry.
                    plane.stats.writes_dropped += 1;
                    return;
                }
            }
        }
        plane.stats.writes_forwarded += 1;
        if self.cfg.protocol == ProtocolKind::Nopaxos {
            // Ordered unreliable multicast: stamp and fan out (§7.3) within
            // the object's group; sessions are per group so gap detection
            // never crosses shard boundaries.
            let stamp = plane.sequencer.stamp();
            let seq = req
                .seq
                .unwrap_or(SwitchSeq::new(self.cfg.incarnation, stamp.seq));
            let op = WriteOp {
                seq,
                obj: req.obj,
                key: req.key.clone(),
                value: req.value.clone().unwrap_or_default(),
                client: req.client,
                request: req.request,
            };
            for &r in plane.fwd.replicas() {
                let dst = NodeId::Replica(r);
                out.push((
                    dst,
                    Msg::new(
                        me,
                        dst,
                        PacketBody::Protocol(ProtocolMsg::Nopaxos(NopaxosMsg::Sequenced {
                            session: stamp.session,
                            oum_seq: stamp.seq,
                            op: op.clone(),
                        })),
                    ),
                ));
            }
        } else if let Some(&dst) = plane.fwd.write_destinations().first() {
            out.push((dst, Msg::new(me, dst, PacketBody::Request(req))));
        }
    }

    fn handle_read(
        &mut self,
        me: NodeId,
        mut req: ClientRequest,
        rng: &mut rand::rngs::SmallRng,
        out: &mut Vec<(NodeId, Msg)>,
    ) {
        let gid = self.group_of(req.obj);
        let Some(plane) = self.planes.get_mut(&gid) else {
            return;
        };
        let dst = match self.cfg.mode {
            SwitchMode::Harmonia => match self.spine.process_read(gid, req.obj) {
                Some(ReadDecision::FastPath { last_committed }) => {
                    // Algorithm 1 lines 10–12.
                    req.last_committed = Some(last_committed);
                    req.read_mode = ReadMode::FastPath {
                        switch: self.cfg.incarnation,
                    };
                    plane.stats.reads_fast_path += 1;
                    plane.fwd.random_replica(rng)
                }
                Some(ReadDecision::Normal) | None => {
                    plane.stats.reads_normal += 1;
                    plane.fwd.normal_read_destination()
                }
            },
            SwitchMode::Baseline => {
                plane.stats.reads_normal += 1;
                if self.cfg.protocol == ProtocolKind::Craq {
                    // CRAQ serves reads at any replica natively.
                    plane.fwd.random_replica(rng)
                } else {
                    plane.fwd.normal_read_destination()
                }
            }
        };
        if let Some(dst) = dst {
            out.push((dst, Msg::new(me, dst, PacketBody::Request(req))));
        }
    }

    /// Route a WRITE-COMPLETION to its object's group.
    fn snoop_completion(&mut self, c: harmonia_types::WriteCompletion) {
        let gid = self.group_of(c.obj);
        if self.spine.process_completion(gid, c) {
            if let Some(plane) = self.planes.get_mut(&gid) {
                plane.stats.completions += 1;
            }
        }
    }

    /// The group a control-plane membership change addresses: wherever the
    /// replica currently lives, falling back to where it was provisioned,
    /// then to group 0 (single-group deployments never hit the fallbacks).
    fn control_group(&self, r: ReplicaId) -> GroupId {
        self.planes
            .iter()
            .find(|(_, p)| p.fwd.replicas().contains(&r))
            .map(|(&g, _)| g)
            .or_else(|| self.home.get(&r).copied())
            .unwrap_or(GroupId(0))
    }

    /// Process one packet, pushing forwarded packets onto `out`.
    pub fn handle(
        &mut self,
        me: NodeId,
        msg: Msg,
        rng: &mut rand::rngs::SmallRng,
        out: &mut Vec<(NodeId, Msg)>,
    ) {
        match msg.body {
            PacketBody::Request(req) => match req.op {
                OpKind::Write => self.handle_write(me, req, out),
                OpKind::Read => self.handle_read(me, req, rng, out),
            },
            PacketBody::Reply(reply) => {
                // Snoop the piggybacked completion (Figure 2b), then forward
                // the reply to its client.
                if self.cfg.mode == SwitchMode::Harmonia {
                    if let Some(c) = reply.completion {
                        self.snoop_completion(c);
                    }
                }
                let dst = NodeId::Client(reply.client);
                out.push((dst, Msg::new(me, dst, PacketBody::Reply(reply))));
            }
            PacketBody::Completion(c) => {
                if self.cfg.mode == SwitchMode::Harmonia {
                    self.snoop_completion(c);
                }
            }
            PacketBody::Control(ctl) => match ctl {
                ControlMsg::AddReplica(r) => {
                    let gid = self.control_group(r);
                    self.home.insert(r, gid);
                    if let Some(plane) = self.planes.get_mut(&gid) {
                        plane.fwd.add_replica(r);
                    }
                }
                ControlMsg::RemoveReplica(r) => {
                    let gid = self.control_group(r);
                    if let Some(plane) = self.planes.get_mut(&gid) {
                        plane.fwd.remove_replica(r);
                    }
                }
                ControlMsg::SetReplicas(rs) => {
                    let gid = rs
                        .first()
                        .map(|&r| self.control_group(r))
                        .unwrap_or(GroupId(0));
                    for &r in &rs {
                        self.home.insert(r, gid);
                    }
                    if let Some(plane) = self.planes.get_mut(&gid) {
                        plane.fwd.set_replicas(rs);
                    }
                }
            },
            PacketBody::Protocol(p) => {
                // L2/L3 forwarding of protocol traffic routed through the
                // switch (the sim normally sends these direct).
                self.misc.forwarded_other += 1;
                let dst = msg.dst;
                out.push((dst, Msg::new(msg.src, dst, PacketBody::Protocol(p))));
            }
        }
    }

    /// Control-plane sweep of stale dirty entries (§5.2), across every
    /// hosted group.
    pub fn sweep(&mut self) -> usize {
        self.spine.sweep()
    }
}

/// The switch as a simulated node: [`SwitchCore`] plus timers and the
/// line-rate service model.
pub struct SwitchActor {
    core: SwitchCore,
    out: Vec<(NodeId, Msg)>,
}

impl SwitchActor {
    /// Build a switch for `cfg`.
    pub fn new(cfg: SwitchActorConfig) -> Self {
        SwitchActor {
            core: SwitchCore::new(cfg),
            out: Vec::new(),
        }
    }

    /// Build a spine switch hosting one group per membership list.
    pub fn new_sharded(cfg: SwitchActorConfig, memberships: Vec<Vec<ReplicaId>>) -> Self {
        SwitchActor {
            core: SwitchCore::new_sharded(cfg, memberships),
            out: Vec::new(),
        }
    }

    /// Build the switch actor for incarnation `incarnation` of `spec`,
    /// hosting every group of the deployment (see
    /// [`SwitchCore::for_deployment`]).
    pub fn for_deployment(spec: &crate::deployment::DeploymentSpec, incarnation: SwitchId) -> Self {
        SwitchActor {
            core: SwitchCore::for_deployment(spec, incarnation),
            out: Vec::new(),
        }
    }

    /// Aggregate data-plane counters.
    pub fn stats(&self) -> SwitchStats {
        self.core.stats()
    }

    /// One group's data-plane counters.
    pub fn group_stats(&self, group: GroupId) -> Option<SwitchStats> {
        self.core.group_stats(group)
    }

    /// The conflict-detection module (inspection; group 0).
    pub fn detector(&self) -> &ConflictDetector {
        self.core.detector()
    }

    /// The multi-group conflict-detection module (inspection).
    pub fn spine(&self) -> &SpineSwitch {
        self.core.spine()
    }

    /// Total dirty-set SRAM across every hosted group.
    pub fn memory_bytes(&self) -> usize {
        self.core.memory_bytes()
    }

    /// This incarnation's id.
    pub fn incarnation(&self) -> SwitchId {
        self.core.incarnation()
    }
}

impl Actor<Msg> for SwitchActor {
    fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
        if let Some(iv) = self.core.cfg.sweep_interval {
            ctx.set_timer(iv);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _from: NodeId, msg: Msg) {
        let was_drops = self.core.stats().writes_dropped;
        let mut out = std::mem::take(&mut self.out);
        self.core.handle(ctx.node(), msg, ctx.rng(), &mut out);
        if self.core.stats().writes_dropped > was_drops {
            ctx.metrics().incr("switch.write_dropped");
        }
        for (dst, m) in out.drain(..) {
            ctx.send(dst, m);
        }
        self.out = out;
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, _token: TimerToken) {
        let swept = self.core.sweep();
        if swept > 0 {
            ctx.metrics().add("switch.swept", swept as u64);
        }
        if let Some(iv) = self.core.cfg.sweep_interval {
            ctx.set_timer(iv);
        }
    }

    fn service(&self, _msg: &Msg) -> Service {
        // Line rate: pure delay, never a queue (§6).
        Service::Immediate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_sim::{LinkConfig, NetworkModel, World, WorldConfig};
    use harmonia_types::{ClientId, RequestId, WriteCompletion};

    const SWITCH: NodeId = NodeId::Switch(SwitchId(1));

    fn cfg(mode: SwitchMode, protocol: ProtocolKind) -> SwitchActorConfig {
        SwitchActorConfig {
            incarnation: SwitchId(1),
            mode,
            protocol,
            replicas: 3,
            table: TableConfig {
                stages: 2,
                slots_per_stage: 64,
                entry_bytes: 8,
            },
            sweep_interval: None,
        }
    }

    /// Collects everything addressed to it.
    struct Sink {
        got: Vec<Msg>,
    }
    impl Actor<Msg> for Sink {
        fn on_message(&mut self, _ctx: &mut Context<'_, Msg>, _from: NodeId, msg: Msg) {
            self.got.push(msg);
        }
    }

    fn world_with_switch(mode: SwitchMode, protocol: ProtocolKind) -> World<Msg> {
        let mut w = World::new(WorldConfig {
            seed: 1,
            network: NetworkModel::uniform(LinkConfig::ideal(
                harmonia_types::Duration::from_micros(1),
            )),
        });
        w.add_node(SWITCH, Box::new(SwitchActor::new(cfg(mode, protocol))));
        for r in 0..3 {
            w.add_node(
                NodeId::Replica(harmonia_types::ReplicaId(r)),
                Box::new(Sink { got: vec![] }),
            );
        }
        w.add_node(NodeId::Client(ClientId(1)), Box::new(Sink { got: vec![] }));
        w
    }

    fn send_req(w: &mut World<Msg>, req: ClientRequest) {
        let from = NodeId::Client(req.client);
        w.inject(
            from,
            SWITCH,
            Msg::new(from, SWITCH, PacketBody::Request(req)),
        );
        w.run_until_idle(1000);
    }

    fn replica_msgs(w: &World<Msg>, r: u32) -> &Vec<Msg> {
        &w.actor::<Sink>(NodeId::Replica(harmonia_types::ReplicaId(r)))
            .unwrap()
            .got
    }

    #[test]
    fn harmonia_write_is_stamped_and_sent_to_entry_point() {
        let mut w = world_with_switch(SwitchMode::Harmonia, ProtocolKind::Chain);
        send_req(
            &mut w,
            ClientRequest::write(ClientId(1), RequestId(1), &b"k"[..], &b"v"[..]),
        );
        let head = replica_msgs(&w, 0);
        assert_eq!(head.len(), 1);
        let PacketBody::Request(req) = &head[0].body else {
            panic!()
        };
        assert_eq!(req.seq, Some(SwitchSeq::new(SwitchId(1), 1)));
        let sw: &SwitchActor = w.actor(SWITCH).unwrap();
        assert_eq!(sw.detector().dirty_len(), 1);
    }

    #[test]
    fn reads_use_normal_path_until_first_completion_then_fast_path() {
        let mut w = world_with_switch(SwitchMode::Harmonia, ProtocolKind::Chain);
        send_req(
            &mut w,
            ClientRequest::read(ClientId(1), RequestId(1), &b"a"[..]),
        );
        // Normal path -> tail (replica 2).
        assert_eq!(replica_msgs(&w, 2).len(), 1);
        // Write commits: completion arrives.
        send_req(
            &mut w,
            ClientRequest::write(ClientId(1), RequestId(2), &b"k"[..], &b"v"[..]),
        );
        w.inject(
            NodeId::Replica(harmonia_types::ReplicaId(2)),
            SWITCH,
            Msg::new(
                NodeId::Replica(harmonia_types::ReplicaId(2)),
                SWITCH,
                PacketBody::Completion(WriteCompletion {
                    obj: harmonia_types::ObjectId::from_key(b"k"),
                    seq: SwitchSeq::new(SwitchId(1), 1),
                }),
            ),
        );
        w.run_until_idle(100);
        // Fast path now on: an uncontended read is stamped and randomized.
        send_req(
            &mut w,
            ClientRequest::read(ClientId(1), RequestId(3), &b"a"[..]),
        );
        let sw: &SwitchActor = w.actor(SWITCH).unwrap();
        assert_eq!(sw.stats().reads_fast_path, 1);
        assert_eq!(sw.stats().reads_normal, 1);
        let fast: Vec<_> = (0..3)
            .flat_map(|r| replica_msgs(&w, r).iter())
            .filter_map(|m| match &m.body {
                PacketBody::Request(r) if r.read_mode.is_fast_path() => Some(r),
                _ => None,
            })
            .collect();
        assert_eq!(fast.len(), 1);
        assert_eq!(fast[0].last_committed, Some(SwitchSeq::new(SwitchId(1), 1)));
    }

    #[test]
    fn contended_read_takes_normal_path() {
        let mut w = world_with_switch(SwitchMode::Harmonia, ProtocolKind::Chain);
        // Prime fast path.
        send_req(
            &mut w,
            ClientRequest::write(ClientId(1), RequestId(1), &b"k"[..], &b"v"[..]),
        );
        w.inject(
            NodeId::Replica(harmonia_types::ReplicaId(2)),
            SWITCH,
            Msg::new(
                NodeId::Replica(harmonia_types::ReplicaId(2)),
                SWITCH,
                PacketBody::Completion(WriteCompletion {
                    obj: harmonia_types::ObjectId::from_key(b"k"),
                    seq: SwitchSeq::new(SwitchId(1), 1),
                }),
            ),
        );
        w.run_until_idle(100);
        // A pending write to "hot" makes reads of it contended.
        send_req(
            &mut w,
            ClientRequest::write(ClientId(1), RequestId(2), &b"hot"[..], &b"v"[..]),
        );
        send_req(
            &mut w,
            ClientRequest::read(ClientId(1), RequestId(3), &b"hot"[..]),
        );
        let sw: &SwitchActor = w.actor(SWITCH).unwrap();
        assert_eq!(sw.stats().reads_normal, 1);
        assert_eq!(sw.stats().reads_fast_path, 0);
    }

    #[test]
    fn baseline_routes_reads_to_entry_point_only() {
        let mut w = world_with_switch(SwitchMode::Baseline, ProtocolKind::Chain);
        for i in 0..5 {
            send_req(
                &mut w,
                ClientRequest::read(ClientId(1), RequestId(i), &b"k"[..]),
            );
        }
        assert_eq!(replica_msgs(&w, 2).len(), 5, "all reads at the tail");
        assert_eq!(replica_msgs(&w, 0).len(), 0);
        let sw: &SwitchActor = w.actor(SWITCH).unwrap();
        assert_eq!(sw.detector().dirty_len(), 0, "baseline tracks nothing");
    }

    #[test]
    fn craq_baseline_anycasts_reads() {
        let mut w = world_with_switch(SwitchMode::Baseline, ProtocolKind::Craq);
        for i in 0..30 {
            send_req(
                &mut w,
                ClientRequest::read(ClientId(1), RequestId(i), &b"k"[..]),
            );
        }
        let counts: Vec<usize> = (0..3).map(|r| replica_msgs(&w, r).len()).collect();
        assert_eq!(counts.iter().sum::<usize>(), 30);
        assert!(
            counts.iter().all(|&c| c > 0),
            "spread across replicas: {counts:?}"
        );
    }

    #[test]
    fn nopaxos_write_is_sequenced_and_multicast() {
        let mut w = world_with_switch(SwitchMode::Harmonia, ProtocolKind::Nopaxos);
        send_req(
            &mut w,
            ClientRequest::write(ClientId(1), RequestId(1), &b"k"[..], &b"v"[..]),
        );
        for r in 0..3 {
            let msgs = replica_msgs(&w, r);
            assert_eq!(msgs.len(), 1, "replica {r}");
            let PacketBody::Protocol(ProtocolMsg::Nopaxos(NopaxosMsg::Sequenced {
                session,
                oum_seq,
                op,
            })) = &msgs[0].body
            else {
                panic!("expected sequenced multicast")
            };
            assert_eq!(*session, 1);
            assert_eq!(*oum_seq, 1);
            assert_eq!(op.seq, SwitchSeq::new(SwitchId(1), 1));
        }
    }

    #[test]
    fn reply_snooping_processes_piggybacked_completion() {
        let mut w = world_with_switch(SwitchMode::Harmonia, ProtocolKind::Chain);
        send_req(
            &mut w,
            ClientRequest::write(ClientId(1), RequestId(1), &b"k"[..], &b"v"[..]),
        );
        let sw: &SwitchActor = w.actor(SWITCH).unwrap();
        assert_eq!(sw.detector().dirty_len(), 1);
        // Tail's reply with the piggybacked completion passes the switch.
        let reply = harmonia_types::ClientReply {
            client: ClientId(1),
            request: RequestId(1),
            obj: harmonia_types::ObjectId::from_key(b"k"),
            value: None,
            write_outcome: Some(harmonia_types::WriteOutcome::Committed),
            completion: Some(WriteCompletion {
                obj: harmonia_types::ObjectId::from_key(b"k"),
                seq: SwitchSeq::new(SwitchId(1), 1),
            }),
        };
        w.inject(
            NodeId::Replica(harmonia_types::ReplicaId(2)),
            SWITCH,
            Msg::new(
                NodeId::Replica(harmonia_types::ReplicaId(2)),
                SWITCH,
                PacketBody::Reply(reply),
            ),
        );
        w.run_until_idle(100);
        let sw: &SwitchActor = w.actor(SWITCH).unwrap();
        assert_eq!(sw.detector().dirty_len(), 0, "completion cleared the entry");
        assert!(sw.detector().fast_path_enabled());
        // And the client received the forwarded reply.
        let client_msgs = &w.actor::<Sink>(NodeId::Client(ClientId(1))).unwrap().got;
        assert_eq!(client_msgs.len(), 1);
    }

    #[test]
    fn control_messages_update_forwarding() {
        let mut w = world_with_switch(SwitchMode::Harmonia, ProtocolKind::Chain);
        w.inject(
            NodeId::Controller,
            SWITCH,
            Msg::new(
                NodeId::Controller,
                SWITCH,
                PacketBody::Control(ControlMsg::RemoveReplica(harmonia_types::ReplicaId(2))),
            ),
        );
        w.run_until_idle(10);
        // Normal reads now land on replica 1 (new tail).
        send_req(
            &mut w,
            ClientRequest::read(ClientId(1), RequestId(1), &b"k"[..]),
        );
        assert_eq!(replica_msgs(&w, 1).len(), 1);
        assert_eq!(replica_msgs(&w, 2).len(), 0);
    }
}
