//! The UDP driver: the same state machines, every byte on a real socket.
//!
//! This is the third deployment shape behind the [`Cluster`] trait
//! ([`DeploymentSpec::spawn_udp`]): node threads identical to the threaded
//! live driver — per-group switch pipelines, replica loops, the
//! [`LiveClient`] retry loop — but connected by `std::net::UdpSocket`
//! loopback datagrams instead of in-process channels. Every packet is
//! encoded through the `harmonia-types` wire codec into a length-prefixed
//! frame, and each datagram carries one or more frames back-to-back
//! (GSO/GRO-style coalescing under the spec's `udp_coalesce` knob, strict
//! one-frame-per-datagram with it off), so the codec is exercised against a
//! peer that can hand it truncated, duplicated, reordered, or garbage
//! bytes: the OUM envelope the paper's deployment actually assumes (§4,
//! §6).
//!
//! # Plumbing, not logic
//!
//! All packet-handling logic lives in [`crate::live`] behind the `NodeLink`
//! abstraction; this module only provides the transport plumbing:
//!
//! * The spine stays a **sender-side** route: the deployment's
//!   [`AddrBook`] maps the stable switch address (and the live
//!   incarnation's id) to the per-group pipeline sockets, and resolving a
//!   send performs the `ShardMap` lookup on the sending thread — no
//!   intermediate hop, exactly like the channel driver's `SpinePlan`.
//! * Driver control verbs (pipeline inspection, stop) ride a crossbeam side
//!   channel per thread; only data-plane packets cross the sockets.
//!
//! # Fault injection at the socket boundary
//!
//! The spec's [`LinkConfig`](harmonia_sim::LinkConfig) fault probabilities
//! (`drop_prob`, `duplicate_prob`, `reorder_prob`) are honoured here too:
//! every socket is wrapped in a seeded [`FaultyTransport`], except that
//! replica endpoints exempt their sends *to other replicas* — so the
//! client↔switch and switch↔replica legs face the adversary in **both**
//! directions (requests, forwards, replies, completions) while
//! replica↔replica channels stay clean, the same envelope the simulator's
//! §5.2 fault sweeps preserve (those channels are TCP in any real chain/PB
//! deployment, and in-order write propagation depends on them). Latency
//! and jitter fields are ignored: the kernel's loopback timing is the real
//! thing.

// Wall-clock reads are deliberate here: live UDP driver: ticks and timeouts are real time.
#![allow(clippy::disallowed_methods)]

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration as StdDuration, Instant as StdInstant};

use crossbeam::channel::{unbounded, Receiver, Sender};

use harmonia_net::{
    AddrBook, FaultConfig, FaultCounters, FaultyTransport, PoolStats, RecvError, Transport,
    TransportStats, UdpTransport,
};
use harmonia_obs::{
    Counter, FaultObs, MonotonicClock, ObsSnapshot, Recorder, Registry, TraceEvent,
};
use harmonia_replication::build_replica;
use harmonia_replication::messages::{ProtocolMsg, ReplicaControlMsg};
use harmonia_switch::{GroupId, GroupObservation, SpineView, SwitchStats};
use harmonia_types::{ClientId, ControlMsg, NodeId, PacketBody, ReplicaId, SwitchId};

use crate::client::{OpSpec, RecordedOp};
use crate::deployment::{spine_obs, Cluster, DeploymentSpec, KvClient};
use crate::live::{
    observe_fleet, observe_pipeline, pipeline_main, replica_main, run_plans_threaded, Envelope,
    LinkError, LiveClient, NodeLink, CLIENT_RETRIES, CLIENT_TIMEOUT,
};
use crate::msg::Msg;
use crate::switch_actor::SwitchCore;

/// A boxed datagram endpoint carrying deployment packets.
type Net = Box<dyn Transport<ProtocolMsg>>;

/// How often a socket-bound node loop checks its driver side channel while
/// blocked on the socket.
const CTL_POLL: StdDuration = StdDuration::from_millis(1);

/// How many packets one batched kernel drain may pull. Matches the mmsg
/// wrapper's chunk size so one drain is one `recvmmsg` call.
const RECV_BATCH: usize = 32;

/// Which sends of an endpoint face the spec's fault model.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Faults {
    /// Every send (clients, switch pipelines).
    All,
    /// Every send except those addressed to replicas — a replica's replies
    /// and completions face the network, its replica↔replica channel does
    /// not (the §5.2 reliable-FIFO envelope).
    SparingReplicas,
    /// No faults ever (the configuration service).
    None,
}

/// The UDP substrate's `NodeLink`: data-plane packets on the socket, driver
/// control verbs on a crossbeam side channel. Links without a driver side
/// channel (clients) block on the socket for the full timeout instead of
/// polling in `CTL_POLL` slices.
struct UdpLink {
    transport: Net,
    ctl: Receiver<Envelope>,
    has_ctl: bool,
    /// The book entry this link owns, deregistered on drop — a client (or
    /// replica) endpoint must not keep receiving routes after its socket is
    /// gone, and the book must not grow one dead entry per short-lived
    /// client.
    owner: Option<(Arc<AddrBook>, NodeId)>,
    /// Packets batch-drained from the kernel but not yet handed to the node
    /// loop. Always emptied before the socket is read again, so delivery
    /// order is the socket's order.
    pending: VecDeque<Msg>,
    /// Scratch for `Transport::recv_batch` (reused, no per-drain alloc).
    drain_scratch: Vec<Msg>,
    /// Observability shard for this endpoint's wire counters; detached
    /// unless the rig wires one in.
    recorder: Recorder,
    /// Last wire/pool stats already credited to the recorder — the
    /// transport keeps cumulative counters, the registry wants increments,
    /// so each sync publishes only the delta since the previous one.
    seen_wire: TransportStats,
    seen_recv_pool: PoolStats,
    seen_send_pool: PoolStats,
}

impl UdpLink {
    fn over(transport: Net, ctl: Receiver<Envelope>, has_ctl: bool) -> Self {
        UdpLink {
            transport,
            ctl,
            has_ctl,
            owner: None,
            pending: VecDeque::new(),
            drain_scratch: Vec::new(),
            recorder: Recorder::detached(),
            seen_wire: TransportStats::default(),
            seen_recv_pool: PoolStats::default(),
            seen_send_pool: PoolStats::default(),
        }
    }

    fn owned_by(mut self, book: Arc<AddrBook>, node: NodeId) -> Self {
        self.owner = Some((book, node));
        self
    }

    fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Credit the transport's counter growth since the last sync to the
    /// recorder. Called once per batched send and on teardown — off the
    /// per-packet path, so the steady-state cost is a handful of relaxed
    /// adds amortized over a whole batch.
    fn sync_obs(&mut self) {
        if let Some(now) = self.transport.wire_stats() {
            let d = now.since(&self.seen_wire);
            self.seen_wire = now;
            self.recorder.add(Counter::FramesSent, d.sent);
            self.recorder.add(Counter::DatagramsSent, d.datagrams_sent);
            self.recorder.add(Counter::FramesReceived, d.received);
            self.recorder.add(Counter::Unresolved, d.unresolved);
            self.recorder.add(Counter::DecodeErrors, d.decode_errors);
            self.recorder.add(Counter::Salvaged, d.salvaged);
            self.recorder.add(Counter::Oversized, d.oversized);
            self.recorder.add(Counter::SendErrors, d.send_errors);
            self.recorder.add(Counter::ConfigErrors, d.config_errors);
        }
        if let Some((recv, send)) = self.transport.wire_pool_stats() {
            let dr = recv.since(&self.seen_recv_pool);
            self.seen_recv_pool = recv;
            self.recorder.add(Counter::RecvPoolHits, dr.hits);
            self.recorder.add(Counter::RecvPoolMisses, dr.misses);
            let ds = send.since(&self.seen_send_pool);
            self.seen_send_pool = send;
            self.recorder.add(Counter::SendPoolHits, ds.hits);
            self.recorder.add(Counter::SendPoolMisses, ds.misses);
        }
    }

    /// Next already-received packet, refilling from the kernel queue in one
    /// batched drain when empty.
    fn pop_pending(&mut self) -> Option<Msg> {
        if self.pending.is_empty() {
            self.drain_scratch.clear();
            if self
                .transport
                .recv_batch(&mut self.drain_scratch, RECV_BATCH)
                > 0
            {
                self.pending.extend(self.drain_scratch.drain(..));
            }
        }
        self.pending.pop_front()
    }
}

impl Drop for UdpLink {
    fn drop(&mut self) {
        // Final counter sync: short-lived endpoints (clients, control
        // sockets) may never hit the batched send path, so teardown is
        // where their wire counters reach the registry.
        self.sync_obs();
        if let Some((book, node)) = self.owner.take() {
            book.unregister(node);
        }
    }
}

impl NodeLink for UdpLink {
    fn send(&mut self, to: NodeId, msg: Msg) {
        self.transport.send(to, msg);
    }

    fn send_many(&mut self, batch: &mut Vec<(NodeId, Msg)>) {
        // One `sendmmsg` run per MAX_BATCH packets (scalar loop on a
        // fault-wrapped or batching-disabled transport).
        self.transport.send_batch(batch);
        self.sync_obs();
    }

    fn recv(&mut self, timeout: StdDuration) -> Result<Envelope, LinkError> {
        let deadline = StdInstant::now() + timeout;
        loop {
            if self.has_ctl {
                if let Ok(env) = self.ctl.try_recv() {
                    return Ok(env);
                }
            }
            // Deliver batch-drained packets before touching the socket.
            if let Some(msg) = self.pop_pending() {
                return Ok(Envelope::Packet(msg));
            }
            let remaining = deadline.saturating_duration_since(StdInstant::now());
            if remaining.is_zero() {
                return Err(LinkError::TimedOut);
            }
            let slice = if self.has_ctl {
                remaining.min(CTL_POLL)
            } else {
                remaining
            };
            match self.transport.recv_timeout(slice) {
                Ok(pkt) => return Ok(Envelope::Packet(pkt)),
                Err(RecvError::TimedOut) => {}
                Err(RecvError::Closed) => return Err(LinkError::Closed),
            }
        }
    }

    fn try_recv(&mut self) -> Option<Envelope> {
        if self.has_ctl {
            if let Ok(env) = self.ctl.try_recv() {
                return Some(env);
            }
        }
        // The pipelines' batched drain: everything already queued in the
        // kernel comes out through one `recvmmsg` per RECV_BATCH datagrams.
        self.pop_pending().map(Envelope::Packet)
    }
}

/// One pipeline thread of the UDP switch fleet.
struct UdpPipeline {
    group: GroupId,
    ctl: Sender<Envelope>,
    join: JoinHandle<()>,
}

/// The whole switch of one incarnation.
struct UdpFleet {
    incarnation: SwitchId,
    pipelines: Vec<UdpPipeline>,
}

/// Driver plumbing: address book, switch fleet, replica threads.
struct UdpRig {
    book: Arc<AddrBook>,
    switch_addr: NodeId,
    write_replies: usize,
    sweep: StdDuration,
    faults: FaultConfig,
    fault_counters: Arc<FaultCounters>,
    /// Base for per-transport fault-RNG seeds (from the spec's seed).
    fault_seed: u64,
    /// Distinct deterministic stream per adversarial transport.
    fault_streams: AtomicU64,
    replica_ids: Vec<ReplicaId>,
    replica_threads: Vec<(Sender<Envelope>, JoinHandle<()>)>,
    switch: Option<UdpFleet>,
    next_client: AtomicU32,
    /// Spec's `udp_batch`: whether endpoints use the `sendmmsg`/`recvmmsg`
    /// fast path behind the batch verbs.
    batched: bool,
    /// Spec's `udp_coalesce`: whether batched sends pack per-destination
    /// frames back-to-back into full datagrams (GSO-style) instead of one
    /// frame per datagram.
    coalesced: bool,
    /// Observability registry: one shard per node thread / client / link,
    /// stamped by real monotonic time.
    registry: Arc<Registry>,
}

impl UdpRig {
    fn new(spec: &DeploymentSpec) -> Self {
        UdpRig {
            book: Arc::new(AddrBook::new()),
            switch_addr: spec.switch_addr(),
            write_replies: spec.write_replies(),
            sweep: spec
                .sweep_interval
                .map(|d| d.to_std())
                .unwrap_or(StdDuration::from_millis(10)),
            faults: FaultConfig {
                drop_prob: spec.link.drop_prob,
                duplicate_prob: spec.link.duplicate_prob,
                reorder_prob: spec.link.reorder_prob,
            },
            fault_counters: Arc::new(FaultCounters::default()),
            fault_seed: spec.seed,
            fault_streams: AtomicU64::new(0),
            replica_ids: Vec::new(),
            replica_threads: Vec::new(),
            switch: None,
            next_client: AtomicU32::new(1),
            batched: spec.udp_batch,
            coalesced: spec.udp_coalesce,
            registry: Arc::new(Registry::with_clock(Arc::new(MonotonicClock::new()))),
        }
    }

    /// Bind a fresh loopback endpoint under the given fault policy.
    fn endpoint(&self, faults: Faults) -> (Net, std::net::SocketAddr) {
        // lint:allow(panic_path): deployment bring-up — a failed loopback
        // bind means no endpoint ever existed; no live traffic is at risk.
        let mut t = UdpTransport::bind(Arc::clone(&self.book)).expect("bind loopback UDP socket");
        t.set_batched(self.batched);
        t.set_coalesced(self.coalesced);
        let addr = t.local_addr();
        if matches!(faults, Faults::None) || self.faults.is_noop() {
            return (Box::new(t), addr);
        }
        let stream = self.fault_streams.fetch_add(1, Ordering::Relaxed);
        let seed = self
            .fault_seed
            .wrapping_add(stream.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let faulty = FaultyTransport::new(t, self.faults, seed, Arc::clone(&self.fault_counters));
        let net: Net = match faults {
            Faults::All => Box::new(faulty),
            // Replica↔replica channels keep the reliable-FIFO envelope
            // in-order write propagation depends on (§5.2) — only sends
            // toward the switch and clients face the adversary.
            Faults::SparingReplicas => {
                Box::new(faulty.exempting(|to| matches!(to, NodeId::Replica(_))))
            }
            // lint:allow(panic_path): guarded by the early return above —
            // the `Faults::None` arm is statically unreachable here.
            Faults::None => unreachable!(),
        };
        (net, addr)
    }

    /// Spawn (or re-spawn after a failure) the pipeline fleet for `core`,
    /// one socket-owning thread per hosted group, and publish the fleet in
    /// the address book under the stable client-facing switch address plus
    /// the incarnation's own id (replicas reply to the lease holder).
    fn spawn_switch(&mut self, core: SwitchCore) {
        // lint:allow(panic_path): harness control plane — a misuse by the
        // test driver, not live traffic; no packet is in flight here.
        assert!(self.switch.is_none(), "kill the old switch first");
        let incarnation = core.incarnation();
        let shards = core.shard_map();
        let cores = core.into_group_cores();
        let me = self.switch_addr;
        let sweep = self.sweep;
        let mut pipelines = Vec::with_capacity(cores.len());
        let mut sockets = Vec::with_capacity(cores.len());
        for mut core in cores {
            core.set_recorder(self.registry.handle());
            let group = core.group();
            let (transport, addr) = self.endpoint(Faults::All);
            let (ctl_tx, ctl_rx) = unbounded::<Envelope>();
            // Pipelines are addressed through the spine entry, not a
            // unicast registration; `clear_spine` is their teardown.
            let link = UdpLink::over(transport, ctl_rx, true).with_recorder(self.registry.handle());
            let join = std::thread::Builder::new()
                .name(format!("harmonia-udpsw-{}-g{}", incarnation.0, group.0))
                .spawn(move || pipeline_main(core, link, me, sweep))
                // lint:allow(panic_path): deployment bring-up — thread-spawn
                // failure precedes any traffic.
                .expect("spawn UDP switch pipeline thread");
            sockets.push(addr);
            pipelines.push(UdpPipeline {
                group,
                ctl: ctl_tx,
                join,
            });
        }
        self.book
            .install_spine(vec![me, NodeId::Switch(incarnation)], shards, sockets);
        self.switch = Some(UdpFleet {
            incarnation,
            pipelines,
        });
    }

    fn spawn_replica(&mut self, group: harmonia_replication::GroupConfig) {
        self.spawn_replica_inner(group, None);
    }

    /// Spawn a *fresh* replica that must catch up from `peer` via state
    /// transfer before serving (a restart after a fail-stop).
    fn spawn_recovering_replica(
        &mut self,
        group: harmonia_replication::GroupConfig,
        peer: ReplicaId,
    ) {
        self.spawn_replica_inner(group, Some(peer));
    }

    fn spawn_replica_inner(
        &mut self,
        group: harmonia_replication::GroupConfig,
        recover_from: Option<ReplicaId>,
    ) {
        let me = NodeId::Replica(group.me);
        let (transport, addr) = self.endpoint(Faults::SparingReplicas);
        self.book.register(me, addr);
        let (ctl_tx, ctl_rx) = unbounded::<Envelope>();
        let link = UdpLink::over(transport, ctl_rx, true)
            .owned_by(Arc::clone(&self.book), me)
            .with_recorder(self.registry.handle());
        self.replica_ids.push(group.me);
        let recorder = self.registry.handle();
        let name = format!("harmonia-udprep-{}", group.me.0);
        let handle = std::thread::Builder::new()
            .name(name)
            .spawn(move || replica_main(me, build_replica(group), link, recover_from, recorder))
            // lint:allow(panic_path): deployment bring-up (see spawn_switch).
            .expect("spawn UDP replica thread");
        self.replica_threads.push((ctl_tx, handle));
    }

    /// Fail-stop one replica: stop and join its thread; its link's drop
    /// removes it from the book, so packets toward it vanish mid-flight.
    fn kill_replica(&mut self, r: ReplicaId) {
        if let Some(idx) = self.replica_ids.iter().position(|&m| m == r) {
            self.replica_ids.remove(idx);
            let (ctl, handle) = self.replica_threads.remove(idx);
            let _ = ctl.send(Envelope::Stop);
            let _ = handle.join();
        }
    }

    /// Control-plane packet to the switch fleet over a clean socket
    /// (broadcast to every group's pipeline by the spine entry).
    fn send_switch_control(&self, ctl: ControlMsg) {
        let (mut t, _) = self.endpoint(Faults::None);
        t.send(
            self.switch_addr,
            Msg::new(
                NodeId::Controller,
                self.switch_addr,
                PacketBody::Control(ctl),
            ),
        );
    }

    /// Configuration service: set one replica's view of its group.
    fn send_set_members(&self, to: ReplicaId, members: Vec<ReplicaId>) {
        let (mut t, _) = self.endpoint(Faults::None);
        let dst = NodeId::Replica(to);
        t.send(
            dst,
            Msg::new(
                NodeId::Controller,
                dst,
                PacketBody::Protocol(ProtocolMsg::Control(ReplicaControlMsg::SetMembers(members))),
            ),
        );
    }

    /// Stop every pipeline of the fleet and wait for them. The fleet's
    /// sockets leave the address book first, so requests already in flight
    /// or subsequently sent to the switch vanish — clients time out and
    /// retry, exactly the Figure 10 outage.
    fn kill_switch(&mut self) {
        if let Some(fleet) = self.switch.take() {
            self.book.clear_spine();
            for p in &fleet.pipelines {
                let _ = p.ctl.send(Envelope::Stop);
            }
            for p in fleet.pipelines {
                let _ = p.join.join();
            }
        }
    }

    /// Snapshot one group's pipeline state (stats inspection).
    fn observe_group(&self, group: GroupId) -> Option<GroupObservation> {
        let fleet = self.switch.as_ref()?;
        let p = fleet.pipelines.iter().find(|p| p.group == group)?;
        observe_pipeline(&p.ctl)
    }

    /// Snapshot every pipeline and fold into the aggregate-only view.
    fn observe(&self) -> Option<SpineView> {
        let fleet = self.switch.as_ref()?;
        observe_fleet(fleet.pipelines.iter().map(|p| &p.ctl))
    }

    /// Configuration service: move every replica's lease to `new_id`. The
    /// control packets cross a real (clean) socket like everything else —
    /// but even a clean loopback socket can lose a datagram to a full
    /// receiver buffer under load, and a replica stranded on the old
    /// incarnation would reject the new switch's traffic forever. The
    /// lease is monotone (`LeaseState::set_active` ignores regressions),
    /// so the move is retransmitted in a few spaced rounds: idempotent
    /// best-effort, the same role the paper's configuration service plays.
    fn move_lease(&self, new_id: SwitchId) {
        let (mut t, _) = self.endpoint(Faults::None);
        for round in 0..3 {
            if round > 0 {
                std::thread::sleep(StdDuration::from_millis(2));
            }
            for &r in &self.replica_ids {
                let dst = NodeId::Replica(r);
                t.send(
                    dst,
                    Msg::new(
                        NodeId::Controller,
                        dst,
                        PacketBody::Protocol(ProtocolMsg::Control(
                            ReplicaControlMsg::SetActiveSwitch(new_id),
                        )),
                    ),
                );
            }
        }
    }

    fn client(&self) -> LiveClient {
        let id = ClientId(self.next_client.fetch_add(1, Ordering::Relaxed));
        let (transport, addr) = self.endpoint(Faults::All);
        self.book.register(NodeId::Client(id), addr);
        // Clients have no driver verbs: `has_ctl: false` lets the link
        // block on the socket for the whole reply deadline instead of
        // polling an always-empty side channel.
        let (_unused_tx, ctl_rx) = unbounded::<Envelope>();
        let link = UdpLink::over(transport, ctl_rx, false)
            .owned_by(Arc::clone(&self.book), NodeId::Client(id))
            .with_recorder(self.registry.handle());
        LiveClient::over_link(
            id,
            Box::new(link),
            self.switch_addr,
            self.write_replies,
            CLIENT_TIMEOUT,
            CLIENT_RETRIES,
        )
        .with_recorder(self.registry.handle())
    }

    fn shutdown_in_place(&mut self) {
        self.kill_switch();
        for (ctl, _) in &self.replica_threads {
            let _ = ctl.send(Envelope::Stop);
        }
        for (_, handle) in self.replica_threads.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A deployment whose every packet crosses a loopback `UdpSocket` — one
/// replica group or many, exactly as its [`DeploymentSpec`] describes.
///
/// Same node threads and packet-handling logic as [`LiveCluster`]
/// (`crate::live`), different substrate: datagrams that can be lost,
/// duplicated, and reordered. The spec's `link` fault probabilities are
/// injected at the client and switch sockets by a seeded
/// [`FaultyTransport`]; [`fault_counts`](UdpCluster::fault_counts) reports
/// what actually fired.
///
/// [`LiveCluster`]: crate::live::LiveCluster
pub struct UdpCluster {
    rig: UdpRig,
    spec: DeploymentSpec,
}

impl UdpCluster {
    /// Bind every socket and spawn every thread for `spec` (equivalently:
    /// [`DeploymentSpec::spawn_udp`]).
    pub fn new(spec: &DeploymentSpec) -> Self {
        let mut rig = UdpRig::new(spec);
        rig.spawn_switch(SwitchCore::for_deployment(spec, spec.initial_switch()));
        for g in 0..spec.groups {
            for i in 0..spec.replicas {
                rig.spawn_replica(spec.group_config(g, i));
            }
        }
        UdpCluster {
            rig,
            spec: spec.clone(),
        }
    }

    /// The deployment's spec.
    pub fn spec(&self) -> &DeploymentSpec {
        &self.spec
    }

    /// Create a synchronous client handle on its own socket.
    pub fn client(&self) -> LiveClient {
        self.rig.client()
    }

    /// `(dropped, duplicated, reordered)` datagrams injected so far by the
    /// spec's fault model — a fault harness asserts these moved, proving the
    /// adversary actually exercised the deployment.
    pub fn fault_counts(&self) -> (u64, u64, u64) {
        self.rig.fault_counters.snapshot()
    }

    /// Reorder-held datagrams discarded at endpoint teardown (instead of
    /// flushed toward addresses that may already be gone).
    pub fn discarded_count(&self) -> u64 {
        self.rig.fault_counters.discarded()
    }

    /// Number of unicast entries currently in the deployment's address book
    /// (leak checks: dropped clients must deregister themselves).
    pub fn unicast_entries(&self) -> usize {
        self.rig.book.unicast_len()
    }

    /// §5.3 step 1: the switch fails (see
    /// [`LiveCluster::kill_switch`](crate::live::LiveCluster::kill_switch);
    /// here the fleet's sockets also vanish from the address book).
    pub fn kill_switch(&mut self) {
        self.rig.kill_switch();
    }

    /// §5.3 steps 2–3: activate a replacement fleet under `new_id` at the
    /// same client-facing address and move every replica's lease to it.
    pub fn replace_switch(&mut self, new_id: SwitchId) {
        self.rig.kill_switch();
        self.rig
            .spawn_switch(SwitchCore::for_deployment(&self.spec, new_id));
        self.rig.move_lease(new_id);
    }

    /// Fail-stop replica `r` (§5.3, "handling server failures"): its thread
    /// stops, its socket leaves the address book (in-flight datagrams
    /// toward it vanish), the switch drops it from the forwarding table,
    /// and its group shrinks to the survivors.
    pub fn kill_replica(&mut self, r: ReplicaId) {
        self.rig.kill_replica(r);
        self.rig.send_switch_control(ControlMsg::RemoveReplica(r));
        let members = self.spec.group_members(self.spec.group_of_replica(r));
        let survivors: Vec<ReplicaId> = members.into_iter().filter(|&m| m != r).collect();
        for &s in &survivors {
            self.rig.send_set_members(s, survivors.clone());
        }
    }

    /// Restart `r` as a fresh, empty replica on a new socket: canonical
    /// membership is restored, the switch re-admits it read-gated, and the
    /// newcomer catches up via snapshot + log state transfer from a live
    /// peer — every transfer byte crossing real UDP datagrams; the gate
    /// lifts once its reported applied point passes the gate floor.
    pub fn restart_replica(&mut self, r: ReplicaId) {
        let group = self.spec.group_of_replica(r);
        let canonical = self.spec.group_members(group);
        let idx = canonical
            .iter()
            .position(|&m| m == r)
            // lint:allow(panic_path): fault-injection control plane — the
            // scenario script named a replica outside its own spec.
            .expect("replica belongs to its group");
        let peer = canonical
            .iter()
            .copied()
            .find(|&m| m != r)
            // lint:allow(panic_path): fault-injection control plane — a
            // 1-replica group cannot state-transfer; scripts must not ask.
            .expect("restart_replica needs a live peer to transfer from");
        self.rig
            .send_switch_control(ControlMsg::SetReplicas(canonical.clone()));
        self.rig.send_switch_control(ControlMsg::GateReplica(r));
        for &m in &canonical {
            if m != r {
                self.rig.send_set_members(m, canonical.clone());
            }
        }
        // Settle so the gate lands before the newcomer's ungate report.
        std::thread::sleep(StdDuration::from_millis(2));
        let mut cfg = self.spec.group_config(group, idx);
        // Report catch-up to the *current* switch incarnation.
        if let Some(cur) = self.switch_incarnation() {
            cfg.active_switch = cur;
        }
        self.rig.spawn_recovering_replica(cfg, peer);
    }

    /// Aggregate data-plane counters of the switch (None if killed).
    pub fn switch_stats(&self) -> Option<SwitchStats> {
        self.rig.observe().map(|v| v.stats())
    }

    /// One group's data-plane counters.
    pub fn group_stats(&self, group: GroupId) -> Option<SwitchStats> {
        self.rig.observe_group(group).map(|o| o.stats)
    }

    /// Whether the switch currently issues single-replica reads (group 0).
    pub fn fast_path_enabled(&self) -> Option<bool> {
        self.group_fast_path_enabled(GroupId(0))
    }

    /// Whether `group`'s fast path is currently enabled.
    pub fn group_fast_path_enabled(&self, group: GroupId) -> Option<bool> {
        self.rig.observe_group(group).map(|o| o.fast_path_enabled)
    }

    /// Total dirty-set SRAM across every hosted group.
    pub fn switch_memory_bytes(&self) -> Option<usize> {
        self.rig.observe().map(|v| v.memory_bytes())
    }

    /// Aggregate-only view across every pipeline (per-group snapshots).
    pub fn switch_view(&self) -> Option<SpineView> {
        self.rig.observe()
    }

    /// The switch's incarnation id (None if killed).
    pub fn switch_incarnation(&self) -> Option<SwitchId> {
        self.rig.switch.as_ref().map(|f| f.incarnation)
    }

    /// Stop every thread and wait for them. (Dropping does the same.)
    pub fn shutdown(mut self) {
        self.rig.shutdown_in_place();
    }
}

impl Drop for UdpCluster {
    fn drop(&mut self) {
        self.rig.shutdown_in_place();
    }
}

impl Cluster for UdpCluster {
    fn spec(&self) -> &DeploymentSpec {
        &self.spec
    }

    fn client(&mut self) -> Box<dyn KvClient + '_> {
        Box::new(UdpCluster::client(self))
    }

    fn kill_switch(&mut self) {
        UdpCluster::kill_switch(self);
    }

    fn replace_switch(&mut self, new_id: SwitchId) {
        UdpCluster::replace_switch(self, new_id);
    }

    fn kill_replica(&mut self, r: ReplicaId) {
        UdpCluster::kill_replica(self, r);
    }

    fn restart_replica(&mut self, r: ReplicaId) {
        UdpCluster::restart_replica(self, r);
    }

    fn switch_stats(&self) -> Option<SwitchStats> {
        UdpCluster::switch_stats(self)
    }

    fn group_stats(&self, group: GroupId) -> Option<SwitchStats> {
        UdpCluster::group_stats(self, group)
    }

    fn fast_path_enabled(&self) -> Option<bool> {
        UdpCluster::fast_path_enabled(self)
    }

    fn group_fast_path_enabled(&self, group: GroupId) -> Option<bool> {
        UdpCluster::group_fast_path_enabled(self, group)
    }

    fn switch_memory_bytes(&self) -> Option<usize> {
        UdpCluster::switch_memory_bytes(self)
    }

    fn switch_incarnation(&self) -> Option<SwitchId> {
        UdpCluster::switch_incarnation(self)
    }

    fn run_plans(&mut self, plans: Vec<Vec<OpSpec>>) -> Vec<Vec<RecordedOp>> {
        run_plans_threaded(|| self.rig.client(), plans)
    }

    fn obs_snapshot(&self) -> ObsSnapshot {
        let rs = self.rig.registry.snapshot();
        let mut snap = ObsSnapshot {
            driver: "udp",
            protocol: self.spec.protocol.name(),
            groups: self.spec.groups as u32,
            replicas: self.spec.replicas as u32,
            taken_at_ns: self.rig.registry.clock().now().nanos(),
            ..ObsSnapshot::default()
        };
        snap.apply_recorder(&rs);
        if let Some(view) = self.rig.observe() {
            let (switch, per_group) = spine_obs(&view, rs.counter(Counter::SwitchSwept));
            snap.switch = switch;
            snap.per_group = per_group;
        }
        // The socket-boundary adversary keeps its own tallies; they are the
        // ground truth for what the fault model actually injected.
        let (dropped, duplicated, reordered) = self.rig.fault_counters.snapshot();
        snap.faults = FaultObs {
            dropped,
            duplicated,
            reordered,
            discarded: self.rig.fault_counters.discarded(),
        };
        snap
    }

    fn trace_events(&self) -> Vec<TraceEvent> {
        self.rig.registry.trace_events()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use harmonia_replication::ProtocolKind;

    fn roundtrip(protocol: ProtocolKind, harmonia: bool) {
        let cluster = DeploymentSpec::new()
            .protocol(protocol)
            .harmonia(harmonia)
            .spawn_udp();
        let mut client = cluster.client();
        assert_eq!(client.get("missing").unwrap(), None);
        client.set("alpha", "1").unwrap();
        client.set("beta", "2").unwrap();
        client.set("alpha", "3").unwrap();
        assert_eq!(client.get("alpha").unwrap(), Some(Bytes::from_static(b"3")));
        assert_eq!(client.get("beta").unwrap(), Some(Bytes::from_static(b"2")));
        cluster.shutdown();
    }

    #[test]
    fn udp_chain_harmonia_roundtrip() {
        roundtrip(ProtocolKind::Chain, true);
    }

    #[test]
    fn udp_pb_baseline_roundtrip() {
        roundtrip(ProtocolKind::PrimaryBackup, false);
    }

    #[test]
    fn udp_craq_roundtrip() {
        roundtrip(ProtocolKind::Craq, false);
    }

    #[test]
    fn udp_vr_roundtrip() {
        roundtrip(ProtocolKind::Vr, true);
    }

    #[test]
    fn udp_nopaxos_roundtrip() {
        roundtrip(ProtocolKind::Nopaxos, true);
    }

    #[test]
    fn udp_two_clients_share_state() {
        let cluster = DeploymentSpec::new().spawn_udp();
        let mut a = cluster.client();
        let mut b = cluster.client();
        a.set("shared", "from-a").unwrap();
        assert_eq!(
            b.get("shared").unwrap(),
            Some(Bytes::from_static(b"from-a"))
        );
        b.set("shared", "from-b").unwrap();
        assert_eq!(
            a.get("shared").unwrap(),
            Some(Bytes::from_static(b"from-b"))
        );
        cluster.shutdown();
    }

    #[test]
    fn udp_sharded_roundtrip_touches_every_group() {
        let cluster = DeploymentSpec::new().groups(4).spawn_udp();
        let mut client = cluster.client();
        for i in 0..40 {
            client.set(format!("k{i}"), format!("v{i}")).unwrap();
        }
        for i in 0..40 {
            assert_eq!(
                client.get(format!("k{i}")).unwrap(),
                Some(Bytes::from(format!("v{i}")))
            );
        }
        for g in 0..4 {
            let stats = cluster.group_stats(GroupId(g)).unwrap();
            assert!(stats.writes_forwarded > 0, "group {g}: {stats:?}");
        }
        let view = cluster.switch_view().unwrap();
        assert_eq!(view.group_count(), 4);
        assert_eq!(view.stats(), cluster.switch_stats().unwrap());
        cluster.shutdown();
    }
}
