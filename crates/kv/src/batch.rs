//! Batched operations — the analogue of Redis pipelining.
//!
//! The paper's shim layer batches requests to Redis to amortize per-request
//! overhead (§8). Our engine is in-process, so batching amortizes shard-lock
//! acquisition instead; the interface shape is the same and the live driver
//! uses it on its hot path.

use bytes::Bytes;

use crate::store::Store;
use crate::versioned::VersionedValue;
use harmonia_types::SwitchSeq;

/// One operation in a batch.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BatchOp {
    /// Read a key.
    Get {
        /// Key to read.
        key: Bytes,
    },
    /// Write a key with a version tag.
    Put {
        /// Key to write.
        key: Bytes,
        /// New value.
        value: Bytes,
        /// Sequence number of the installing write.
        seq: SwitchSeq,
    },
    /// Delete a key.
    Delete {
        /// Key to delete.
        key: Bytes,
    },
}

/// Result of one [`BatchOp`], in submission order.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BatchResult {
    /// Result of a `Get`.
    Value(Option<VersionedValue>),
    /// A `Put` completed.
    Stored,
    /// Result of a `Delete`: whether the key existed.
    Deleted(bool),
}

/// An ordered group of operations executed back-to-back.
#[derive(Clone, Default, Debug)]
pub struct Batch {
    ops: Vec<BatchOp>,
}

impl Batch {
    /// Empty batch.
    pub fn new() -> Self {
        Batch::default()
    }

    /// Queue a get.
    pub fn get(&mut self, key: impl Into<Bytes>) -> &mut Self {
        self.ops.push(BatchOp::Get { key: key.into() });
        self
    }

    /// Queue a versioned put.
    pub fn put(
        &mut self,
        key: impl Into<Bytes>,
        value: impl Into<Bytes>,
        seq: SwitchSeq,
    ) -> &mut Self {
        self.ops.push(BatchOp::Put {
            key: key.into(),
            value: value.into(),
            seq,
        });
        self
    }

    /// Queue a delete.
    pub fn delete(&mut self, key: impl Into<Bytes>) -> &mut Self {
        self.ops.push(BatchOp::Delete { key: key.into() });
        self
    }

    /// Number of queued operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Execute against a store; results are positionally aligned with the
    /// queued operations.
    pub fn execute(self, store: &Store<VersionedValue>) -> Vec<BatchResult> {
        self.ops
            .into_iter()
            .map(|op| match op {
                BatchOp::Get { key } => BatchResult::Value(store.get(&key)),
                BatchOp::Put { key, value, seq } => {
                    store.put(key, VersionedValue::new(value, seq));
                    BatchResult::Stored
                }
                BatchOp::Delete { key } => BatchResult::Deleted(store.delete(&key).is_some()),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_types::SwitchId;

    fn seq(n: u64) -> SwitchSeq {
        SwitchSeq::new(SwitchId(1), n)
    }

    #[test]
    fn batch_executes_in_order() {
        let store: Store<VersionedValue> = Store::new();
        let mut b = Batch::new();
        b.put("k", "v1", seq(1))
            .get("k")
            .put("k", "v2", seq(2))
            .get("k")
            .delete("k")
            .get("k");
        assert_eq!(b.len(), 6);
        let results = b.execute(&store);
        assert_eq!(results[0], BatchResult::Stored);
        assert_eq!(
            results[1],
            BatchResult::Value(Some(VersionedValue::new(Bytes::from_static(b"v1"), seq(1))))
        );
        assert_eq!(results[2], BatchResult::Stored);
        assert_eq!(
            results[3],
            BatchResult::Value(Some(VersionedValue::new(Bytes::from_static(b"v2"), seq(2))))
        );
        assert_eq!(results[4], BatchResult::Deleted(true));
        assert_eq!(results[5], BatchResult::Value(None));
    }

    #[test]
    fn empty_batch_returns_nothing() {
        let store: Store<VersionedValue> = Store::new();
        let b = Batch::new();
        assert!(b.is_empty());
        assert!(b.execute(&store).is_empty());
    }

    #[test]
    fn delete_missing_reports_false() {
        let store: Store<VersionedValue> = Store::new();
        let mut b = Batch::new();
        b.delete("ghost");
        assert_eq!(b.execute(&store), vec![BatchResult::Deleted(false)]);
    }
}
