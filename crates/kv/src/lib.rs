//! In-memory versioned key-value engine — the storage backend behind each
//! Harmonia replica.
//!
//! The paper runs Redis behind a shim layer (§8); any fast in-memory store
//! exercises the same code path, so this crate provides one:
//!
//! * [`Store`] — a sharded hash map guarded by `parking_lot` locks, generic
//!   over the value type. The live driver shares a store between a replica's
//!   protocol thread and inspection threads; the simulator uses it
//!   single-threaded.
//! * [`VersionedValue`] — a value tagged with the [`SwitchSeq`] of the write
//!   that produced it. Replicas use the tag for the last-committed guard
//!   (§5.2): a fast-path read is safe iff the stamped last-committed point
//!   covers the tag.
//! * [`VersionChain`] — the multi-version form CRAQ needs (clean version +
//!   pending dirty versions).
//! * [`Batch`] — grouped operations, the analogue of Redis pipelining.
//!
//! [`SwitchSeq`]: harmonia_types::SwitchSeq

#![forbid(unsafe_code)]

pub mod batch;
pub mod store;
pub mod versioned;

pub use batch::{Batch, BatchOp, BatchResult};
pub use store::{Store, StoreStats};
pub use versioned::{VersionChain, VersionedValue};
