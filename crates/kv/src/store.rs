//! Sharded in-memory store.
//!
//! A fixed number of shards, each a `HashMap` behind a `parking_lot::RwLock`.
//! Sharding keeps lock contention negligible when the live driver's replica
//! thread and observers touch the store concurrently; under the simulator the
//! locks are uncontended and effectively free.

use std::collections::HashMap;

use bytes::Bytes;
use parking_lot::RwLock;

/// Aggregate statistics for a [`Store`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of live keys.
    pub keys: u64,
    /// Total key bytes resident.
    pub key_bytes: u64,
    /// Completed get operations.
    pub gets: u64,
    /// Completed put/update operations.
    pub puts: u64,
    /// Completed deletes.
    pub deletes: u64,
}

struct Shard<V> {
    map: HashMap<Bytes, V>,
}

/// A sharded key-value store with closure-based updates.
pub struct Store<V> {
    shards: Vec<RwLock<Shard<V>>>,
    stats: RwLock<StoreStats>,
}

impl<V: Clone> Store<V> {
    /// Create a store with the default shard count (16).
    pub fn new() -> Self {
        Store::with_shards(16)
    }

    /// Create a store with an explicit power-of-two shard count.
    pub fn with_shards(n: usize) -> Self {
        let n = n.next_power_of_two().max(1);
        Store {
            shards: (0..n)
                .map(|_| {
                    RwLock::new(Shard {
                        map: HashMap::new(),
                    })
                })
                .collect(),
            stats: RwLock::new(StoreStats::default()),
        }
    }

    fn shard_for(&self, key: &[u8]) -> &RwLock<Shard<V>> {
        // FNV-1a over the key; shard count is a power of two.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in key {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        &self.shards[(h as usize) & (self.shards.len() - 1)]
    }

    /// Fetch a clone of the value for `key`.
    pub fn get(&self, key: &[u8]) -> Option<V> {
        let out = self.shard_for(key).read().map.get(key).cloned();
        self.stats.write().gets += 1;
        out
    }

    /// Insert or replace the value for `key`.
    pub fn put(&self, key: Bytes, value: V) {
        let shard = self.shard_for(&key);
        let mut guard = shard.write();
        let prev = guard.map.insert(key.clone(), value);
        let mut stats = self.stats.write();
        stats.puts += 1;
        if prev.is_none() {
            stats.keys += 1;
            stats.key_bytes += key.len() as u64;
        }
    }

    /// Update the value for `key` in place, inserting `default()` first if
    /// the key is absent. Returns whatever the closure returns.
    pub fn update<R>(
        &self,
        key: &Bytes,
        default: impl FnOnce() -> V,
        f: impl FnOnce(&mut V) -> R,
    ) -> R {
        let shard = self.shard_for(key);
        let mut guard = shard.write();
        let mut inserted = false;
        let entry = guard.map.entry(key.clone()).or_insert_with(|| {
            inserted = true;
            default()
        });
        let out = f(entry);
        let mut stats = self.stats.write();
        stats.puts += 1;
        if inserted {
            stats.keys += 1;
            stats.key_bytes += key.len() as u64;
        }
        out
    }

    /// Read-only access to the value for `key` through a closure (no clone).
    pub fn with<R>(&self, key: &[u8], f: impl FnOnce(Option<&V>) -> R) -> R {
        let shard = self.shard_for(key);
        let guard = shard.read();
        let out = f(guard.map.get(key));
        drop(guard);
        self.stats.write().gets += 1;
        out
    }

    /// Remove `key`. Returns the removed value if present.
    pub fn delete(&self, key: &[u8]) -> Option<V> {
        let shard = self.shard_for(key);
        let mut guard = shard.write();
        let prev = guard.map.remove(key);
        let mut stats = self.stats.write();
        stats.deletes += 1;
        if prev.is_some() {
            stats.keys -= 1;
            stats.key_bytes -= key.len() as u64;
        }
        prev
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().map.len()).sum()
    }

    /// True if no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the statistics counters.
    pub fn stats(&self) -> StoreStats {
        *self.stats.read()
    }

    /// Remove every key.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.write().map.clear();
        }
        let mut stats = self.stats.write();
        stats.keys = 0;
        stats.key_bytes = 0;
    }

    /// Visit every `(key, value)` pair in key order within each shard.
    /// Callers that need a fully key-ordered walk must merge across shards;
    /// what matters here is that the order is a pure function of the store
    /// contents — snapshot export chunks from this walk, and those wire
    /// bytes must be identical across same-seed replays (the shard maps
    /// hash-order their entries, so the raw iteration order is not).
    pub fn for_each(&self, mut f: impl FnMut(&Bytes, &V)) {
        for shard in &self.shards {
            let guard = shard.read();
            // lint:allow(determinism): the hash order this iteration leaks
            // is erased by the sort on the next line before any visit.
            let mut keys: Vec<&Bytes> = guard.map.keys().collect();
            keys.sort_unstable();
            for k in keys {
                if let Some(v) = guard.map.get(k) {
                    f(k, v);
                }
            }
        }
    }
}

impl<V: Clone> Default for Store<V> {
    fn default() -> Self {
        Store::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn put_get_delete_roundtrip() {
        let s: Store<u32> = Store::new();
        assert!(s.is_empty());
        s.put(b("a"), 1);
        s.put(b("b"), 2);
        assert_eq!(s.get(b"a"), Some(1));
        assert_eq!(s.get(b"b"), Some(2));
        assert_eq!(s.get(b"c"), None);
        assert_eq!(s.len(), 2);
        assert_eq!(s.delete(b"a"), Some(1));
        assert_eq!(s.delete(b"a"), None);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn put_replaces_without_growing() {
        let s: Store<u32> = Store::new();
        s.put(b("k"), 1);
        s.put(b("k"), 2);
        assert_eq!(s.get(b"k"), Some(2));
        assert_eq!(s.len(), 1);
        assert_eq!(s.stats().keys, 1);
    }

    #[test]
    fn update_inserts_default_then_mutates() {
        let s: Store<Vec<u32>> = Store::new();
        let key = b("list");
        let len = s.update(&key, Vec::new, |v| {
            v.push(7);
            v.len()
        });
        assert_eq!(len, 1);
        let len = s.update(&key, Vec::new, |v| {
            v.push(8);
            v.len()
        });
        assert_eq!(len, 2);
        assert_eq!(s.get(b"list"), Some(vec![7, 8]));
    }

    #[test]
    fn with_avoids_clone_and_sees_absent() {
        let s: Store<u32> = Store::new();
        s.put(b("k"), 5);
        assert_eq!(s.with(b"k", |v| v.copied()), Some(5));
        assert!(s.with(b"missing", |v| v.is_none()));
    }

    #[test]
    fn stats_track_operations() {
        let s: Store<u32> = Store::new();
        s.put(b("a"), 1);
        s.get(b"a");
        s.get(b"b");
        s.delete(b"a");
        let st = s.stats();
        assert_eq!(st.puts, 1);
        assert_eq!(st.gets, 2);
        assert_eq!(st.deletes, 1);
        assert_eq!(st.keys, 0);
        assert_eq!(st.key_bytes, 0);
    }

    #[test]
    fn clear_empties_all_shards() {
        let s: Store<u32> = Store::with_shards(4);
        for i in 0..100u32 {
            s.put(b(&format!("k{i}")), i);
        }
        assert_eq!(s.len(), 100);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.stats().keys, 0);
    }

    #[test]
    fn for_each_visits_everything() {
        let s: Store<u32> = Store::with_shards(8);
        for i in 0..50u32 {
            s.put(b(&format!("k{i}")), i);
        }
        let mut sum = 0;
        s.for_each(|_, v| sum += v);
        assert_eq!(sum, (0..50).sum::<u32>());
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let s: Store<u32> = Store::with_shards(3);
        assert_eq!(s.shards.len(), 4);
        let s: Store<u32> = Store::with_shards(0);
        assert_eq!(s.shards.len(), 1);
    }

    #[test]
    fn concurrent_access_is_safe() {
        use std::sync::Arc;
        let s: Arc<Store<u64>> = Arc::new(Store::new());
        let mut handles = vec![];
        for t in 0..4u64 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    let key = Bytes::from(format!("t{t}-k{i}"));
                    s.put(key.clone(), i);
                    assert_eq!(s.get(&key), Some(i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.len(), 4000);
    }
}
