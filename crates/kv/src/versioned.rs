//! Versioned values.
//!
//! Replicas tag each stored value with the [`SwitchSeq`] of the write that
//! produced it. The tag is what the last-committed guard compares against
//! (§5.2 / §7 of the paper, and `R.obj.seq` in Appendix A's proof).
//!
//! CRAQ additionally keeps *dirty* (not yet committed) versions beside the
//! latest clean one — [`VersionChain`] models that.

use bytes::Bytes;
use harmonia_types::SwitchSeq;

/// A single value plus the sequence number of the write that installed it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VersionedValue {
    /// The stored bytes.
    pub value: Bytes,
    /// Sequence number of the installing write (`R.obj.seq`).
    pub seq: SwitchSeq,
}

impl VersionedValue {
    /// Build a versioned value.
    pub fn new(value: impl Into<Bytes>, seq: SwitchSeq) -> Self {
        VersionedValue {
            value: value.into(),
            seq,
        }
    }
}

/// CRAQ-style multi-version entry: one clean (committed) version and any
/// number of pending dirty versions in sequence order.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct VersionChain {
    clean: Option<VersionedValue>,
    dirty: Vec<VersionedValue>,
}

impl VersionChain {
    /// A chain with no versions at all.
    pub fn empty() -> Self {
        VersionChain::default()
    }

    /// True if there is at least one uncommitted version (the object is
    /// *dirty* in CRAQ's sense).
    pub fn is_dirty(&self) -> bool {
        !self.dirty.is_empty()
    }

    /// The latest committed version, if any.
    pub fn clean(&self) -> Option<&VersionedValue> {
        self.clean.as_ref()
    }

    /// The newest version, dirty or clean (what a chain head/middle node
    /// would propagate next).
    pub fn latest(&self) -> Option<&VersionedValue> {
        self.dirty.last().or(self.clean.as_ref())
    }

    /// Number of dirty versions currently held.
    pub fn dirty_len(&self) -> usize {
        self.dirty.len()
    }

    /// The staged (uncommitted) versions in sequence order. State transfer
    /// ships these alongside the clean version so a rejoining CRAQ node can
    /// honour later CLEAN acknowledgements.
    pub fn dirty_versions(&self) -> &[VersionedValue] {
        &self.dirty
    }

    /// Stage an uncommitted write. Versions must arrive in increasing
    /// sequence order (the replication protocol enforces this); offenders
    /// are rejected with `false`.
    pub fn stage(&mut self, v: VersionedValue) -> bool {
        let newest = self.latest().map(|x| x.seq).unwrap_or(SwitchSeq::ZERO);
        if v.seq <= newest {
            return false;
        }
        self.dirty.push(v);
        true
    }

    /// Commit every staged version with `seq <= up_to`; the newest such
    /// version becomes the clean one. Returns how many versions committed.
    pub fn commit_up_to(&mut self, up_to: SwitchSeq) -> usize {
        let n = self.dirty.iter().take_while(|v| v.seq <= up_to).count();
        if n == 0 {
            return 0;
        }
        let mut committed: Vec<_> = self.dirty.drain(..n).collect();
        self.clean = committed.pop();
        n
    }

    /// Install a committed version directly (read-behind replicas apply only
    /// committed writes). Rejects out-of-order installs with `false`.
    pub fn install_clean(&mut self, v: VersionedValue) -> bool {
        let cur = self
            .clean
            .as_ref()
            .map(|x| x.seq)
            .unwrap_or(SwitchSeq::ZERO);
        if v.seq <= cur {
            return false;
        }
        // Any staged versions at or below this point are now superseded.
        let seq = v.seq;
        self.dirty.retain(|d| d.seq > seq);
        self.clean = Some(v);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_types::SwitchId;

    fn seq(n: u64) -> SwitchSeq {
        SwitchSeq::new(SwitchId(1), n)
    }

    fn vv(s: u64, v: &str) -> VersionedValue {
        VersionedValue::new(Bytes::copy_from_slice(v.as_bytes()), seq(s))
    }

    #[test]
    fn empty_chain_has_nothing() {
        let c = VersionChain::empty();
        assert!(!c.is_dirty());
        assert!(c.clean().is_none());
        assert!(c.latest().is_none());
    }

    #[test]
    fn stage_then_commit_promotes_newest() {
        let mut c = VersionChain::empty();
        assert!(c.stage(vv(1, "a")));
        assert!(c.stage(vv(2, "b")));
        assert!(c.is_dirty());
        assert_eq!(c.dirty_len(), 2);
        assert_eq!(c.latest().unwrap().seq, seq(2));
        assert!(c.clean().is_none());

        assert_eq!(c.commit_up_to(seq(2)), 2);
        assert!(!c.is_dirty());
        assert_eq!(c.clean().unwrap().value, Bytes::from_static(b"b"));
    }

    #[test]
    fn partial_commit_keeps_newer_dirty() {
        let mut c = VersionChain::empty();
        c.stage(vv(1, "a"));
        c.stage(vv(2, "b"));
        c.stage(vv(3, "c"));
        assert_eq!(c.commit_up_to(seq(2)), 2);
        assert!(c.is_dirty());
        assert_eq!(c.clean().unwrap().seq, seq(2));
        assert_eq!(c.latest().unwrap().seq, seq(3));
    }

    #[test]
    fn stage_rejects_out_of_order() {
        let mut c = VersionChain::empty();
        assert!(c.stage(vv(5, "x")));
        assert!(!c.stage(vv(5, "dup")));
        assert!(!c.stage(vv(4, "older")));
        assert_eq!(c.dirty_len(), 1);
    }

    #[test]
    fn install_clean_supersedes_staged() {
        let mut c = VersionChain::empty();
        c.stage(vv(1, "a"));
        c.stage(vv(3, "c"));
        assert!(c.install_clean(vv(2, "b")));
        // seq 1 superseded, seq 3 survives as dirty.
        assert_eq!(c.clean().unwrap().seq, seq(2));
        assert_eq!(c.dirty_len(), 1);
        assert_eq!(c.latest().unwrap().seq, seq(3));
        // Out-of-order clean install is rejected.
        assert!(!c.install_clean(vv(2, "again")));
        assert!(!c.install_clean(vv(1, "ancient")));
    }

    #[test]
    fn commit_with_no_matching_versions_is_a_noop() {
        let mut c = VersionChain::empty();
        c.stage(vv(5, "x"));
        assert_eq!(c.commit_up_to(seq(4)), 0);
        assert!(c.is_dirty());
        assert!(c.clean().is_none());
    }
}
