//! `harmonia-lint` — a zero-dependency static invariant checker for the
//! workspace.
//!
//! The repo's core guarantees are cheap to state and expensive to re-earn
//! once lost: bit-identical same-seed sim replays, an `unsafe` surface
//! confined to the audited zero-copy receive spine, a panic-free hot
//! packet path, and a sans-IO protocol/switch layer. This crate enforces
//! all four *statically*, before any test runs:
//!
//! | rule          | scope                                   | forbids |
//! |---------------|-----------------------------------------|---------|
//! | `determinism` | sim, switch, replication, types, verify, workload, kv, obs | wall-clock reads, entropy-seeded RNGs/hashers, iteration over `HashMap`/`HashSet` |
//! | `unsafe`      | whole workspace                         | `unsafe` outside vendor/mmsg, vendor/bytes, crates/net/src/pool.rs; unsafe without `SAFETY:`; missing `#![forbid(unsafe_code)]` headers |
//! | `panic_path`  | net/udp.rs, net/coalesce.rs, core/live.rs, core/udp.rs, types/wire.rs, obs/recorder.rs, obs/hist.rs | `unwrap`/`expect`, panicking macros, indexing without `get` |
//! | `layering`    | replication, switch                     | `std::net`, `harmonia-net`, socket types |
//!
//! Violations can be waived inline with `// lint:allow(<rule>): <reason>`
//! (the reason is mandatory); the waiver covers its own line and the next.
//! Test code (`#[cfg(test)]` items) is exempt from `determinism` and
//! `panic_path`, never from `unsafe`.
//!
//! Run it three ways: `cargo run -p harmonia-lint` (the CI `lint` job adds
//! `--json`), the root `tests/lint.rs` tier-1 self-check, or
//! [`lint_workspace`] / [`lint_source`] as a library (what the fixture
//! tests drive).

#![forbid(unsafe_code)]

use std::fmt;
use std::path::{Path, PathBuf};

mod rules;
pub mod scan;

pub use rules::lint_source;

/// The rule families. `Waiver` covers malformed waiver comments themselves.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    Determinism,
    Unsafe,
    PanicPath,
    Layering,
    Waiver,
}

impl Rule {
    pub fn name(self) -> &'static str {
        match self {
            Rule::Determinism => "determinism",
            Rule::Unsafe => "unsafe",
            Rule::PanicPath => "panic_path",
            Rule::Layering => "layering",
            Rule::Waiver => "waiver",
        }
    }

    pub fn from_name(name: &str) -> Option<Rule> {
        match name {
            "determinism" => Some(Rule::Determinism),
            "unsafe" => Some(Rule::Unsafe),
            "panic_path" => Some(Rule::PanicPath),
            "layering" => Some(Rule::Layering),
            _ => None,
        }
    }
}

/// One violation: file, line, rule, and a human-readable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    pub file: String,
    pub line: u32,
    pub rule: Rule,
    pub message: String,
}

impl Finding {
    pub fn new(file: &str, line: u32, rule: Rule, message: String) -> Self {
        Finding {
            file: file.to_string(),
            line,
            rule,
            message,
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// Per-path policy: which rules apply where. [`Policy::workspace`] is the
/// committed policy for this repo; fixture tests build variants.
pub struct Policy {
    /// Crate directory names under `crates/` whose `src/` must be
    /// deterministic.
    pub deterministic_crates: Vec<String>,
    /// Path prefixes (or exact files) where `unsafe` is allowed.
    pub unsafe_allowed: Vec<String>,
    /// Exact files held to packet-path panic freedom.
    pub hot_paths: Vec<String>,
    /// Crate directory names under `crates/` that must stay sans-IO.
    pub sans_io_crates: Vec<String>,
}

impl Policy {
    /// The committed policy for this workspace.
    pub fn workspace() -> Policy {
        Policy {
            deterministic_crates: [
                "sim",
                "switch",
                "replication",
                "types",
                "verify",
                "workload",
                "kv",
                "obs",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            unsafe_allowed: ["vendor/mmsg/", "vendor/bytes/", "crates/net/src/pool.rs"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            hot_paths: [
                "crates/net/src/udp.rs",
                "crates/net/src/coalesce.rs",
                "crates/core/src/live.rs",
                "crates/core/src/udp.rs",
                "crates/types/src/wire.rs",
                "crates/obs/src/recorder.rs",
                "crates/obs/src/hist.rs",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            sans_io_crates: ["replication", "switch"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        }
    }

    pub fn is_deterministic_path(&self, rel: &str) -> bool {
        self.deterministic_crates
            .iter()
            .any(|c| rel.starts_with(&format!("crates/{c}/src/")))
    }

    pub fn is_hot_path(&self, rel: &str) -> bool {
        self.hot_paths.iter().any(|p| p == rel)
    }

    pub fn is_sans_io_path(&self, rel: &str) -> bool {
        self.sans_io_crates
            .iter()
            .any(|c| rel.starts_with(&format!("crates/{c}/src/")))
    }

    pub fn is_unsafe_allowed(&self, rel: &str) -> bool {
        self.unsafe_allowed
            .iter()
            .any(|p| rel == p || (p.ends_with('/') && rel.starts_with(p.as_str())))
    }
}

/// Lint the whole workspace rooted at `root`: every `.rs` file under
/// `src/`, `crates/`, `vendor/`, `tests/`, and `examples/`, plus the
/// crate-attribute audit of each member's `lib.rs`.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let policy = Policy::workspace();
    let mut findings = Vec::new();
    for top in ["src", "crates", "vendor", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut |path| {
                let rel = rel_path(root, path);
                let src = std::fs::read_to_string(path)?;
                findings.extend(lint_source(&rel, &src, &policy));
                Ok(())
            })?;
        }
    }
    findings.extend(check_crate_attrs(root)?);
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(findings)
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn walk(dir: &Path, f: &mut impl FnMut(&Path) -> std::io::Result<()>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with('.') || name == "target" {
            continue;
        }
        if path.is_dir() {
            walk(&path, f)?;
        } else if name.ends_with(".rs") {
            f(&path)?;
        }
    }
    Ok(())
}

/// Audit every workspace member's crate-root attributes:
///
/// - crates with no sanctioned `unsafe` must carry
///   `#![forbid(unsafe_code)]`;
/// - `harmonia-net` (hosting the allowlisted `pool.rs`) must carry
///   `#![deny(unsafe_code)]` (pool opts back in locally) and
///   `#![deny(unsafe_op_in_unsafe_fn)]`;
/// - the vendored `mmsg` and `bytes` crates must carry
///   `#![deny(unsafe_op_in_unsafe_fn)]`.
pub fn check_crate_attrs(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    let mut members: Vec<(String, PathBuf)> = vec![("src/lib.rs".into(), root.join("src/lib.rs"))];
    for top in ["crates", "vendor"] {
        let dir = root.join(top);
        if !dir.is_dir() {
            continue;
        }
        let mut subdirs: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        subdirs.sort();
        for sub in subdirs {
            let lib = sub.join("src/lib.rs");
            if lib.is_file() {
                members.push((rel_path(root, &lib), lib));
            }
        }
    }
    for (rel, path) in members {
        let src = std::fs::read_to_string(&path)?;
        let s = scan::scan(&src);
        let crate_dir = rel.trim_end_matches("/src/lib.rs");
        let (needs_forbid, needs_strict_unsafe_fn) = match crate_dir {
            "vendor/mmsg" | "vendor/bytes" => (false, true),
            "crates/net" => (false, true),
            _ => (true, false),
        };
        if needs_forbid && !has_inner_attr(&s, "forbid", "unsafe_code") {
            findings.push(Finding::new(
                &rel,
                1,
                Rule::Unsafe,
                "crate root is missing `#![forbid(unsafe_code)]`".into(),
            ));
        }
        if crate_dir == "crates/net" && !has_inner_attr(&s, "deny", "unsafe_code") {
            findings.push(Finding::new(
                &rel,
                1,
                Rule::Unsafe,
                "crate root is missing `#![deny(unsafe_code)]` (pool.rs opts back in locally)"
                    .into(),
            ));
        }
        if needs_strict_unsafe_fn && !has_inner_attr(&s, "deny", "unsafe_op_in_unsafe_fn") {
            findings.push(Finding::new(
                &rel,
                1,
                Rule::Unsafe,
                "crate root is missing `#![deny(unsafe_op_in_unsafe_fn)]`".into(),
            ));
        }
    }
    Ok(findings)
}

/// Whether the scan contains the inner attribute `#![<outer>(<inner>)]`.
fn has_inner_attr(s: &scan::Scan, outer: &str, inner: &str) -> bool {
    let t = &s.tokens;
    (0..t.len()).any(|i| {
        t[i].is("#")
            && t.get(i + 1).is_some_and(|a| a.is("!"))
            && t.get(i + 2).is_some_and(|a| a.is("["))
            && t.get(i + 3).is_some_and(|a| a.is(outer))
            && t.get(i + 4).is_some_and(|a| a.is("("))
            && t.get(i + 5).is_some_and(|a| a.is(inner))
    })
}

/// Render findings as a JSON array (stable field order, no dependencies).
pub fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&f.file),
            f.line,
            f.rule.name(),
            json_escape(&f.message)
        ));
    }
    if !findings.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
