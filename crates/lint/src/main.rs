//! CLI for the workspace invariant checker.
//!
//! ```text
//! cargo run -p harmonia-lint            # human-readable report
//! cargo run -p harmonia-lint -- --json  # machine-readable (the CI job)
//! cargo run -p harmonia-lint -- --root /path/to/checkout
//! ```
//!
//! Exit code 0 means the tree is clean; 1 means findings (printed); 2 means
//! the checker itself failed (bad root, unreadable file).

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root needs a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument `{other}` (expected --json, --root <path>)");
                return ExitCode::from(2);
            }
        }
    }
    // Under `cargo run` the manifest dir points at crates/lint; the
    // workspace root is two levels up. Outside cargo, fall back to cwd.
    let root = root.unwrap_or_else(|| {
        std::env::var_os("CARGO_MANIFEST_DIR")
            .map(|d| PathBuf::from(d).join("../.."))
            .unwrap_or_else(|| PathBuf::from("."))
    });

    match harmonia_lint::lint_workspace(&root) {
        Ok(findings) => {
            if json {
                println!("{}", harmonia_lint::to_json(&findings));
            } else {
                for f in &findings {
                    println!("{f}");
                }
                println!(
                    "harmonia-lint: {} finding{} across the workspace",
                    findings.len(),
                    if findings.len() == 1 { "" } else { "s" }
                );
            }
            if findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("harmonia-lint: cannot lint {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}
