//! The four rule families over a [`Scan`], plus waiver handling.
//!
//! Every rule is a pure function of one file's token stream — no type
//! information, no cross-file resolution. That keeps the checker fast and
//! dependency-free at the cost of per-file heuristics (documented on each
//! rule); `clippy.toml`'s `disallowed-methods` is the independent second
//! layer for the workspace-level cases this pass cannot see.

use crate::scan::{scan, Scan, Tok, TokKind};
use crate::{Finding, Policy, Rule};

/// Lint one file's source under the workspace policy. `rel_path` is the
/// path relative to the workspace root, `/`-separated.
pub fn lint_source(rel_path: &str, src: &str, policy: &Policy) -> Vec<Finding> {
    let s = scan(src);
    let mut findings: Vec<Finding> = Vec::new();

    let waivers = collect_waivers(rel_path, &s, &mut findings);

    if policy.is_deterministic_path(rel_path) {
        check_determinism(rel_path, &s, &mut findings);
    }
    if policy.is_hot_path(rel_path) {
        check_panic_path(rel_path, &s, &mut findings);
    }
    if policy.is_sans_io_path(rel_path) {
        check_layering(rel_path, &s, &mut findings);
    }
    check_unsafe(rel_path, &s, policy, &mut findings);

    // Apply waivers last: a waiver covers its own line (trailing comment),
    // the rest of its contiguous comment block (reasons may wrap), and the
    // line after the block. Waiver-syntax findings themselves cannot be
    // waived.
    findings.retain(|f| {
        f.rule == Rule::Waiver
            || !waivers
                .iter()
                .any(|w| f.line >= w.line && f.line <= w.end + 1 && w.rules.contains(&f.rule))
    });
    findings.sort_by_key(|f| f.line);
    findings
}

/// A parsed `// lint:allow(rule[, rule]): reason` comment. `end` is the
/// last line of the contiguous comment block the waiver starts (a wrapped
/// reason extends the waiver's reach to the line after its last comment).
struct Waiver {
    line: u32,
    end: u32,
    rules: Vec<Rule>,
}

/// Parse waivers out of the comments. A waiver missing its reason (or
/// naming an unknown rule) is itself a finding and suppresses nothing.
fn collect_waivers(rel_path: &str, s: &Scan, findings: &mut Vec<Finding>) -> Vec<Waiver> {
    let mut out = Vec::new();
    for c in &s.comments {
        // Only a comment that *starts* with the marker is a waiver —
        // prose that merely mentions the syntax (docs, this file) is not.
        let Some(rest) = c.text.trim_start().strip_prefix("lint:allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            findings.push(Finding::new(
                rel_path,
                c.line,
                Rule::Waiver,
                "malformed waiver: missing `)`".into(),
            ));
            continue;
        };
        let mut rules = Vec::new();
        let mut bad = false;
        for name in rest[..close].split(',') {
            match Rule::from_name(name.trim()) {
                Some(r) => rules.push(r),
                None => {
                    findings.push(Finding::new(
                        rel_path,
                        c.line,
                        Rule::Waiver,
                        format!("waiver names unknown rule `{}`", name.trim()),
                    ));
                    bad = true;
                }
            }
        }
        let after = rest[close + 1..].trim_start();
        let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
        if reason.is_empty() {
            findings.push(Finding::new(
                rel_path,
                c.line,
                Rule::Waiver,
                "waiver without a reason: use `lint:allow(<rule>): <why>`".into(),
            ));
            bad = true;
        }
        if !bad {
            let mut end = c.line;
            while s.comments.iter().any(|n| n.line == end + 1) {
                end += 1;
            }
            out.push(Waiver {
                line: c.line,
                end,
                rules,
            });
        }
    }
    out
}

/// Identifiers whose mere mention in a deterministic crate is a violation:
/// wall-clock types and entropy-seeded RNG/hasher entry points. `Instant`
/// is NOT here — `harmonia-types` defines a *virtual* `Instant` the sim
/// crates use everywhere; only `Instant::now` / `std::time::Instant`
/// (checked separately) reach the wall clock.
const WALL_CLOCK_IDENTS: &[(&str, &str)] = &[
    ("SystemTime", "wall-clock read (`SystemTime`)"),
    ("UNIX_EPOCH", "wall-clock read (`UNIX_EPOCH`)"),
    ("thread_rng", "global/thread RNG (`thread_rng`)"),
    ("from_entropy", "entropy-seeded RNG (`from_entropy`)"),
    ("RandomState", "randomly seeded hasher (`RandomState`)"),
    ("DefaultHasher", "randomly seeded hasher (`DefaultHasher`)"),
];

/// Methods whose call on a `HashMap`/`HashSet` exposes iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// Rule family 1 — determinism. Same-seed sim replays must be
/// bit-identical (`tests/determinism.rs`), so the deterministic crates may
/// not read wall clocks, seed RNGs from the environment, or iterate
/// hash-ordered collections (std's `RandomState` makes that order differ
/// run to run).
///
/// Heuristic for iteration: identifiers bound or typed as
/// `HashMap`/`HashSet` *in the same file* are tracked; iteration methods
/// and `for … in` loops over them are flagged. Maps that only see
/// `get`/`insert`/`remove`/`contains` are fine — point lookups don't leak
/// order.
fn check_determinism(rel_path: &str, s: &Scan, findings: &mut Vec<Finding>) {
    let toks = &s.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || s.is_test_line(t.line) {
            continue;
        }
        for &(ident, what) in WALL_CLOCK_IDENTS {
            if t.is(ident) {
                // `Duration` and virtual-time types are fine; only the
                // named sources of nondeterminism are flagged.
                findings.push(Finding::new(
                    rel_path,
                    t.line,
                    Rule::Determinism,
                    format!("{what} in a deterministic crate"),
                ));
            }
        }
        // `Instant::now(…)` — the virtual `harmonia_types::Instant` has no
        // `now`, so any `Instant::now` here reaches the wall clock.
        if t.is("Instant")
            && toks.get(i + 1).is_some_and(|a| a.is(":"))
            && toks.get(i + 2).is_some_and(|a| a.is(":"))
            && toks.get(i + 3).is_some_and(|a| a.is("now"))
        {
            findings.push(Finding::new(
                rel_path,
                t.line,
                Rule::Determinism,
                "wall-clock read (`Instant::now`) in a deterministic crate".into(),
            ));
        }
        // `std::time::Instant` — importing or naming the std type at all
        // (the virtual clock is `harmonia_types::Instant`).
        if t.is("std")
            && toks.get(i + 1).is_some_and(|a| a.is(":"))
            && toks.get(i + 2).is_some_and(|a| a.is(":"))
            && toks.get(i + 3).is_some_and(|a| a.is("time"))
            && toks.get(i + 4).is_some_and(|a| a.is(":"))
            && toks.get(i + 5).is_some_and(|a| a.is(":"))
            && toks.get(i + 6).is_some_and(|a| a.is("Instant"))
        {
            findings.push(Finding::new(
                rel_path,
                t.line,
                Rule::Determinism,
                "`std::time::Instant` in a deterministic crate (use the virtual clock)".into(),
            ));
        }
    }

    let tracked = hash_bound_idents(toks);
    if tracked.is_empty() {
        return;
    }

    for (i, t) in toks.iter().enumerate() {
        if s.is_test_line(t.line) {
            continue;
        }
        // `recv.iter()` style: `<ident> . <iter-method> (`.
        if t.kind == TokKind::Ident
            && ITER_METHODS.contains(&t.text.as_str())
            && i >= 2
            && toks[i - 1].is(".")
            && toks.get(i + 1).is_some_and(|n| n.is("("))
            && toks[i - 2].kind == TokKind::Ident
            && tracked.contains(&toks[i - 2].text)
        {
            findings.push(Finding::new(
                rel_path,
                t.line,
                Rule::Determinism,
                format!(
                    "iteration over hash-ordered `{}` (`.{}()`): order differs between runs",
                    toks[i - 2].text,
                    t.text
                ),
            ));
        }
        // `for x in &map { … }` / `for x in map { … }`.
        if t.is("for") && t.kind == TokKind::Ident {
            if let Some(ident) = for_loop_receiver(toks, i) {
                if tracked.contains(&ident) {
                    findings.push(Finding::new(
                        rel_path,
                        t.line,
                        Rule::Determinism,
                        format!(
                            "`for` loop over hash-ordered `{ident}`: order differs between runs"
                        ),
                    ));
                }
            }
        }
    }
}

/// Identifiers bound or typed as `HashMap`/`HashSet` in this file:
/// `name: [std::collections::]Hash{Map,Set}<…>` (fields, lets, params) and
/// `let [mut] name = Hash{Map,Set}::{new,default,with_capacity,from}(…)`.
fn hash_bound_idents(toks: &[Tok]) -> Vec<String> {
    let mut tracked: Vec<String> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !(t.kind == TokKind::Ident && (t.is("HashMap") || t.is("HashSet"))) {
            continue;
        }
        // Case A: type annotation. Walk back over the path (`std`,
        // `collections`, `:`) to the binding ident before the `:`.
        let mut k = i;
        let mut saw_colon = false;
        while k > 0 {
            let p = &toks[k - 1];
            if p.is(":") {
                saw_colon = true;
                k -= 1;
            } else if p.kind == TokKind::Ident && (p.is("std") || p.is("collections")) {
                k -= 1;
            } else {
                break;
            }
        }
        if saw_colon && k > 0 && toks[k - 1].kind == TokKind::Ident {
            let name = &toks[k - 1];
            // Skip path-qualified positions (`foo::HashMap` would leave
            // `foo` here only via `:` tokens, already consumed) and type
            // ascription in fn returns (`-> HashMap`): require the token
            // before the binding ident to not be `>` or `-`.
            if k < 2 || !(toks[k - 2].is("-") || toks[k - 2].is(">")) {
                tracked.push(name.text.clone());
            }
        }
        // Case B: `let [mut] name = Hash{Map,Set}::ctor(…)`.
        let is_ctor = toks.get(i + 1).is_some_and(|a| a.is(":"))
            && toks.get(i + 2).is_some_and(|a| a.is(":"))
            && toks.get(i + 3).is_some_and(|a| {
                a.is("new") || a.is("default") || a.is("with_capacity") || a.is("from")
            });
        if is_ctor {
            // Walk back to the nearest `=` in this statement, then to the
            // `let` binding before it.
            let mut k = i;
            while k > 0 && !toks[k - 1].is("=") {
                if toks[k - 1].is(";") || toks[k - 1].is("{") || toks[k - 1].is("}") {
                    k = 0;
                    break;
                }
                k -= 1;
            }
            if k >= 2 && toks[k - 2].kind == TokKind::Ident {
                let name_idx = k - 2;
                let before = name_idx.checked_sub(1).map(|b| &toks[b]);
                let is_let = matches!(before, Some(b) if b.is("let") || b.is("mut"));
                if is_let {
                    tracked.push(toks[name_idx].text.clone());
                }
            }
        }
    }
    tracked.sort();
    tracked.dedup();
    tracked
}

/// If the `for` at `toks[i]` loops directly over a plain identifier (or
/// `self.field`, possibly behind `&`/`&mut`), return that identifier.
fn for_loop_receiver(toks: &[Tok], i: usize) -> Option<String> {
    // Find `in` at pattern depth 0, within a sane distance.
    let mut j = i + 1;
    let mut depth = 0i32;
    let limit = (i + 40).min(toks.len());
    while j < limit {
        let t = &toks[j];
        if t.is("(") || t.is("[") {
            depth += 1;
        } else if t.is(")") || t.is("]") {
            depth -= 1;
        } else if t.is("{") {
            return None; // hit the body before `in`
        } else if depth == 0 && t.kind == TokKind::Ident && t.is("in") {
            break;
        }
        j += 1;
    }
    if j >= limit {
        return None;
    }
    // Collect the expression tokens between `in` and the body `{`.
    let mut expr: Vec<&Tok> = Vec::new();
    let mut k = j + 1;
    let mut edepth = 0i32;
    while k < toks.len() {
        let t = &toks[k];
        if edepth == 0 && t.is("{") {
            break;
        }
        if t.is("(") || t.is("[") {
            edepth += 1;
        } else if t.is(")") || t.is("]") {
            edepth -= 1;
        }
        expr.push(t);
        k += 1;
        if expr.len() > 8 {
            return None; // complex expression: out of heuristic scope
        }
    }
    let mut e: &[&Tok] = &expr;
    while let Some(first) = e.first() {
        if first.is("&") || first.is("mut") {
            e = &e[1..];
        } else {
            break;
        }
    }
    match e {
        [only] if only.kind == TokKind::Ident => Some(only.text.clone()),
        [slf, dot, field] if slf.is("self") && dot.is(".") && field.kind == TokKind::Ident => {
            Some(field.text.clone())
        }
        _ => None,
    }
}

/// Macros that panic at runtime (debug_assert* compiles out in release and
/// is allowed on the hot path).
const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Rule family 3 — packet-path panic freedom. The designated hot-path
/// modules handle untrusted bytes and carry live traffic: a panic there is
/// an outage, so failures must be counted error paths. Indexing is flagged
/// too (`x[i]` panics out of bounds) except the infallible full-range
/// `x[..]`; use `get`/iterators or waive with a bounds argument.
fn check_panic_path(rel_path: &str, s: &Scan, findings: &mut Vec<Finding>) {
    let toks = &s.tokens;
    for (i, t) in toks.iter().enumerate() {
        if s.is_test_line(t.line) {
            continue;
        }
        if t.kind == TokKind::Ident
            && (t.is("unwrap") || t.is("expect"))
            && i >= 1
            && toks[i - 1].is(".")
            && toks.get(i + 1).is_some_and(|n| n.is("("))
        {
            findings.push(Finding::new(
                rel_path,
                t.line,
                Rule::PanicPath,
                format!(
                    "`.{}()` on the packet path: convert to a counted error path",
                    t.text
                ),
            ));
        }
        if t.kind == TokKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is("!"))
        {
            findings.push(Finding::new(
                rel_path,
                t.line,
                Rule::PanicPath,
                format!(
                    "`{}!` on the packet path: panics must not reach live traffic",
                    t.text
                ),
            ));
        }
        if t.is("[") && i >= 1 {
            let prev = &toks[i - 1];
            let indexes = prev.kind == TokKind::Ident || prev.is(")") || prev.is("]");
            // `#[attr]` (prev `#`) and `vec![…]` (prev `!`) are not index
            // expressions; `x[..]` cannot panic.
            let full_range = toks.get(i + 1).is_some_and(|a| a.is("."))
                && toks.get(i + 2).is_some_and(|a| a.is("."))
                && toks.get(i + 3).is_some_and(|a| a.is("]"));
            // Keywords before `[` start slice *types* (`&mut [u8]`,
            // `dyn [..]`) or array expressions, not index expressions.
            let keyword_prev = prev.is("in")
                || prev.is("return")
                || prev.is("break")
                || prev.is("else")
                || prev.is("match")
                || prev.is("mut")
                || prev.is("dyn")
                || prev.is("as");
            if indexes && !full_range && !keyword_prev {
                findings.push(Finding::new(
                    rel_path,
                    t.line,
                    Rule::PanicPath,
                    "indexing without `get` on the packet path: out-of-bounds panics".into(),
                ));
            }
        }
    }
}

/// Rule family 4 — layering (sans-IO boundary). The protocol and switch
/// crates are pure state machines driven by the deployment drivers; socket
/// types or the transport crate leaking in would couple the deterministic
/// core to real I/O (the hnix-store-style pure-semantics/effectful-I/O
/// split).
const IO_IDENTS: &[&str] = &[
    "harmonia_net",
    "UdpSocket",
    "TcpStream",
    "TcpListener",
    "SocketAddr",
    "SocketAddrV4",
    "SocketAddrV6",
];

fn check_layering(rel_path: &str, s: &Scan, findings: &mut Vec<Finding>) {
    let toks = &s.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        if t.is("std")
            && toks.get(i + 1).is_some_and(|a| a.is(":"))
            && toks.get(i + 2).is_some_and(|a| a.is(":"))
            && toks.get(i + 3).is_some_and(|a| a.is("net"))
        {
            findings.push(Finding::new(
                rel_path,
                t.line,
                Rule::Layering,
                "`std::net` in a sans-IO crate: sockets belong to the deployment drivers".into(),
            ));
        }
        if IO_IDENTS.contains(&t.text.as_str()) {
            findings.push(Finding::new(
                rel_path,
                t.line,
                Rule::Layering,
                format!(
                    "`{}` in a sans-IO crate: I/O belongs to the deployment drivers",
                    t.text
                ),
            ));
        }
    }
}

/// Rule family 2 — unsafe audit. `unsafe` may appear only in the explicit
/// allowlist (the zero-copy receive spine: the vendored syscall/buffer
/// crates and the buffer pool), and every occurrence there must justify
/// itself with a nearby `SAFETY:` comment (or a `# Safety` doc section for
/// `unsafe fn`). Everything else is locked by `#![forbid(unsafe_code)]`,
/// which this rule's crate-attribute companion (in `lib.rs`) verifies.
fn check_unsafe(rel_path: &str, s: &Scan, policy: &Policy, findings: &mut Vec<Finding>) {
    let allowed = policy.is_unsafe_allowed(rel_path);
    for t in &s.tokens {
        if !(t.kind == TokKind::Ident && t.is("unsafe")) {
            continue;
        }
        if !allowed {
            findings.push(Finding::new(
                rel_path,
                t.line,
                Rule::Unsafe,
                "`unsafe` outside the audited allowlist (vendor/mmsg, vendor/bytes, \
                 crates/net/src/pool.rs)"
                    .into(),
            ));
        } else {
            let justified = s
                .comments_near(t.line, 10)
                .any(|c| c.text.contains("SAFETY:") || c.text.contains("# Safety"));
            if !justified {
                findings.push(Finding::new(
                    rel_path,
                    t.line,
                    Rule::Unsafe,
                    "`unsafe` without a `SAFETY:` comment in the preceding lines".into(),
                ));
            }
        }
    }
}
