//! A minimal Rust lexer for lint purposes: strip comments and every string
//! flavor out of the token stream (so patterns inside literals never
//! trigger), keep the comments on the side (waivers and `SAFETY:` audits
//! read them), and mark the line ranges of `#[cfg(test)]`-gated items (test
//! code is exempt from the determinism and panic-path rules).
//!
//! This is not a full lexer — no literal values, no token trees — just
//! enough structure for the pattern rules in the rule engine: identifiers
//! are whole tokens, everything else is one punctuation character per token.

/// What a token is: an identifier/keyword, or a single punctuation char.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    Punct,
}

/// One token with its source line (1-based).
#[derive(Clone, Debug)]
pub struct Tok {
    pub text: String,
    pub line: u32,
    pub kind: TokKind,
}

impl Tok {
    pub fn is(&self, s: &str) -> bool {
        self.text == s
    }
}

/// One physical line of comment text (the `//`/`/* */` markers stripped,
/// block comments contribute one entry per line they span).
#[derive(Clone, Debug)]
pub struct Comment {
    pub line: u32,
    pub text: String,
}

/// The scan of one source file.
pub struct Scan {
    pub tokens: Vec<Tok>,
    pub comments: Vec<Comment>,
    /// Lines (1-based) inside `#[cfg(test)]` / `#[test]`-gated items.
    test_lines: Vec<(u32, u32)>,
}

impl Scan {
    /// Whether `line` falls inside a `#[cfg(test)]`-gated item.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_lines.iter().any(|&(a, b)| a <= line && line <= b)
    }

    /// Comments on lines `[line - back, line]`, most recent last.
    pub fn comments_near(&self, line: u32, back: u32) -> impl Iterator<Item = &Comment> {
        let lo = line.saturating_sub(back);
        self.comments
            .iter()
            .filter(move |c| c.line >= lo && c.line <= line)
    }
}

/// Lex `src` into a [`Scan`].
pub fn scan(src: &str) -> Scan {
    let chars: Vec<char> = src.chars().collect();
    let mut tokens: Vec<Tok> = Vec::new();
    let mut comments: Vec<Comment> = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    let is_ident_start = |c: char| c.is_alphabetic() || c == '_';
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
        } else if c.is_whitespace() {
            i += 1;
        } else if c == '/' && chars.get(i + 1) == Some(&'/') {
            // Line comment (incl. `///` and `//!` docs).
            let start = i + 2;
            let mut j = start;
            while j < chars.len() && chars[j] != '\n' {
                j += 1;
            }
            comments.push(Comment {
                line,
                text: chars[start..j].iter().collect(),
            });
            i = j;
        } else if c == '/' && chars.get(i + 1) == Some(&'*') {
            // Block comment, nesting honored, one Comment entry per line.
            let mut depth = 1usize;
            let mut j = i + 2;
            let mut buf = String::new();
            while j < chars.len() && depth > 0 {
                if chars[j] == '/' && chars.get(j + 1) == Some(&'*') {
                    depth += 1;
                    j += 2;
                } else if chars[j] == '*' && chars.get(j + 1) == Some(&'/') {
                    depth -= 1;
                    j += 2;
                } else if chars[j] == '\n' {
                    comments.push(Comment {
                        line,
                        text: std::mem::take(&mut buf),
                    });
                    line += 1;
                    j += 1;
                } else {
                    buf.push(chars[j]);
                    j += 1;
                }
            }
            if !buf.is_empty() {
                comments.push(Comment { line, text: buf });
            }
            i = j;
        } else if c == '"' {
            i = skip_string(&chars, i + 1, &mut line);
        } else if (c == 'r' || c == 'b')
            && matches!(chars.get(i + 1), Some(&'"') | Some(&'#') | Some(&'\''))
            || (c == 'b' && chars.get(i + 1) == Some(&'r'))
        {
            // Raw strings r"…"/r#"…"#, byte strings b"…", byte chars b'…',
            // raw byte strings br#"…"#, and raw identifiers r#ident.
            let mut j = i + 1;
            let mut raw = c == 'r';
            if chars.get(j) == Some(&'r') {
                raw = true;
                j += 1; // br…
            }
            let mut hashes = 0usize;
            while chars.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            match chars.get(j) {
                Some(&'"') if !raw => {
                    // b"…" — escapes apply like a normal string.
                    i = skip_string(&chars, j + 1, &mut line);
                }
                Some(&'"') => {
                    // Raw (byte) string: ends at `"` + `hashes` hashes.
                    j += 1;
                    'raw: while j < chars.len() {
                        if chars[j] == '\n' {
                            line += 1;
                            j += 1;
                        } else if chars[j] == '"' {
                            let mut k = 0usize;
                            while k < hashes && chars.get(j + 1 + k) == Some(&'#') {
                                k += 1;
                            }
                            if k == hashes {
                                j += 1 + hashes;
                                break 'raw;
                            }
                            j += 1;
                        } else {
                            j += 1;
                        }
                    }
                    i = j;
                }
                Some(&'\'') if c == 'b' && hashes == 0 => {
                    i = skip_char_literal(&chars, j + 1, &mut line);
                }
                _ if hashes > 0 => {
                    // Raw identifier r#ident: emit the ident itself.
                    let start = j;
                    while j < chars.len() && is_ident(chars[j]) {
                        j += 1;
                    }
                    tokens.push(Tok {
                        text: chars[start..j].iter().collect(),
                        line,
                        kind: TokKind::Ident,
                    });
                    i = j;
                }
                _ => {
                    // Plain identifier starting with r/b after all.
                    let start = i;
                    let mut k = i;
                    while k < chars.len() && is_ident(chars[k]) {
                        k += 1;
                    }
                    tokens.push(Tok {
                        text: chars[start..k].iter().collect(),
                        line,
                        kind: TokKind::Ident,
                    });
                    i = k;
                }
            }
        } else if c == '\'' {
            // Lifetime or char literal. A lifetime is `'ident` NOT followed
            // by a closing quote ('a' the char literal vs 'a the lifetime).
            let mut j = i + 1;
            if j < chars.len() && (is_ident_start(chars[j])) {
                let mut k = j;
                while k < chars.len() && is_ident(chars[k]) {
                    k += 1;
                }
                if chars.get(k) == Some(&'\'') && k == j + 1 {
                    // 'x' — a char literal.
                    i = k + 1;
                } else {
                    // Lifetime: skip, no token needed.
                    i = k;
                }
            } else {
                // Escaped or punctuation char literal: '\n', '\'', '('…
                j = skip_char_literal(&chars, j, &mut line);
                i = j;
            }
        } else if is_ident_start(c) {
            let start = i;
            let mut j = i;
            while j < chars.len() && is_ident(chars[j]) {
                j += 1;
            }
            tokens.push(Tok {
                text: chars[start..j].iter().collect(),
                line,
                kind: TokKind::Ident,
            });
            i = j;
        } else if c.is_ascii_digit() {
            // Numeric literal: value is irrelevant, but consume it as a
            // unit so `0x1f`, `1_000u64` and `1.5e3` don't shed bogus
            // ident tokens. Dots are consumed only when digit-adjacent so
            // ranges (`0..n`) and method calls (`1.to_string()`) survive.
            let mut j = i;
            while j < chars.len() && (is_ident(chars[j])) {
                j += 1;
            }
            if chars.get(j) == Some(&'.') && chars.get(j + 1).is_some_and(|d| d.is_ascii_digit()) {
                j += 1;
                while j < chars.len() && is_ident(chars[j]) {
                    j += 1;
                }
            }
            i = j;
        } else {
            tokens.push(Tok {
                text: c.to_string(),
                line,
                kind: TokKind::Punct,
            });
            i += 1;
        }
    }

    let test_lines = test_regions(&tokens);
    Scan {
        tokens,
        comments,
        test_lines,
    }
}

/// Consume a `"…"` body starting just after the opening quote; returns the
/// index after the closing quote.
fn skip_string(chars: &[char], mut i: usize, line: &mut u32) -> usize {
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Consume a `'…'` char-literal body starting just after the opening quote;
/// returns the index after the closing quote.
fn skip_char_literal(chars: &[char], mut i: usize, line: &mut u32) -> usize {
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '\'' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Line ranges of items gated behind `#[cfg(test)]` (or bare `#[test]`):
/// the attribute line through the closing brace (or semicolon) of the item
/// it decorates.
fn test_regions(tokens: &[Tok]) -> Vec<(u32, u32)> {
    let mut regions: Vec<(u32, u32)> = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !(tokens[i].is("#") && tokens.get(i + 1).is_some_and(|t| t.is("["))) {
            i += 1;
            continue;
        }
        let attr_start_line = tokens[i].line;
        let Some(close) = matching_bracket(tokens, i + 1) else {
            break;
        };
        let attr = &tokens[i + 1..close];
        if is_test_attr(attr) {
            // Skip any further attributes on the same item.
            let mut j = close + 1;
            while tokens.get(j).is_some_and(|t| t.is("#"))
                && tokens.get(j + 1).is_some_and(|t| t.is("["))
            {
                match matching_bracket(tokens, j + 1) {
                    Some(c) => j = c + 1,
                    None => break,
                }
            }
            // The item extends to its closing brace, or to `;` for
            // brace-less items (`mod tests;`, `use …;`).
            let mut depth = 0usize;
            let mut end_line = attr_start_line;
            while let Some(t) = tokens.get(j) {
                end_line = t.line;
                if t.is("{") {
                    depth += 1;
                } else if t.is("}") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if t.is(";") && depth == 0 {
                    break;
                }
                j += 1;
            }
            regions.push((attr_start_line, end_line));
            i = j + 1;
        } else {
            i = close + 1;
        }
    }
    regions
}

/// Index of the `]` matching the `[` at `open` (bracket depth honored).
fn matching_bracket(tokens: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.is("[") {
            depth += 1;
        } else if t.is("]") {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Whether an attribute body (tokens between `[` and `]`, exclusive of
/// both) gates its item to test builds: `test`, or `cfg(…)` whose argument
/// mentions `test` outside a `not(…)`. `cfg_attr` never gates existence.
fn is_test_attr(attr: &[Tok]) -> bool {
    let Some(first) = attr.iter().find(|t| t.kind == TokKind::Ident) else {
        return false;
    };
    if first.is("test") {
        return true;
    }
    if !first.is("cfg") {
        return false;
    }
    for (k, t) in attr.iter().enumerate() {
        if t.is("test") && t.kind == TokKind::Ident {
            let negated = k >= 2 && attr[k - 1].is("(") && attr[k - 2].is("not");
            if !negated {
                return true;
            }
        }
    }
    false
}
