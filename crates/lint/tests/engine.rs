//! Fixture tests for the lint engine: every rule family must fire on a
//! seeded violation and stay quiet on the look-alikes (patterns inside
//! strings, comments, and `#[cfg(test)]` blocks), and the waiver grammar
//! must suppress exactly what it names.

use harmonia_lint::{lint_source, Policy, Rule};

/// A policy that puts the fixture's synthetic paths under every rule.
fn policy() -> Policy {
    Policy::workspace()
}

/// Path inside a deterministic crate.
const DET: &str = "crates/sim/src/fixture.rs";
/// A designated hot-path file.
const HOT: &str = "crates/net/src/udp.rs";
/// Path inside a sans-IO crate.
const SANS_IO: &str = "crates/replication/src/fixture.rs";
/// Path with no unsafe sanction.
const NO_UNSAFE: &str = "crates/switch/src/fixture.rs";
/// Path inside the unsafe allowlist.
const UNSAFE_OK: &str = "vendor/mmsg/src/fixture.rs";

fn rules(findings: &[harmonia_lint::Finding]) -> Vec<Rule> {
    findings.iter().map(|f| f.rule).collect()
}

// ---- determinism ----------------------------------------------------------

#[test]
fn determinism_fires_on_instant_now() {
    let src = "fn f() -> u64 { Instant::now().elapsed().as_nanos() as u64 }\n";
    let f = lint_source(DET, src, &policy());
    assert_eq!(rules(&f), vec![Rule::Determinism], "{f:?}");
}

#[test]
fn determinism_fires_on_std_time_instant_import() {
    let src = "use std::time::Instant;\n";
    let f = lint_source(DET, src, &policy());
    assert_eq!(rules(&f), vec![Rule::Determinism], "{f:?}");
}

#[test]
fn determinism_allows_virtual_instant() {
    // The repo's own virtual clock: `Instant` as a type is fine, only
    // `Instant::now` / `std::time::Instant` reach the wall clock.
    let src = "use harmonia_types::Instant;\nfn f(t: Instant) -> Instant { t }\n";
    assert!(lint_source(DET, src, &policy()).is_empty());
}

#[test]
fn determinism_fires_on_wall_clock_and_rng_idents() {
    for frag in [
        "let t = SystemTime::now();",
        "let d = t.duration_since(UNIX_EPOCH);",
        "let r = rand::thread_rng();",
        "let r = SmallRng::from_entropy();",
        "let h = RandomState::new();",
        "let h = DefaultHasher::new();",
    ] {
        let src = format!("fn f() {{ {frag} }}\n");
        let f = lint_source(DET, &src, &policy());
        assert!(
            f.iter().any(|f| f.rule == Rule::Determinism),
            "expected a determinism finding for `{frag}`, got {f:?}"
        );
    }
}

#[test]
fn determinism_fires_on_hashmap_iteration() {
    let src = "use std::collections::HashMap;\n\
               struct S { m: HashMap<u32, u32> }\n\
               impl S { fn f(&self) -> u32 { self.m.values().sum() } }\n";
    let f = lint_source(DET, src, &policy());
    assert_eq!(rules(&f), vec![Rule::Determinism], "{f:?}");
}

#[test]
fn determinism_fires_on_for_loop_over_hashset() {
    let src = "use std::collections::HashSet;\n\
               fn f(s: HashSet<u32>) { for x in &s { drop(x); } }\n";
    let f = lint_source(DET, src, &policy());
    assert_eq!(rules(&f), vec![Rule::Determinism], "{f:?}");
}

#[test]
fn determinism_fires_on_let_bound_hashmap_ctor() {
    let src = "fn f() { let mut m = HashMap::new(); m.insert(1, 2); \
               for (k, v) in &m { drop((k, v)); } }\n";
    let f = lint_source(DET, src, &policy());
    assert_eq!(rules(&f), vec![Rule::Determinism], "{f:?}");
}

#[test]
fn determinism_allows_point_lookups() {
    // get/insert/remove/contains never leak hash order.
    let src = "use std::collections::HashMap;\n\
               fn f(m: &mut HashMap<u32, u32>) -> Option<u32> {\n\
                   m.insert(1, 2); m.remove(&3); m.get(&1).copied()\n\
               }\n";
    assert!(lint_source(DET, src, &policy()).is_empty());
}

#[test]
fn determinism_ignores_other_crates() {
    let src = "fn f() -> std::time::Instant { std::time::Instant::now() }\n";
    assert!(lint_source("crates/net/src/fixture.rs", src, &policy()).is_empty());
}

// ---- string / comment / cfg(test) blindness -------------------------------

#[test]
fn patterns_inside_strings_do_not_fire() {
    let src = r####"
fn f() -> &'static str {
    let a = "Instant::now() unwrap() panic!() std::net::UdpSocket";
    let b = r#"SystemTime thread_rng unsafe"#;
    let c = b"HashMap::new() .iter()";
    drop((a, b, c));
    "ok"
}
"####;
    assert!(lint_source(DET, src, &policy()).is_empty());
    assert!(lint_source(HOT, src, &policy()).is_empty());
    assert!(lint_source(SANS_IO, src, &policy()).is_empty());
    assert!(lint_source(NO_UNSAFE, src, &policy()).is_empty());
}

#[test]
fn patterns_inside_comments_do_not_fire() {
    let src = "// Instant::now() would be wrong here; so would unwrap().\n\
               /* unsafe { UdpSocket } thread_rng() */\n\
               fn f() {}\n";
    for path in [DET, HOT, SANS_IO, NO_UNSAFE] {
        assert!(lint_source(path, src, &policy()).is_empty(), "{path}");
    }
}

#[test]
fn cfg_test_blocks_are_exempt_from_determinism_and_panic() {
    let src = "fn f() {}\n\
               #[cfg(test)]\n\
               mod tests {\n\
                   #[test]\n\
                   fn t() {\n\
                       let t = Instant::now();\n\
                       let v: Vec<u32> = vec![1];\n\
                       assert_eq!(v[0], 1);\n\
                       v.first().unwrap();\n\
                       drop(t);\n\
                   }\n\
               }\n";
    assert!(lint_source(DET, src, &policy()).is_empty());
    assert!(lint_source(HOT, src, &policy()).is_empty());
}

#[test]
fn cfg_test_blocks_are_never_exempt_from_unsafe() {
    let src = "#[cfg(test)]\n\
               mod tests {\n\
                   fn t() { unsafe { std::hint::unreachable_unchecked() } }\n\
               }\n";
    let f = lint_source(NO_UNSAFE, src, &policy());
    assert_eq!(rules(&f), vec![Rule::Unsafe], "{f:?}");
}

#[test]
fn cfg_not_test_does_not_exempt() {
    let src = "#[cfg(not(test))]\n\
               fn f() { let t = Instant::now(); drop(t); }\n";
    let f = lint_source(DET, src, &policy());
    assert_eq!(rules(&f), vec![Rule::Determinism], "{f:?}");
}

// ---- panic_path -----------------------------------------------------------

#[test]
fn panic_path_fires_on_unwrap_expect_and_macros() {
    for frag in [
        "x.unwrap()",
        "x.expect(\"boom\")",
        "panic!(\"boom\")",
        "unreachable!()",
        "todo!()",
        "assert!(true)",
        "assert_eq!(1, 1)",
    ] {
        let src = format!("fn f(x: Option<u32>) {{ let _ = {frag}; }}\n");
        let f = lint_source(HOT, &src, &policy());
        assert_eq!(rules(&f), vec![Rule::PanicPath], "`{frag}` -> {f:?}");
    }
}

#[test]
fn panic_path_fires_on_indexing() {
    let src = "fn f(v: &[u8]) -> u8 { v[0] }\n";
    let f = lint_source(HOT, src, &policy());
    assert_eq!(rules(&f), vec![Rule::PanicPath], "{f:?}");
}

#[test]
fn panic_path_allows_checked_and_full_range_forms() {
    let src = "fn f(v: &[u8], b: &mut [u8; 4]) -> Option<u8> {\n\
                   let _all = &v[..];\n\
                   let _t: &mut [u8] = &mut b[..];\n\
                   let _attr = #[allow(dead_code)] ();\n\
                   let _m = vec![1u8];\n\
                   debug_assert!(v.len() < 100);\n\
                   v.get(0).copied()\n\
               }\n";
    let f = lint_source(HOT, src, &policy());
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn panic_path_only_applies_to_hot_files() {
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    assert!(lint_source("crates/net/src/addr.rs", src, &policy()).is_empty());
}

// ---- layering -------------------------------------------------------------

#[test]
fn layering_fires_on_std_net_and_socket_types() {
    for frag in [
        "use std::net::UdpSocket;",
        "use harmonia_net::AddrBook;",
        "fn g(a: SocketAddr) { drop(a); }",
        "fn g(s: TcpStream) { drop(s); }",
    ] {
        let src = format!("{frag}\n");
        let f = lint_source(SANS_IO, &src, &policy());
        assert!(
            f.iter().any(|f| f.rule == Rule::Layering),
            "expected layering finding for `{frag}`, got {f:?}"
        );
    }
}

#[test]
fn layering_ignores_io_free_code() {
    let src = "use harmonia_types::NodeId;\nfn f(n: NodeId) -> NodeId { n }\n";
    assert!(lint_source(SANS_IO, src, &policy()).is_empty());
}

// ---- unsafe ---------------------------------------------------------------

#[test]
fn unsafe_outside_allowlist_fires() {
    let src = "fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
    let f = lint_source(NO_UNSAFE, src, &policy());
    assert_eq!(rules(&f), vec![Rule::Unsafe], "{f:?}");
}

#[test]
fn unsafe_in_allowlist_needs_safety_comment() {
    let bare = "fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
    let f = lint_source(UNSAFE_OK, bare, &policy());
    assert_eq!(rules(&f), vec![Rule::Unsafe], "{f:?}");

    let justified = "fn f(p: *const u8) -> u8 {\n\
                     // SAFETY: caller guarantees `p` is valid for reads.\n\
                     unsafe { *p }\n\
                     }\n";
    assert!(lint_source(UNSAFE_OK, justified, &policy()).is_empty());
}

#[test]
fn unsafe_fn_doc_safety_section_counts() {
    let src = "/// Does a thing.\n\
               ///\n\
               /// # Safety\n\
               ///\n\
               /// `p` must be valid for reads.\n\
               pub unsafe fn f(p: *const u8) -> u8 {\n\
               // SAFETY: contract forwarded to the caller above.\n\
               unsafe { *p }\n\
               }\n";
    assert!(lint_source(UNSAFE_OK, src, &policy()).is_empty());
}

// ---- waivers --------------------------------------------------------------

#[test]
fn waiver_suppresses_named_rule_on_next_line() {
    let src = "fn f(x: Option<u32>) -> u32 {\n\
               // lint:allow(panic_path): fixture — checked by construction.\n\
               x.unwrap()\n\
               }\n";
    assert!(lint_source(HOT, src, &policy()).is_empty());
}

#[test]
fn waiver_with_wrapped_reason_covers_line_after_block() {
    let src = "fn f(x: Option<u32>) -> u32 {\n\
               // lint:allow(panic_path): a reason long enough that it\n\
               // wraps onto a second comment line before the code.\n\
               x.unwrap()\n\
               }\n";
    assert!(lint_source(HOT, src, &policy()).is_empty());
}

#[test]
fn waiver_does_not_suppress_other_rules_or_far_lines() {
    let src = "fn f(x: Option<u32>) -> u32 {\n\
               // lint:allow(determinism): wrong rule named.\n\
               x.unwrap()\n\
               }\n";
    let f = lint_source(HOT, src, &policy());
    assert_eq!(rules(&f), vec![Rule::PanicPath], "{f:?}");

    let far = "fn f(x: Option<u32>) -> u32 {\n\
               // lint:allow(panic_path): too far away to apply.\n\
               let y = x;\n\
               \n\
               y.unwrap()\n\
               }\n";
    let f = lint_source(HOT, far, &policy());
    assert_eq!(rules(&f), vec![Rule::PanicPath], "{f:?}");
}

#[test]
fn waiver_without_reason_is_its_own_finding_and_inert() {
    let src = "fn f(x: Option<u32>) -> u32 {\n\
               // lint:allow(panic_path)\n\
               x.unwrap()\n\
               }\n";
    let f = lint_source(HOT, src, &policy());
    let mut got = rules(&f);
    got.sort();
    assert_eq!(got, vec![Rule::PanicPath, Rule::Waiver], "{f:?}");
}

#[test]
fn waiver_naming_unknown_rule_is_flagged() {
    let src = "// lint:allow(speed): not a rule.\nfn f() {}\n";
    let f = lint_source(HOT, src, &policy());
    assert_eq!(rules(&f), vec![Rule::Waiver], "{f:?}");
}

#[test]
fn waiver_can_name_multiple_rules() {
    let src = "fn f(v: &[u8]) {\n\
               // lint:allow(panic_path, determinism): fixture covers both.\n\
               let t = Instant::now(); drop((t, v[0]));\n\
               }\n";
    // DET and HOT policies don't overlap on one real path, so check the
    // suppression one rule at a time through the same waiver text.
    assert!(lint_source(HOT, src, &policy()).is_empty());
    assert!(lint_source(DET, src, &policy()).is_empty());
}

#[test]
fn prose_mentioning_waiver_syntax_is_not_a_waiver() {
    // Doc prose *about* the marker (mid-comment, not at the start) must
    // neither waive anything nor be flagged as malformed.
    let src = "// Use `lint:allow(<rule>): <reason>` to waive a finding.\n\
               fn f() {}\n";
    assert!(lint_source(HOT, src, &policy()).is_empty());
}
