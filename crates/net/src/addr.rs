//! The deployment's name service: `NodeId → SocketAddr`, including the
//! spine-switch entry that shard-routes on the sender's side.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use harmonia_types::{NodeId, PacketBody};
use harmonia_workload::ShardMap;

/// The switch fleet's addressing: which node ids reach it, and which group
/// pipeline's socket serves which shard of the keyspace.
#[derive(Clone, Debug)]
struct Spine {
    /// Node ids resolving to the fleet (the stable client-facing address
    /// plus the current incarnation's own id).
    aliases: Vec<NodeId>,
    /// The deployment's object→group map.
    shards: ShardMap,
    /// Per-group pipeline ingress sockets, indexed by group id.
    groups: Vec<SocketAddr>,
}

/// One immutable snapshot of the deployment's addressing.
#[derive(Clone, Default, Debug)]
pub struct Directory {
    nodes: HashMap<NodeId, SocketAddr>,
    spine: Option<Spine>,
}

impl Directory {
    /// Resolve `to` for a packet carrying `body`, appending every concrete
    /// destination to `out` (cleared first). Zero destinations means the
    /// packet is undeliverable and should be dropped.
    pub fn resolve<T>(&self, to: NodeId, body: &PacketBody<T>, out: &mut Vec<SocketAddr>) {
        out.clear();
        if let Some(spine) = self.spine.as_ref().filter(|s| s.aliases.contains(&to)) {
            match body.object() {
                Some(obj) => {
                    let g = spine.shards.shard_of(obj) as usize;
                    if let Some(&addr) = spine.groups.get(g) {
                        out.push(addr);
                    }
                }
                // Membership changes carry a replica, not an object; only
                // the pipelines know where it lives, so broadcast.
                None if matches!(body, PacketBody::Control(_)) => {
                    out.extend_from_slice(&spine.groups);
                }
                // Plain L2/L3 forwarding has no object; any pipeline can
                // do it.
                None => out.extend(spine.groups.first().copied()),
            }
            return;
        }
        out.extend(self.nodes.get(&to).copied());
    }
}

/// Shared address map of one UDP deployment.
///
/// Replicas and clients register a plain unicast address. The switch is
/// special: [`install_spine`](AddrBook::install_spine) maps its addresses to
/// the whole pipeline fleet, and [`Directory::resolve`] performs the
/// stateless spine routing — object-bearing packets go to the owning
/// group's socket (one [`ShardMap`] lookup on the sending thread), control
/// packets broadcast to every pipeline (only the groups know where a
/// replica lives), and plain protocol forwards go to group 0, mirroring the
/// threaded driver's `SpinePlan` exactly.
///
/// Registration is rare (node bring-up, switch replacement) and sends are
/// hot, so the book follows the same copy-on-write discipline as the
/// channel driver's route table: mutations clone-and-republish an
/// immutable [`Directory`] snapshot and bump a generation counter; each
/// sender caches the snapshot and revalidates it with one atomic load per
/// send ([`generation`](AddrBook::generation) /
/// [`snapshot`](AddrBook::snapshot)) — **no lock on the packet path**.
#[derive(Default, Debug)]
pub struct AddrBook {
    table: Mutex<Arc<Directory>>,
    generation: AtomicU64,
}

impl AddrBook {
    /// An empty book.
    pub fn new() -> Self {
        AddrBook::default()
    }

    /// Apply a directory mutation (copy-on-write, then publish).
    fn install(&self, f: impl FnOnce(&mut Directory)) {
        let mut guard = self.table.lock().unwrap();
        let mut next = (**guard).clone();
        f(&mut next);
        *guard = Arc::new(next);
        // Publish while still holding the lock so a sender that observes
        // the new generation and then snapshots is guaranteed the new
        // directory.
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// The current publication counter — a cached [`snapshot`](Self::snapshot)
    /// is valid as long as this has not moved.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// The current directory snapshot.
    pub fn snapshot(&self) -> Arc<Directory> {
        Arc::clone(&self.table.lock().unwrap())
    }

    /// Number of unicast entries currently registered (leak checks: every
    /// dropped endpoint must have unregistered itself).
    pub fn unicast_len(&self) -> usize {
        self.table.lock().unwrap().nodes.len()
    }

    /// Register (or re-register) a unicast node.
    pub fn register(&self, node: NodeId, addr: SocketAddr) {
        self.install(|d| {
            d.nodes.insert(node, addr);
        });
    }

    /// Remove a unicast node. Sends to it are dropped from now on.
    pub fn unregister(&self, node: NodeId) {
        self.install(|d| {
            d.nodes.remove(&node);
        });
    }

    /// Install the switch fleet: packets addressed to any of `aliases`
    /// shard-route over `groups` (indexed by group id) using `shards`.
    /// Replaces any previous fleet — §5.3 replacement is one call.
    pub fn install_spine(&self, aliases: Vec<NodeId>, shards: ShardMap, groups: Vec<SocketAddr>) {
        assert_eq!(
            shards.groups(),
            groups.len(),
            "one pipeline socket per shard group"
        );
        self.install(|d| {
            d.spine = Some(Spine {
                aliases,
                shards,
                groups,
            });
        });
    }

    /// Tear the switch fleet out of the book (§5.3 step 1: the switch
    /// fails). Packets addressed to it vanish, clients time out and retry.
    pub fn clear_spine(&self) {
        self.install(|d| {
            d.spine = None;
        });
    }

    /// [`Directory::resolve`] against the current snapshot — convenience
    /// for one-shot callers; per-packet senders cache the snapshot instead.
    pub fn resolve<T>(&self, to: NodeId, body: &PacketBody<T>, out: &mut Vec<SocketAddr>) {
        self.snapshot().resolve(to, body, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_types::{ClientId, ClientRequest, ControlMsg, ObjectId, ReplicaId, RequestId};

    fn addr(port: u16) -> SocketAddr {
        format!("127.0.0.1:{port}").parse().unwrap()
    }

    fn resolve_for(book: &AddrBook, to: NodeId, body: &PacketBody<u64>) -> Vec<SocketAddr> {
        let mut out = Vec::new();
        book.resolve(to, body, &mut out);
        out
    }

    #[test]
    fn unicast_registration_resolves_and_unregisters() {
        let book = AddrBook::new();
        let node = NodeId::Replica(ReplicaId(3));
        let body: PacketBody<u64> = PacketBody::Protocol(7);
        assert!(resolve_for(&book, node, &body).is_empty());
        book.register(node, addr(9000));
        assert_eq!(resolve_for(&book, node, &body), vec![addr(9000)]);
        book.unregister(node);
        assert!(resolve_for(&book, node, &body).is_empty());
    }

    #[test]
    fn spine_routes_objects_broadcasts_control() {
        let book = AddrBook::new();
        let stable = NodeId::Switch(harmonia_types::SwitchId(1));
        let shards = ShardMap::new(4);
        let groups = vec![addr(9100), addr(9101), addr(9102), addr(9103)];
        book.install_spine(vec![stable], shards, groups.clone());

        // An object-bearing packet goes to exactly its group's socket.
        let req = ClientRequest::read(ClientId(1), RequestId(1), &b"some-key"[..]);
        let g = shards.shard_of(ObjectId::from_key(b"some-key")) as usize;
        let body: PacketBody<u64> = PacketBody::Request(req);
        assert_eq!(resolve_for(&book, stable, &body), vec![groups[g]]);

        // Control broadcasts to every pipeline.
        let ctl: PacketBody<u64> = PacketBody::Control(ControlMsg::AddReplica(ReplicaId(9)));
        assert_eq!(resolve_for(&book, stable, &ctl), groups);

        // Protocol forwards take group 0.
        let proto: PacketBody<u64> = PacketBody::Protocol(1);
        assert_eq!(resolve_for(&book, stable, &proto), vec![groups[0]]);

        // §5.3 step 1: clearing the spine makes the switch unreachable.
        book.clear_spine();
        assert!(resolve_for(&book, stable, &ctl).is_empty());
    }

    #[test]
    fn generation_moves_only_on_mutation() {
        let book = AddrBook::new();
        let g0 = book.generation();
        let snap = book.snapshot();
        assert_eq!(book.generation(), g0, "snapshots do not publish");
        book.register(NodeId::Replica(ReplicaId(0)), addr(9200));
        assert_ne!(book.generation(), g0);
        // The old snapshot still resolves the old world.
        let body: PacketBody<u64> = PacketBody::Protocol(1);
        let mut out = Vec::new();
        snap.resolve(NodeId::Replica(ReplicaId(0)), &body, &mut out);
        assert!(out.is_empty(), "stale snapshot must not see the new node");
    }
}
