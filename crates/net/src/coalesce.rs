//! GSO-style frame coalescing for the UDP send path.
//!
//! The batched send verbs used to pay two per-frame costs the kernel never
//! required: every frame rode its own datagram (one `sendmmsg` slot, one
//! in-kernel delivery, per frame), and every frame was encoded into a fresh
//! allocation then cloned per destination. The [`Coalescer`] removes both.
//! It keeps one *open datagram* per destination, encodes each outgoing
//! packet **directly** into that pooled buffer with
//! [`encode_frame_into`] (zero
//! copies, zero intermediate allocations), and seals a datagram only when it
//! fills past its budget or the flush ends. The receive side unpacks with
//! [`frames`](harmonia_types::wire::frames) — GRO.
//!
//! Buffers come from a send-side [`BufferPool`]
//! ([`checkout_empty`](BufferPool::checkout_empty)), and sealing goes
//! through [`BufferPool::commit`], so the pool's alias-aware reclamation
//! carries over verbatim: **a sealed datagram's buffer is never reused while
//! any [`Bytes`] handle to it is in flight** — the `Arc` refcount is the
//! proof, exactly as on the receive pool. Once the transport drops a sent
//! payload, the next checkout recycles it; steady-state sending allocates
//! nothing.
//!
//! Ordering: at most one datagram per destination is ever open, and sealed
//! datagrams are flushed in seal order, so frames to the *same* destination
//! always arrive in send order on a loss-free link. Cross-destination order
//! is unspecified — UDP never promised it.

use std::net::SocketAddr;

use bytes::{Bytes, BytesMut};
use harmonia_types::wire::{encode_frame_into, Wire, MAX_FRAME_BYTES};
use harmonia_types::TypeError;

use crate::pool::{BufferPool, PoolStats};

/// One packed datagram ready for the wire: destination, payload (one or
/// more back-to-back length-prefixed frames), and the frame count — the
/// unit the transport's per-frame accounting credits or charges when the
/// kernel accepts or refuses the whole datagram.
#[derive(Debug)]
pub struct SealedDatagram {
    /// Where the datagram goes.
    pub dst: SocketAddr,
    /// The coalesced frames, aliasing a pooled buffer until dropped.
    pub payload: Bytes,
    /// How many frames `payload` carries (≥ 1).
    pub frames: u32,
}

/// Per-destination datagram packer over a send-side [`BufferPool`].
///
/// With coalescing off it degrades to the faithful per-frame baseline —
/// every [`push`](Coalescer::push) seals immediately, one frame per
/// datagram — while still encoding zero-copy into pooled buffers, so the
/// `udp_coalesce(false)` knob isolates the packing win from the
/// allocation win.
pub struct Coalescer {
    pool: BufferPool,
    /// Open datagrams, at most one per destination. Linear scan: a flush
    /// touches a handful of destinations (replica group + client), far
    /// below where a map would win.
    open: Vec<(SocketAddr, BytesMut, u32)>,
    /// Datagram payload budget: an open datagram seals before a frame
    /// would push it past this many bytes.
    capacity: usize,
    /// Pack many frames per datagram (GSO) vs. seal after every frame.
    coalesce: bool,
}

impl Coalescer {
    /// A coalescer packing datagrams up to `capacity` bytes (clamped to
    /// [`MAX_FRAME_BYTES`] — larger could never cross the wire), recycling
    /// through a send pool that tracks `max_inflight` sealed payloads.
    pub fn new(capacity: usize, max_inflight: usize) -> Self {
        let capacity = capacity.min(MAX_FRAME_BYTES);
        Coalescer {
            pool: BufferPool::for_send(capacity, max_inflight),
            open: Vec::new(),
            capacity,
            coalesce: true,
        }
    }

    /// Toggle packing. Off = one frame per datagram (the PR 7 baseline
    /// semantics), still zero-copy through the pool.
    pub fn set_coalesce(&mut self, on: bool) {
        self.coalesce = on;
    }

    /// Whether packing is on.
    pub fn coalesce(&self) -> bool {
        self.coalesce
    }

    /// Datagram payload budget.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Send-pool checkout counters (steady state: all hits, no allocation).
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Encode one packet as the next frame of `dst`'s open datagram,
    /// sealing into `sealed` whenever a datagram fills (or immediately,
    /// with coalescing off). An oversized packet is refused with the
    /// open datagram intact — `encode_frame_into` rolls the buffer back —
    /// so one bad packet never discards its neighbors' frames.
    pub fn push<T: Wire>(
        &mut self,
        dst: SocketAddr,
        value: &T,
        sealed: &mut Vec<SealedDatagram>,
    ) -> Result<(), TypeError> {
        let (mut buf, mut frames) = match self.open.iter().position(|(d, ..)| *d == dst) {
            Some(i) => {
                let (_, buf, frames) = self.open.swap_remove(i);
                (buf, frames)
            }
            None => (self.pool.checkout_empty(), 0),
        };
        let start = buf.len();
        if let Err(e) = encode_frame_into(value, &mut buf) {
            self.open.push((dst, buf, frames));
            return Err(e);
        }
        if start > 0 && buf.len() > self.capacity {
            // The frame overflows the budget: undo it, seal what the
            // datagram already holds, re-encode into a fresh buffer. The
            // retry starts at offset 0, so it can only exceed `capacity`
            // if a single frame does — which then rides alone, oversized
            // datagram semantics being better than an unsendable packet.
            buf.truncate(start);
            sealed.push(SealedDatagram {
                dst,
                payload: self.pool.commit(buf),
                frames,
            });
            let mut fresh = self.pool.checkout_empty();
            if let Err(e) = encode_frame_into(value, &mut fresh) {
                // Unreachable (the same encode just succeeded), but stay
                // panic-free: return the buffer and report.
                self.pool.release(fresh);
                return Err(e);
            }
            buf = fresh;
            frames = 0;
        }
        frames += 1;
        if self.coalesce && buf.len() < self.capacity {
            self.open.push((dst, buf, frames));
        } else {
            sealed.push(SealedDatagram {
                dst,
                payload: self.pool.commit(buf),
                frames,
            });
        }
        Ok(())
    }

    /// Seal every open datagram — the end of a flush. After this returns,
    /// no frame is left buffered.
    pub fn finish(&mut self, sealed: &mut Vec<SealedDatagram>) {
        while let Some((dst, buf, frames)) = self.open.pop() {
            if frames == 0 {
                self.pool.release(buf);
            } else {
                sealed.push(SealedDatagram {
                    dst,
                    payload: self.pool.commit(buf),
                    frames,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_types::wire::frames;

    fn addr(port: u16) -> SocketAddr {
        SocketAddr::from(([127, 0, 0, 1], port))
    }

    fn unpack(d: &SealedDatagram) -> Vec<u64> {
        frames::<u64>(&d.payload).map(|r| r.unwrap()).collect()
    }

    #[test]
    fn packs_frames_per_destination() {
        let mut c = Coalescer::new(4096, 8);
        let mut sealed = Vec::new();
        for v in 0..10u64 {
            c.push(addr(1000 + (v % 2) as u16), &v, &mut sealed)
                .unwrap();
        }
        assert!(sealed.is_empty(), "nothing seals before the flush ends");
        c.finish(&mut sealed);
        assert_eq!(sealed.len(), 2, "one datagram per destination");
        sealed.sort_by_key(|d| d.dst.port());
        assert_eq!(unpack(&sealed[0]), vec![0, 2, 4, 6, 8]);
        assert_eq!(unpack(&sealed[1]), vec![1, 3, 5, 7, 9]);
        assert_eq!(sealed[0].frames, 5);
    }

    #[test]
    fn seals_when_budget_fills_and_preserves_order() {
        // u64 frames are 12 bytes; a 30-byte budget fits two per datagram.
        let mut c = Coalescer::new(30, 8);
        let mut sealed = Vec::new();
        for v in 0..5u64 {
            c.push(addr(9), &v, &mut sealed).unwrap();
        }
        c.finish(&mut sealed);
        let per_datagram: Vec<Vec<u64>> = sealed.iter().map(unpack).collect();
        assert_eq!(per_datagram, vec![vec![0, 1], vec![2, 3], vec![4]]);
        assert_eq!(
            sealed.iter().map(|d| d.frames).collect::<Vec<_>>(),
            vec![2, 2, 1]
        );
    }

    #[test]
    fn coalesce_off_is_one_frame_per_datagram() {
        let mut c = Coalescer::new(4096, 8);
        c.set_coalesce(false);
        let mut sealed = Vec::new();
        for v in 0..4u64 {
            c.push(addr(9), &v, &mut sealed).unwrap();
        }
        assert_eq!(sealed.len(), 4, "every push seals immediately");
        assert!(sealed.iter().all(|d| d.frames == 1));
        c.finish(&mut sealed);
        assert_eq!(sealed.len(), 4);
    }

    #[test]
    fn steady_state_reuses_pool_buffers() {
        let mut c = Coalescer::new(256, 8);
        let mut sealed = Vec::new();
        for round in 0..100u64 {
            for v in 0..8 {
                c.push(addr(9), &(round * 8 + v), &mut sealed).unwrap();
            }
            c.finish(&mut sealed);
            sealed.clear(); // transport sent + dropped the payloads
        }
        let s = c.pool_stats();
        assert!(
            s.hit_rate() > 0.95,
            "steady-state send must recycle, not allocate: {s:?}"
        );
        assert!(s.misses <= 2, "{s:?}");
    }

    #[test]
    fn held_payload_is_never_aliased_by_later_datagrams() {
        let mut c = Coalescer::new(256, 8);
        let mut sealed = Vec::new();
        c.push(addr(9), &1u64, &mut sealed).unwrap();
        c.finish(&mut sealed);
        let held = sealed.pop().unwrap().payload;
        let held_range = held.as_ptr() as usize..held.as_ptr() as usize + held.len().max(1);
        // While `held` is alive, no later sealed datagram may overlap it.
        for v in 2..50u64 {
            c.push(addr(9), &v, &mut sealed).unwrap();
            c.finish(&mut sealed);
            let d = sealed.pop().unwrap();
            let p = d.payload.as_ptr() as usize;
            assert!(
                !held_range.contains(&p),
                "in-flight payload buffer was reused"
            );
        }
        assert_eq!(unpack_one(&held), 1);
    }

    fn unpack_one(payload: &Bytes) -> u64 {
        let mut it = frames::<u64>(payload);
        let v = it.next().unwrap().unwrap();
        assert!(it.next().is_none());
        v
    }
}
