//! A deterministic network adversary at the socket boundary.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use harmonia_types::{NodeId, Packet};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::transport::{RecvError, Transport};

/// Send-path fault probabilities. All zero (the default) is a no-op.
#[derive(Clone, Copy, Default, Debug, PartialEq)]
pub struct FaultConfig {
    /// Probability a packet is silently dropped.
    pub drop_prob: f64,
    /// Probability a packet is sent twice.
    pub duplicate_prob: f64,
    /// Probability a packet is held back and released *after* the next
    /// packet this endpoint sends (or on the next receive, so a held packet
    /// is never stranded by a sender going quiet).
    pub reorder_prob: f64,
}

impl FaultConfig {
    /// True if no fault can ever fire.
    pub fn is_noop(&self) -> bool {
        self.drop_prob <= 0.0 && self.duplicate_prob <= 0.0 && self.reorder_prob <= 0.0
    }
}

/// Shared tallies of injected faults, so a harness can assert the adversary
/// actually exercised the system (a fault test whose faults never fire is
/// silently just the happy path).
#[derive(Default, Debug)]
pub struct FaultCounters {
    /// Packets dropped on send.
    pub dropped: AtomicU64,
    /// Packets sent twice.
    pub duplicated: AtomicU64,
    /// Packets delivered out of send order.
    pub reordered: AtomicU64,
    /// Packets still held for reordering when their endpoint was torn down
    /// — discarded instead of flushed, so a dead node's adversary cannot
    /// send toward addresses that may already be gone.
    pub discarded: AtomicU64,
}

impl FaultCounters {
    /// `(dropped, duplicated, reordered)` so far.
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.dropped.load(Ordering::Relaxed),
            self.duplicated.load(Ordering::Relaxed),
            self.reordered.load(Ordering::Relaxed),
        )
    }

    /// Held packets discarded at endpoint teardown so far.
    pub fn discarded(&self) -> u64 {
        self.discarded.load(Ordering::Relaxed)
    }
}

/// Wraps any [`Transport`] with seeded loss, duplication, and reordering on
/// the send path — the adversary lives at the socket boundary, so the wrapped
/// node's state machines and retry loops face exactly what a real lossy
/// datagram network would hand them.
///
/// Decisions come from a [`SmallRng`] seeded at construction: the same seed
/// over the same send sequence makes the same calls, so a failing schedule
/// can be replayed (modulo the kernel's own scheduling of the sockets
/// underneath).
///
/// **Fault envelope under frame coalescing.** Real networks lose whole
/// *datagrams*, and so does this adversary: every fault decision hits one
/// unit of delivery. The wrapper does not override the batch verbs, so its
/// `send_batch` loops the scalar path — and the UDP endpoint's scalar
/// `send` flushes one frame per datagram, never packing across packets.
/// Coalescing therefore cannot engage underneath the adversary: with the
/// same seed, the fault schedule (which packets drop, duplicate, reorder)
/// is byte-for-byte identical whether the deployment runs coalesced or
/// per-frame, and "per fault decision" always means "per datagram" *and*
/// "per frame" at once. `tests/batch_dataplane.rs` pins this equivalence.
pub struct FaultyTransport<T, I> {
    inner: I,
    cfg: FaultConfig,
    rng: SmallRng,
    held: Option<(NodeId, Packet<T>)>,
    counters: Arc<FaultCounters>,
    exempt: Option<Box<dyn Fn(NodeId) -> bool + Send>>,
}

impl<T, I> FaultyTransport<T, I> {
    /// Wrap `inner` with `cfg`, drawing decisions from `seed` and tallying
    /// into `counters`.
    pub fn new(inner: I, cfg: FaultConfig, seed: u64, counters: Arc<FaultCounters>) -> Self {
        FaultyTransport {
            inner,
            cfg,
            rng: SmallRng::seed_from_u64(seed),
            held: None,
            counters,
            exempt: None,
        }
    }

    /// Spare every send whose destination satisfies `pred` (delivered
    /// directly, no fault ever fires, no RNG draw consumed). This is how a
    /// deployment gives one endpoint an adversarial *and* a reliable side —
    /// e.g. a replica whose replies to clients and the switch face the
    /// network but whose replica↔replica channels keep the reliable-FIFO
    /// envelope in-order write propagation depends on (§5.2).
    pub fn exempting(mut self, pred: impl Fn(NodeId) -> bool + Send + 'static) -> Self {
        self.exempt = Some(Box::new(pred));
        self
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &I {
        &self.inner
    }
}

impl<T, I> FaultyTransport<T, I>
where
    I: Transport<T>,
{
    fn flush_held(&mut self) {
        if let Some((to, pkt)) = self.held.take() {
            self.inner.send(to, pkt);
        }
    }
}

impl<T, I> Drop for FaultyTransport<T, I> {
    fn drop(&mut self) {
        // A packet still held for reordering at teardown is discarded, not
        // flushed: the node is dead, and its destination's address may have
        // already left the book (§5.3 teardown order is not observable to
        // the adversary). Counted so fault harnesses can account for it.
        if self.held.take().is_some() {
            self.counters.discarded.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl<T, I> Transport<T> for FaultyTransport<T, I>
where
    T: Clone + Send,
    I: Transport<T>,
{
    fn send(&mut self, to: NodeId, pkt: Packet<T>) {
        if self.exempt.as_ref().is_some_and(|pred| pred(to)) {
            self.inner.send(to, pkt);
            return;
        }
        if self.cfg.drop_prob > 0.0 && self.rng.gen_bool(self.cfg.drop_prob) {
            self.counters.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if self.cfg.reorder_prob > 0.0
            && self.held.is_none()
            && self.rng.gen_bool(self.cfg.reorder_prob)
        {
            // Hold this packet back; it goes out after the *next* send (or
            // on the next receive), i.e. out of order.
            self.counters.reordered.fetch_add(1, Ordering::Relaxed);
            self.held = Some((to, pkt));
            return;
        }
        let duplicate = self.cfg.duplicate_prob > 0.0 && self.rng.gen_bool(self.cfg.duplicate_prob);
        if duplicate {
            self.counters.duplicated.fetch_add(1, Ordering::Relaxed);
            self.inner.send(to, pkt.clone());
        }
        self.inner.send(to, pkt);
        self.flush_held();
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Packet<T>, RecvError> {
        // Liveness: a held packet must not be stranded while this endpoint
        // waits for the reply it held back.
        self.flush_held();
        self.inner.recv_timeout(timeout)
    }

    fn wire_stats(&self) -> Option<crate::udp::TransportStats> {
        self.inner.wire_stats()
    }

    fn wire_pool_stats(&self) -> Option<(crate::pool::PoolStats, crate::pool::PoolStats)> {
        self.inner.wire_pool_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_types::{ClientId, PacketBody};

    /// Records sends instead of delivering them.
    #[derive(Default)]
    struct MockTransport {
        log: Vec<u64>,
    }

    impl Transport<u64> for MockTransport {
        fn send(&mut self, _to: NodeId, pkt: Packet<u64>) {
            if let PacketBody::Protocol(n) = pkt.body {
                self.log.push(n);
            }
        }
        fn recv_timeout(&mut self, _t: Duration) -> Result<Packet<u64>, RecvError> {
            Err(RecvError::TimedOut)
        }
    }

    fn pkt(n: u64) -> Packet<u64> {
        Packet::new(
            NodeId::Client(ClientId(1)),
            NodeId::Client(ClientId(2)),
            PacketBody::Protocol(n),
        )
    }

    fn run(cfg: FaultConfig, seed: u64, n: u64) -> (Vec<u64>, (u64, u64, u64)) {
        let counters = Arc::new(FaultCounters::default());
        let mut t =
            FaultyTransport::new(MockTransport::default(), cfg, seed, Arc::clone(&counters));
        for i in 0..n {
            t.send(NodeId::Client(ClientId(2)), pkt(i));
        }
        let _ = t.recv_timeout(Duration::from_millis(1)); // flush a trailing hold
        (t.inner.log.clone(), counters.snapshot())
    }

    #[test]
    fn noop_config_is_transparent() {
        let (log, counts) = run(FaultConfig::default(), 1, 50);
        assert_eq!(log, (0..50).collect::<Vec<u64>>());
        assert_eq!(counts, (0, 0, 0));
    }

    #[test]
    fn faults_fire_and_are_counted() {
        let cfg = FaultConfig {
            drop_prob: 0.2,
            duplicate_prob: 0.2,
            reorder_prob: 0.2,
        };
        let (log, (dropped, duplicated, reordered)) = run(cfg, 7, 500);
        assert!(dropped > 0 && duplicated > 0 && reordered > 0);
        // Conservation: every non-dropped packet is delivered at least once.
        assert_eq!(log.len() as u64, 500 - dropped + duplicated);
        // Reordering really happened: the log is not sorted.
        assert!(log.windows(2).any(|w| w[0] > w[1]), "no inversion in log");
    }

    #[test]
    fn exempted_destinations_never_fault() {
        let cfg = FaultConfig {
            drop_prob: 0.9,
            duplicate_prob: 0.9,
            reorder_prob: 0.9,
        };
        let counters = Arc::new(FaultCounters::default());
        let mut t = FaultyTransport::new(MockTransport::default(), cfg, 5, Arc::clone(&counters))
            .exempting(|to| matches!(to, NodeId::Client(ClientId(2))));
        for i in 0..100 {
            t.send(NodeId::Client(ClientId(2)), pkt(i));
        }
        assert_eq!(t.inner.log, (0..100).collect::<Vec<u64>>());
        assert_eq!(counters.snapshot(), (0, 0, 0));
        // A non-exempt destination on the same transport still faults.
        for i in 0..100 {
            t.send(NodeId::Client(ClientId(3)), pkt(i));
        }
        let (dropped, ..) = counters.snapshot();
        assert!(dropped > 0);
    }

    #[test]
    fn held_packet_is_discarded_not_flushed_at_teardown() {
        let cfg = FaultConfig {
            reorder_prob: 1.0,
            ..FaultConfig::default()
        };
        let counters = Arc::new(FaultCounters::default());
        let log = {
            let mut t =
                FaultyTransport::new(MockTransport::default(), cfg, 3, Arc::clone(&counters));
            // With reorder_prob = 1 the very first send is held back.
            t.send(NodeId::Client(ClientId(2)), pkt(1));
            t.inner.log.clone()
            // The endpoint is torn down here with the packet still held.
        };
        assert!(log.is_empty(), "held packet must not reach the wire");
        assert_eq!(counters.discarded(), 1, "discard must be counted");
        assert_eq!(counters.snapshot().2, 1, "the hold itself was a reorder");
    }

    #[test]
    fn same_seed_same_schedule() {
        let cfg = FaultConfig {
            drop_prob: 0.1,
            duplicate_prob: 0.1,
            reorder_prob: 0.1,
        };
        assert_eq!(run(cfg, 42, 300), run(cfg, 42, 300));
        assert_ne!(run(cfg, 42, 300).0, run(cfg, 43, 300).0);
    }
}
