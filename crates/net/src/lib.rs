//! Real datagram transport for Harmonia deployments.
//!
//! The simulator passes packets by value and the threaded live driver moves
//! them over in-process channels; neither ever touches a socket. This crate
//! is the third substrate: every packet is a length-prefixed wire frame
//! ([`harmonia_types::wire`]), and each UDP datagram on the loopback socket
//! carries **one or more frames back-to-back** (GSO/GRO-style coalescing
//! via the [`Coalescer`], per-frame with the knob off) — lost, duplicated,
//! and reordered per *datagram* exactly as a kernel (or the
//! [`FaultyTransport`] adversary) pleases, which is the OUM envelope the
//! paper's deployment actually runs in (§4, §6).
//!
//! Three pieces, layered:
//!
//! * [`AddrBook`] — the deployment's name service: `NodeId → SocketAddr`
//!   for replicas and clients, plus the *spine* entry that makes the whole
//!   switch fleet reachable under its stable address. Sending to a switch
//!   address shard-routes the packet **on the sender's side** (the
//!   deployment's [`ShardMap`](harmonia_workload::ShardMap) keyed by the
//!   packet's object) straight to the owning group pipeline's socket — the
//!   same stateless-spine design the threaded driver uses, expressed as
//!   address resolution.
//! * [`Transport`] / [`UdpTransport`] — one endpoint: a bound
//!   `std::net::UdpSocket` that encodes outbound packets to frames and
//!   decodes inbound datagrams, dropping (and counting) anything that does
//!   not parse. Untrusted bytes can error but never panic or over-allocate
//!   (`MAX_FRAME_BYTES` bounds every declared length). The trait's
//!   `send_batch`/`recv_batch` verbs (scalar loops by default, so wrappers
//!   are untouched) let the UDP endpoint move whole runs of datagrams per
//!   kernel crossing via the vendored `sendmmsg`/`recvmmsg` wrapper, and
//!   receive decodes zero-copy out of a [`BufferPool`] — payload bytes
//!   alias the datagram buffer, which is recycled only after the last
//!   payload reference drops.
//! * [`FaultyTransport`] — a deterministic, seeded adversary wrapped around
//!   any transport at the socket boundary: configurable loss, duplication,
//!   and reordering on the send path, with shared [`FaultCounters`] so
//!   harnesses can assert the faults actually fired.
//!
//! Everything here is `std`-only (no async runtime, no extra dependencies):
//! the point is that the existing state machines and codec survive a *real*
//! asynchronous network, not to build one more I/O framework.

#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod addr;
pub mod coalesce;
pub mod fault;
// The pool's `set_len` on freshly reserved capacity is the one sanctioned
// `unsafe` in this crate; the crate-level `deny(unsafe_code)` makes any new
// site opt in as loudly as this one.
#[allow(unsafe_code)]
pub mod pool;
pub mod transport;
pub mod udp;

pub use addr::AddrBook;
pub use coalesce::{Coalescer, SealedDatagram};
pub use fault::{FaultConfig, FaultCounters, FaultyTransport};
pub use pool::{BufferPool, PoolStats};
pub use transport::{RecvError, Transport};
pub use udp::{TransportStats, UdpTransport};
