//! Per-endpoint receive buffer pool for the zero-copy datagram path.
//!
//! The UDP endpoint receives each datagram into a pooled [`BytesMut`],
//! freezes it, and decodes with
//! [`decode_frame_shared`](harmonia_types::wire::decode_frame_shared), so
//! any `Bytes` payload fields in the decoded packet *alias* the datagram
//! buffer instead of copying out of it. The pool keeps a full-range handle
//! to every buffer it has handed out this way and reclaims a buffer only
//! once [`Bytes::try_into_mut`] proves the handle is the last reference —
//! i.e. every payload slice cut from that datagram has been dropped.
//!
//! That gives the safety property the proptests pin: **a buffer is never
//! recycled while any `Bytes` still references it** (the `Arc` refcount is
//! the proof, not a heuristic), and the steady-state property the bench
//! story needs: once the pool is warm, receiving allocates nothing — every
//! checkout is a recycled buffer, visible as `hits` in [`PoolStats`].

use std::collections::VecDeque;

use bytes::{Bytes, BytesMut};

/// Checkout counters (telemetry for tests and the bench profile).
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct PoolStats {
    /// Checkouts served by a recycled buffer (steady state).
    pub hits: u64,
    /// Checkouts that had to allocate a fresh buffer (warm-up, or every
    /// pooled buffer still pinned by live payload slices).
    pub misses: u64,
}

impl PoolStats {
    /// Field-wise `self - earlier`, saturating at zero (snapshot deltas for
    /// incremental observability sync).
    pub fn since(&self, earlier: &PoolStats) -> PoolStats {
        PoolStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
        }
    }

    /// Fraction of checkouts served without allocating, in `0.0..=1.0`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Fixed-size-buffer pool with alias-aware reclamation.
pub struct BufferPool {
    /// Capacity (and checkout length) of every buffer.
    buf_len: usize,
    /// Buffers proven unaliased, ready to hand out.
    free: Vec<BytesMut>,
    /// Full-range handles to buffers whose payload may still be referenced
    /// by decoded packets. Oldest first.
    inflight: VecDeque<Bytes>,
    /// Cap on `inflight`: beyond this the oldest handle is forgotten — its
    /// buffer is freed by the last payload drop instead of recycled, so a
    /// slow consumer degrades to plain allocation, never unbounded growth.
    max_inflight: usize,
    /// Whether every buffer this pool allocates is zero-filled to `buf_len`
    /// up front. Receive pools need this: [`checkout`](Self::checkout) hands
    /// out full-length buffers by restoring `len` over known-initialized
    /// storage. Send pools ([`for_send`](Self::for_send)) skip the fill —
    /// their buffers are append-only via
    /// [`checkout_empty`](Self::checkout_empty) — and `checkout` on such a
    /// pool falls back to an explicit (initializing) `resize`.
    zeroed: bool,
    stats: PoolStats,
}

impl BufferPool {
    /// A pool of `buf_len`-byte zero-filled buffers tracking at most
    /// `max_inflight` outstanding datagrams (the receive-side flavor).
    pub fn new(buf_len: usize, max_inflight: usize) -> Self {
        BufferPool {
            buf_len,
            free: Vec::new(),
            inflight: VecDeque::with_capacity(max_inflight),
            max_inflight,
            zeroed: true,
            stats: PoolStats::default(),
        }
    }

    /// A send-side pool: buffers are handed out *empty* (length 0, capacity
    /// `buf_len`) for append-style encoding, so allocation skips the
    /// zero-fill a receive buffer needs.
    pub fn for_send(buf_len: usize, max_inflight: usize) -> Self {
        BufferPool {
            zeroed: false,
            ..BufferPool::new(buf_len, max_inflight)
        }
    }

    /// Checkout counters so far.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Buffers currently awaiting their last payload reference to drop.
    pub fn inflight_len(&self) -> usize {
        self.inflight.len()
    }

    /// Hand out a writable buffer of exactly `buf_len` bytes. Recycles a
    /// reclaimable buffer when one exists, allocates otherwise.
    pub fn checkout(&mut self) -> BytesMut {
        if self.free.is_empty() {
            self.reclaim();
        }
        match self.free.pop() {
            Some(mut buf) => {
                self.stats.hits += 1;
                if self.zeroed && buf.capacity() >= self.buf_len {
                    // SAFETY: every buffer entering a `zeroed` pool was
                    // zero-filled to `buf_len` at allocation (the `for_send`
                    // flavor, whose buffers skip the fill, takes the
                    // `resize` branch instead), and the Arc round-trip
                    // through commit/reclaim moves the Vec without shrinking
                    // it — the bytes stay initialized. Restoring the length
                    // is therefore pure bookkeeping; re-zeroing 64KB per
                    // checkout would dwarf the syscall work the surrounding
                    // batch verbs exist to amortize.
                    unsafe { buf.set_len(self.buf_len) };
                } else {
                    buf.resize(self.buf_len, 0);
                }
                buf
            }
            None => {
                self.stats.misses += 1;
                let mut buf = BytesMut::with_capacity(self.buf_len);
                buf.resize(self.buf_len, 0);
                buf
            }
        }
    }

    /// Hand out an *empty* writable buffer with at least `buf_len` bytes of
    /// capacity — the send-side checkout: the caller appends encoded frames
    /// and [`commit`](Self::commit)s the result, so no byte is ever written
    /// twice and allocation needs no zero-fill. Recycles when possible,
    /// exactly like [`checkout`](Self::checkout).
    pub fn checkout_empty(&mut self) -> BytesMut {
        if self.free.is_empty() {
            self.reclaim();
        }
        match self.free.pop() {
            Some(mut buf) => {
                self.stats.hits += 1;
                buf.clear();
                if buf.capacity() < self.buf_len {
                    buf.reserve(self.buf_len);
                }
                buf
            }
            None => {
                self.stats.misses += 1;
                BytesMut::with_capacity(self.buf_len)
            }
        }
    }

    /// Freeze a filled buffer for decoding, remembering a handle so the
    /// buffer can be recycled once the returned `Bytes` (and every slice
    /// cut from it) is dropped.
    pub fn commit(&mut self, buf: BytesMut) -> Bytes {
        let frame = buf.freeze();
        if self.inflight.len() == self.max_inflight {
            // Forget the oldest handle: its buffer leaves the pool and is
            // freed by whoever holds the last payload slice.
            self.inflight.pop_front();
        }
        self.inflight.push_back(frame.clone());
        frame
    }

    /// Return an unused checkout (e.g. no datagram arrived) straight to the
    /// free list; not counted as a fresh checkout.
    pub fn release(&mut self, buf: BytesMut) {
        self.free.push(buf);
    }

    /// One pass over the inflight handles, moving every buffer whose last
    /// outside reference has dropped to the free list. `try_into_mut`
    /// succeeds only for a uniquely owned buffer, so a buffer still aliased
    /// by a decoded payload can never be handed out again.
    fn reclaim(&mut self) {
        for _ in 0..self.inflight.len() {
            let handle = self.inflight.pop_front().expect("len-bounded loop");
            match handle.try_into_mut() {
                Ok(buf) => self.free.push(buf),
                Err(handle) => self.inflight.push_back(handle),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_pool_recycles_instead_of_allocating() {
        let mut pool = BufferPool::new(64, 8);
        // Steady state: checkout, commit, drop the frame, repeat.
        for _ in 0..100 {
            let buf = pool.checkout();
            let frame = pool.commit(buf);
            drop(frame);
        }
        let s = pool.stats();
        // First checkout allocates (nothing to reclaim yet); from then on
        // the previous buffer is always reclaimable.
        assert_eq!(s.misses, 1, "steady state must not allocate: {s:?}");
        assert_eq!(s.hits, 99);
        assert!(s.hit_rate() > 0.98);
    }

    #[test]
    fn aliased_buffer_is_never_recycled() {
        let mut pool = BufferPool::new(64, 8);
        let buf = pool.checkout();
        let frame = pool.commit(buf);
        let payload = frame.slice(10..20);
        drop(frame);
        // The payload slice still aliases the buffer: every checkout while
        // it lives must be a fresh allocation.
        let ptr = payload.as_ptr() as usize;
        for _ in 0..5 {
            let buf = pool.checkout();
            assert_ne!(buf.as_ptr() as usize, ptr, "handed out an aliased buffer");
            pool.release(buf);
        }
        drop(payload);
        // Now it reclaims.
        let buf = pool.checkout();
        assert!(pool.stats().hits >= 1);
        pool.release(buf);
    }

    #[test]
    fn send_pool_recycles_empty_buffers() {
        let mut pool = BufferPool::for_send(64, 8);
        for round in 0..100 {
            let mut buf = pool.checkout_empty();
            assert!(buf.is_empty(), "send checkout must start empty");
            assert!(buf.capacity() >= 64);
            buf.extend_from_slice(&[round as u8; 16]);
            let frame = pool.commit(buf);
            drop(frame);
        }
        let s = pool.stats();
        assert_eq!(s.misses, 1, "steady-state send must not allocate: {s:?}");
        assert_eq!(s.hits, 99);
    }

    #[test]
    fn send_pool_full_checkout_still_initializes() {
        // `checkout` on a send pool must take the initializing `resize`
        // path, never `set_len` over append-only (possibly uninitialized)
        // storage.
        let mut pool = BufferPool::for_send(64, 8);
        let buf = pool.checkout_empty();
        drop(pool.commit(buf));
        let buf = pool.checkout();
        assert_eq!(buf.len(), 64);
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn inflight_is_bounded() {
        let mut pool = BufferPool::new(64, 4);
        // Commit more frames than the cap while holding every one alive.
        let held: Vec<Bytes> = (0..10)
            .map(|_| {
                let buf = pool.checkout();
                pool.commit(buf)
            })
            .collect();
        assert_eq!(pool.inflight_len(), 4);
        drop(held);
        // Only the tracked handles come back.
        for _ in 0..4 {
            pool.checkout();
        }
        let s = pool.stats();
        assert_eq!(s.hits, 4);
    }
}
