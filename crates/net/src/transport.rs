//! The transport abstraction: send/receive framed packets by [`NodeId`].

use std::time::Duration;

use harmonia_types::{NodeId, Packet};

use crate::pool::PoolStats;
use crate::udp::TransportStats;

/// Why a receive returned no packet.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RecvError {
    /// Nothing arrived within the deadline.
    TimedOut,
    /// The endpoint can never deliver again (shut down).
    Closed,
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::TimedOut => write!(f, "no packet within the deadline"),
            RecvError::Closed => write!(f, "transport closed"),
        }
    }
}

impl std::error::Error for RecvError {}

/// One datagram endpoint of a deployment.
///
/// Sends are addressed by [`NodeId`] and resolved through the deployment's
/// [`AddrBook`](crate::AddrBook); a destination that does not resolve is
/// silently dropped — datagram semantics, the caller's retry loop is the
/// reliability layer. Receives return whole decoded packets; bytes that do
/// not parse as a frame are discarded by the implementation.
pub trait Transport<T>: Send {
    /// Send `pkt` toward `to`. Never blocks on the receiver; undeliverable
    /// or unresolvable packets are dropped.
    fn send(&mut self, to: NodeId, pkt: Packet<T>);

    /// Receive the next packet addressed to this endpoint, waiting at most
    /// `timeout`.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Packet<T>, RecvError>;

    /// Send every `(destination, packet)` in `batch`, draining it — the
    /// frame-level batching verb.
    ///
    /// The default loops the scalar [`send`](Self::send), so wrapper
    /// transports (the fault injector, the channel driver) keep their exact
    /// per-packet semantics without knowing batching exists. Implementations
    /// with a real batched fast path override it: the UDP endpoint both
    /// amortizes kernel crossings (`sendmmsg`) and *coalesces* — packing
    /// per-destination frames back-to-back into full datagrams, so one
    /// datagram moves many frames. Either way, per-destination frame order
    /// follows `batch` order and the drop/counter behavior matches scalar
    /// sends frame for frame.
    fn send_batch(&mut self, batch: &mut Vec<(NodeId, Packet<T>)>) {
        for (to, pkt) in batch.drain(..) {
            self.send(to, pkt);
        }
    }

    /// Upper bound on how many wire frames this transport may pack into
    /// one network datagram.
    ///
    /// `1` — the default, and what every scalar-looping wrapper inherits —
    /// means strict per-frame delivery: each packet rides its own
    /// datagram, which is the envelope
    /// [`FaultyTransport`](crate::FaultyTransport)'s per-send fault
    /// decisions rely on (each decision hits exactly one frame). The
    /// coalescing UDP endpoint reports its packing bound instead.
    fn max_frames_per_datagram(&self) -> usize {
        1
    }

    /// Drain up to `max` already-queued packets into `out` without
    /// blocking; returns how many were appended. An empty queue is `0`, not
    /// an error — callers that want to wait combine this with a scalar
    /// [`recv_timeout`](Self::recv_timeout) for the first packet.
    ///
    /// The default loops the scalar verb with a zero timeout (a nonblocking
    /// poll), preserving wrapper-transport semantics exactly.
    fn recv_batch(&mut self, out: &mut Vec<Packet<T>>, max: usize) -> usize {
        let mut n = 0;
        while n < max {
            match self.recv_timeout(Duration::ZERO) {
                Ok(pkt) => {
                    out.push(pkt);
                    n += 1;
                }
                Err(_) => break,
            }
        }
        n
    }

    /// Frame/datagram counters, when this endpoint (or the one it wraps)
    /// keeps them. `None` — the default — means there is no wire level to
    /// count (e.g. the in-process channel substrate). Observability sinks
    /// poll this through `dyn Transport`, so it must stay cheap: a copy of
    /// already-maintained counters, never a syscall.
    fn wire_stats(&self) -> Option<TransportStats> {
        None
    }

    /// `(receive, send)` buffer-pool checkout counters, when this endpoint
    /// recycles buffers. Same contract as [`wire_stats`](Self::wire_stats).
    fn wire_pool_stats(&self) -> Option<(PoolStats, PoolStats)> {
        None
    }
}
