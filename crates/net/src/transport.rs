//! The transport abstraction: send/receive framed packets by [`NodeId`].

use std::time::Duration;

use harmonia_types::{NodeId, Packet};

/// Why a receive returned no packet.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RecvError {
    /// Nothing arrived within the deadline.
    TimedOut,
    /// The endpoint can never deliver again (shut down).
    Closed,
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::TimedOut => write!(f, "no packet within the deadline"),
            RecvError::Closed => write!(f, "transport closed"),
        }
    }
}

impl std::error::Error for RecvError {}

/// One datagram endpoint of a deployment.
///
/// Sends are addressed by [`NodeId`] and resolved through the deployment's
/// [`AddrBook`](crate::AddrBook); a destination that does not resolve is
/// silently dropped — datagram semantics, the caller's retry loop is the
/// reliability layer. Receives return whole decoded packets; bytes that do
/// not parse as a frame are discarded by the implementation.
pub trait Transport<T>: Send {
    /// Send `pkt` toward `to`. Never blocks on the receiver; undeliverable
    /// or unresolvable packets are dropped.
    fn send(&mut self, to: NodeId, pkt: Packet<T>);

    /// Receive the next packet addressed to this endpoint, waiting at most
    /// `timeout`.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Packet<T>, RecvError>;
}
