//! A [`Transport`] endpoint over one `std::net::UdpSocket`.

// Wall-clock reads are deliberate here: receive deadlines are real kernel time.
#![allow(clippy::disallowed_methods)]

use std::collections::VecDeque;
use std::io::ErrorKind;
use std::marker::PhantomData;
use std::net::{SocketAddr, UdpSocket};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::BytesMut;
use harmonia_types::wire::{frames, Wire};
use harmonia_types::{NodeId, Packet};

use crate::addr::{AddrBook, Directory};
use crate::coalesce::{Coalescer, SealedDatagram};
use crate::pool::{BufferPool, PoolStats};
use crate::transport::{RecvError, Transport};

/// Frame and datagram counters of one endpoint (telemetry for tests and
/// examples).
///
/// Send accounting is *frame*-granular, so coalescing never hides a drop:
/// every resolved `(packet, destination)` attempt lands in exactly one of
/// `sent` or `send_errors` (a refused datagram charges every frame packed
/// inside it), every unresolvable packet in `unresolved`, and every
/// too-large packet in `oversized` (once — frame size is destination-
/// independent). The identity `sent + unresolved + oversized + send_errors
/// == attempts` is what `accounting_balances_across_all_send_outcomes` and
/// `coalesced_accounting_identity_and_frame_counters` pin.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct TransportStats {
    /// Frames handed to the kernel (one packet per destination = one
    /// frame; a coalesced datagram carries several).
    pub sent: u64,
    /// Datagrams handed to the kernel. `sent / datagrams_sent` is the
    /// realized frames-per-datagram packing ratio (1.0 with coalescing
    /// off).
    pub datagrams_sent: u64,
    /// Frames successfully decoded into packets.
    pub received: u64,
    /// Sends whose destination did not resolve (dropped).
    pub unresolved: u64,
    /// Inbound datagrams rejected at the first bad frame (the rest of the
    /// datagram is dropped) — garbage, truncated frames, oversized
    /// declared lengths, or trailing junk after the last valid frame.
    pub decode_errors: u64,
    /// The subset of `decode_errors` datagrams whose valid frame prefix
    /// was still delivered (partial-datagram salvage): a malformed second
    /// frame never silently discards the valid first one.
    pub salvaged: u64,
    /// Outbound packets too large for one frame (dropped, never truncated).
    pub oversized: u64,
    /// Frames in datagrams the kernel refused to send (dropped; datagram
    /// semantics — the caller's retry loop owns recovery).
    pub send_errors: u64,
    /// Failed socket reconfigurations (read-mode syscalls). The mode cache
    /// is invalidated so the next receive retries; meanwhile the socket
    /// keeps its previous mode, which at worst turns one wait into a poll.
    pub config_errors: u64,
}

impl TransportStats {
    /// Field-wise `self - earlier`, saturating at zero: the delta between
    /// two snapshots of a monotonically counting link, used to sync link
    /// counters into an observability recorder incrementally.
    pub fn since(&self, earlier: &TransportStats) -> TransportStats {
        TransportStats {
            sent: self.sent.saturating_sub(earlier.sent),
            datagrams_sent: self.datagrams_sent.saturating_sub(earlier.datagrams_sent),
            received: self.received.saturating_sub(earlier.received),
            unresolved: self.unresolved.saturating_sub(earlier.unresolved),
            decode_errors: self.decode_errors.saturating_sub(earlier.decode_errors),
            salvaged: self.salvaged.saturating_sub(earlier.salvaged),
            oversized: self.oversized.saturating_sub(earlier.oversized),
            send_errors: self.send_errors.saturating_sub(earlier.send_errors),
            config_errors: self.config_errors.saturating_sub(earlier.config_errors),
        }
    }
}

/// One node's UDP endpoint: a loopback socket plus the deployment's
/// [`AddrBook`].
///
/// A datagram holds one or more back-to-back
/// [`encode_frame`](harmonia_types::wire::encode_frame)-format frames, each
/// one `Packet<T>`: the batched send path packs per-destination frames into
/// full datagrams (GSO-style, via the [`Coalescer`]) and the receive path
/// unpacks them with [`frames`] (GRO). Inbound bytes that do not decode are
/// counted and discarded — the receive loop never panics and never
/// allocates beyond [`MAX_FRAME_BYTES`](harmonia_types::MAX_FRAME_BYTES) on
/// untrusted input; that hardening is what `tests/proptests.rs` pins.
pub struct UdpTransport<T> {
    socket: UdpSocket,
    book: Arc<AddrBook>,
    /// Cached directory snapshot + the generation it was taken at: sends
    /// revalidate with one atomic load and re-snapshot only after a
    /// registration — the same no-lock-per-send discipline as the channel
    /// driver's router handles.
    directory: Arc<Directory>,
    seen_generation: u64,
    local: SocketAddr,
    dsts: Vec<SocketAddr>,
    /// Receive buffers, recycled once their decoded payload slices drop —
    /// steady-state receive allocates nothing.
    pool: BufferPool,
    /// A checked-out buffer kept across empty polls, so a quiet endpoint
    /// doesn't churn the pool counters while waiting.
    recv_buf: Option<BytesMut>,
    /// The send path: frames encode zero-copy into pooled per-destination
    /// datagram buffers, packed GSO-style until a datagram fills.
    coalescer: Coalescer,
    /// Sealed datagrams awaiting their kernel flush, reused across calls.
    sealed_scratch: Vec<SealedDatagram>,
    /// Per-datagram send outcomes from the last `sendmmsg` run, reused.
    ok_scratch: Vec<bool>,
    /// Frames decoded out of a multi-frame datagram but not yet handed to
    /// the caller (one datagram can out-fill a `recv_batch` budget).
    decoded: VecDeque<Packet<T>>,
    /// Whether the batch verbs use the `sendmmsg`/`recvmmsg` fast path.
    /// Off, they loop the scalar verbs — the baseline the bench profile
    /// compares against.
    batched: bool,
    stats: TransportStats,
    /// Last-applied socket read mode, so steady-state receive loops (which
    /// wait with the same timeout over and over) skip the reconfiguration
    /// syscalls: `None` = nonblocking, `Some(d)` = blocking with timeout
    /// `d`, unset at bind time.
    read_mode: Option<Option<Duration>>,
    _payload: PhantomData<fn() -> T>,
}

impl<T> UdpTransport<T> {
    /// Bind a fresh endpoint on an ephemeral loopback port. The endpoint is
    /// anonymous until the caller registers its
    /// [`local_addr`](Self::local_addr) in the book under a `NodeId` (or
    /// hands it to the spine entry).
    pub fn bind(book: Arc<AddrBook>) -> std::io::Result<Self> {
        let socket = UdpSocket::bind(("127.0.0.1", 0))?;
        let local = socket.local_addr()?;
        let seen_generation = book.generation();
        let directory = book.snapshot();
        Ok(UdpTransport {
            socket,
            book,
            directory,
            seen_generation,
            local,
            dsts: Vec::new(),
            // One datagram is at most u16::MAX bytes; the codec's frame
            // bound is tighter, but the buffers cover the whole datagram so
            // oversized garbage is drained (and counted), not left queued.
            // The inflight cap is sized for a full receive batch plus a
            // generous tail of payloads still held by the application.
            pool: BufferPool::new(usize::from(u16::MAX), 4 * mmsg::MAX_BATCH),
            recv_buf: None,
            // The coalescer clamps its budget to MAX_FRAME_BYTES (the
            // largest sendable datagram) and recycles sealed payloads
            // through its own send-side pool.
            coalescer: Coalescer::new(usize::from(u16::MAX), 4 * mmsg::MAX_BATCH),
            sealed_scratch: Vec::new(),
            ok_scratch: Vec::new(),
            decoded: VecDeque::new(),
            batched: true,
            stats: TransportStats::default(),
            read_mode: None,
            _payload: PhantomData,
        })
    }

    /// The socket address this endpoint receives on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Datagram counters so far.
    pub fn stats(&self) -> TransportStats {
        self.stats
    }

    /// Receive-buffer pool counters so far.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Toggle the `sendmmsg`/`recvmmsg` fast path behind the batch verbs
    /// (on by default). Off, `send_batch`/`recv_batch` loop the scalar
    /// verbs — the baseline the `udp_dataplane` bench compares against.
    pub fn set_batched(&mut self, on: bool) {
        self.batched = on;
    }

    /// Whether the batch verbs currently use the batched-syscall path.
    pub fn batched(&self) -> bool {
        self.batched
    }

    /// Toggle GSO-style frame coalescing on the batched send path (on by
    /// default): off, every frame rides its own datagram — the faithful
    /// per-frame baseline — while still encoding zero-copy through the
    /// send pool.
    pub fn set_coalesced(&mut self, on: bool) {
        self.coalescer.set_coalesce(on);
    }

    /// Whether the batched send path packs multiple frames per datagram.
    pub fn coalesced(&self) -> bool {
        self.coalescer.coalesce()
    }

    /// Send-pool checkout counters so far — steady-state sending recycles
    /// sealed datagram buffers instead of allocating.
    pub fn send_pool_stats(&self) -> PoolStats {
        self.coalescer.pool_stats()
    }

    /// Decode one whole datagram (already truncated to its received
    /// length) into the delivery queue. A datagram carries one or more
    /// back-to-back frames: every valid frame from the front is delivered;
    /// the first malformed or truncated frame rejects the *rest* of the
    /// datagram ([`TransportStats::decode_errors`]), with
    /// [`TransportStats::salvaged`] marking datagrams whose valid prefix
    /// was still delivered. "All bytes consumed by valid frames" is the
    /// clean-accept condition — the multi-frame generalization of the old
    /// one-datagram-one-frame `used == datagram_len` check.
    fn decode_datagram(&mut self, buf: BytesMut)
    where
        T: Wire,
    {
        let datagram_len = buf.len();
        let frame = self.pool.commit(buf);
        let mut delivered = 0u64;
        // An empty datagram carries no frame: count it as a reject for
        // parity with the per-frame baseline.
        let mut bad_tail = datagram_len == 0;
        for item in frames::<Packet<T>>(&frame) {
            match item {
                Ok(pkt) => {
                    self.decoded.push_back(pkt);
                    delivered += 1;
                }
                // Untrusted bytes must never take the endpoint down: the
                // iterator fuses after the first error, so the bad tail is
                // dropped and counted, nothing more.
                Err(_) => bad_tail = true,
            }
        }
        self.stats.received += delivered;
        if bad_tail {
            self.stats.decode_errors += 1;
            if delivered > 0 {
                self.stats.salvaged += 1;
            }
        }
    }

    /// Move up to `max` already-decoded packets into `out`.
    fn pop_decoded(&mut self, out: &mut Vec<Packet<T>>, max: usize) -> usize {
        let mut n = 0;
        while n < max {
            match self.decoded.pop_front() {
                Some(pkt) => {
                    out.push(pkt);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }

    /// Send every sealed datagram through one `sendmmsg` run with
    /// per-datagram outcomes, crediting the frame-granular counters: an
    /// accepted datagram credits every frame it carries to `sent`, a
    /// refused one charges them all to `send_errors`.
    fn flush_sealed_batched(&mut self) {
        if self.sealed_scratch.is_empty() {
            return;
        }
        self.ok_scratch.clear();
        self.ok_scratch.resize(self.sealed_scratch.len(), false);
        let msgs: Vec<(SocketAddr, &[u8])> = self
            .sealed_scratch
            .iter()
            .map(|d| (d.dst, &d.payload[..]))
            .collect();
        let _ = mmsg::send_batch_outcomes(&self.socket, &msgs, &mut self.ok_scratch);
        drop(msgs);
        for (d, ok) in self.sealed_scratch.drain(..).zip(&self.ok_scratch) {
            if *ok {
                self.stats.sent += u64::from(d.frames);
                self.stats.datagrams_sent += 1;
            } else {
                self.stats.send_errors += u64::from(d.frames);
            }
        }
    }

    /// The deployment's address book.
    pub fn book(&self) -> &Arc<AddrBook> {
        &self.book
    }

    /// Put the socket in the requested read mode (`None` = nonblocking,
    /// `Some(d)` = blocking with timeout `d`), skipping the syscalls when
    /// it is already there — receive loops wait with the same sliced
    /// timeout over and over, so the steady state is recv-only.
    fn set_read_mode(&mut self, mode: Option<Duration>) {
        if self.read_mode == Some(mode) {
            return;
        }
        let applied = match mode {
            Some(wait) => self
                .socket
                .set_nonblocking(false)
                .and_then(|()| self.socket.set_read_timeout(Some(wait))),
            None => self.socket.set_nonblocking(true),
        };
        match applied {
            Ok(()) => self.read_mode = Some(mode),
            // A failed fcntl/setsockopt leaves the socket in its previous
            // mode: count it and clear the cache so the next call retries
            // instead of trusting a mode that was never applied. The recv
            // loops degrade to polling against their own deadline, so the
            // worst case is a hotter wait, never a panic on live traffic.
            Err(_) => {
                self.stats.config_errors += 1;
                self.read_mode = None;
            }
        }
    }
}

impl<T: Wire + Send> Transport<T> for UdpTransport<T> {
    fn send(&mut self, to: NodeId, pkt: Packet<T>) {
        // Resolve before encoding: an unresolvable destination (e.g. a
        // killed switch mid-§5.3) costs one atomic load, not a full codec
        // pass on a frame that would only be discarded.
        let generation = self.book.generation();
        if generation != self.seen_generation {
            self.directory = self.book.snapshot();
            self.seen_generation = generation;
        }
        self.directory.resolve(to, &pkt.body, &mut self.dsts);
        if self.dsts.is_empty() {
            self.stats.unresolved += 1;
            return;
        }
        // Encode straight into a pooled datagram buffer per destination —
        // zero-copy even on the scalar verb. The scalar verb flushes per
        // call, so coalescing across *packets* never engages here: one
        // frame, one datagram — the per-datagram envelope
        // `FaultyTransport`'s per-send fault decisions rely on.
        for &dst in &self.dsts {
            if self
                .coalescer
                .push(dst, &pkt, &mut self.sealed_scratch)
                .is_err()
            {
                // Too big for one frame: dropping beats truncating — the
                // peer would reject a cut frame anyway, and the client's
                // retry/timeout loop owns recovery. Counted once: frame
                // size does not depend on the destination.
                self.stats.oversized += 1;
                break;
            }
        }
        self.coalescer.finish(&mut self.sealed_scratch);
        for d in self.sealed_scratch.drain(..) {
            match self.socket.send_to(&d.payload, d.dst) {
                Ok(_) => {
                    self.stats.sent += u64::from(d.frames);
                    self.stats.datagrams_sent += 1;
                }
                // A refused send (bad port, full socket buffer) is a
                // dropped datagram, not a silent one: the books must
                // balance so harnesses can see where packets went.
                Err(_) => self.stats.send_errors += u64::from(d.frames),
            }
        }
    }

    /// A zero `timeout` is a nonblocking poll: it drains any queued
    /// datagram without waiting (the batched-drain path of the switch
    /// pipelines); otherwise the call waits until the deadline. A sub-
    /// millisecond remainder becomes a final nonblocking poll rather than a
    /// kernel wait — the kernel timeout has ~1ms granularity, so waiting
    /// would overshoot the deadline and skew latency measurements; this
    /// path returns (up to 1ms) early instead of late.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Packet<T>, RecvError> {
        // Frames already unpacked from an earlier multi-frame datagram
        // deliver first, without touching the socket.
        if let Some(pkt) = self.decoded.pop_front() {
            return Ok(pkt);
        }
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            // `set_read_timeout(Some(0))` is an error by contract, and any
            // sub-ms wait rounds up to ~1ms in the kernel: only block for
            // remainders the kernel can actually honor. The threshold sits
            // below 1ms because `remaining` is measured *after* the caller's
            // deadline was taken — a caller asking for exactly 1ms (the node
            // loops' ctl-poll slice) has always lost a few µs by now, and
            // degrading that wait to a nonblocking poll would turn every
            // blocked node loop into a busy spin.
            let blocking = remaining >= Duration::from_micros(900);
            if blocking {
                self.set_read_mode(Some(remaining));
            } else {
                self.set_read_mode(None);
            }
            let mut buf = match self.recv_buf.take() {
                Some(buf) => buf,
                None => self.pool.checkout(),
            };
            match self.socket.recv(&mut buf) {
                Ok(n) => {
                    buf.truncate(n);
                    self.decode_datagram(buf);
                    if let Some(pkt) = self.decoded.pop_front() {
                        return Ok(pkt);
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    self.recv_buf = Some(buf);
                    if !blocking {
                        return Err(RecvError::TimedOut);
                    }
                }
                // Transient kernel errors (e.g. ECONNRESET from an ICMP
                // port-unreachable on a dead peer) — keep listening.
                Err(_) => {
                    self.recv_buf = Some(buf);
                    if !blocking {
                        return Err(RecvError::TimedOut);
                    }
                }
            }
        }
    }

    /// Batched flush: resolve every packet and encode it zero-copy into
    /// per-destination pooled datagram buffers — GSO-style coalescing
    /// packs frames back-to-back until a datagram fills (per-frame with
    /// the [`set_coalesced`](Self::set_coalesced) knob off) — then hand
    /// the sealed datagrams to the kernel through `sendmmsg`
    /// ([`mmsg::send_batch_outcomes`]): one kernel crossing per
    /// [`mmsg::MAX_BATCH`] *datagrams*, each carrying many frames, so the
    /// amortization multiplies. No frame is cloned anywhere on this path.
    fn send_batch(&mut self, batch: &mut Vec<(NodeId, Packet<T>)>) {
        if !self.batched {
            for (to, pkt) in batch.drain(..) {
                self.send(to, pkt);
            }
            return;
        }
        for (to, pkt) in batch.drain(..) {
            let generation = self.book.generation();
            if generation != self.seen_generation {
                self.directory = self.book.snapshot();
                self.seen_generation = generation;
            }
            self.directory.resolve(to, &pkt.body, &mut self.dsts);
            if self.dsts.is_empty() {
                self.stats.unresolved += 1;
                continue;
            }
            for &dst in &self.dsts {
                if self
                    .coalescer
                    .push(dst, &pkt, &mut self.sealed_scratch)
                    .is_err()
                {
                    // Counted once: frame size does not depend on the
                    // destination, so every push would refuse alike.
                    self.stats.oversized += 1;
                    break;
                }
            }
        }
        self.coalescer.finish(&mut self.sealed_scratch);
        self.flush_sealed_batched();
    }

    /// Batched drain: pull up to `max - already-queued` datagrams per
    /// `recvmmsg` call ([`mmsg::recv_batch`]) into pooled buffers and
    /// unpack every frame in place — payload fields alias the buffers,
    /// nothing is copied, and a warm pool allocates nothing. A coalesced
    /// datagram can carry more frames than the remaining budget; the
    /// overflow stays queued and delivers first on the next call.
    fn recv_batch(&mut self, out: &mut Vec<Packet<T>>, max: usize) -> usize {
        if !self.batched {
            // Scalar baseline: loop the nonblocking scalar verb (which
            // itself drains the decoded queue first).
            let mut n = 0;
            while n < max {
                match self.recv_timeout(Duration::ZERO) {
                    Ok(pkt) => {
                        out.push(pkt);
                        n += 1;
                    }
                    Err(_) => break,
                }
            }
            return n;
        }
        self.set_read_mode(None);
        let mut delivered = self.pop_decoded(out, max);
        while delivered < max {
            let want = (max - delivered).min(mmsg::MAX_BATCH);
            let mut bufs: Vec<BytesMut> = Vec::with_capacity(want);
            bufs.extend(self.recv_buf.take());
            while bufs.len() < want {
                bufs.push(self.pool.checkout());
            }
            let mut lens = [0usize; mmsg::MAX_BATCH];
            let got = {
                let mut slices: Vec<&mut [u8]> = bufs.iter_mut().map(|b| &mut b[..]).collect();
                mmsg::recv_batch(&self.socket, &mut slices, &mut lens).unwrap_or(0)
            };
            // `lens` has `MAX_BATCH` slots and `bufs` at most `want` of
            // them, so the zip is bounded by `bufs` — no indexing needed.
            for (i, (mut buf, len)) in bufs.into_iter().zip(lens).enumerate() {
                if i < got {
                    buf.truncate(len);
                    self.decode_datagram(buf);
                } else if self.recv_buf.is_none() {
                    self.recv_buf = Some(buf);
                } else {
                    self.pool.release(buf);
                }
            }
            delivered += self.pop_decoded(out, max - delivered);
            if got < want {
                break; // queue drained
            }
        }
        delivered
    }

    /// The packing bound: how many frames one datagram can carry at this
    /// endpoint's budget (a frame is at least a 4-byte prefix plus one
    /// body byte). `1` exactly when coalescing is off.
    fn max_frames_per_datagram(&self) -> usize {
        if self.coalescer.coalesce() {
            self.coalescer.capacity() / 5
        } else {
            1
        }
    }

    fn wire_stats(&self) -> Option<TransportStats> {
        Some(self.stats)
    }

    fn wire_pool_stats(&self) -> Option<(PoolStats, PoolStats)> {
        Some((self.pool.stats(), self.coalescer.pool_stats()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_types::{ClientId, ClientRequest, ReplicaId, RequestId, SwitchId};
    use harmonia_workload::ShardMap;

    type Pkt = Packet<u64>;

    fn pair() -> (Arc<AddrBook>, UdpTransport<u64>, UdpTransport<u64>) {
        let book = Arc::new(AddrBook::new());
        let a = UdpTransport::bind(Arc::clone(&book)).unwrap();
        let b = UdpTransport::bind(Arc::clone(&book)).unwrap();
        book.register(NodeId::Client(ClientId(1)), a.local_addr());
        book.register(NodeId::Replica(ReplicaId(0)), b.local_addr());
        (book, a, b)
    }

    #[test]
    fn datagram_roundtrip_between_endpoints() {
        let (_book, mut a, mut b) = pair();
        let pkt: Pkt = Packet::new(
            NodeId::Client(ClientId(1)),
            NodeId::Replica(ReplicaId(0)),
            harmonia_types::PacketBody::Protocol(0xfeed),
        );
        a.send(NodeId::Replica(ReplicaId(0)), pkt.clone());
        let got = b.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(got, pkt);
        assert_eq!(a.stats().sent, 1);
        assert_eq!(b.stats().received, 1);

        // Zero timeout = nonblocking poll: drains a queued datagram,
        // returns TimedOut on an empty queue.
        a.send(NodeId::Replica(ReplicaId(0)), pkt.clone());
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(b.recv_timeout(Duration::ZERO).unwrap(), pkt);
        assert_eq!(
            b.recv_timeout(Duration::ZERO),
            Err(crate::transport::RecvError::TimedOut)
        );
    }

    #[test]
    fn unresolved_destination_is_dropped_not_an_error() {
        let (_book, mut a, _b) = pair();
        let pkt: Pkt = Packet::new(
            NodeId::Client(ClientId(1)),
            NodeId::Replica(ReplicaId(42)),
            harmonia_types::PacketBody::Protocol(1),
        );
        a.send(NodeId::Replica(ReplicaId(42)), pkt);
        assert_eq!(a.stats().unresolved, 1);
        assert_eq!(a.stats().sent, 0);
    }

    #[test]
    fn garbage_datagrams_are_counted_and_skipped() {
        let (_book, mut a, mut b) = pair();
        // Raw garbage straight to b's socket, then a valid frame with a
        // junk tail (the salvage case: the frame delivers, the tail is
        // rejected and counted), then a valid packet: the receive loop must
        // count all three rejects and deliver both packets.
        let raw = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
        raw.send_to(&[0xff; 40], b.local_addr()).unwrap();
        raw.send_to(&[1, 2], b.local_addr()).unwrap();
        let pkt: Pkt = Packet::new(
            NodeId::Client(ClientId(1)),
            NodeId::Replica(ReplicaId(0)),
            harmonia_types::PacketBody::Protocol(3),
        );
        let mut padded = harmonia_types::wire::encode_frame(&pkt).unwrap().to_vec();
        padded.extend_from_slice(&[0xde, 0xad]);
        raw.send_to(&padded, b.local_addr()).unwrap();
        a.send(NodeId::Replica(ReplicaId(0)), pkt.clone());
        // Salvaged out of the padded datagram, ahead of a's clean send.
        let got = b.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(got, pkt);
        assert_eq!(b.recv_timeout(Duration::from_secs(2)).unwrap(), pkt);
        let s = b.stats();
        assert_eq!(s.decode_errors, 3);
        assert_eq!(s.salvaged, 1, "only the padded datagram had a prefix");
        assert_eq!(s.received, 2);
    }

    #[test]
    fn accounting_balances_across_all_send_outcomes() {
        let (book, mut a, _b) = pair();
        // A destination that resolves but the kernel refuses: port 0.
        book.register(
            NodeId::Replica(ReplicaId(7)),
            "127.0.0.1:0".parse().unwrap(),
        );
        let mk = |body| {
            Packet::new(
                NodeId::Client(ClientId(1)),
                NodeId::Replica(ReplicaId(0)),
                body,
            )
        };

        // 1: delivered.
        a.send(
            NodeId::Replica(ReplicaId(0)),
            mk(harmonia_types::PacketBody::Protocol(1)),
        );
        // 2: unresolved destination.
        a.send(
            NodeId::Replica(ReplicaId(42)),
            mk(harmonia_types::PacketBody::Protocol(2)),
        );
        // 3: oversized frame (value field larger than one datagram).
        let huge = ClientRequest::write(
            ClientId(1),
            RequestId(3),
            &b"k"[..],
            vec![0u8; harmonia_types::MAX_FRAME_BYTES],
        );
        a.send(
            NodeId::Replica(ReplicaId(0)),
            mk(harmonia_types::PacketBody::Request(huge)),
        );
        // 4: kernel-refused send.
        a.send(
            NodeId::Replica(ReplicaId(7)),
            mk(harmonia_types::PacketBody::Protocol(4)),
        );

        let s = a.stats();
        assert_eq!(s.sent, 1);
        assert_eq!(s.unresolved, 1);
        assert_eq!(s.oversized, 1);
        assert_eq!(s.send_errors, 1);
        // The books balance: four attempts, four counters.
        assert_eq!(s.sent + s.unresolved + s.oversized + s.send_errors, 4);
    }

    #[test]
    fn sub_millisecond_timeout_does_not_overshoot() {
        let (_book, _a, mut b) = pair();
        // The kernel's receive timeout has ~1ms granularity, so a 100µs
        // deadline must become a nonblocking poll, not a kernel wait. The
        // *minimum* observed latency is the discriminator: the old
        // clamp-to-1ms path never returned under ~1ms; the poll path is
        // tens of microseconds. (Max is scheduler noise either way.)
        let mut min = Duration::MAX;
        for _ in 0..10 {
            let t0 = Instant::now();
            let _ = b.recv_timeout(Duration::from_micros(100));
            min = min.min(t0.elapsed());
        }
        assert!(
            min < Duration::from_micros(900),
            "sub-ms recv_timeout blocked in the kernel: min {min:?}"
        );
    }

    #[test]
    fn batch_verbs_roundtrip_and_match_scalar_counters() {
        let (_book, mut a, mut b) = pair();
        let mk = |i: u64| -> (NodeId, Pkt) {
            (
                NodeId::Replica(ReplicaId(0)),
                Packet::new(
                    NodeId::Client(ClientId(1)),
                    NodeId::Replica(ReplicaId(0)),
                    harmonia_types::PacketBody::Protocol(i),
                ),
            )
        };
        let n = 50u64;
        let mut batch: Vec<(NodeId, Pkt)> = (0..n).map(mk).collect();
        a.send_batch(&mut batch);
        assert!(batch.is_empty(), "send_batch must drain its input");
        assert_eq!(a.stats().sent, n);

        // Wait for the first packet, then batch-drain the rest.
        let mut got = vec![b.recv_timeout(Duration::from_secs(2)).unwrap()];
        let deadline = Instant::now() + Duration::from_secs(2);
        while (got.len() as u64) < n && Instant::now() < deadline {
            if b.recv_batch(&mut got, 64) == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        assert_eq!(got.len() as u64, n);
        // In-order on loopback, and payloads intact.
        for (i, pkt) in got.iter().enumerate() {
            assert_eq!(*pkt, mk(i as u64).1);
        }
        assert_eq!(b.stats().received, n);
        // 50 small frames to one destination coalesce into one datagram.
        assert_eq!(a.stats().datagrams_sent, 1);
    }

    #[test]
    fn coalesced_accounting_identity_and_frame_counters() {
        let (book, mut a, mut b) = pair();
        book.register(
            NodeId::Replica(ReplicaId(7)),
            "127.0.0.1:0".parse().unwrap(),
        );
        let mk = |to: u32, i: u64| -> (NodeId, Pkt) {
            (
                NodeId::Replica(ReplicaId(to)),
                Packet::new(
                    NodeId::Client(ClientId(1)),
                    NodeId::Replica(ReplicaId(to)),
                    harmonia_types::PacketBody::Protocol(i),
                ),
            )
        };
        // 10 deliverable frames, 5 frames coalesced into one datagram the
        // kernel refuses (port 0), 1 unresolved, 1 oversized: the identity
        // must cover every attempt with `sent` in frame units.
        let mut batch: Vec<(NodeId, Pkt)> = (0..10).map(|i| mk(0, i)).collect();
        batch.extend((0..5).map(|i| mk(7, 100 + i)));
        batch.push(mk(42, 0));
        let huge = ClientRequest::write(
            ClientId(1),
            RequestId(3),
            &b"k"[..],
            vec![0u8; harmonia_types::MAX_FRAME_BYTES],
        );
        batch.push((
            NodeId::Replica(ReplicaId(0)),
            Packet::new(
                NodeId::Client(ClientId(1)),
                NodeId::Replica(ReplicaId(0)),
                harmonia_types::PacketBody::Request(huge),
            ),
        ));
        let attempts = batch.len() as u64;
        a.send_batch(&mut batch);
        let s = a.stats();
        assert_eq!(s.sent, 10, "sent counts frames, not datagrams");
        assert_eq!(s.datagrams_sent, 1, "10 small frames pack into one");
        assert_eq!(s.send_errors, 5, "a refused datagram charges its frames");
        assert_eq!(s.unresolved, 1);
        assert_eq!(s.oversized, 1);
        // The books balance, frame-granular.
        assert_eq!(
            s.sent + s.unresolved + s.oversized + s.send_errors,
            attempts
        );

        // The coalesced datagram unpacks to the 10 frames, in order.
        let mut got = vec![b.recv_timeout(Duration::from_secs(2)).unwrap()];
        let deadline = Instant::now() + Duration::from_secs(2);
        while got.len() < 10 && Instant::now() < deadline {
            if b.recv_batch(&mut got, 64) == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        let want: Vec<Pkt> = (0..10).map(|i| mk(0, i).1).collect();
        assert_eq!(got, want);
        assert_eq!(b.stats().received, 10);
        assert_eq!(b.stats().decode_errors, 0);
    }

    #[test]
    fn per_frame_mode_sends_one_datagram_per_frame() {
        let (_book, mut a, mut b) = pair();
        assert!(a.max_frames_per_datagram() > 1, "coalescing is the default");
        a.set_coalesced(false);
        assert!(!a.coalesced());
        assert_eq!(a.max_frames_per_datagram(), 1);
        let mk = |i: u64| -> (NodeId, Pkt) {
            (
                NodeId::Replica(ReplicaId(0)),
                Packet::new(
                    NodeId::Client(ClientId(1)),
                    NodeId::Replica(ReplicaId(0)),
                    harmonia_types::PacketBody::Protocol(i),
                ),
            )
        };
        let mut batch: Vec<(NodeId, Pkt)> = (0..10).map(mk).collect();
        a.send_batch(&mut batch);
        let s = a.stats();
        assert_eq!(s.sent, 10);
        assert_eq!(s.datagrams_sent, 10, "per-frame: one datagram per frame");
        let mut got = vec![b.recv_timeout(Duration::from_secs(2)).unwrap()];
        let deadline = Instant::now() + Duration::from_secs(2);
        while got.len() < 10 && Instant::now() < deadline {
            if b.recv_batch(&mut got, 64) == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        assert_eq!(got, (0..10).map(|i| mk(i).1).collect::<Vec<_>>());
    }

    #[test]
    fn steady_state_send_is_allocation_free() {
        let (_book, mut a, mut b) = pair();
        let mk = |i: u64| -> (NodeId, Pkt) {
            (
                NodeId::Replica(ReplicaId(0)),
                Packet::new(
                    NodeId::Client(ClientId(1)),
                    NodeId::Replica(ReplicaId(0)),
                    harmonia_types::PacketBody::Protocol(i),
                ),
            )
        };
        let deadline = Instant::now() + Duration::from_secs(10);
        for round in 0..200u64 {
            let mut batch: Vec<(NodeId, Pkt)> = (0..8).map(|i| mk(round * 8 + i)).collect();
            a.send_batch(&mut batch);
            // Drain each burst so the receive socket buffer never fills.
            let mut got = Vec::new();
            while got.len() < 8 && Instant::now() < deadline {
                if b.recv_batch(&mut got, 32) == 0 {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
            assert_eq!(got.len(), 8);
        }
        let s = a.send_pool_stats();
        assert!(
            s.misses <= 2,
            "steady-state send allocated {} times",
            s.misses
        );
        assert!(
            s.hit_rate() > 0.95,
            "send-pool hit rate {:.3}",
            s.hit_rate()
        );
        // Every burst coalesced: far fewer datagrams than frames.
        let t = a.stats();
        assert_eq!(t.sent, 1600);
        assert_eq!(t.datagrams_sent, 200);
    }

    #[test]
    fn steady_state_receive_is_allocation_free() {
        let (_book, mut a, mut b) = pair();
        let pkt: Pkt = Packet::new(
            NodeId::Client(ClientId(1)),
            NodeId::Replica(ReplicaId(0)),
            harmonia_types::PacketBody::Protocol(9),
        );
        // Steady state: one packet in flight at a time, payload dropped
        // before the next receive, so the pool always has a reclaimable
        // buffer. Everything after warm-up must be a pool hit.
        let rounds = 200u64;
        for _ in 0..rounds {
            a.send(NodeId::Replica(ReplicaId(0)), pkt.clone());
            let got = b.recv_timeout(Duration::from_secs(2)).unwrap();
            assert_eq!(got, pkt);
        }
        let s = b.pool_stats();
        assert!(
            s.misses <= 2,
            "steady-state receive allocated {} times",
            s.misses
        );
        assert!(s.hit_rate() > 0.95, "pool hit rate {:.3}", s.hit_rate());
    }

    #[test]
    fn spine_entry_routes_to_the_owning_group_socket() {
        let book = Arc::new(AddrBook::new());
        let mut sender = UdpTransport::<u64>::bind(Arc::clone(&book)).unwrap();
        let mut g0 = UdpTransport::<u64>::bind(Arc::clone(&book)).unwrap();
        let mut g1 = UdpTransport::<u64>::bind(Arc::clone(&book)).unwrap();
        let shards = ShardMap::new(2);
        let stable = NodeId::Switch(SwitchId(1));
        book.install_spine(vec![stable], shards, vec![g0.local_addr(), g1.local_addr()]);
        // Find one key per group and check delivery lands on that group.
        for want in 0..2u32 {
            let key = (0..100u32)
                .map(|i| format!("k{i}"))
                .find(|k| shards.shard_of_key(k.as_bytes()) == want)
                .unwrap();
            let req = ClientRequest::read(ClientId(1), RequestId(u64::from(want)), key);
            let pkt: Pkt = Packet::new(
                NodeId::Client(ClientId(1)),
                stable,
                harmonia_types::PacketBody::Request(req),
            );
            sender.send(stable, pkt.clone());
            let owner = if want == 0 { &mut g0 } else { &mut g1 };
            assert_eq!(owner.recv_timeout(Duration::from_secs(2)).unwrap(), pkt);
        }
        // The other group saw nothing.
        assert!(g0.recv_timeout(Duration::from_millis(10)).is_err());
        assert!(g1.recv_timeout(Duration::from_millis(10)).is_err());
    }
}
