//! A [`Transport`] endpoint over one `std::net::UdpSocket`.

// Wall-clock reads are deliberate here: receive deadlines are real kernel time.
#![allow(clippy::disallowed_methods)]

use std::io::ErrorKind;
use std::marker::PhantomData;
use std::net::{SocketAddr, UdpSocket};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::{Bytes, BytesMut};
use harmonia_types::wire::{decode_frame_shared, encode_frame, Wire};
use harmonia_types::{NodeId, Packet};

use crate::addr::{AddrBook, Directory};
use crate::pool::{BufferPool, PoolStats};
use crate::transport::{RecvError, Transport};

/// Datagram counters of one endpoint (telemetry for tests and examples).
///
/// Every send attempt lands in exactly one of `sent`, `unresolved`,
/// `oversized`, or `send_errors`: the books balance, nothing is dropped
/// without a counter (`accounting_balances_across_all_send_outcomes` pins
/// this).
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct TransportStats {
    /// Datagrams handed to the kernel.
    pub sent: u64,
    /// Datagrams successfully decoded into packets.
    pub received: u64,
    /// Sends whose destination did not resolve (dropped).
    pub unresolved: u64,
    /// Inbound datagrams that failed to decode (dropped) — garbage,
    /// truncated frames, oversized declared lengths, or trailing bytes
    /// after a valid frame (one datagram is one frame, exactly).
    pub decode_errors: u64,
    /// Outbound packets too large for one frame (dropped, never truncated).
    pub oversized: u64,
    /// Datagrams the kernel refused to send (dropped; datagram semantics —
    /// the caller's retry loop owns recovery).
    pub send_errors: u64,
    /// Failed socket reconfigurations (read-mode syscalls). The mode cache
    /// is invalidated so the next receive retries; meanwhile the socket
    /// keeps its previous mode, which at worst turns one wait into a poll.
    pub config_errors: u64,
}

/// One node's UDP endpoint: a loopback socket plus the deployment's
/// [`AddrBook`].
///
/// A packet is exactly one datagram holding one
/// [`encode_frame`]d `Packet<T>`. Inbound datagrams that do not decode are
/// counted and discarded — the receive loop never panics and never
/// allocates beyond [`MAX_FRAME_BYTES`](harmonia_types::MAX_FRAME_BYTES) on
/// untrusted input; that hardening is what `tests/proptests.rs` pins.
pub struct UdpTransport<T> {
    socket: UdpSocket,
    book: Arc<AddrBook>,
    /// Cached directory snapshot + the generation it was taken at: sends
    /// revalidate with one atomic load and re-snapshot only after a
    /// registration — the same no-lock-per-send discipline as the channel
    /// driver's router handles.
    directory: Arc<Directory>,
    seen_generation: u64,
    local: SocketAddr,
    dsts: Vec<SocketAddr>,
    /// Receive buffers, recycled once their decoded payload slices drop —
    /// steady-state receive allocates nothing.
    pool: BufferPool,
    /// A checked-out buffer kept across empty polls, so a quiet endpoint
    /// doesn't churn the pool counters while waiting.
    recv_buf: Option<BytesMut>,
    /// Scratch for the batched send path: resolved (destination, frame)
    /// pairs, reused across calls.
    send_scratch: Vec<(SocketAddr, Bytes)>,
    /// Whether the batch verbs use the `sendmmsg`/`recvmmsg` fast path.
    /// Off, they loop the scalar verbs — the baseline the bench profile
    /// compares against.
    batched: bool,
    stats: TransportStats,
    /// Last-applied socket read mode, so steady-state receive loops (which
    /// wait with the same timeout over and over) skip the reconfiguration
    /// syscalls: `None` = nonblocking, `Some(d)` = blocking with timeout
    /// `d`, unset at bind time.
    read_mode: Option<Option<Duration>>,
    _payload: PhantomData<fn() -> T>,
}

impl<T> UdpTransport<T> {
    /// Bind a fresh endpoint on an ephemeral loopback port. The endpoint is
    /// anonymous until the caller registers its
    /// [`local_addr`](Self::local_addr) in the book under a `NodeId` (or
    /// hands it to the spine entry).
    pub fn bind(book: Arc<AddrBook>) -> std::io::Result<Self> {
        let socket = UdpSocket::bind(("127.0.0.1", 0))?;
        let local = socket.local_addr()?;
        let seen_generation = book.generation();
        let directory = book.snapshot();
        Ok(UdpTransport {
            socket,
            book,
            directory,
            seen_generation,
            local,
            dsts: Vec::new(),
            // One datagram is at most u16::MAX bytes; the codec's frame
            // bound is tighter, but the buffers cover the whole datagram so
            // oversized garbage is drained (and counted), not left queued.
            // The inflight cap is sized for a full receive batch plus a
            // generous tail of payloads still held by the application.
            pool: BufferPool::new(usize::from(u16::MAX), 4 * mmsg::MAX_BATCH),
            recv_buf: None,
            send_scratch: Vec::new(),
            batched: true,
            stats: TransportStats::default(),
            read_mode: None,
            _payload: PhantomData,
        })
    }

    /// The socket address this endpoint receives on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Datagram counters so far.
    pub fn stats(&self) -> TransportStats {
        self.stats
    }

    /// Receive-buffer pool counters so far.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Toggle the `sendmmsg`/`recvmmsg` fast path behind the batch verbs
    /// (on by default). Off, `send_batch`/`recv_batch` loop the scalar
    /// verbs — the baseline the `udp_dataplane` bench compares against.
    pub fn set_batched(&mut self, on: bool) {
        self.batched = on;
    }

    /// Whether the batch verbs currently use the batched-syscall path.
    pub fn batched(&self) -> bool {
        self.batched
    }

    /// Decode one whole datagram (already truncated to its received
    /// length), enforcing the one-datagram-one-frame invariant: a frame
    /// that does not consume the full payload is a decode error, not a
    /// delivery.
    fn decode_datagram(&mut self, buf: BytesMut) -> Option<Packet<T>>
    where
        T: Wire,
    {
        let datagram_len = buf.len();
        let frame = self.pool.commit(buf);
        match decode_frame_shared::<Packet<T>>(&frame) {
            Ok(Some((pkt, used))) if used == datagram_len => {
                self.stats.received += 1;
                Some(pkt)
            }
            // Trailing bytes after the frame, a truncated/malformed frame,
            // or an oversized declared length: drop and count — untrusted
            // bytes must never take the endpoint down.
            Ok(_) | Err(_) => {
                self.stats.decode_errors += 1;
                None
            }
        }
    }

    /// The deployment's address book.
    pub fn book(&self) -> &Arc<AddrBook> {
        &self.book
    }

    /// Put the socket in the requested read mode (`None` = nonblocking,
    /// `Some(d)` = blocking with timeout `d`), skipping the syscalls when
    /// it is already there — receive loops wait with the same sliced
    /// timeout over and over, so the steady state is recv-only.
    fn set_read_mode(&mut self, mode: Option<Duration>) {
        if self.read_mode == Some(mode) {
            return;
        }
        let applied = match mode {
            Some(wait) => self
                .socket
                .set_nonblocking(false)
                .and_then(|()| self.socket.set_read_timeout(Some(wait))),
            None => self.socket.set_nonblocking(true),
        };
        match applied {
            Ok(()) => self.read_mode = Some(mode),
            // A failed fcntl/setsockopt leaves the socket in its previous
            // mode: count it and clear the cache so the next call retries
            // instead of trusting a mode that was never applied. The recv
            // loops degrade to polling against their own deadline, so the
            // worst case is a hotter wait, never a panic on live traffic.
            Err(_) => {
                self.stats.config_errors += 1;
                self.read_mode = None;
            }
        }
    }
}

impl<T: Wire + Send> Transport<T> for UdpTransport<T> {
    fn send(&mut self, to: NodeId, pkt: Packet<T>) {
        // Resolve before encoding: an unresolvable destination (e.g. a
        // killed switch mid-§5.3) costs one atomic load, not a full codec
        // pass on a frame that would only be discarded.
        let generation = self.book.generation();
        if generation != self.seen_generation {
            self.directory = self.book.snapshot();
            self.seen_generation = generation;
        }
        self.directory.resolve(to, &pkt.body, &mut self.dsts);
        if self.dsts.is_empty() {
            self.stats.unresolved += 1;
            return;
        }
        let frame = match encode_frame(&pkt) {
            Ok(frame) => frame,
            Err(_) => {
                // Too big for one datagram: dropping beats truncating — the
                // peer would reject a cut frame anyway, and the client's
                // retry/timeout loop owns recovery.
                self.stats.oversized += 1;
                return;
            }
        };
        for &dst in &self.dsts {
            match self.socket.send_to(&frame, dst) {
                Ok(_) => self.stats.sent += 1,
                // A refused send (bad port, full socket buffer) is a
                // dropped datagram, not a silent one: the books must
                // balance so harnesses can see where packets went.
                Err(_) => self.stats.send_errors += 1,
            }
        }
    }

    /// A zero `timeout` is a nonblocking poll: it drains any queued
    /// datagram without waiting (the batched-drain path of the switch
    /// pipelines); otherwise the call waits until the deadline. A sub-
    /// millisecond remainder becomes a final nonblocking poll rather than a
    /// kernel wait — the kernel timeout has ~1ms granularity, so waiting
    /// would overshoot the deadline and skew latency measurements; this
    /// path returns (up to 1ms) early instead of late.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Packet<T>, RecvError> {
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            // `set_read_timeout(Some(0))` is an error by contract, and any
            // sub-ms wait rounds up to ~1ms in the kernel: only block for
            // remainders the kernel can actually honor. The threshold sits
            // below 1ms because `remaining` is measured *after* the caller's
            // deadline was taken — a caller asking for exactly 1ms (the node
            // loops' ctl-poll slice) has always lost a few µs by now, and
            // degrading that wait to a nonblocking poll would turn every
            // blocked node loop into a busy spin.
            let blocking = remaining >= Duration::from_micros(900);
            if blocking {
                self.set_read_mode(Some(remaining));
            } else {
                self.set_read_mode(None);
            }
            let mut buf = match self.recv_buf.take() {
                Some(buf) => buf,
                None => self.pool.checkout(),
            };
            match self.socket.recv(&mut buf) {
                Ok(n) => {
                    buf.truncate(n);
                    if let Some(pkt) = self.decode_datagram(buf) {
                        return Ok(pkt);
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    self.recv_buf = Some(buf);
                    if !blocking {
                        return Err(RecvError::TimedOut);
                    }
                }
                // Transient kernel errors (e.g. ECONNRESET from an ICMP
                // port-unreachable on a dead peer) — keep listening.
                Err(_) => {
                    self.recv_buf = Some(buf);
                    if !blocking {
                        return Err(RecvError::TimedOut);
                    }
                }
            }
        }
    }

    /// Batched flush: resolve and encode every packet, then hand the whole
    /// run of datagrams to the kernel through `sendmmsg`
    /// ([`mmsg::send_batch`]) — one kernel crossing per
    /// [`mmsg::MAX_BATCH`] datagrams instead of one per packet. Counter
    /// semantics are identical to looping the scalar verb.
    fn send_batch(&mut self, batch: &mut Vec<(NodeId, Packet<T>)>) {
        if !self.batched {
            for (to, pkt) in batch.drain(..) {
                self.send(to, pkt);
            }
            return;
        }
        self.send_scratch.clear();
        for (to, pkt) in batch.drain(..) {
            let generation = self.book.generation();
            if generation != self.seen_generation {
                self.directory = self.book.snapshot();
                self.seen_generation = generation;
            }
            self.directory.resolve(to, &pkt.body, &mut self.dsts);
            if self.dsts.is_empty() {
                self.stats.unresolved += 1;
                continue;
            }
            match encode_frame(&pkt) {
                Ok(frame) => {
                    for &dst in &self.dsts {
                        self.send_scratch.push((dst, frame.clone()));
                    }
                }
                Err(_) => {
                    self.stats.oversized += 1;
                }
            }
        }
        if self.send_scratch.is_empty() {
            return;
        }
        let msgs: Vec<(SocketAddr, &[u8])> = self
            .send_scratch
            .iter()
            .map(|(dst, frame)| (*dst, &frame[..]))
            .collect();
        let report = mmsg::send_batch(&self.socket, &msgs);
        self.stats.sent += report.sent as u64;
        self.stats.send_errors += report.errors as u64;
    }

    /// Batched drain: pull up to `max` queued datagrams per `recvmmsg` call
    /// ([`mmsg::recv_batch`]) into pooled buffers and decode them in place —
    /// payload fields alias the buffers, nothing is copied, and a warm pool
    /// allocates nothing.
    fn recv_batch(&mut self, out: &mut Vec<Packet<T>>, max: usize) -> usize {
        if !self.batched {
            // Scalar baseline: loop the nonblocking scalar verb.
            let mut n = 0;
            while n < max {
                match self.recv_timeout(Duration::ZERO) {
                    Ok(pkt) => {
                        out.push(pkt);
                        n += 1;
                    }
                    Err(_) => break,
                }
            }
            return n;
        }
        self.set_read_mode(None);
        let mut delivered = 0;
        while delivered < max {
            let want = (max - delivered).min(mmsg::MAX_BATCH);
            let mut bufs: Vec<BytesMut> = Vec::with_capacity(want);
            bufs.extend(self.recv_buf.take());
            while bufs.len() < want {
                bufs.push(self.pool.checkout());
            }
            let mut lens = [0usize; mmsg::MAX_BATCH];
            let got = {
                let mut slices: Vec<&mut [u8]> = bufs.iter_mut().map(|b| &mut b[..]).collect();
                mmsg::recv_batch(&self.socket, &mut slices, &mut lens).unwrap_or(0)
            };
            // `lens` has `MAX_BATCH` slots and `bufs` at most `want` of
            // them, so the zip is bounded by `bufs` — no indexing needed.
            for (i, (mut buf, len)) in bufs.into_iter().zip(lens).enumerate() {
                if i < got {
                    buf.truncate(len);
                    if let Some(pkt) = self.decode_datagram(buf) {
                        out.push(pkt);
                        delivered += 1;
                    }
                } else if self.recv_buf.is_none() {
                    self.recv_buf = Some(buf);
                } else {
                    self.pool.release(buf);
                }
            }
            if got < want {
                break; // queue drained
            }
        }
        delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_types::{ClientId, ClientRequest, ReplicaId, RequestId, SwitchId};
    use harmonia_workload::ShardMap;

    type Pkt = Packet<u64>;

    fn pair() -> (Arc<AddrBook>, UdpTransport<u64>, UdpTransport<u64>) {
        let book = Arc::new(AddrBook::new());
        let a = UdpTransport::bind(Arc::clone(&book)).unwrap();
        let b = UdpTransport::bind(Arc::clone(&book)).unwrap();
        book.register(NodeId::Client(ClientId(1)), a.local_addr());
        book.register(NodeId::Replica(ReplicaId(0)), b.local_addr());
        (book, a, b)
    }

    #[test]
    fn datagram_roundtrip_between_endpoints() {
        let (_book, mut a, mut b) = pair();
        let pkt: Pkt = Packet::new(
            NodeId::Client(ClientId(1)),
            NodeId::Replica(ReplicaId(0)),
            harmonia_types::PacketBody::Protocol(0xfeed),
        );
        a.send(NodeId::Replica(ReplicaId(0)), pkt.clone());
        let got = b.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(got, pkt);
        assert_eq!(a.stats().sent, 1);
        assert_eq!(b.stats().received, 1);

        // Zero timeout = nonblocking poll: drains a queued datagram,
        // returns TimedOut on an empty queue.
        a.send(NodeId::Replica(ReplicaId(0)), pkt.clone());
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(b.recv_timeout(Duration::ZERO).unwrap(), pkt);
        assert_eq!(
            b.recv_timeout(Duration::ZERO),
            Err(crate::transport::RecvError::TimedOut)
        );
    }

    #[test]
    fn unresolved_destination_is_dropped_not_an_error() {
        let (_book, mut a, _b) = pair();
        let pkt: Pkt = Packet::new(
            NodeId::Client(ClientId(1)),
            NodeId::Replica(ReplicaId(42)),
            harmonia_types::PacketBody::Protocol(1),
        );
        a.send(NodeId::Replica(ReplicaId(42)), pkt);
        assert_eq!(a.stats().unresolved, 1);
        assert_eq!(a.stats().sent, 0);
    }

    #[test]
    fn garbage_datagrams_are_counted_and_skipped() {
        let (_book, mut a, mut b) = pair();
        // Raw garbage straight to b's socket, then a valid frame with junk
        // appended (violating the one-datagram-one-frame invariant), then a
        // valid packet: the receive loop must skip all three rejects and
        // deliver the packet.
        let raw = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
        raw.send_to(&[0xff; 40], b.local_addr()).unwrap();
        raw.send_to(&[1, 2], b.local_addr()).unwrap();
        let pkt: Pkt = Packet::new(
            NodeId::Client(ClientId(1)),
            NodeId::Replica(ReplicaId(0)),
            harmonia_types::PacketBody::Protocol(3),
        );
        let mut padded = harmonia_types::wire::encode_frame(&pkt).unwrap().to_vec();
        padded.extend_from_slice(&[0xde, 0xad]);
        raw.send_to(&padded, b.local_addr()).unwrap();
        a.send(NodeId::Replica(ReplicaId(0)), pkt.clone());
        let got = b.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(got, pkt);
        assert_eq!(b.stats().decode_errors, 3);
        assert_eq!(b.stats().received, 1);
    }

    #[test]
    fn accounting_balances_across_all_send_outcomes() {
        let (book, mut a, _b) = pair();
        // A destination that resolves but the kernel refuses: port 0.
        book.register(
            NodeId::Replica(ReplicaId(7)),
            "127.0.0.1:0".parse().unwrap(),
        );
        let mk = |body| {
            Packet::new(
                NodeId::Client(ClientId(1)),
                NodeId::Replica(ReplicaId(0)),
                body,
            )
        };

        // 1: delivered.
        a.send(
            NodeId::Replica(ReplicaId(0)),
            mk(harmonia_types::PacketBody::Protocol(1)),
        );
        // 2: unresolved destination.
        a.send(
            NodeId::Replica(ReplicaId(42)),
            mk(harmonia_types::PacketBody::Protocol(2)),
        );
        // 3: oversized frame (value field larger than one datagram).
        let huge = ClientRequest::write(
            ClientId(1),
            RequestId(3),
            &b"k"[..],
            vec![0u8; harmonia_types::MAX_FRAME_BYTES],
        );
        a.send(
            NodeId::Replica(ReplicaId(0)),
            mk(harmonia_types::PacketBody::Request(huge)),
        );
        // 4: kernel-refused send.
        a.send(
            NodeId::Replica(ReplicaId(7)),
            mk(harmonia_types::PacketBody::Protocol(4)),
        );

        let s = a.stats();
        assert_eq!(s.sent, 1);
        assert_eq!(s.unresolved, 1);
        assert_eq!(s.oversized, 1);
        assert_eq!(s.send_errors, 1);
        // The books balance: four attempts, four counters.
        assert_eq!(s.sent + s.unresolved + s.oversized + s.send_errors, 4);
    }

    #[test]
    fn sub_millisecond_timeout_does_not_overshoot() {
        let (_book, _a, mut b) = pair();
        // The kernel's receive timeout has ~1ms granularity, so a 100µs
        // deadline must become a nonblocking poll, not a kernel wait. The
        // *minimum* observed latency is the discriminator: the old
        // clamp-to-1ms path never returned under ~1ms; the poll path is
        // tens of microseconds. (Max is scheduler noise either way.)
        let mut min = Duration::MAX;
        for _ in 0..10 {
            let t0 = Instant::now();
            let _ = b.recv_timeout(Duration::from_micros(100));
            min = min.min(t0.elapsed());
        }
        assert!(
            min < Duration::from_micros(900),
            "sub-ms recv_timeout blocked in the kernel: min {min:?}"
        );
    }

    #[test]
    fn batch_verbs_roundtrip_and_match_scalar_counters() {
        let (_book, mut a, mut b) = pair();
        let mk = |i: u64| -> (NodeId, Pkt) {
            (
                NodeId::Replica(ReplicaId(0)),
                Packet::new(
                    NodeId::Client(ClientId(1)),
                    NodeId::Replica(ReplicaId(0)),
                    harmonia_types::PacketBody::Protocol(i),
                ),
            )
        };
        let n = 50u64;
        let mut batch: Vec<(NodeId, Pkt)> = (0..n).map(mk).collect();
        a.send_batch(&mut batch);
        assert!(batch.is_empty(), "send_batch must drain its input");
        assert_eq!(a.stats().sent, n);

        // Wait for the first packet, then batch-drain the rest.
        let mut got = vec![b.recv_timeout(Duration::from_secs(2)).unwrap()];
        let deadline = Instant::now() + Duration::from_secs(2);
        while (got.len() as u64) < n && Instant::now() < deadline {
            if b.recv_batch(&mut got, 64) == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        assert_eq!(got.len() as u64, n);
        // In-order on loopback, and payloads intact.
        for (i, pkt) in got.iter().enumerate() {
            assert_eq!(*pkt, mk(i as u64).1);
        }
        assert_eq!(b.stats().received, n);
    }

    #[test]
    fn steady_state_receive_is_allocation_free() {
        let (_book, mut a, mut b) = pair();
        let pkt: Pkt = Packet::new(
            NodeId::Client(ClientId(1)),
            NodeId::Replica(ReplicaId(0)),
            harmonia_types::PacketBody::Protocol(9),
        );
        // Steady state: one packet in flight at a time, payload dropped
        // before the next receive, so the pool always has a reclaimable
        // buffer. Everything after warm-up must be a pool hit.
        let rounds = 200u64;
        for _ in 0..rounds {
            a.send(NodeId::Replica(ReplicaId(0)), pkt.clone());
            let got = b.recv_timeout(Duration::from_secs(2)).unwrap();
            assert_eq!(got, pkt);
        }
        let s = b.pool_stats();
        assert!(
            s.misses <= 2,
            "steady-state receive allocated {} times",
            s.misses
        );
        assert!(s.hit_rate() > 0.95, "pool hit rate {:.3}", s.hit_rate());
    }

    #[test]
    fn spine_entry_routes_to_the_owning_group_socket() {
        let book = Arc::new(AddrBook::new());
        let mut sender = UdpTransport::<u64>::bind(Arc::clone(&book)).unwrap();
        let mut g0 = UdpTransport::<u64>::bind(Arc::clone(&book)).unwrap();
        let mut g1 = UdpTransport::<u64>::bind(Arc::clone(&book)).unwrap();
        let shards = ShardMap::new(2);
        let stable = NodeId::Switch(SwitchId(1));
        book.install_spine(vec![stable], shards, vec![g0.local_addr(), g1.local_addr()]);
        // Find one key per group and check delivery lands on that group.
        for want in 0..2u32 {
            let key = (0..100u32)
                .map(|i| format!("k{i}"))
                .find(|k| shards.shard_of_key(k.as_bytes()) == want)
                .unwrap();
            let req = ClientRequest::read(ClientId(1), RequestId(u64::from(want)), key);
            let pkt: Pkt = Packet::new(
                NodeId::Client(ClientId(1)),
                stable,
                harmonia_types::PacketBody::Request(req),
            );
            sender.send(stable, pkt.clone());
            let owner = if want == 0 { &mut g0 } else { &mut g1 };
            assert_eq!(owner.recv_timeout(Duration::from_secs(2)).unwrap(), pkt);
        }
        // The other group saw nothing.
        assert!(g0.recv_timeout(Duration::from_millis(10)).is_err());
        assert!(g1.recv_timeout(Duration::from_millis(10)).is_err());
    }
}
