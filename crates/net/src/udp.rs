//! A [`Transport`] endpoint over one `std::net::UdpSocket`.

use std::io::ErrorKind;
use std::marker::PhantomData;
use std::net::{SocketAddr, UdpSocket};
use std::sync::Arc;
use std::time::{Duration, Instant};

use harmonia_types::wire::{decode_frame, encode_frame, Wire};
use harmonia_types::{NodeId, Packet};

use crate::addr::{AddrBook, Directory};
use crate::transport::{RecvError, Transport};

/// Datagram counters of one endpoint (telemetry for tests and examples).
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct TransportStats {
    /// Datagrams handed to the kernel.
    pub sent: u64,
    /// Datagrams successfully decoded into packets.
    pub received: u64,
    /// Sends whose destination did not resolve (dropped).
    pub unresolved: u64,
    /// Inbound datagrams that failed to decode (dropped) — garbage,
    /// truncated frames, or oversized declared lengths.
    pub decode_errors: u64,
    /// Outbound packets too large for one frame (dropped, never truncated).
    pub oversized: u64,
}

/// One node's UDP endpoint: a loopback socket plus the deployment's
/// [`AddrBook`].
///
/// A packet is exactly one datagram holding one
/// [`encode_frame`]d `Packet<T>`. Inbound datagrams that do not decode are
/// counted and discarded — the receive loop never panics and never
/// allocates beyond [`MAX_FRAME_BYTES`](harmonia_types::MAX_FRAME_BYTES) on
/// untrusted input; that hardening is what `tests/proptests.rs` pins.
pub struct UdpTransport<T> {
    socket: UdpSocket,
    book: Arc<AddrBook>,
    /// Cached directory snapshot + the generation it was taken at: sends
    /// revalidate with one atomic load and re-snapshot only after a
    /// registration — the same no-lock-per-send discipline as the channel
    /// driver's router handles.
    directory: Arc<Directory>,
    seen_generation: u64,
    local: SocketAddr,
    dsts: Vec<SocketAddr>,
    buf: Vec<u8>,
    stats: TransportStats,
    /// Last-applied socket read mode, so steady-state receive loops (which
    /// wait with the same timeout over and over) skip the reconfiguration
    /// syscalls: `None` = nonblocking, `Some(d)` = blocking with timeout
    /// `d`, unset at bind time.
    read_mode: Option<Option<Duration>>,
    _payload: PhantomData<fn() -> T>,
}

impl<T> UdpTransport<T> {
    /// Bind a fresh endpoint on an ephemeral loopback port. The endpoint is
    /// anonymous until the caller registers its
    /// [`local_addr`](Self::local_addr) in the book under a `NodeId` (or
    /// hands it to the spine entry).
    pub fn bind(book: Arc<AddrBook>) -> std::io::Result<Self> {
        let socket = UdpSocket::bind(("127.0.0.1", 0))?;
        let local = socket.local_addr()?;
        let seen_generation = book.generation();
        let directory = book.snapshot();
        Ok(UdpTransport {
            socket,
            book,
            directory,
            seen_generation,
            local,
            dsts: Vec::new(),
            // One datagram is at most u16::MAX bytes; the codec's frame
            // bound is tighter, but the buffer covers the whole datagram so
            // oversized garbage is drained (and counted), not left queued.
            buf: vec![0u8; usize::from(u16::MAX)],
            stats: TransportStats::default(),
            read_mode: None,
            _payload: PhantomData,
        })
    }

    /// The socket address this endpoint receives on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Datagram counters so far.
    pub fn stats(&self) -> TransportStats {
        self.stats
    }

    /// The deployment's address book.
    pub fn book(&self) -> &Arc<AddrBook> {
        &self.book
    }

    /// Put the socket in the requested read mode (`None` = nonblocking,
    /// `Some(d)` = blocking with timeout `d`), skipping the syscalls when
    /// it is already there — receive loops wait with the same sliced
    /// timeout over and over, so the steady state is recv-only.
    fn set_read_mode(&mut self, mode: Option<Duration>) {
        if self.read_mode == Some(mode) {
            return;
        }
        match mode {
            Some(wait) => {
                self.socket
                    .set_nonblocking(false)
                    .expect("set UDP socket blocking");
                self.socket
                    .set_read_timeout(Some(wait))
                    .expect("set UDP read timeout");
            }
            None => {
                self.socket
                    .set_nonblocking(true)
                    .expect("set UDP socket nonblocking");
            }
        }
        self.read_mode = Some(mode);
    }
}

impl<T: Wire + Send> Transport<T> for UdpTransport<T> {
    fn send(&mut self, to: NodeId, pkt: Packet<T>) {
        // Resolve before encoding: an unresolvable destination (e.g. a
        // killed switch mid-§5.3) costs one atomic load, not a full codec
        // pass on a frame that would only be discarded.
        let generation = self.book.generation();
        if generation != self.seen_generation {
            self.directory = self.book.snapshot();
            self.seen_generation = generation;
        }
        self.directory.resolve(to, &pkt.body, &mut self.dsts);
        if self.dsts.is_empty() {
            self.stats.unresolved += 1;
            return;
        }
        let frame = match encode_frame(&pkt) {
            Ok(frame) => frame,
            Err(_) => {
                // Too big for one datagram: dropping beats truncating — the
                // peer would reject a cut frame anyway, and the client's
                // retry/timeout loop owns recovery.
                self.stats.oversized += 1;
                return;
            }
        };
        for i in 0..self.dsts.len() {
            if self.socket.send_to(&frame, self.dsts[i]).is_ok() {
                self.stats.sent += 1;
            }
        }
    }

    /// A zero `timeout` is a nonblocking poll: it drains any queued
    /// datagram without waiting (the batched-drain path of the switch
    /// pipelines); otherwise the call waits until the deadline.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Packet<T>, RecvError> {
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            let blocking = !remaining.is_zero();
            if blocking {
                // `set_read_timeout(Some(0))` is an error by contract.
                self.set_read_mode(Some(remaining.max(Duration::from_millis(1))));
            } else {
                self.set_read_mode(None);
            }
            match self.socket.recv(&mut self.buf) {
                Ok(n) => match decode_frame::<Packet<T>>(&self.buf[..n]) {
                    Ok(Some((pkt, _))) => {
                        self.stats.received += 1;
                        return Ok(pkt);
                    }
                    // Truncated or malformed datagram: drop and keep
                    // listening — untrusted bytes must never take the
                    // endpoint down.
                    Ok(None) | Err(_) => {
                        self.stats.decode_errors += 1;
                    }
                },
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    if !blocking {
                        return Err(RecvError::TimedOut);
                    }
                }
                // Transient kernel errors (e.g. ECONNRESET from an ICMP
                // port-unreachable on a dead peer) — keep listening.
                Err(_) => {
                    if !blocking {
                        return Err(RecvError::TimedOut);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_types::{ClientId, ClientRequest, ReplicaId, RequestId, SwitchId};
    use harmonia_workload::ShardMap;

    type Pkt = Packet<u64>;

    fn pair() -> (Arc<AddrBook>, UdpTransport<u64>, UdpTransport<u64>) {
        let book = Arc::new(AddrBook::new());
        let a = UdpTransport::bind(Arc::clone(&book)).unwrap();
        let b = UdpTransport::bind(Arc::clone(&book)).unwrap();
        book.register(NodeId::Client(ClientId(1)), a.local_addr());
        book.register(NodeId::Replica(ReplicaId(0)), b.local_addr());
        (book, a, b)
    }

    #[test]
    fn datagram_roundtrip_between_endpoints() {
        let (_book, mut a, mut b) = pair();
        let pkt: Pkt = Packet::new(
            NodeId::Client(ClientId(1)),
            NodeId::Replica(ReplicaId(0)),
            harmonia_types::PacketBody::Protocol(0xfeed),
        );
        a.send(NodeId::Replica(ReplicaId(0)), pkt.clone());
        let got = b.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(got, pkt);
        assert_eq!(a.stats().sent, 1);
        assert_eq!(b.stats().received, 1);

        // Zero timeout = nonblocking poll: drains a queued datagram,
        // returns TimedOut on an empty queue.
        a.send(NodeId::Replica(ReplicaId(0)), pkt.clone());
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(b.recv_timeout(Duration::ZERO).unwrap(), pkt);
        assert_eq!(
            b.recv_timeout(Duration::ZERO),
            Err(crate::transport::RecvError::TimedOut)
        );
    }

    #[test]
    fn unresolved_destination_is_dropped_not_an_error() {
        let (_book, mut a, _b) = pair();
        let pkt: Pkt = Packet::new(
            NodeId::Client(ClientId(1)),
            NodeId::Replica(ReplicaId(42)),
            harmonia_types::PacketBody::Protocol(1),
        );
        a.send(NodeId::Replica(ReplicaId(42)), pkt);
        assert_eq!(a.stats().unresolved, 1);
        assert_eq!(a.stats().sent, 0);
    }

    #[test]
    fn garbage_datagrams_are_counted_and_skipped() {
        let (_book, mut a, mut b) = pair();
        // Raw garbage straight to b's socket, then a valid packet: the
        // receive loop must skip the garbage and deliver the packet.
        let raw = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
        raw.send_to(&[0xff; 40], b.local_addr()).unwrap();
        raw.send_to(&[1, 2], b.local_addr()).unwrap();
        let pkt: Pkt = Packet::new(
            NodeId::Client(ClientId(1)),
            NodeId::Replica(ReplicaId(0)),
            harmonia_types::PacketBody::Protocol(3),
        );
        a.send(NodeId::Replica(ReplicaId(0)), pkt.clone());
        let got = b.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(got, pkt);
        assert_eq!(b.stats().decode_errors, 2);
    }

    #[test]
    fn spine_entry_routes_to_the_owning_group_socket() {
        let book = Arc::new(AddrBook::new());
        let mut sender = UdpTransport::<u64>::bind(Arc::clone(&book)).unwrap();
        let mut g0 = UdpTransport::<u64>::bind(Arc::clone(&book)).unwrap();
        let mut g1 = UdpTransport::<u64>::bind(Arc::clone(&book)).unwrap();
        let shards = ShardMap::new(2);
        let stable = NodeId::Switch(SwitchId(1));
        book.install_spine(vec![stable], shards, vec![g0.local_addr(), g1.local_addr()]);
        // Find one key per group and check delivery lands on that group.
        for want in 0..2u32 {
            let key = (0..100u32)
                .map(|i| format!("k{i}"))
                .find(|k| shards.shard_of_key(k.as_bytes()) == want)
                .unwrap();
            let req = ClientRequest::read(ClientId(1), RequestId(u64::from(want)), key);
            let pkt: Pkt = Packet::new(
                NodeId::Client(ClientId(1)),
                stable,
                harmonia_types::PacketBody::Request(req),
            );
            sender.send(stable, pkt.clone());
            let owner = if want == 0 { &mut g0 } else { &mut g1 };
            assert_eq!(owner.recv_timeout(Duration::from_secs(2)).unwrap(), pkt);
        }
        // The other group saw nothing.
        assert!(g0.recv_timeout(Duration::from_millis(10)).is_err());
        assert!(g1.recv_timeout(Duration::from_millis(10)).is_err());
    }
}
