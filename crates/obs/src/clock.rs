//! Time sources for instrumentation.
//!
//! The determinism rule (harmonia-lint, `clippy.toml`) bans wall-clock
//! reads from deterministic crates; this module is where the one sanctioned
//! real-time source lives. Simulated components never call a clock at all —
//! they stamp events with the virtual instant they already hold — while the
//! live/UDP drivers share a [`MonotonicClock`] anchored at rig start so
//! every thread's timestamps are mutually comparable.

// The monotonic clock is the drivers' one sanctioned wall-clock read; the
// clippy disallowed-methods layer is waived for this module only.
#![allow(clippy::disallowed_methods)]

use std::sync::atomic::{AtomicU64, Ordering};

use harmonia_types::{Duration, Instant};

// lint:allow(determinism): the monotonic clock below is the live drivers' single sanctioned real-time source; sim code never constructs it
use std::time::Instant as StdInstant;

/// A source of [`Instant`]s for instrumentation. Virtual in the sim,
/// monotonic in the live/UDP drivers, manual in tests.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// The current instant on this clock's timeline.
    fn now(&self) -> Instant;
}

/// Always returns [`Instant::ZERO`]. The registry default for contexts
/// (the simulator) that stamp events explicitly and never ask the clock.
#[derive(Default, Debug, Clone, Copy)]
pub struct NullClock;

impl Clock for NullClock {
    fn now(&self) -> Instant {
        Instant::ZERO
    }
}

/// A settable clock for tests and harnesses that drive time by hand.
#[derive(Default, Debug)]
pub struct ManualClock {
    nanos: AtomicU64,
}

impl ManualClock {
    /// A manual clock starting at [`Instant::ZERO`].
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// Jump to an absolute instant.
    pub fn set(&self, at: Instant) {
        self.nanos.store(at.nanos(), Ordering::Relaxed);
    }

    /// Advance by `d`.
    pub fn advance(&self, d: Duration) {
        self.nanos.fetch_add(d.nanos(), Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Instant {
        Instant::ZERO + Duration::from_nanos(self.nanos.load(Ordering::Relaxed))
    }
}

/// Real elapsed time since construction, as a virtual [`Instant`] timeline
/// starting at zero. One instance is shared by every thread of a live rig
/// so their trace timestamps interleave correctly.
#[derive(Debug, Clone, Copy)]
pub struct MonotonicClock {
    epoch: StdInstant,
}

impl MonotonicClock {
    /// Anchor the timeline at the current wall instant.
    pub fn new() -> Self {
        MonotonicClock {
            epoch: StdInstant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now(&self) -> Instant {
        Instant::ZERO + Duration::from_nanos(self.epoch.elapsed().as_nanos() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_clock_is_zero() {
        assert_eq!(NullClock.now(), Instant::ZERO);
    }

    #[test]
    fn manual_clock_sets_and_advances() {
        let c = ManualClock::new();
        assert_eq!(c.now(), Instant::ZERO);
        c.set(Instant::ZERO + Duration::from_micros(5));
        c.advance(Duration::from_micros(2));
        assert_eq!(c.now(), Instant::ZERO + Duration::from_micros(7));
    }

    #[test]
    fn monotonic_clock_never_goes_backwards() {
        let c = MonotonicClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }
}
