//! Snapshot renderers: Prometheus text exposition and JSON.
//!
//! Both renderers are hand-rolled over the plain-data [`ObsSnapshot`] —
//! field order is fixed in code, so the same snapshot always renders to the
//! same bytes (the determinism suite diffs rendered snapshots across
//! same-seed runs). All metric names carry a `harmonia_` prefix and
//! `driver`/`protocol` labels so several drivers can be scraped into one
//! store without collisions.

use std::fmt::Write as _;

use crate::snapshot::ObsSnapshot;
use crate::OBS_SCHEMA_VERSION;

/// Render a snapshot in the Prometheus text exposition format.
pub fn prometheus_text(s: &ObsSnapshot) -> String {
    let mut out = String::new();
    let labels = format!("driver=\"{}\",protocol=\"{}\"", s.driver, s.protocol);

    let counter = |out: &mut String, name: &str, help: &str, v: u64| {
        let _ = writeln!(out, "# HELP harmonia_{name} {help}");
        let _ = writeln!(out, "# TYPE harmonia_{name} counter");
        let _ = writeln!(out, "harmonia_{name}{{{labels}}} {v}");
    };
    let gauge = |out: &mut String, name: &str, help: &str, v: u64| {
        let _ = writeln!(out, "# HELP harmonia_{name} {help}");
        let _ = writeln!(out, "# TYPE harmonia_{name} gauge");
        let _ = writeln!(out, "harmonia_{name}{{{labels}}} {v}");
    };

    gauge(
        &mut out,
        "obs_schema_version",
        "Snapshot schema version.",
        u64::from(OBS_SCHEMA_VERSION),
    );
    gauge(
        &mut out,
        "groups",
        "Replica-group count.",
        u64::from(s.groups),
    );
    gauge(
        &mut out,
        "replicas",
        "Replicas per deployment.",
        u64::from(s.replicas),
    );
    gauge(
        &mut out,
        "taken_at_ns",
        "Snapshot time on the driver clock.",
        s.taken_at_ns,
    );

    let sw = &s.switch;
    counter(
        &mut out,
        "switch_reads_fast_path",
        "Reads served on the fast path.",
        sw.reads_fast_path,
    );
    counter(
        &mut out,
        "switch_reads_normal",
        "Reads routed through the normal protocol.",
        sw.reads_normal,
    );
    counter(
        &mut out,
        "switch_writes_forwarded",
        "Writes stamped and forwarded.",
        sw.writes_forwarded,
    );
    counter(
        &mut out,
        "switch_writes_dropped",
        "Writes dropped (dirty set full).",
        sw.writes_dropped,
    );
    counter(
        &mut out,
        "switch_completions",
        "WRITE-COMPLETIONs processed.",
        sw.completions,
    );
    counter(
        &mut out,
        "switch_forwarded_other",
        "Protocol packets forwarded by plain L2/L3.",
        sw.forwarded_other,
    );
    counter(
        &mut out,
        "switch_swept",
        "Dirty-set entries reclaimed by sweeps.",
        sw.swept,
    );
    gauge(
        &mut out,
        "switch_fast_path_groups",
        "Groups with the fast path enabled.",
        sw.fast_path_groups,
    );
    gauge(
        &mut out,
        "switch_dirty_len",
        "Total dirty-set occupancy.",
        sw.dirty_len,
    );
    gauge(
        &mut out,
        "switch_memory_bytes",
        "Dirty-set SRAM consumed, bytes.",
        sw.memory_bytes,
    );

    let tr = &s.transport;
    counter(
        &mut out,
        "net_frames_sent",
        "Frames handed to the socket layer.",
        tr.frames_sent,
    );
    counter(
        &mut out,
        "net_datagrams_sent",
        "Datagrams actually sent.",
        tr.datagrams_sent,
    );
    counter(
        &mut out,
        "net_frames_received",
        "Frames received and decoded.",
        tr.frames_received,
    );
    counter(
        &mut out,
        "net_unresolved",
        "Frames for unresolved peers.",
        tr.unresolved,
    );
    counter(
        &mut out,
        "net_decode_errors",
        "Undecodable frames.",
        tr.decode_errors,
    );
    counter(
        &mut out,
        "net_salvaged",
        "Frames salvaged from corrupt datagrams.",
        tr.salvaged,
    );
    counter(
        &mut out,
        "net_oversized",
        "Frames too large to encode.",
        tr.oversized,
    );
    counter(
        &mut out,
        "net_send_errors",
        "Socket send errors.",
        tr.send_errors,
    );
    counter(
        &mut out,
        "net_config_errors",
        "Configuration errors.",
        tr.config_errors,
    );

    counter(
        &mut out,
        "pool_recv_hits",
        "Receive-pool reuse hits.",
        s.pool.recv_hits,
    );
    counter(
        &mut out,
        "pool_recv_misses",
        "Receive-pool fresh allocations.",
        s.pool.recv_misses,
    );
    counter(
        &mut out,
        "pool_send_hits",
        "Send-pool reuse hits.",
        s.pool.send_hits,
    );
    counter(
        &mut out,
        "pool_send_misses",
        "Send-pool fresh allocations.",
        s.pool.send_misses,
    );

    counter(
        &mut out,
        "faults_dropped",
        "Packets dropped in flight.",
        s.faults.dropped,
    );
    counter(
        &mut out,
        "faults_duplicated",
        "Packets duplicated in flight.",
        s.faults.duplicated,
    );
    counter(
        &mut out,
        "faults_reordered",
        "Packets delayed out of order.",
        s.faults.reordered,
    );
    counter(
        &mut out,
        "faults_discarded",
        "Packets discarded at dead destinations.",
        s.faults.discarded,
    );

    let cl = &s.clients;
    counter(
        &mut out,
        "client_reads_sent",
        "Read operations issued.",
        cl.reads_sent,
    );
    counter(
        &mut out,
        "client_writes_sent",
        "Write operations issued.",
        cl.writes_sent,
    );
    counter(
        &mut out,
        "client_reads_done",
        "Reads completed.",
        cl.reads_done,
    );
    counter(
        &mut out,
        "client_writes_done",
        "Writes acknowledged.",
        cl.writes_done,
    );
    counter(
        &mut out,
        "client_writes_rejected",
        "Writes rejected at the spine.",
        cl.writes_rejected,
    );
    counter(
        &mut out,
        "client_timeouts",
        "Operations timed out.",
        cl.timeouts,
    );
    counter(
        &mut out,
        "client_retries",
        "Retransmissions sent.",
        cl.retries,
    );

    let rp = &s.replica;
    counter(
        &mut out,
        "replica_requests",
        "Client requests executed.",
        rp.requests,
    );
    counter(
        &mut out,
        "replica_protocol_msgs",
        "Protocol messages handled.",
        rp.protocol_msgs,
    );
    counter(
        &mut out,
        "replica_transfers",
        "State-transfer messages handled.",
        rp.transfers,
    );
    counter(
        &mut out,
        "replica_shed",
        "Requests shed while recovering.",
        rp.shed,
    );
    counter(
        &mut out,
        "replica_stray",
        "Packets matching no handler.",
        rp.stray,
    );

    counter(
        &mut out,
        "trace_events_recorded",
        "Trace events ever pushed.",
        s.trace.recorded,
    );
    counter(
        &mut out,
        "trace_events_dropped",
        "Trace events lost to ring overflow.",
        s.trace.dropped,
    );

    for (name, h) in [
        ("read_latency_ns", &s.read_latency),
        ("write_latency_ns", &s.write_latency),
    ] {
        let _ = writeln!(
            out,
            "# HELP harmonia_{name} Client-observed latency, nanoseconds."
        );
        let _ = writeln!(out, "# TYPE harmonia_{name} summary");
        let _ = writeln!(
            out,
            "harmonia_{name}{{{labels},quantile=\"0.5\"}} {}",
            h.p50_ns
        );
        let _ = writeln!(
            out,
            "harmonia_{name}{{{labels},quantile=\"0.99\"}} {}",
            h.p99_ns
        );
        let _ = writeln!(
            out,
            "harmonia_{name}{{{labels},quantile=\"0.999\"}} {}",
            h.p999_ns
        );
        let _ = writeln!(
            out,
            "harmonia_{name}_sum{{{labels}}} {}",
            h.mean_ns.saturating_mul(h.count)
        );
        let _ = writeln!(out, "harmonia_{name}_count{{{labels}}} {}", h.count);
        let _ = writeln!(out, "harmonia_{name}_max{{{labels}}} {}", h.max_ns);
    }

    for g in &s.per_group {
        let gl = format!("{labels},group=\"{}\"", g.group);
        let _ = writeln!(
            out,
            "harmonia_group_reads_fast_path{{{gl}}} {}",
            g.reads_fast_path
        );
        let _ = writeln!(
            out,
            "harmonia_group_reads_normal{{{gl}}} {}",
            g.reads_normal
        );
        let _ = writeln!(
            out,
            "harmonia_group_writes_forwarded{{{gl}}} {}",
            g.writes_forwarded
        );
        let _ = writeln!(
            out,
            "harmonia_group_writes_dropped{{{gl}}} {}",
            g.writes_dropped
        );
        let _ = writeln!(
            out,
            "harmonia_group_fast_path_enabled{{{gl}}} {}",
            u64::from(g.fast_path_enabled)
        );
        let _ = writeln!(out, "harmonia_group_dirty_len{{{gl}}} {}", g.dirty_len);
        let _ = writeln!(
            out,
            "harmonia_group_memory_bytes{{{gl}}} {}",
            g.memory_bytes
        );
    }

    out
}

/// Render a snapshot as a single JSON document with a fixed key order.
pub fn json_text(s: &ObsSnapshot) -> String {
    let mut o = String::new();
    let _ = write!(o, "{{\n  \"schema_version\": {OBS_SCHEMA_VERSION},");
    let _ = write!(o, "\n  \"driver\": \"{}\",", s.driver);
    let _ = write!(o, "\n  \"protocol\": \"{}\",", s.protocol);
    let _ = write!(o, "\n  \"groups\": {},", s.groups);
    let _ = write!(o, "\n  \"replicas\": {},", s.replicas);
    let _ = write!(o, "\n  \"taken_at_ns\": {},", s.taken_at_ns);

    let sw = &s.switch;
    let _ = write!(
        o,
        "\n  \"switch\": {{\"reads_fast_path\": {}, \"reads_normal\": {}, \"writes_forwarded\": {}, \
         \"writes_dropped\": {}, \"completions\": {}, \"forwarded_other\": {}, \"swept\": {}, \
         \"fast_path_groups\": {}, \"dirty_len\": {}, \"memory_bytes\": {}}},",
        sw.reads_fast_path,
        sw.reads_normal,
        sw.writes_forwarded,
        sw.writes_dropped,
        sw.completions,
        sw.forwarded_other,
        sw.swept,
        sw.fast_path_groups,
        sw.dirty_len,
        sw.memory_bytes
    );

    let _ = write!(o, "\n  \"per_group\": [");
    for (i, g) in s.per_group.iter().enumerate() {
        let sep = if i == 0 { "" } else { ", " };
        let _ = write!(
            o,
            "{sep}{{\"group\": {}, \"reads_fast_path\": {}, \"reads_normal\": {}, \
             \"writes_forwarded\": {}, \"writes_dropped\": {}, \"fast_path_enabled\": {}, \
             \"dirty_len\": {}, \"memory_bytes\": {}}}",
            g.group,
            g.reads_fast_path,
            g.reads_normal,
            g.writes_forwarded,
            g.writes_dropped,
            g.fast_path_enabled,
            g.dirty_len,
            g.memory_bytes
        );
    }
    let _ = write!(o, "],");

    let tr = &s.transport;
    let _ = write!(
        o,
        "\n  \"transport\": {{\"frames_sent\": {}, \"datagrams_sent\": {}, \"frames_received\": {}, \
         \"unresolved\": {}, \"decode_errors\": {}, \"salvaged\": {}, \"oversized\": {}, \
         \"send_errors\": {}, \"config_errors\": {}}},",
        tr.frames_sent,
        tr.datagrams_sent,
        tr.frames_received,
        tr.unresolved,
        tr.decode_errors,
        tr.salvaged,
        tr.oversized,
        tr.send_errors,
        tr.config_errors
    );

    let _ = write!(
        o,
        "\n  \"pool\": {{\"recv_hits\": {}, \"recv_misses\": {}, \"send_hits\": {}, \
         \"send_misses\": {}, \"recv_hit_rate\": {:.6}, \"send_hit_rate\": {:.6}}},",
        s.pool.recv_hits,
        s.pool.recv_misses,
        s.pool.send_hits,
        s.pool.send_misses,
        s.pool.recv_hit_rate(),
        s.pool.send_hit_rate()
    );

    let _ = write!(
        o,
        "\n  \"faults\": {{\"dropped\": {}, \"duplicated\": {}, \"reordered\": {}, \"discarded\": {}}},",
        s.faults.dropped, s.faults.duplicated, s.faults.reordered, s.faults.discarded
    );

    let cl = &s.clients;
    let _ = write!(
        o,
        "\n  \"clients\": {{\"reads_sent\": {}, \"writes_sent\": {}, \"reads_done\": {}, \
         \"writes_done\": {}, \"writes_rejected\": {}, \"timeouts\": {}, \"retries\": {}}},",
        cl.reads_sent,
        cl.writes_sent,
        cl.reads_done,
        cl.writes_done,
        cl.writes_rejected,
        cl.timeouts,
        cl.retries
    );

    let rp = &s.replica;
    let _ = write!(
        o,
        "\n  \"replica\": {{\"requests\": {}, \"protocol_msgs\": {}, \"transfers\": {}, \
         \"shed\": {}, \"stray\": {}}},",
        rp.requests, rp.protocol_msgs, rp.transfers, rp.shed, rp.stray
    );

    for (name, h) in [
        ("read_latency", &s.read_latency),
        ("write_latency", &s.write_latency),
    ] {
        let _ = write!(
            o,
            "\n  \"{name}\": {{\"count\": {}, \"mean_ns\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \
             \"p999_ns\": {}, \"max_ns\": {}}},",
            h.count, h.mean_ns, h.p50_ns, h.p99_ns, h.p999_ns, h.max_ns
        );
    }

    let _ = write!(
        o,
        "\n  \"trace\": {{\"recorded\": {}, \"dropped\": {}}}\n}}\n",
        s.trace.recorded, s.trace.dropped
    );
    o
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::HistSummary;
    use crate::snapshot::GroupObs;

    fn sample() -> ObsSnapshot {
        let mut s = ObsSnapshot {
            driver: "sim",
            protocol: "craq",
            groups: 2,
            replicas: 3,
            ..ObsSnapshot::default()
        };
        s.switch.reads_fast_path = 7;
        s.per_group = vec![
            GroupObs {
                group: 0,
                reads_fast_path: 4,
                ..GroupObs::default()
            },
            GroupObs {
                group: 1,
                reads_fast_path: 3,
                ..GroupObs::default()
            },
        ];
        s.read_latency = HistSummary {
            count: 10,
            mean_ns: 1000,
            p50_ns: 900,
            p99_ns: 2000,
            p999_ns: 2100,
            max_ns: 2200,
        };
        s
    }

    #[test]
    fn prometheus_has_types_labels_and_quantiles() {
        let text = prometheus_text(&sample());
        assert!(text.contains("# TYPE harmonia_switch_reads_fast_path counter"));
        assert!(
            text.contains("harmonia_switch_reads_fast_path{driver=\"sim\",protocol=\"craq\"} 7")
        );
        assert!(text.contains("quantile=\"0.999\"} 2100"));
        assert!(text.contains(
            "harmonia_group_reads_fast_path{driver=\"sim\",protocol=\"craq\",group=\"1\"} 3"
        ));
    }

    #[test]
    fn json_is_stable_and_versioned() {
        let s = sample();
        let a = json_text(&s);
        let b = json_text(&s);
        assert_eq!(a, b);
        assert!(a.starts_with("{\n  \"schema_version\": 1,"));
        assert!(a.contains("\"p999_ns\": 2100"));
        assert!(a.contains("\"per_group\": [{\"group\": 0,"));
        assert!(a.trim_end().ends_with('}'));
    }
}
