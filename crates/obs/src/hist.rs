//! Log-bucketed latency histogram with fixed memory.
//!
//! The layout follows HDR histograms: values below 32 ns get exact unit
//! buckets; above that, each power-of-two range is split into 32 sub-buckets,
//! so the relative quantization error is bounded by 1/32 ≈ 3.2%. The whole
//! `u64` nanosecond range fits in [`BUCKETS`] = 1920 slots (≈ 15 KiB), which
//! is why a histogram can sit on every packet-path thread without growing.
//!
//! Count, sum, min, and max are tracked exactly alongside the buckets, so
//! `mean()` is exact and `percentile(0.0)`/`percentile(1.0)` return the true
//! extremes; only interior percentiles are quantized.
//!
//! This module is on harmonia-lint's panic-freedom list: bucket access goes
//! through `get`/`get_mut`, never indexing.

use harmonia_types::Duration;

/// Precision bits: each power-of-two range is split into `2^5 = 32`
/// sub-buckets.
const PRECISION: u32 = 5;

/// Sub-buckets per power-of-two range.
const SUB: usize = 1 << PRECISION;

/// Total bucket count covering the full `u64` nanosecond range:
/// 32 unit buckets + 59 ranges × 32 sub-buckets.
pub const BUCKETS: usize = 60 * SUB;

/// Bucket index for a nanosecond value. Total order is preserved:
/// `a <= b` implies `index(a) <= index(b)`.
pub(crate) fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let range = (msb - PRECISION + 1) as usize;
        let sub = ((v >> (msb - PRECISION)) as usize) & (SUB - 1);
        range * SUB + sub
    }
}

/// Inverse of [`bucket_index`]: the `(lower_bound, width)` of bucket `b`.
/// Every value `v` with `bucket_index(v) == b` satisfies
/// `lower <= v < lower + width`.
fn bucket_bounds(b: usize) -> (u64, u64) {
    if b < SUB {
        (b as u64, 1)
    } else {
        let range = (b / SUB) as u32;
        let sub = (b % SUB) as u64;
        let msb = range + PRECISION - 1;
        let width = 1u64 << (msb - PRECISION);
        let lower = (1u64 << msb) + sub * width;
        (lower, width)
    }
}

/// A mergeable fixed-memory latency histogram (nanosecond domain).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// An empty histogram. Allocates its bucket array once, up front; the
    /// record path never allocates.
    pub fn new() -> Self {
        LogHistogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one duration.
    pub fn record(&mut self, d: Duration) {
        self.record_ns(d.nanos());
    }

    /// Record one raw nanosecond value.
    pub fn record_ns(&mut self, v: u64) {
        self.count += 1;
        self.sum += u128::from(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if let Some(b) = self.buckets.get_mut(bucket_index(v)) {
            *b += 1;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact arithmetic mean.
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos((self.sum / u128::from(self.count)) as u64)
    }

    /// Exact smallest recorded sample ([`Duration::ZERO`] when empty).
    pub fn min(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            Duration::from_nanos(self.min)
        }
    }

    /// Exact largest recorded sample.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max)
    }

    /// The `p`-th percentile (0.0 ..= 1.0). The extremes are exact; interior
    /// percentiles return the midpoint of the bucket holding that rank,
    /// clamped into `[min, max]` (≤ 3.2% relative error).
    pub fn percentile(&self, p: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        if p <= 0.0 {
            return self.min();
        }
        if p >= 1.0 {
            return self.max();
        }
        // Rank of the sample we want, matching the sorted-sample convention
        // `round((n - 1) * p)` used by the exact histogram it replaced.
        let rank = ((self.count as f64 - 1.0) * p).round() as u64;
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if n > 0 && seen > rank {
                let (lower, width) = bucket_bounds(b);
                let mid = lower + width / 2;
                return Duration::from_nanos(mid.clamp(self.min, self.max));
            }
        }
        self.max()
    }

    /// Rebuild a histogram from atomically captured parts (the recorder's
    /// shard drain). `buckets` shorter than [`BUCKETS`] is padded with zeros.
    pub(crate) fn from_raw(
        mut buckets: Vec<u64>,
        count: u64,
        sum: u128,
        min: u64,
        max: u64,
    ) -> Self {
        buckets.resize(BUCKETS, 0);
        LogHistogram {
            buckets,
            count,
            sum,
            min,
            max,
        }
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Discard all samples.
    pub fn reset(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }

    /// The fixed summary (count, mean, p50/p99/p999, max) used by snapshots.
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count,
            mean_ns: self.mean().nanos(),
            p50_ns: self.percentile(0.5).nanos(),
            p99_ns: self.percentile(0.99).nanos(),
            p999_ns: self.percentile(0.999).nanos(),
            max_ns: self.max().nanos(),
        }
    }
}

/// Point-in-time percentile summary of one [`LogHistogram`], as embedded in
/// [`crate::ObsSnapshot`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistSummary {
    /// Number of samples.
    pub count: u64,
    /// Exact mean, nanoseconds.
    pub mean_ns: u64,
    /// Median, nanoseconds (quantized).
    pub p50_ns: u64,
    /// 99th percentile, nanoseconds (quantized).
    pub p99_ns: u64,
    /// 99.9th percentile, nanoseconds (quantized).
    pub p999_ns: u64,
    /// Exact maximum, nanoseconds.
    pub max_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_is_monotone_and_in_range() {
        let mut vals: Vec<u64> = (0..64)
            .flat_map(|s| [0u64, 1, 3].map(|off| (1u64 << s).saturating_add(off)))
            .collect();
        vals.sort_unstable();
        let mut prev = 0usize;
        for v in vals {
            let b = bucket_index(v);
            assert!(b < BUCKETS, "v={v} b={b}");
            assert!(b >= prev, "index not monotone at v={v}");
            prev = b;
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(31), 31);
        assert_eq!(bucket_index(32), 32);
        assert_eq!(bucket_index(63), 63);
        assert_eq!(bucket_index(64), 64);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bounds_invert_index() {
        for v in [0u64, 1, 31, 32, 33, 63, 64, 100, 1 << 20, u64::MAX / 3] {
            let b = bucket_index(v);
            let (lower, width) = bucket_bounds(b);
            assert!(lower <= v && v < lower.saturating_add(width), "v={v}");
        }
    }

    #[test]
    fn uniform_ramp_stats() {
        let mut h = LogHistogram::new();
        for us in 1..=100u64 {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.mean(), Duration::from_nanos(50_500));
        assert_eq!(h.max(), Duration::from_micros(100));
        assert_eq!(h.percentile(0.0), Duration::from_micros(1));
        assert_eq!(h.percentile(1.0), Duration::from_micros(100));
        let p50 = h.percentile(0.5);
        assert!(
            p50 >= Duration::from_micros(48) && p50 <= Duration::from_micros(52),
            "p50={p50:?}"
        );
    }

    #[test]
    fn relative_error_bounded() {
        let mut h = LogHistogram::new();
        let v = 123_456_789u64;
        for _ in 0..10 {
            h.record_ns(v);
        }
        let got = h.percentile(0.5).nanos() as f64;
        let err = (got - v as f64).abs() / v as f64;
        assert!(err <= 1.0 / 32.0, "err={err}");
    }

    #[test]
    fn merge_matches_combined_recording() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut both = LogHistogram::new();
        for v in 0..500u64 {
            a.record_ns(v * 7);
            both.record_ns(v * 7);
        }
        for v in 0..300u64 {
            b.record_ns(v * 1311);
            both.record_ns(v * 1311);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn empty_is_zero() {
        let h = LogHistogram::new();
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.min(), Duration::ZERO);
        assert_eq!(h.percentile(0.99), Duration::ZERO);
        assert_eq!(h.summary(), HistSummary::default());
    }

    #[test]
    fn reset_clears() {
        let mut h = LogHistogram::new();
        h.record_ns(55);
        h.reset();
        assert_eq!(h, LogHistogram::new());
    }
}
