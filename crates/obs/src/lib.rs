//! `harmonia-obs` — the observability substrate every driver reports
//! through.
//!
//! The repo's telemetry used to be five disconnected structs (sim
//! `Metrics`, switch `SwitchStats`/`SpineView`, net `TransportStats`/
//! `PoolStats`/`FaultCounters`) with no unified view and no machine-
//! readable export. This crate is the common layer underneath all of them:
//!
//! - [`Clock`] — a time source abstraction so instrumentation stays legal
//!   under the determinism rule: the sim records at virtual instants it
//!   already holds (or a [`ManualClock`]), the live/UDP drivers use a
//!   [`MonotonicClock`] anchored at rig start.
//! - [`LogHistogram`] — a log-bucketed HDR-style latency histogram: fixed
//!   memory (1920 buckets, ≤ 3.2% relative error), exact mean/min/max,
//!   mergeable, allocation-free to record.
//! - [`Registry`]/[`Recorder`] — sharded per-thread recorders. Every
//!   pipeline thread, replica actor, `UdpLink`, and client owns a
//!   [`Recorder`] handle; counters and histogram buckets are relaxed
//!   atomics (wait-free, zero-alloc on the packet path) and the registry
//!   aggregates a copy-on-read snapshot on inspect. Each shard also owns a
//!   bounded [`TraceEvent`] ring buffer that drops oldest on overflow.
//! - [`ObsSnapshot`] — the typed whole-cluster snapshot the `Cluster`
//!   trait exposes on all three drivers, with [`prometheus_text`] and
//!   [`json_text`] renderers.
//!
//! The crate depends only on `harmonia-types` and is deterministic-checked
//! by `harmonia-lint` (the sole wall-clock read, [`MonotonicClock`], is an
//! explicitly waived site); `recorder.rs` and `hist.rs` are held to
//! packet-path panic freedom.

#![forbid(unsafe_code)]

mod clock;
mod export;
mod hist;
mod recorder;
mod snapshot;
mod trace;

pub use clock::{Clock, ManualClock, MonotonicClock, NullClock};
pub use export::{json_text, prometheus_text};
pub use hist::{HistSummary, LogHistogram, BUCKETS};
pub use recorder::{Counter, Recorder, RecorderSnapshot, Registry, Series, TraceRing};
pub use snapshot::{
    ClientObs, FaultObs, GroupObs, ObsSnapshot, PoolObs, ReplicaObs, SwitchObs, TraceObs,
    TransportObs, OBS_SCHEMA_VERSION,
};
pub use trace::{dump_for_key, dump_for_object, format_trace, TraceEvent, TraceStage};
