//! Sharded per-thread recorders and the registry that aggregates them.
//!
//! Every packet-path owner — a pipeline thread, a replica actor, a
//! `UdpLink`, a client — holds one [`Recorder`]. Recording is wait-free and
//! allocation-free: counters and histogram buckets are relaxed atomics in a
//! shard that only that owner writes. The [`Registry`] keeps a handle to
//! every shard and builds copy-on-read aggregates on inspect
//! ([`Registry::snapshot`], [`Registry::trace_events`]) — inspection pays
//! the merge cost so the packet path never does.
//!
//! Trace events go to a bounded per-shard ring ([`TraceRing`]) behind a
//! mutex that only the owner and the inspector ever touch, so it is
//! uncontended in steady state; the ring overwrites its oldest entry on
//! overflow and never blocks or grows.
//!
//! This module is on harmonia-lint's panic-freedom list: slot access goes
//! through `get`, mutex poisoning is absorbed with `into_inner`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use harmonia_types::{Duration, Instant, NodeId, ObjectId, TraceId};

use crate::clock::{Clock, NullClock};
use crate::hist::{LogHistogram, BUCKETS};
use crate::trace::{sort_timeline, TraceEvent, TraceStage};

/// Every counter the packet path records. One atomic slot per variant per
/// shard; the registry sums slots across shards on inspect.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Counter {
    /// Client: read operations issued.
    ReadsSent,
    /// Client: write operations issued.
    WritesSent,
    /// Client: reads completed.
    ReadsDone,
    /// Client: writes acknowledged.
    WritesDone,
    /// Client: writes rejected (dirty-set full, shed at the spine).
    WritesRejected,
    /// Client: operations that timed out.
    Timeouts,
    /// Client: retransmissions sent.
    Retries,
    /// Switch: packets handled by a group pipeline.
    SwitchPackets,
    /// Switch: dirty-set entries reclaimed by sweeps.
    SwitchSwept,
    /// Replica: client requests executed.
    ReplicaRequests,
    /// Replica: protocol-internal messages handled.
    ReplicaProtocol,
    /// Replica: state-transfer messages handled.
    ReplicaTransfer,
    /// Replica: requests shed while recovering.
    ReplicaShed,
    /// Replica: packets that matched no handler.
    ReplicaStray,
    /// Transport: frames handed to the socket layer.
    FramesSent,
    /// Transport: datagrams actually sent (≤ frames when coalescing).
    DatagramsSent,
    /// Transport: frames received and decoded.
    FramesReceived,
    /// Transport: frames for peers missing from the address map.
    Unresolved,
    /// Transport: undecodable frames.
    DecodeErrors,
    /// Transport: frames salvaged from partially corrupt datagrams.
    Salvaged,
    /// Transport: frames too large to encode.
    Oversized,
    /// Transport: socket send errors.
    SendErrors,
    /// Transport: configuration errors (bad peer, bad socket state).
    ConfigErrors,
    /// Receive buffer pool: reuse hits.
    RecvPoolHits,
    /// Receive buffer pool: fresh allocations.
    RecvPoolMisses,
    /// Send buffer pool: reuse hits.
    SendPoolHits,
    /// Send buffer pool: fresh allocations.
    SendPoolMisses,
}

impl Counter {
    /// Every variant, in declaration (= slot) order.
    pub const ALL: [Counter; 27] = [
        Counter::ReadsSent,
        Counter::WritesSent,
        Counter::ReadsDone,
        Counter::WritesDone,
        Counter::WritesRejected,
        Counter::Timeouts,
        Counter::Retries,
        Counter::SwitchPackets,
        Counter::SwitchSwept,
        Counter::ReplicaRequests,
        Counter::ReplicaProtocol,
        Counter::ReplicaTransfer,
        Counter::ReplicaShed,
        Counter::ReplicaStray,
        Counter::FramesSent,
        Counter::DatagramsSent,
        Counter::FramesReceived,
        Counter::Unresolved,
        Counter::DecodeErrors,
        Counter::Salvaged,
        Counter::Oversized,
        Counter::SendErrors,
        Counter::ConfigErrors,
        Counter::RecvPoolHits,
        Counter::RecvPoolMisses,
        Counter::SendPoolHits,
        Counter::SendPoolMisses,
    ];

    /// Stable snake_case name used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            Counter::ReadsSent => "client_reads_sent",
            Counter::WritesSent => "client_writes_sent",
            Counter::ReadsDone => "client_reads_done",
            Counter::WritesDone => "client_writes_done",
            Counter::WritesRejected => "client_writes_rejected",
            Counter::Timeouts => "client_timeouts",
            Counter::Retries => "client_retries",
            Counter::SwitchPackets => "switch_packets",
            Counter::SwitchSwept => "switch_swept",
            Counter::ReplicaRequests => "replica_requests",
            Counter::ReplicaProtocol => "replica_protocol_msgs",
            Counter::ReplicaTransfer => "replica_transfers",
            Counter::ReplicaShed => "replica_shed",
            Counter::ReplicaStray => "replica_stray",
            Counter::FramesSent => "net_frames_sent",
            Counter::DatagramsSent => "net_datagrams_sent",
            Counter::FramesReceived => "net_frames_received",
            Counter::Unresolved => "net_unresolved",
            Counter::DecodeErrors => "net_decode_errors",
            Counter::Salvaged => "net_salvaged",
            Counter::Oversized => "net_oversized",
            Counter::SendErrors => "net_send_errors",
            Counter::ConfigErrors => "net_config_errors",
            Counter::RecvPoolHits => "pool_recv_hits",
            Counter::RecvPoolMisses => "pool_recv_misses",
            Counter::SendPoolHits => "pool_send_hits",
            Counter::SendPoolMisses => "pool_send_misses",
        }
    }
}

/// The latency series the packet path records.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Series {
    /// Client-observed read latency (send → accepted reply).
    ReadLatency,
    /// Client-observed write latency (send → accepted reply).
    WriteLatency,
}

impl Series {
    /// Every variant, in declaration (= slot) order.
    pub const ALL: [Series; 2] = [Series::ReadLatency, Series::WriteLatency];

    /// Stable snake_case name used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            Series::ReadLatency => "read_latency",
            Series::WriteLatency => "write_latency",
        }
    }
}

/// Bounded trace ring: overwrites its oldest event when full, never grows,
/// never blocks, never panics.
#[derive(Debug)]
pub struct TraceRing {
    buf: Vec<TraceEvent>,
    cap: usize,
    next: usize,
    recorded: u64,
    dropped: u64,
}

impl TraceRing {
    /// A ring holding at most `cap` events (`cap` is clamped to ≥ 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        TraceRing {
            buf: Vec::with_capacity(cap),
            cap,
            next: 0,
            recorded: 0,
            dropped: 0,
        }
    }

    /// Append an event, overwriting the oldest if the ring is full.
    pub fn push(&mut self, e: TraceEvent) {
        self.recorded += 1;
        if self.buf.len() < self.cap {
            self.buf.push(e);
        } else {
            if let Some(slot) = self.buf.get_mut(self.next) {
                *slot = e;
            }
            self.next = (self.next + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(self.buf.get(self.next..).unwrap_or(&[]));
        out.extend_from_slice(self.buf.get(..self.next).unwrap_or(&[]));
        out
    }

    /// Maximum events retained.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Total events ever pushed.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Currently retained event count.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// A latency histogram whose buckets are relaxed atomics, so the owning
/// thread records without locks while the registry reads concurrently.
#[derive(Debug)]
struct AtomicHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl AtomicHistogram {
    fn new() -> Self {
        AtomicHistogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    fn record_ns(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        if let Some(b) = self.buckets.get(crate::hist::bucket_index(v)) {
            b.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn drain(&self) -> LogHistogram {
        let buckets = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        LogHistogram::from_raw(
            buckets,
            self.count.load(Ordering::Relaxed),
            u128::from(self.sum.load(Ordering::Relaxed)),
            self.min.load(Ordering::Relaxed),
            self.max.load(Ordering::Relaxed),
        )
    }
}

/// One owner's slice of the registry: counters, histograms, trace ring.
#[derive(Debug)]
struct Shard {
    counters: Vec<AtomicU64>,
    hists: Vec<AtomicHistogram>,
    ring: Mutex<TraceRing>,
}

impl Shard {
    fn new(trace_cap: usize) -> Self {
        Shard {
            counters: (0..Counter::ALL.len()).map(|_| AtomicU64::new(0)).collect(),
            hists: (0..Series::ALL.len())
                .map(|_| AtomicHistogram::new())
                .collect(),
            ring: Mutex::new(TraceRing::new(trace_cap)),
        }
    }
}

/// Absorb mutex poisoning: a panicked peer loses nothing observable here
/// because all ring operations leave it structurally valid.
fn lock_ring(ring: &Mutex<TraceRing>) -> MutexGuard<'_, TraceRing> {
    match ring.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The aggregation point: hands out per-owner [`Recorder`]s and merges
/// their shards into [`RecorderSnapshot`]s on inspect.
#[derive(Debug)]
pub struct Registry {
    shards: Mutex<Vec<Arc<Shard>>>,
    clock: Arc<dyn Clock>,
    trace_cap: usize,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

/// Default trace-ring capacity per recorder.
pub(crate) const DEFAULT_TRACE_CAP: usize = 1024;

impl Registry {
    /// A registry whose recorders stamp trace events explicitly (clock reads
    /// return [`Instant::ZERO`]) — what the simulator uses, since actors
    /// already hold the virtual now.
    pub fn new() -> Self {
        Registry::with_clock(Arc::new(NullClock))
    }

    /// A registry whose recorders stamp trace events from `clock` — the
    /// live/UDP drivers pass a shared [`crate::MonotonicClock`].
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        Registry {
            shards: Mutex::new(Vec::new()),
            clock,
            trace_cap: DEFAULT_TRACE_CAP,
        }
    }

    /// Override the per-recorder trace-ring capacity (builder style).
    pub fn trace_capacity(mut self, cap: usize) -> Self {
        self.trace_cap = cap.max(1);
        self
    }

    /// Register a new shard and return its owner handle. Shards are merged
    /// in registration order, which is deterministic wherever registration
    /// is (the single-threaded simulator).
    pub fn handle(&self) -> Recorder {
        let shard = Arc::new(Shard::new(self.trace_cap));
        match self.shards.lock() {
            Ok(mut s) => s.push(Arc::clone(&shard)),
            Err(poisoned) => poisoned.into_inner().push(Arc::clone(&shard)),
        }
        Recorder {
            shard,
            clock: Arc::clone(&self.clock),
        }
    }

    fn shards(&self) -> Vec<Arc<Shard>> {
        match self.shards.lock() {
            Ok(s) => s.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        }
    }

    /// The registry's clock.
    pub fn clock(&self) -> Arc<dyn Clock> {
        Arc::clone(&self.clock)
    }

    /// Merge every shard into one snapshot (copy-on-read; the packet path
    /// is never blocked by this).
    pub fn snapshot(&self) -> RecorderSnapshot {
        let mut counters = vec![0u64; Counter::ALL.len()];
        let mut hists = vec![LogHistogram::new(); Series::ALL.len()];
        let mut trace_recorded = 0u64;
        let mut trace_dropped = 0u64;
        for shard in self.shards() {
            for (slot, c) in counters.iter_mut().zip(shard.counters.iter()) {
                *slot += c.load(Ordering::Relaxed);
            }
            for (slot, h) in hists.iter_mut().zip(shard.hists.iter()) {
                slot.merge(&h.drain());
            }
            let ring = lock_ring(&shard.ring);
            trace_recorded += ring.recorded();
            trace_dropped += ring.dropped();
        }
        RecorderSnapshot {
            counters,
            hists,
            trace_recorded,
            trace_dropped,
        }
    }

    /// Merge every shard's trace ring into one timeline (sorted by time,
    /// request, lifecycle stage).
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        let mut events = Vec::new();
        for shard in self.shards() {
            events.extend(lock_ring(&shard.ring).events());
        }
        sort_timeline(&mut events);
        events
    }
}

/// One owner's recording handle. Cheap to clone (two `Arc`s); clones share
/// the same shard.
#[derive(Clone, Debug)]
pub struct Recorder {
    shard: Arc<Shard>,
    clock: Arc<dyn Clock>,
}

impl Recorder {
    /// A recorder attached to nothing — records vanish. Lets construction
    /// sites take a `Recorder` unconditionally while instrumentation stays
    /// optional.
    pub fn detached() -> Recorder {
        Recorder {
            shard: Arc::new(Shard::new(1)),
            clock: Arc::new(NullClock),
        }
    }

    /// Add one to `c`.
    #[inline]
    pub fn incr(&self, c: Counter) {
        self.add(c, 1);
    }

    /// Add `delta` to `c`.
    #[inline]
    pub fn add(&self, c: Counter, delta: u64) {
        if let Some(slot) = self.shard.counters.get(c as usize) {
            slot.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Record a latency sample into `s`.
    #[inline]
    pub fn observe(&self, s: Series, d: Duration) {
        if let Some(h) = self.shard.hists.get(s as usize) {
            h.record_ns(d.nanos());
        }
    }

    /// The registry clock's current instant ([`Instant::ZERO`] in the sim).
    #[inline]
    pub fn now(&self) -> Instant {
        self.clock.now()
    }

    /// Record a trace event stamped with an explicit instant (the sim path,
    /// where actors hold the virtual now).
    pub fn trace_at(
        &self,
        at: Instant,
        node: NodeId,
        id: TraceId,
        obj: ObjectId,
        stage: TraceStage,
    ) {
        lock_ring(&self.shard.ring).push(TraceEvent {
            at,
            node,
            id,
            obj,
            stage,
        });
    }

    /// Record a trace event stamped with the registry clock (the live/UDP
    /// path).
    pub fn trace(&self, node: NodeId, id: TraceId, obj: ObjectId, stage: TraceStage) {
        self.trace_at(self.clock.now(), node, id, obj, stage);
    }
}

/// A merged, immutable copy of every shard's counters and histograms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecorderSnapshot {
    counters: Vec<u64>,
    hists: Vec<LogHistogram>,
    trace_recorded: u64,
    trace_dropped: u64,
}

impl RecorderSnapshot {
    /// Read one counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters.get(c as usize).copied().unwrap_or(0)
    }

    /// Read one latency series (an empty histogram if never recorded).
    pub fn histogram(&self, s: Series) -> LogHistogram {
        self.hists.get(s as usize).cloned().unwrap_or_default()
    }

    /// Total trace events ever pushed across all rings.
    pub fn trace_recorded(&self) -> u64 {
        self.trace_recorded
    }

    /// Trace events lost to ring overflow across all rings.
    pub fn trace_dropped(&self) -> u64 {
        self.trace_dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_types::{ClientId, RequestId};

    fn tid(c: u32, r: u64) -> TraceId {
        TraceId::new(ClientId(c), RequestId(r))
    }

    #[test]
    fn counters_merge_across_shards() {
        let reg = Registry::new();
        let a = reg.handle();
        let b = reg.handle();
        a.incr(Counter::ReadsSent);
        a.add(Counter::ReadsSent, 2);
        b.incr(Counter::ReadsSent);
        b.incr(Counter::WritesDone);
        let snap = reg.snapshot();
        assert_eq!(snap.counter(Counter::ReadsSent), 4);
        assert_eq!(snap.counter(Counter::WritesDone), 1);
        assert_eq!(snap.counter(Counter::Timeouts), 0);
    }

    #[test]
    fn histograms_merge_across_shards() {
        let reg = Registry::new();
        let a = reg.handle();
        let b = reg.handle();
        for us in 1..=50u64 {
            a.observe(Series::ReadLatency, Duration::from_micros(us));
        }
        for us in 51..=100u64 {
            b.observe(Series::ReadLatency, Duration::from_micros(us));
        }
        let h = reg.snapshot().histogram(Series::ReadLatency);
        assert_eq!(h.count(), 100);
        assert_eq!(h.mean(), Duration::from_nanos(50_500));
        assert_eq!(h.max(), Duration::from_micros(100));
    }

    #[test]
    fn ring_overflow_drops_oldest() {
        let mut ring = TraceRing::new(3);
        for i in 0..5u64 {
            ring.push(TraceEvent {
                at: Instant::ZERO + Duration::from_nanos(i),
                node: NodeId::Controller,
                id: tid(0, i),
                obj: ObjectId(0),
                stage: TraceStage::ClientSend,
            });
        }
        assert_eq!(ring.recorded(), 5);
        assert_eq!(ring.dropped(), 2);
        let kept: Vec<u64> = ring.events().iter().map(|e| e.id.request.0).collect();
        assert_eq!(kept, vec![2, 3, 4]);
    }

    #[test]
    fn trace_events_sorted_across_shards() {
        let reg = Registry::new();
        let a = reg.handle();
        let b = reg.handle();
        let late = Instant::ZERO + Duration::from_micros(9);
        let early = Instant::ZERO + Duration::from_micros(1);
        a.trace_at(
            late,
            NodeId::Controller,
            tid(1, 2),
            ObjectId(7),
            TraceStage::ClientDone,
        );
        b.trace_at(
            early,
            NodeId::Controller,
            tid(1, 2),
            ObjectId(7),
            TraceStage::ClientSend,
        );
        let events = reg.trace_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].stage, TraceStage::ClientSend);
        assert_eq!(events[1].stage, TraceStage::ClientDone);
    }

    #[test]
    fn detached_recorder_is_inert() {
        let r = Recorder::detached();
        r.incr(Counter::ReadsSent);
        r.observe(Series::ReadLatency, Duration::from_micros(1));
        r.trace(
            NodeId::Controller,
            tid(0, 0),
            ObjectId(0),
            TraceStage::ClientSend,
        );
        // Nothing to assert against — the point is that none of this panics
        // and no registry ever sees it.
    }

    #[test]
    fn null_clock_registry_stamps_zero() {
        let reg = Registry::new();
        let r = reg.handle();
        assert_eq!(r.now(), Instant::ZERO);
    }
}
