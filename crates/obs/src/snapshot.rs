//! The typed whole-cluster snapshot every driver exposes.
//!
//! [`ObsSnapshot`] is the unification layer over the repo's previously
//! disconnected telemetry: the spine's `SwitchStats`/`SpineView`, the net
//! crate's transport/pool/fault counters, the replica actors' counters, and
//! the clients' latency histograms all land in one plain-data struct with a
//! stable schema ([`OBS_SCHEMA_VERSION`]). The `Cluster` trait returns it
//! from every driver — sim, live, UDP — so a test or an exporter reads the
//! same shape regardless of substrate. Renderers live in [`crate::export`].

use crate::hist::HistSummary;
use crate::recorder::{Counter, RecorderSnapshot, Series};

/// Version of the snapshot schema (bumped when fields change meaning or
/// disappear; additions keep the version).
pub const OBS_SCHEMA_VERSION: u32 = 1;

/// Whole-switch counters plus spine aggregates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SwitchObs {
    /// Reads served on the fast path (conflict detector: clean).
    pub reads_fast_path: u64,
    /// Reads routed through the normal protocol.
    pub reads_normal: u64,
    /// Writes stamped and forwarded.
    pub writes_forwarded: u64,
    /// Writes dropped for lack of a dirty-set slot.
    pub writes_dropped: u64,
    /// WRITE-COMPLETIONs processed.
    pub completions: u64,
    /// Protocol-internal packets forwarded by plain L2/L3.
    pub forwarded_other: u64,
    /// Dirty-set entries reclaimed by sweeps.
    pub swept: u64,
    /// Groups whose fast path is currently enabled.
    pub fast_path_groups: u64,
    /// Total dirty-set occupancy across groups.
    pub dirty_len: u64,
    /// Total dirty-set SRAM consumed, bytes.
    pub memory_bytes: u64,
}

/// One group's slice of the spine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GroupObs {
    /// The group index.
    pub group: u32,
    /// Reads served on the fast path.
    pub reads_fast_path: u64,
    /// Reads routed through the normal protocol.
    pub reads_normal: u64,
    /// Writes stamped and forwarded.
    pub writes_forwarded: u64,
    /// Writes dropped for lack of a dirty-set slot.
    pub writes_dropped: u64,
    /// Whether the group's fast path is currently enabled.
    pub fast_path_enabled: bool,
    /// Dirty-set occupancy.
    pub dirty_len: u64,
    /// Dirty-set SRAM consumed by the group, bytes.
    pub memory_bytes: u64,
}

/// Transport-layer counters (zero for the in-memory sim/live substrates).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportObs {
    /// Frames handed to the socket layer.
    pub frames_sent: u64,
    /// Datagrams actually sent (≤ frames when coalescing).
    pub datagrams_sent: u64,
    /// Frames received and decoded.
    pub frames_received: u64,
    /// Frames addressed to peers missing from the address map.
    pub unresolved: u64,
    /// Undecodable frames.
    pub decode_errors: u64,
    /// Frames salvaged from partially corrupt datagrams.
    pub salvaged: u64,
    /// Frames too large to encode.
    pub oversized: u64,
    /// Socket send errors.
    pub send_errors: u64,
    /// Configuration errors.
    pub config_errors: u64,
}

/// Buffer-pool counters (receive and send sides).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolObs {
    /// Receive-pool reuse hits.
    pub recv_hits: u64,
    /// Receive-pool fresh allocations.
    pub recv_misses: u64,
    /// Send-pool reuse hits.
    pub send_hits: u64,
    /// Send-pool fresh allocations.
    pub send_misses: u64,
}

impl PoolObs {
    /// Receive-pool hit rate in [0, 1].
    pub fn recv_hit_rate(&self) -> f64 {
        rate(self.recv_hits, self.recv_misses)
    }

    /// Send-pool hit rate in [0, 1].
    pub fn send_hit_rate(&self) -> f64 {
        rate(self.send_hits, self.send_misses)
    }
}

fn rate(hits: u64, misses: u64) -> f64 {
    let total = hits + misses;
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

/// Injected-fault counters (what the network actually did to packets).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultObs {
    /// Packets dropped in flight.
    pub dropped: u64,
    /// Packets duplicated in flight.
    pub duplicated: u64,
    /// Packets delayed out of order.
    pub reordered: u64,
    /// Packets discarded at a dead or unreachable destination.
    pub discarded: u64,
}

/// Client-side operation counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClientObs {
    /// Read operations issued.
    pub reads_sent: u64,
    /// Write operations issued.
    pub writes_sent: u64,
    /// Reads completed.
    pub reads_done: u64,
    /// Writes acknowledged.
    pub writes_done: u64,
    /// Writes rejected (shed at the spine).
    pub writes_rejected: u64,
    /// Operations that timed out.
    pub timeouts: u64,
    /// Retransmissions sent.
    pub retries: u64,
}

/// Replica-side counters, aggregated over the group.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplicaObs {
    /// Client requests executed.
    pub requests: u64,
    /// Protocol-internal messages handled.
    pub protocol_msgs: u64,
    /// State-transfer messages handled.
    pub transfers: u64,
    /// Requests shed while recovering.
    pub shed: u64,
    /// Packets that matched no handler.
    pub stray: u64,
}

/// Trace-ring accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceObs {
    /// Trace events ever pushed.
    pub recorded: u64,
    /// Trace events lost to ring overflow.
    pub dropped: u64,
}

/// One driver's unified observability snapshot.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ObsSnapshot {
    /// Which driver produced this: `"sim"`, `"live"`, or `"udp"`.
    pub driver: &'static str,
    /// Replication protocol name (e.g. `"craq"`).
    pub protocol: &'static str,
    /// Replica-group count (1 unless sharded).
    pub groups: u32,
    /// Replicas per deployment.
    pub replicas: u32,
    /// When the snapshot was taken, nanoseconds on the driver's clock
    /// (virtual time in sim, since-rig-start in live/UDP).
    pub taken_at_ns: u64,
    /// Whole-switch counters and spine aggregates.
    pub switch: SwitchObs,
    /// Per-group spine detail, in group order.
    pub per_group: Vec<GroupObs>,
    /// Transport counters (zero on in-memory substrates).
    pub transport: TransportObs,
    /// Buffer-pool counters.
    pub pool: PoolObs,
    /// Injected-fault counters.
    pub faults: FaultObs,
    /// Client operation counters.
    pub clients: ClientObs,
    /// Replica counters.
    pub replica: ReplicaObs,
    /// Client-observed read latency summary.
    pub read_latency: HistSummary,
    /// Client-observed write latency summary.
    pub write_latency: HistSummary,
    /// Trace-ring accounting.
    pub trace: TraceObs,
}

impl ObsSnapshot {
    /// Fill every recorder-backed section (clients, replica, transport,
    /// pool, latency summaries, trace accounting) from a merged
    /// [`RecorderSnapshot`]. Switch, fault, and topology fields are the
    /// driver's to set — they come from the spine view and the substrate,
    /// not the recorders.
    pub fn apply_recorder(&mut self, rs: &RecorderSnapshot) {
        self.clients = ClientObs {
            reads_sent: rs.counter(Counter::ReadsSent),
            writes_sent: rs.counter(Counter::WritesSent),
            reads_done: rs.counter(Counter::ReadsDone),
            writes_done: rs.counter(Counter::WritesDone),
            writes_rejected: rs.counter(Counter::WritesRejected),
            timeouts: rs.counter(Counter::Timeouts),
            retries: rs.counter(Counter::Retries),
        };
        self.replica = ReplicaObs {
            requests: rs.counter(Counter::ReplicaRequests),
            protocol_msgs: rs.counter(Counter::ReplicaProtocol),
            transfers: rs.counter(Counter::ReplicaTransfer),
            shed: rs.counter(Counter::ReplicaShed),
            stray: rs.counter(Counter::ReplicaStray),
        };
        self.transport = TransportObs {
            frames_sent: rs.counter(Counter::FramesSent),
            datagrams_sent: rs.counter(Counter::DatagramsSent),
            frames_received: rs.counter(Counter::FramesReceived),
            unresolved: rs.counter(Counter::Unresolved),
            decode_errors: rs.counter(Counter::DecodeErrors),
            salvaged: rs.counter(Counter::Salvaged),
            oversized: rs.counter(Counter::Oversized),
            send_errors: rs.counter(Counter::SendErrors),
            config_errors: rs.counter(Counter::ConfigErrors),
        };
        self.pool = PoolObs {
            recv_hits: rs.counter(Counter::RecvPoolHits),
            recv_misses: rs.counter(Counter::RecvPoolMisses),
            send_hits: rs.counter(Counter::SendPoolHits),
            send_misses: rs.counter(Counter::SendPoolMisses),
        };
        self.read_latency = rs.histogram(Series::ReadLatency).summary();
        self.write_latency = rs.histogram(Series::WriteLatency).summary();
        self.trace = TraceObs {
            recorded: rs.trace_recorded(),
            dropped: rs.trace_dropped(),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Registry;
    use harmonia_types::Duration;

    #[test]
    fn apply_recorder_fills_sections() {
        let reg = Registry::new();
        let r = reg.handle();
        r.incr(Counter::ReadsSent);
        r.incr(Counter::ReadsDone);
        r.add(Counter::FramesSent, 10);
        r.incr(Counter::RecvPoolHits);
        r.observe(Series::ReadLatency, Duration::from_micros(42));
        let mut snap = ObsSnapshot::default();
        snap.apply_recorder(&reg.snapshot());
        assert_eq!(snap.clients.reads_sent, 1);
        assert_eq!(snap.clients.reads_done, 1);
        assert_eq!(snap.transport.frames_sent, 10);
        assert_eq!(snap.pool.recv_hits, 1);
        assert_eq!(snap.read_latency.count, 1);
        assert_eq!(snap.read_latency.max_ns, 42_000);
        assert_eq!(snap.write_latency.count, 0);
    }

    #[test]
    fn pool_rates() {
        let p = PoolObs {
            recv_hits: 3,
            recv_misses: 1,
            send_hits: 0,
            send_misses: 0,
        };
        assert!((p.recv_hit_rate() - 0.75).abs() < 1e-9);
        assert_eq!(p.send_hit_rate(), 0.0);
    }
}
