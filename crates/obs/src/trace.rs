//! Request lifecycle tracing.
//!
//! Every hop a request takes — client send, spine verdict, replica execute,
//! reply — is recorded as a [`TraceEvent`] stamped with the request's
//! [`TraceId`], into the bounded per-thread ring buffers owned by each
//! [`crate::Recorder`]. After a run (or on a linearizability failure) the
//! rings are merged and sorted into a per-request timeline; [`dump_for_key`]
//! filters that timeline to the object a failed Wing–Gong check names, which
//! turns "key X is not linearizable" into the exact packet-level history
//! that produced it.

use harmonia_types::{Instant, NodeId, ObjectId, TraceId};

/// Where in its lifecycle a request was observed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceStage {
    /// Client issued the operation.
    ClientSend,
    /// Client re-sent after a timeout.
    ClientRetry,
    /// Spine served the read from one replica (conflict detector: clean).
    SwitchFastPathRead,
    /// Spine routed the read through the normal protocol (dirty or gated).
    SwitchNormalRead,
    /// Spine stamped the write with a sequence number and forwarded it.
    SwitchWriteForward,
    /// Spine dropped the write for lack of a dirty-set slot.
    SwitchWriteDrop,
    /// A replica executed the operation against its store.
    ReplicaExecute,
    /// A recovering replica shed the request unanswered.
    ReplicaShed,
    /// Client accepted a reply.
    ClientDone,
    /// Client gave up on the operation.
    ClientTimeout,
}

impl TraceStage {
    /// Stable snake_case name, used by dumps and exporters.
    pub fn name(self) -> &'static str {
        match self {
            TraceStage::ClientSend => "client_send",
            TraceStage::ClientRetry => "client_retry",
            TraceStage::SwitchFastPathRead => "switch_fast_path_read",
            TraceStage::SwitchNormalRead => "switch_normal_read",
            TraceStage::SwitchWriteForward => "switch_write_forward",
            TraceStage::SwitchWriteDrop => "switch_write_drop",
            TraceStage::ReplicaExecute => "replica_execute",
            TraceStage::ReplicaShed => "replica_shed",
            TraceStage::ClientDone => "client_done",
            TraceStage::ClientTimeout => "client_timeout",
        }
    }
}

/// One observed hop of one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// When the hop happened, on the recording driver's clock (virtual time
    /// in the sim, monotonic-since-rig-start in live/UDP).
    pub at: Instant,
    /// The node that observed the hop.
    pub node: NodeId,
    /// The request being traced.
    pub id: TraceId,
    /// The object the request addresses.
    pub obj: ObjectId,
    /// Lifecycle stage.
    pub stage: TraceStage,
}

impl TraceEvent {
    /// Sort key for timeline assembly: time first, then request, then the
    /// lifecycle order of stages so simultaneous hops (common under virtual
    /// time) read causally.
    pub fn timeline_key(&self) -> (Instant, TraceId, TraceStage, NodeId) {
        (self.at, self.id, self.stage, self.node)
    }
}

/// Sort events into timeline order (stable across runs for identical event
/// sets).
pub(crate) fn sort_timeline(events: &mut [TraceEvent]) {
    events.sort_by_key(TraceEvent::timeline_key);
}

fn format_line(e: &TraceEvent, out: &mut String) {
    use std::fmt::Write as _;
    let us = e.at.nanos() / 1_000;
    let frac = e.at.nanos() % 1_000;
    let _ = writeln!(
        out,
        "  [{us:>9}.{frac:03}us] {:<8} {} {:<21} @ {:?}",
        e.id.to_string(),
        e.obj,
        e.stage.name(),
        e.node,
    );
}

/// Render a full timeline, one event per line.
pub fn format_trace(events: &[TraceEvent]) -> String {
    let mut sorted = events.to_vec();
    sort_timeline(&mut sorted);
    let mut out = String::new();
    for e in &sorted {
        format_line(e, &mut out);
    }
    out
}

/// Render the timeline of every request that touched `obj`. Returns a note
/// instead of an empty string when nothing matched, so a dump attached to a
/// failure report is never silently blank.
pub fn dump_for_object(events: &[TraceEvent], obj: ObjectId) -> String {
    let matched: Vec<TraceEvent> = events.iter().filter(|e| e.obj == obj).copied().collect();
    if matched.is_empty() {
        return format!("  (no trace events recorded for {obj})\n");
    }
    format_trace(&matched)
}

/// [`dump_for_object`] keyed by the application key bytes (folded through
/// the same [`ObjectId::from_key`] digest the switch uses).
pub fn dump_for_key(events: &[TraceEvent], key: &[u8]) -> String {
    dump_for_object(events, ObjectId::from_key(key))
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_types::{ClientId, Duration, ReplicaId, RequestId, SwitchId};

    fn ev(at_us: u64, client: u32, req: u64, key: &[u8], stage: TraceStage) -> TraceEvent {
        TraceEvent {
            at: Instant::ZERO + Duration::from_micros(at_us),
            node: match stage {
                TraceStage::ReplicaExecute | TraceStage::ReplicaShed => {
                    NodeId::Replica(ReplicaId(0))
                }
                TraceStage::SwitchFastPathRead
                | TraceStage::SwitchNormalRead
                | TraceStage::SwitchWriteForward
                | TraceStage::SwitchWriteDrop => NodeId::Switch(SwitchId(0)),
                _ => NodeId::Client(ClientId(client)),
            },
            id: TraceId::new(ClientId(client), RequestId(req)),
            obj: ObjectId::from_key(key),
            stage,
        }
    }

    #[test]
    fn timeline_sorts_by_time_then_stage() {
        let events = vec![
            ev(30, 1, 7, b"k", TraceStage::ClientDone),
            ev(10, 1, 7, b"k", TraceStage::ClientSend),
            ev(20, 1, 7, b"k", TraceStage::SwitchWriteForward),
            ev(20, 1, 7, b"k", TraceStage::ReplicaExecute),
        ];
        let text = format_trace(&events);
        let order: Vec<usize> = ["client_send", "switch_write_forward", "replica_execute"]
            .iter()
            .map(|s| text.find(s).expect(s))
            .collect();
        assert!(order.windows(2).all(|w| w[0] < w[1]), "{text}");
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn dump_filters_by_key() {
        let events = vec![
            ev(1, 1, 1, b"hot", TraceStage::ClientSend),
            ev(2, 2, 9, b"cold", TraceStage::ClientSend),
        ];
        let hot = dump_for_key(&events, b"hot");
        assert!(hot.contains("c1#1"), "{hot}");
        assert!(!hot.contains("c2#9"), "{hot}");
        let absent = dump_for_key(&events, b"never-touched");
        assert!(absent.contains("no trace events"), "{absent}");
    }
}
