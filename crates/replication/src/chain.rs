//! Chain replication (van Renesse & Schneider, OSDI '04), with the Harmonia
//! read-ahead adaptation (§7.2 of the Harmonia paper).
//!
//! Writes enter at the head, propagate node-to-node down the chain, and are
//! acknowledged by the tail, which replies to the client (piggybacking the
//! WRITE-COMPLETION under Harmonia). A node's state may run ahead of the
//! commit point anywhere except the tail, so single-replica reads apply the
//! read-ahead guard; reads failing the guard are forwarded to the tail.
//!
//! Normal-path reads are served by the tail — which is exactly why vanilla
//! chain replication cannot scale reads beyond one server's throughput
//! (Figures 5–7 of the paper).

use bytes::Bytes;
use harmonia_kv::{Store, VersionedValue};
use harmonia_types::{
    ClientRequest, NodeId, OpKind, ReadMode, ReplicaId, SwitchId, SwitchSeq, WriteCompletion,
    WriteOutcome,
};

use crate::common::{
    export_store, handle_control, install_store, read_ahead_ok, read_reply, write_reply, Admission,
    ClientTable, Effects, GroupConfig, InOrder, LeaseState, Replica, Snapshot,
};
use crate::messages::{ChainMsg, ProtocolMsg, SnapshotState, WriteOp};

/// One chain-replication node.
pub struct ChainReplica {
    me: ReplicaId,
    members: Vec<ReplicaId>,
    harmonia: bool,
    lease: LeaseState,
    store: Store<VersionedValue>,
    in_order: InOrder,
    /// Baseline mode: the head stamps writes itself.
    local_seq: u64,
    /// Head: exactly-once admission. Tail: reply cache for ReReply.
    clients: ClientTable,
    applied: SwitchSeq,
}

impl ChainReplica {
    /// Build the replica for `config`.
    pub fn new(config: GroupConfig) -> Self {
        ChainReplica {
            me: config.me,
            members: config.members,
            harmonia: config.harmonia,
            lease: LeaseState::new(config.active_switch),
            store: Store::new(),
            in_order: InOrder::new(),
            local_seq: 0,
            clients: ClientTable::new(),
            applied: SwitchSeq::ZERO,
        }
    }

    fn head(&self) -> ReplicaId {
        self.members[0]
    }

    fn tail(&self) -> ReplicaId {
        *self.members.last().expect("non-empty chain")
    }

    fn successor(&self) -> Option<ReplicaId> {
        let idx = self.members.iter().position(|&r| r == self.me)?;
        self.members.get(idx + 1).copied()
    }

    fn predecessor(&self) -> Option<ReplicaId> {
        let idx = self.members.iter().position(|&r| r == self.me)?;
        idx.checked_sub(1).map(|i| self.members[i])
    }

    fn is_tail(&self) -> bool {
        self.me == self.tail()
    }

    /// Versioned apply: never regress a key. Equivalent to a plain put in
    /// steady state (the in-order rule makes sequence numbers increase),
    /// but a freshly recovered node can hold installed snapshot state
    /// *newer* than a `Down` still in flight to it — that write must keep
    /// propagating without clobbering the newer version.
    fn apply(&mut self, op: &WriteOp) {
        self.store.update(
            &op.key,
            || VersionedValue::new(op.value.clone(), op.seq),
            |vv| {
                if op.seq > vv.seq {
                    *vv = VersionedValue::new(op.value.clone(), op.seq);
                }
            },
        );
        self.applied = self.applied.max(op.seq);
    }

    /// Apply an in-order write and either forward it down the chain or, at
    /// the tail, commit and reply.
    fn propagate(&mut self, op: WriteOp, out: &mut Effects) {
        self.apply(&op);
        if let Some(next) = self.successor() {
            out.protocol(next, ProtocolMsg::Chain(ChainMsg::Down(op)));
        } else {
            // Tail: the write is now applied on every node — committed.
            let completion = WriteCompletion {
                obj: op.obj,
                seq: op.seq,
            };
            let reply = write_reply(
                self.me,
                op.client,
                op.request,
                op.obj,
                WriteOutcome::Committed,
                self.harmonia.then_some(completion),
            );
            self.clients.record_reply(reply.clone());
            out.reply(self.lease.active(), reply);
        }
    }

    fn handle_write(&mut self, mut req: ClientRequest, out: &mut Effects) {
        if self.me != self.head() {
            out.forward_request(self.head(), req);
            return;
        }
        match self.clients.admit(req.client, req.request) {
            Admission::Fresh => {}
            Admission::Duplicate => {
                // The tail is the replying node: ask it to re-send its
                // cached reply (the original may still be propagating, in
                // which case its own reply will serve).
                if self.is_tail() {
                    if let Some(r) = self.clients.cached_reply(req.client, req.request) {
                        out.reply(self.lease.active(), r);
                    }
                } else {
                    out.protocol(
                        self.tail(),
                        ProtocolMsg::Chain(ChainMsg::ReReply {
                            client: req.client,
                            request: req.request,
                        }),
                    );
                }
                return;
            }
            Admission::Stale => return,
        }
        let seq = match req.seq {
            Some(s) if self.harmonia => s,
            _ => {
                self.local_seq += 1;
                SwitchSeq::new(self.lease.active(), self.local_seq)
            }
        };
        req.seq = Some(seq);
        if !self.in_order.accept(seq) {
            out.reply(
                self.lease.active(),
                write_reply(
                    self.me,
                    req.client,
                    req.request,
                    req.obj,
                    WriteOutcome::Rejected,
                    None,
                ),
            );
            return;
        }
        let op = WriteOp {
            seq,
            obj: req.obj,
            key: req.key.clone(),
            value: req.value.clone().unwrap_or_default(),
            client: req.client,
            request: req.request,
        };
        self.propagate(op, out);
    }

    fn handle_read(&mut self, req: ClientRequest, out: &mut Effects) {
        match req.read_mode {
            ReadMode::FastPath { switch } => {
                let allowed = self.lease.allows(switch);
                let stamped = req.last_committed.unwrap_or(SwitchSeq::ZERO);
                let obj_seq = self
                    .store
                    .with(&req.key, |v| v.map(|vv| vv.seq))
                    .unwrap_or(SwitchSeq::ZERO);
                if allowed && read_ahead_ok(obj_seq, stamped) {
                    let value = self.store.with(&req.key, |v| v.map(|vv| vv.value.clone()));
                    out.reply(self.lease.active(), read_reply(self.me, &req, value));
                } else {
                    let mut fwd = req;
                    fwd.read_mode = ReadMode::Normal;
                    if self.is_tail() {
                        self.handle_read(fwd, out);
                    } else {
                        out.forward_request(self.tail(), fwd);
                    }
                }
            }
            ReadMode::Normal => {
                if self.is_tail() {
                    // Tail state is committed by construction.
                    let value = self.store.with(&req.key, |v| v.map(|vv| vv.value.clone()));
                    out.reply(self.lease.active(), read_reply(self.me, &req, value));
                } else {
                    out.forward_request(self.tail(), req);
                }
            }
        }
    }
}

impl Replica for ChainReplica {
    fn on_request(&mut self, _src: NodeId, req: ClientRequest, out: &mut Effects) {
        match req.op {
            OpKind::Write => self.handle_write(req, out),
            OpKind::Read => self.handle_read(req, out),
        }
    }

    fn on_protocol(&mut self, _src: NodeId, msg: ProtocolMsg, out: &mut Effects) {
        if handle_control(&msg, &mut self.lease, &mut self.members) {
            return;
        }
        match msg {
            ProtocolMsg::Chain(ChainMsg::Down(op)) if self.in_order.accept(op.seq) => {
                self.propagate(op, out);
            }
            ProtocolMsg::Chain(ChainMsg::ReReply { client, request }) => {
                if let Some(r) = self.clients.cached_reply(client, request) {
                    out.reply(self.lease.active(), r);
                } else if let Some(pred) = self.predecessor() {
                    // Cache miss: a freshly recovered tail has no reply
                    // cache for writes its predecessor (the interim tail)
                    // answered while it was down. Walk the request upstream
                    // — the node that replied holds the cache entry.
                    out.protocol(
                        pred,
                        ProtocolMsg::Chain(ChainMsg::ReReply { client, request }),
                    );
                }
            }
            _ => {}
        }
    }

    fn local_value(&self, key: &[u8]) -> Option<Bytes> {
        self.store.with(key, |v| v.map(|vv| vv.value.clone()))
    }

    fn applied_seq(&self) -> SwitchSeq {
        self.applied
    }

    fn export_snapshot(&self) -> Snapshot {
        let (clients, replies) = self.clients.export();
        Snapshot {
            // The head's applied state covers every admitted write —
            // writes still propagating to downstream nodes included — so a
            // chain snapshot needs no separate log.
            entries: export_store(&self.store),
            log: Vec::new(),
            state: SnapshotState {
                in_order: self.in_order.last(),
                applied: self.applied,
                local_seq: self.local_seq,
                commit_num: 0,
                session: 0,
                clients,
                replies,
            },
        }
    }

    fn install_snapshot(&mut self, snap: Snapshot, out: &mut Effects) {
        let _ = out;
        let installed = install_store(&self.store, snap.entries);
        self.applied = self.applied.max(installed).max(snap.state.applied);
        // Deliberately do NOT raise `in_order` to the snapshot's point: a
        // `Down` still in flight from the predecessor may carry a sequence
        // the snapshot already covers, and it must still be accepted so it
        // keeps propagating (and gets its tail reply). The versioned
        // `apply` keeps it from regressing installed state.
        self.local_seq = self.local_seq.max(snap.state.local_seq);
        self.clients.install(snap.state.clients, snap.state.replies);
    }

    fn active_switch(&self) -> SwitchId {
        self.lease.active()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_types::{ClientId, ObjectId, PacketBody, RequestId, SwitchId};

    fn seq(n: u64) -> SwitchSeq {
        SwitchSeq::new(SwitchId(1), n)
    }

    fn group(n: usize, harmonia: bool) -> Vec<ChainReplica> {
        (0..n)
            .map(|i| {
                ChainReplica::new(GroupConfig::new(
                    crate::common::ProtocolKind::Chain,
                    n,
                    i as u32,
                    harmonia,
                ))
            })
            .collect()
    }

    fn write_req(n: u64, key: &str, val: &str, harmonia: bool) -> ClientRequest {
        let mut r = ClientRequest::write(
            ClientId(1),
            RequestId(n),
            Bytes::copy_from_slice(key.as_bytes()),
            Bytes::copy_from_slice(val.as_bytes()),
        );
        if harmonia {
            r.seq = Some(seq(n));
        }
        r
    }

    fn pump(replicas: &mut [ChainReplica], mut fx: Effects) -> Vec<PacketBody<ProtocolMsg>> {
        let mut replies = vec![];
        while !fx.out.is_empty() {
            let mut next = Effects::new();
            for (dst, body) in fx.out.drain(..) {
                match (dst, body) {
                    (NodeId::Replica(r), PacketBody::Protocol(m)) => {
                        replicas[r.index()].on_protocol(NodeId::Replica(r), m, &mut next);
                    }
                    (NodeId::Replica(r), PacketBody::Request(req)) => {
                        replicas[r.index()].on_request(NodeId::Replica(r), req, &mut next);
                    }
                    (NodeId::Switch(_), b) => replies.push(b),
                    other => panic!("unexpected effect {other:?}"),
                }
            }
            fx = next;
        }
        replies
    }

    #[test]
    fn write_propagates_head_to_tail_then_replies() {
        let mut g = group(3, true);
        let mut fx = Effects::new();
        g[0].on_request(
            NodeId::Client(ClientId(1)),
            write_req(1, "k", "v", true),
            &mut fx,
        );
        // Head forwards down the chain, one hop at a time.
        assert_eq!(fx.len(), 1);
        assert!(matches!(fx.out[0].0, NodeId::Replica(ReplicaId(1))));
        let replies = pump(&mut g, fx);
        assert_eq!(replies.len(), 1);
        let PacketBody::Reply(r) = &replies[0] else {
            panic!()
        };
        assert_eq!(r.write_outcome, Some(WriteOutcome::Committed));
        assert_eq!(
            r.completion,
            Some(WriteCompletion {
                obj: ObjectId::from_key(b"k"),
                seq: seq(1)
            })
        );
        for rep in &g {
            assert_eq!(rep.local_value(b"k"), Some(Bytes::from_static(b"v")));
        }
    }

    #[test]
    fn tail_serves_normal_reads() {
        let mut g = group(3, true);
        let fx = {
            let mut fx = Effects::new();
            g[0].on_request(
                NodeId::Client(ClientId(1)),
                write_req(1, "k", "v", true),
                &mut fx,
            );
            fx
        };
        pump(&mut g, fx);
        let read = ClientRequest::read(ClientId(2), RequestId(9), &b"k"[..]);
        let mut fx = Effects::new();
        g[2].on_request(NodeId::Client(ClientId(2)), read, &mut fx);
        let PacketBody::Reply(r) = &fx.out[0].1 else {
            panic!()
        };
        assert_eq!(r.value, Some(Bytes::from_static(b"v")));
    }

    #[test]
    fn normal_read_at_middle_forwards_to_tail() {
        let mut g = group(3, true);
        let read = ClientRequest::read(ClientId(2), RequestId(9), &b"k"[..]);
        let mut fx = Effects::new();
        g[1].on_request(NodeId::Client(ClientId(2)), read, &mut fx);
        assert!(matches!(
            fx.out[0],
            (NodeId::Replica(ReplicaId(2)), PacketBody::Request(_))
        ));
    }

    #[test]
    fn middle_node_fast_path_guard_blocks_uncommitted_state() {
        let mut g = group(3, true);
        // Deliver the write only to head and middle: the tail (and thus the
        // commit) never happens.
        let mut fx = Effects::new();
        g[0].on_request(
            NodeId::Client(ClientId(1)),
            write_req(1, "k", "v1", true),
            &mut fx,
        );
        let (_, PacketBody::Protocol(m)) = fx.out.remove(0) else {
            panic!()
        };
        let mut fx_mid = Effects::new();
        g[1].on_protocol(NodeId::Replica(ReplicaId(0)), m, &mut fx_mid);
        // Middle applied the uncommitted write; a fast-path read stamped
        // with last_committed = 0 must NOT see it.
        let mut read = ClientRequest::read(ClientId(2), RequestId(9), &b"k"[..]);
        read.read_mode = ReadMode::FastPath {
            switch: SwitchId(1),
        };
        read.last_committed = Some(SwitchSeq::ZERO);
        let mut fx2 = Effects::new();
        g[1].on_request(NodeId::Client(ClientId(2)), read, &mut fx2);
        assert!(
            matches!(
                fx2.out[0],
                (NodeId::Replica(ReplicaId(2)), PacketBody::Request(_))
            ),
            "guard must forward to the tail"
        );
        // Tail serves its (absent) committed state.
        let replies = pump(&mut g, fx2);
        let PacketBody::Reply(r) = &replies[0] else {
            panic!()
        };
        assert_eq!(r.value, None);
    }

    #[test]
    fn fast_path_read_serves_committed_object_at_any_node() {
        let mut g = group(3, true);
        let fx = {
            let mut fx = Effects::new();
            g[0].on_request(
                NodeId::Client(ClientId(1)),
                write_req(1, "k", "v", true),
                &mut fx,
            );
            fx
        };
        pump(&mut g, fx);
        for (idx, replica) in g.iter_mut().enumerate() {
            let mut read = ClientRequest::read(ClientId(2), RequestId(9), &b"k"[..]);
            read.read_mode = ReadMode::FastPath {
                switch: SwitchId(1),
            };
            read.last_committed = Some(seq(1));
            let mut fx = Effects::new();
            replica.on_request(NodeId::Client(ClientId(2)), read, &mut fx);
            let PacketBody::Reply(r) = &fx.out[0].1 else {
                panic!("node {idx} did not reply locally: {:?}", fx.out)
            };
            assert_eq!(r.value, Some(Bytes::from_static(b"v")), "node {idx}");
        }
    }

    #[test]
    fn out_of_order_down_message_dropped_by_middle() {
        let mut g = group(3, true);
        let op = |n: u64, v: &str| WriteOp {
            seq: seq(n),
            obj: ObjectId::from_key(b"k"),
            key: Bytes::from_static(b"k"),
            value: Bytes::copy_from_slice(v.as_bytes()),
            client: ClientId(1),
            request: RequestId(n),
        };
        let mut fx = Effects::new();
        g[1].on_protocol(
            NodeId::Replica(ReplicaId(0)),
            ProtocolMsg::Chain(ChainMsg::Down(op(2, "v2"))),
            &mut fx,
        );
        assert_eq!(fx.len(), 1, "in-order write forwarded");
        let mut fx = Effects::new();
        g[1].on_protocol(
            NodeId::Replica(ReplicaId(0)),
            ProtocolMsg::Chain(ChainMsg::Down(op(1, "v1"))),
            &mut fx,
        );
        assert!(fx.is_empty(), "stale write must be dropped");
        assert_eq!(g[1].local_value(b"k"), Some(Bytes::from_static(b"v2")));
    }

    #[test]
    fn single_node_chain_commits_immediately() {
        let mut g = group(1, true);
        let mut fx = Effects::new();
        g[0].on_request(
            NodeId::Client(ClientId(1)),
            write_req(1, "k", "v", true),
            &mut fx,
        );
        let PacketBody::Reply(r) = &fx.out[0].1 else {
            panic!()
        };
        assert_eq!(r.write_outcome, Some(WriteOutcome::Committed));
    }

    #[test]
    fn membership_change_reroutes_tail_duties() {
        let mut g = group(3, true);
        let fx = {
            let mut fx = Effects::new();
            g[0].on_request(
                NodeId::Client(ClientId(1)),
                write_req(1, "k", "v", true),
                &mut fx,
            );
            fx
        };
        pump(&mut g, fx);
        // Tail (replica 2) fails; controller shrinks the chain.
        for r in g.iter_mut().take(2) {
            let mut fx = Effects::new();
            r.on_protocol(
                NodeId::Controller,
                ProtocolMsg::Control(crate::messages::ReplicaControlMsg::SetMembers(vec![
                    ReplicaId(0),
                    ReplicaId(1),
                ])),
                &mut fx,
            );
        }
        // Replica 1 is now the tail and serves normal reads locally.
        let read = ClientRequest::read(ClientId(2), RequestId(9), &b"k"[..]);
        let mut fx = Effects::new();
        g[1].on_request(NodeId::Client(ClientId(2)), read, &mut fx);
        let PacketBody::Reply(r) = &fx.out[0].1 else {
            panic!()
        };
        assert_eq!(r.value, Some(Bytes::from_static(b"v")));
        // And writes commit with only two nodes.
        let mut fx = Effects::new();
        g[0].on_request(
            NodeId::Client(ClientId(1)),
            write_req(2, "k", "v2", true),
            &mut fx,
        );
        let replies = pump(&mut g[..2], fx);
        assert_eq!(replies.len(), 1);
    }
}
