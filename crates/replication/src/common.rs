//! Shared protocol plumbing: the replica trait, effects, configuration, and
//! the three Harmonia responsibilities from §7 of the paper.

use bytes::Bytes;
use harmonia_types::{
    ClientReply, ClientRequest, ControlMsg, Duration, NodeId, PacketBody, ReplicaId, SwitchId,
    SwitchSeq, WriteCompletion, WriteOutcome,
};

use crate::messages::{
    ProtocolMsg, ReplicaControlMsg, SnapshotEntry, SnapshotState, StateTransferMsg, WriteOp,
};

/// Which replication protocol a group runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProtocolKind {
    /// Primary-backup (§2).
    PrimaryBackup,
    /// Chain replication.
    Chain,
    /// CRAQ (baseline comparison only; no Harmonia adaptation exists —
    /// CRAQ *is* the protocol-level alternative).
    Craq,
    /// Viewstamped Replication / Multi-Paxos.
    Vr,
    /// NOPaxos.
    Nopaxos,
}

impl ProtocolKind {
    /// Read-ahead protocols can expose uncommitted state at replicas;
    /// read-behind protocols can lag the commit point (§3).
    pub fn is_read_ahead(self) -> bool {
        matches!(self, ProtocolKind::PrimaryBackup | ProtocolKind::Chain)
    }

    /// Stable lowercase name, used as the `protocol` label in
    /// observability exports.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::PrimaryBackup => "primary_backup",
            ProtocolKind::Chain => "chain",
            ProtocolKind::Craq => "craq",
            ProtocolKind::Vr => "vr",
            ProtocolKind::Nopaxos => "nopaxos",
        }
    }

    /// Writes entering a quorum protocol need a majority; primary-backup
    /// protocols need every replica.
    pub fn quorum(self, n: usize) -> usize {
        match self {
            ProtocolKind::PrimaryBackup | ProtocolKind::Chain | ProtocolKind::Craq => n,
            ProtocolKind::Vr | ProtocolKind::Nopaxos => n / 2 + 1,
        }
    }
}

/// Per-replica configuration.
#[derive(Clone, Debug)]
pub struct GroupConfig {
    /// The protocol this group runs.
    pub protocol: ProtocolKind,
    /// This replica's id.
    pub me: ReplicaId,
    /// Ordered membership: index 0 is primary/head/leader; the last element
    /// is the chain tail.
    pub members: Vec<ReplicaId>,
    /// Whether the Harmonia adaptation is active (switch-stamped sequence
    /// numbers, write completions, fast-path read guards).
    pub harmonia: bool,
    /// The currently active switch (lease, §5.3).
    pub active_switch: SwitchId,
    /// VR commit-broadcast / NOPaxos synchronization cadence.
    pub sync_interval: Duration,
}

impl GroupConfig {
    /// A default-configured group of `n` replicas for `protocol`, as seen by
    /// replica `me`.
    pub fn new(protocol: ProtocolKind, n: usize, me: u32, harmonia: bool) -> Self {
        GroupConfig {
            protocol,
            me: ReplicaId(me),
            members: (0..n as u32).map(ReplicaId).collect(),
            harmonia,
            active_switch: SwitchId(1),
            sync_interval: Duration::from_micros(200),
        }
    }
}

/// Messages a replica wants delivered, produced by one handler invocation.
#[derive(Debug, Default)]
pub struct Effects {
    /// `(destination, payload)` pairs, in send order.
    pub out: Vec<(NodeId, PacketBody<ProtocolMsg>)>,
}

impl Effects {
    /// Fresh, empty effect set.
    pub fn new() -> Self {
        Effects::default()
    }

    /// Send a protocol-internal message to a replica (direct rack hop).
    pub fn protocol(&mut self, to: ReplicaId, msg: ProtocolMsg) {
        self.out
            .push((NodeId::Replica(to), PacketBody::Protocol(msg)));
    }

    /// Send a client reply; replies travel back through the switch so the
    /// data plane can snoop piggybacked completions (Figure 2b).
    pub fn reply(&mut self, via_switch: SwitchId, reply: ClientReply) {
        self.out
            .push((NodeId::Switch(via_switch), PacketBody::Reply(reply)));
    }

    /// Send a standalone WRITE-COMPLETION to the switch (read-behind
    /// protocols, §7.3).
    pub fn completion(&mut self, to_switch: SwitchId, wc: WriteCompletion) {
        self.out
            .push((NodeId::Switch(to_switch), PacketBody::Completion(wc)));
    }

    /// Hand a client request to another replica (fast-path reads failing the
    /// guard are forwarded to the primary/tail/leader, §7.2).
    pub fn forward_request(&mut self, to: ReplicaId, req: ClientRequest) {
        self.out
            .push((NodeId::Replica(to), PacketBody::Request(req)));
    }

    /// Send a switch control-plane command (recovery ungates, §5.3).
    pub fn control_switch(&mut self, to_switch: SwitchId, ctl: ControlMsg) {
        self.out
            .push((NodeId::Switch(to_switch), PacketBody::Control(ctl)));
    }

    /// Number of buffered sends.
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// True if no sends were produced.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }
}

/// §7 responsibility 1: process writes only in sequence-number order.
/// Out-of-order arrivals are rejected (the paper drops them; we surface the
/// rejection so clients can retry immediately).
#[derive(Clone, Copy, Debug, Default)]
pub struct InOrder {
    last: SwitchSeq,
}

impl InOrder {
    /// Fresh tracker accepting any first sequence number.
    pub fn new() -> Self {
        InOrder::default()
    }

    /// Accept `seq` iff it is strictly newer than everything seen; gaps are
    /// fine (dropped writes consume numbers).
    pub fn accept(&mut self, seq: SwitchSeq) -> bool {
        if seq > self.last {
            self.last = seq;
            true
        } else {
            false
        }
    }

    /// Largest accepted sequence number.
    pub fn last(&self) -> SwitchSeq {
        self.last
    }
}

/// Verdict on an incoming write's `(client, request)` pair.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Admission {
    /// First sighting: execute it.
    Fresh,
    /// Retransmission of the most recent admitted request: do not
    /// re-execute; re-send the cached reply if the original already
    /// completed (otherwise the original's in-flight reply will serve).
    Duplicate,
    /// Older than the last admitted request: drop silently.
    Stale,
}

/// Exactly-once write sessions (standard replication hygiene — the original
/// NOPaxos replicas keep the same table): each client's writes carry
/// monotonically increasing request ids; retries reuse the id. The protocol
/// entry point executes each id at most once, and the *replying* node caches
/// the last reply per client so a retransmission whose original reply was
/// lost can be answered without re-execution. Without this, a duplicated or
/// retried write would be sequenced twice, and the second application could
/// land after the client's operation completed — breaking linearizability
/// for blind writes. Reads are idempotent and bypass all of it.
/// Client-id-ordered maps so [`ClientTable::export`] walks sessions in the
/// same order on every run — the exported wire bytes feed state transfer and
/// must be bit-identical across same-seed replays.
#[derive(Clone, Debug, Default)]
pub struct ClientTable {
    last: std::collections::BTreeMap<harmonia_types::ClientId, harmonia_types::RequestId>,
    replies: std::collections::BTreeMap<harmonia_types::ClientId, ClientReply>,
}

impl ClientTable {
    /// Empty table.
    pub fn new() -> Self {
        ClientTable::default()
    }

    /// Classify `(client, request)`; `Fresh` admissions update the table.
    pub fn admit(
        &mut self,
        client: harmonia_types::ClientId,
        request: harmonia_types::RequestId,
    ) -> Admission {
        match self.last.get_mut(&client) {
            Some(seen) if request == *seen => Admission::Duplicate,
            Some(seen) if request < *seen => Admission::Stale,
            Some(seen) => {
                *seen = request;
                Admission::Fresh
            }
            None => {
                self.last.insert(client, request);
                Admission::Fresh
            }
        }
    }

    /// Cache the reply sent for a client's most recent request.
    pub fn record_reply(&mut self, reply: ClientReply) {
        self.replies.insert(reply.client, reply);
    }

    /// The cached reply for `(client, request)`, if the original completed.
    pub fn cached_reply(
        &self,
        client: harmonia_types::ClientId,
        request: harmonia_types::RequestId,
    ) -> Option<ClientReply> {
        self.replies
            .get(&client)
            .filter(|r| r.request == request)
            .cloned()
    }

    /// Export the session table for state transfer, sorted by client id so
    /// the wire bytes are deterministic.
    pub fn export(
        &self,
    ) -> (
        Vec<(harmonia_types::ClientId, harmonia_types::RequestId)>,
        Vec<ClientReply>,
    ) {
        let clients: Vec<_> = self.last.iter().map(|(&c, &r)| (c, r)).collect();
        let replies: Vec<_> = self.replies.values().cloned().collect();
        (clients, replies)
    }

    /// Merge an exported session table into this one. Live admissions that
    /// happened during the transfer are newer than the snapshot, so each
    /// client keeps the larger request id (and its reply cache entry).
    pub fn install(
        &mut self,
        clients: Vec<(harmonia_types::ClientId, harmonia_types::RequestId)>,
        replies: Vec<ClientReply>,
    ) {
        for (client, request) in clients {
            let slot = self.last.entry(client).or_insert(request);
            if request > *slot {
                *slot = request;
            }
        }
        for reply in replies {
            match self.last.get(&reply.client) {
                // Only adopt the snapshot's cached reply if it answers the
                // client's newest admitted request; a stale cache entry
                // must not shadow a live one.
                Some(&last) if reply.request == last => {
                    self.replies.insert(reply.client, reply);
                }
                _ => {}
            }
        }
    }
}

/// §7 responsibility 2: honour single-replica reads only from the one active
/// switch. The configuration service moves the lease; replicas reject
/// fast-path reads flagged by any other incarnation.
#[derive(Clone, Copy, Debug)]
pub struct LeaseState {
    active: SwitchId,
}

impl LeaseState {
    /// Lease initially held by `active`.
    pub fn new(active: SwitchId) -> Self {
        LeaseState { active }
    }

    /// The switch currently allowed to issue fast-path reads.
    pub fn active(&self) -> SwitchId {
        self.active
    }

    /// Move the lease (monotone: an older incarnation can never regain it).
    pub fn set_active(&mut self, s: SwitchId) {
        if s > self.active {
            self.active = s;
        }
    }

    /// May a fast-path read flagged by `from` be honoured?
    pub fn allows(&self, from: SwitchId) -> bool {
        from == self.active
    }
}

/// §7 responsibility 3a — read-ahead guard (PB, chain): a replica may answer
/// a fast-path read iff the stamped last-committed point covers the latest
/// write it has *applied* to the object; otherwise the applied value might
/// be uncommitted (P2 would break).
pub fn read_ahead_ok(applied_seq: SwitchSeq, stamped_last_committed: SwitchSeq) -> bool {
    stamped_last_committed >= applied_seq
}

/// §7 responsibility 3b — read-behind guard (VR, NOPaxos): a replica may
/// answer a fast-path read iff it has *executed* at least up to the stamped
/// last-committed point; otherwise it might miss a committed write (P1
/// would break).
pub fn read_behind_ok(executed_seq: SwitchSeq, stamped_last_committed: SwitchSeq) -> bool {
    executed_seq >= stamped_last_committed
}

/// Build a read reply from replica `me`.
pub fn read_reply(me: ReplicaId, req: &ClientRequest, value: Option<Bytes>) -> ClientReply {
    ClientReply {
        client: req.client,
        from: me,
        request: req.request,
        obj: req.obj,
        value,
        write_outcome: None,
        completion: None,
    }
}

/// Build a write reply, optionally piggybacking a completion (read-ahead
/// protocols complete writes at reply time, Figure 2b).
#[allow(clippy::too_many_arguments)]
pub fn write_reply(
    me: ReplicaId,
    req_client: harmonia_types::ClientId,
    req_id: harmonia_types::RequestId,
    obj: harmonia_types::ObjectId,
    outcome: WriteOutcome,
    completion: Option<WriteCompletion>,
) -> ClientReply {
    ClientReply {
        client: req_client,
        from: me,
        request: req_id,
        obj,
        value: None,
        write_outcome: Some(outcome),
        completion,
    }
}

/// A replica state machine. One instance runs per storage server; the
/// drivers in `harmonia-core` deliver packets and ticks.
pub trait Replica: Send {
    /// Handle a client request (write, normal read, or fast-path read).
    fn on_request(&mut self, src: NodeId, req: ClientRequest, out: &mut Effects);

    /// Handle a protocol-internal message.
    fn on_protocol(&mut self, src: NodeId, msg: ProtocolMsg, out: &mut Effects);

    /// Periodic tick (commit broadcasts, synchronization); driven at
    /// [`Replica::tick_interval`].
    fn on_tick(&mut self, _out: &mut Effects) {}

    /// How often `on_tick` should run, if at all.
    fn tick_interval(&self) -> Option<Duration> {
        None
    }

    /// This replica's current best-known value for `key` (its applied state;
    /// equal to the committed value once the system quiesces). For audits
    /// and tests.
    fn local_value(&self, key: &[u8]) -> Option<Bytes>;

    /// The largest write sequence number this replica has applied/executed.
    fn applied_seq(&self) -> SwitchSeq;

    /// Export this replica's full state for a rejoining peer: the store,
    /// any log/pending operations the protocol replays or completes, and
    /// the scalar state of [`SnapshotState`].
    fn export_snapshot(&self) -> Snapshot;

    /// Install a peer's exported state into this (freshly started) replica.
    /// Installation is *versioned*: a key is only overwritten where the
    /// snapshot's version is newer than what this replica applied live
    /// while the transfer was in flight, so install commutes with
    /// interleaved new writes. May emit protocol messages (e.g. PB acks
    /// for pending writes the primary is still waiting on).
    fn install_snapshot(&mut self, snap: Snapshot, out: &mut Effects);

    /// The switch incarnation this replica's lease currently honours —
    /// where recovery control traffic (ungates) must be sent.
    fn active_switch(&self) -> SwitchId;
}

/// A full exported replica state: store entries, log/pending operations,
/// and scalar protocol state. The in-memory form of what
/// [`StateTransferMsg`] ships in chunks.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Store contents (plus CRAQ's staged dirty versions).
    pub entries: Vec<SnapshotEntry>,
    /// Log / pending operations in order (VR log, NOPaxos log, PB pending).
    pub log: Vec<WriteOp>,
    /// Scalar protocol state.
    pub state: SnapshotState,
}

impl Snapshot {
    /// An empty snapshot (a freshly started replica exports this).
    pub fn empty() -> Self {
        Snapshot {
            entries: Vec::new(),
            log: Vec::new(),
            state: SnapshotState::default(),
        }
    }
}

/// Byte budget for one state-transfer chunk: comfortably under the wire
/// codec's `MAX_FRAME_BYTES` (65 507) after packet framing, so every chunk
/// is one datagram on the UDP driver.
const CHUNK_BUDGET_BYTES: usize = 48_000;

fn entry_cost(e: &SnapshotEntry) -> usize {
    e.key.len() + e.value.len() + 32
}

fn op_cost(op: &WriteOp) -> usize {
    op.key.len() + op.value.len() + 40
}

/// The driver-held state-transfer engine (sans-IO): one per replica
/// process. On the serving side it answers [`StateTransferMsg::Request`]
/// with chunked snapshot + log + done. On the recovering side it buffers
/// chunks and installs on `Done`, then tells the switch to lift the
/// replica's read gate.
#[derive(Debug)]
pub struct StateTransfer {
    me: ReplicaId,
    recovering: Option<RecoveryBuffer>,
}

#[derive(Debug, Default)]
struct RecoveryBuffer {
    entries: Vec<SnapshotEntry>,
    log: Vec<WriteOp>,
}

impl StateTransfer {
    /// An engine for replica `me`, not recovering.
    pub fn new(me: ReplicaId) -> Self {
        StateTransfer {
            me,
            recovering: None,
        }
    }

    /// Begin recovery: ask `peer` for its state. Until the transfer
    /// completes the driver must keep client requests away from the
    /// replica (clients retry; the switch has the replica read-gated).
    pub fn begin(&mut self, peer: ReplicaId, out: &mut Effects) {
        self.recovering = Some(RecoveryBuffer::default());
        out.protocol(
            peer,
            ProtocolMsg::StateTransfer(StateTransferMsg::Request { from: self.me }),
        );
    }

    /// True while a transfer is in flight on the recovering side.
    pub fn is_recovering(&self) -> bool {
        self.recovering.is_some()
    }

    /// Handle one state-transfer message for `replica`. Returns true iff
    /// this message completed a recovery (the snapshot was installed and
    /// the ungate was sent).
    pub fn on_msg(
        &mut self,
        replica: &mut dyn Replica,
        msg: StateTransferMsg,
        out: &mut Effects,
    ) -> bool {
        match msg {
            StateTransferMsg::Request { from } => {
                self.serve(replica, from, out);
                false
            }
            StateTransferMsg::Entries { entries } => {
                if let Some(buf) = &mut self.recovering {
                    buf.entries.extend(entries);
                }
                false
            }
            StateTransferMsg::Log { ops } => {
                if let Some(buf) = &mut self.recovering {
                    buf.log.extend(ops);
                }
                false
            }
            StateTransferMsg::Done { state } => {
                let Some(buf) = self.recovering.take() else {
                    return false;
                };
                replica.install_snapshot(
                    Snapshot {
                        entries: buf.entries,
                        log: buf.log,
                        state,
                    },
                    out,
                );
                // Lift the read gate. The ungate crosses a faultable
                // switch leg on the UDP driver, so send a small burst —
                // the message is idempotent and floor-checked.
                let caught_up = replica.applied_seq();
                let ctl = ControlMsg::UngateReplica {
                    replica: self.me,
                    caught_up,
                };
                for _ in 0..3 {
                    out.control_switch(replica.active_switch(), ctl.clone());
                }
                true
            }
        }
    }

    /// Serve a peer's request: export, chunk to the frame budget, finish
    /// with the scalar state.
    fn serve(&self, replica: &dyn Replica, to: ReplicaId, out: &mut Effects) {
        let snap = replica.export_snapshot();
        let mut chunk: Vec<SnapshotEntry> = Vec::new();
        let mut size = 0usize;
        for e in snap.entries {
            let cost = entry_cost(&e);
            if size + cost > CHUNK_BUDGET_BYTES && !chunk.is_empty() {
                out.protocol(
                    to,
                    ProtocolMsg::StateTransfer(StateTransferMsg::Entries {
                        entries: std::mem::take(&mut chunk),
                    }),
                );
                size = 0;
            }
            size += cost;
            chunk.push(e);
        }
        if !chunk.is_empty() {
            out.protocol(
                to,
                ProtocolMsg::StateTransfer(StateTransferMsg::Entries { entries: chunk }),
            );
        }
        let mut ops: Vec<WriteOp> = Vec::new();
        let mut size = 0usize;
        for op in snap.log {
            let cost = op_cost(&op);
            if size + cost > CHUNK_BUDGET_BYTES && !ops.is_empty() {
                out.protocol(
                    to,
                    ProtocolMsg::StateTransfer(StateTransferMsg::Log {
                        ops: std::mem::take(&mut ops),
                    }),
                );
                size = 0;
            }
            size += cost;
            ops.push(op);
        }
        if !ops.is_empty() {
            out.protocol(
                to,
                ProtocolMsg::StateTransfer(StateTransferMsg::Log { ops }),
            );
        }
        out.protocol(
            to,
            ProtocolMsg::StateTransfer(StateTransferMsg::Done { state: snap.state }),
        );
    }
}

/// Export a versioned store as snapshot entries, sorted by key so chunk
/// boundaries (and therefore wire bytes) are deterministic.
pub fn export_store(store: &harmonia_kv::Store<harmonia_kv::VersionedValue>) -> Vec<SnapshotEntry> {
    let mut entries = Vec::new();
    store.for_each(|key, vv| {
        entries.push(SnapshotEntry {
            key: key.clone(),
            obj: harmonia_types::ObjectId::from_key(key),
            value: vv.value.clone(),
            seq: vv.seq,
            dirty: false,
        });
    });
    entries.sort_by(|a, b| a.key.cmp(&b.key));
    entries
}

/// Install snapshot entries into a versioned store. Versioned: a key is
/// overwritten only where the snapshot's version is newer than what the
/// replica applied live while the transfer was in flight. Returns the
/// largest installed sequence number (ZERO if nothing was newer).
pub fn install_store(
    store: &harmonia_kv::Store<harmonia_kv::VersionedValue>,
    entries: Vec<SnapshotEntry>,
) -> SwitchSeq {
    let mut max_seq = SwitchSeq::ZERO;
    for e in entries {
        max_seq = max_seq.max(e.seq);
        store.update(
            &e.key,
            || harmonia_kv::VersionedValue::new(e.value.clone(), e.seq),
            |vv| {
                if e.seq > vv.seq {
                    *vv = harmonia_kv::VersionedValue::new(e.value.clone(), e.seq);
                }
            },
        );
    }
    max_seq
}

/// Shared handling of configuration-service control messages. Returns true
/// if the message was a control message (and `lease`/`members` were
/// updated).
pub fn handle_control(
    msg: &ProtocolMsg,
    lease: &mut LeaseState,
    members: &mut Vec<ReplicaId>,
) -> bool {
    match msg {
        ProtocolMsg::Control(ReplicaControlMsg::SetActiveSwitch(s)) => {
            lease.set_active(*s);
            true
        }
        ProtocolMsg::Control(ReplicaControlMsg::SetMembers(m)) => {
            *members = m.clone();
            true
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_types::{ClientId, ObjectId, RequestId};

    fn seq(sw: u32, n: u64) -> SwitchSeq {
        SwitchSeq::new(SwitchId(sw), n)
    }

    #[test]
    fn in_order_accepts_monotone_with_gaps() {
        let mut io = InOrder::new();
        assert!(io.accept(seq(1, 1)));
        assert!(io.accept(seq(1, 5)), "gaps are fine");
        assert!(!io.accept(seq(1, 5)), "duplicates rejected");
        assert!(!io.accept(seq(1, 3)), "regressions rejected");
        assert!(io.accept(seq(2, 1)), "new switch outranks old");
        assert!(!io.accept(seq(1, 100)), "old switch can never re-enter");
        assert_eq!(io.last(), seq(2, 1));
    }

    #[test]
    fn lease_is_monotone() {
        let mut l = LeaseState::new(SwitchId(1));
        assert!(l.allows(SwitchId(1)));
        assert!(!l.allows(SwitchId(2)));
        l.set_active(SwitchId(2));
        assert!(l.allows(SwitchId(2)));
        assert!(!l.allows(SwitchId(1)));
        // A stale control message cannot resurrect the old switch.
        l.set_active(SwitchId(1));
        assert!(l.allows(SwitchId(2)));
    }

    #[test]
    fn guards_match_the_paper() {
        // Read-ahead (Appendix A): serve iff Q.commit >= R.obj.seq.
        assert!(read_ahead_ok(seq(1, 5), seq(1, 5)));
        assert!(read_ahead_ok(seq(1, 5), seq(1, 9)));
        assert!(!read_ahead_ok(seq(1, 5), seq(1, 4)));
        // Read-behind: serve iff Q.commit <= R.seq.
        assert!(read_behind_ok(seq(1, 5), seq(1, 5)));
        assert!(read_behind_ok(seq(1, 9), seq(1, 5)));
        assert!(!read_behind_ok(seq(1, 4), seq(1, 5)));
    }

    #[test]
    fn quorum_sizes() {
        assert_eq!(ProtocolKind::PrimaryBackup.quorum(3), 3);
        assert_eq!(ProtocolKind::Chain.quorum(5), 5);
        assert_eq!(ProtocolKind::Vr.quorum(3), 2);
        assert_eq!(ProtocolKind::Vr.quorum(5), 3);
        assert_eq!(ProtocolKind::Nopaxos.quorum(4), 3);
    }

    #[test]
    fn control_messages_update_shared_state() {
        let mut lease = LeaseState::new(SwitchId(1));
        let mut members = vec![ReplicaId(0), ReplicaId(1)];
        assert!(handle_control(
            &ProtocolMsg::Control(ReplicaControlMsg::SetActiveSwitch(SwitchId(3))),
            &mut lease,
            &mut members
        ));
        assert_eq!(lease.active(), SwitchId(3));
        assert!(handle_control(
            &ProtocolMsg::Control(ReplicaControlMsg::SetMembers(vec![ReplicaId(1)])),
            &mut lease,
            &mut members
        ));
        assert_eq!(members, vec![ReplicaId(1)]);
        assert!(!handle_control(
            &ProtocolMsg::Vr(crate::messages::VrMsg::Commit { view: 0, commit: 0 }),
            &mut lease,
            &mut members
        ));
    }

    #[test]
    fn client_table_export_install_merges_by_request_id() {
        let mut a = ClientTable::new();
        a.admit(ClientId(1), RequestId(5));
        a.record_reply(read_reply(
            ReplicaId(0),
            &ClientRequest::read(ClientId(1), RequestId(5), &b"k"[..]),
            None,
        ));
        a.admit(ClientId(2), RequestId(1));
        let (clients, replies) = a.export();
        assert_eq!(
            clients,
            vec![(ClientId(1), RequestId(5)), (ClientId(2), RequestId(1))]
        );
        assert_eq!(replies.len(), 1);

        // The live table already admitted a newer request for client 1: the
        // snapshot's entry (and its stale cached reply) must not win.
        let mut b = ClientTable::new();
        b.admit(ClientId(1), RequestId(6));
        b.install(clients, replies);
        assert_eq!(b.admit(ClientId(1), RequestId(6)), Admission::Duplicate);
        assert_eq!(b.admit(ClientId(2), RequestId(1)), Admission::Duplicate);
        assert!(b.cached_reply(ClientId(1), RequestId(5)).is_none());
    }

    #[test]
    fn state_transfer_round_trip_restores_a_pb_backup() {
        use crate::build_replica;
        use harmonia_types::PacketBody;

        // Drive a 3-replica PB group to a committed state.
        let cfg =
            |me: u32| GroupConfig::new(crate::common::ProtocolKind::PrimaryBackup, 3, me, true);
        let mut group: Vec<Box<dyn Replica>> = (0..3).map(|i| build_replica(cfg(i))).collect();
        let mut fx = Effects::new();
        for n in 1..=4u64 {
            let mut req = ClientRequest::write(
                ClientId(1),
                RequestId(n),
                Bytes::copy_from_slice(format!("key{n}").as_bytes()),
                Bytes::copy_from_slice(format!("val{n}").as_bytes()),
            );
            req.seq = Some(seq(1, n));
            group[0].on_request(NodeId::Client(ClientId(1)), req, &mut fx);
        }
        while !fx.is_empty() {
            let mut next = Effects::new();
            for (dst, body) in fx.out.drain(..) {
                if let (NodeId::Replica(r), PacketBody::Protocol(m)) = (dst, body) {
                    group[r.index()].on_protocol(NodeId::Replica(r), m, &mut next);
                }
            }
            fx = next;
        }

        // Replica 2 crashes and restarts empty; pull state from replica 0.
        group[2] = build_replica(cfg(2));
        let mut engine = StateTransfer::new(ReplicaId(2));
        let mut fx = Effects::new();
        engine.begin(ReplicaId(0), &mut fx);
        assert!(engine.is_recovering());
        let mut done = false;
        while !fx.is_empty() {
            let mut next = Effects::new();
            for (dst, body) in fx.out.drain(..) {
                match (dst, body) {
                    (NodeId::Replica(r), PacketBody::Protocol(ProtocolMsg::StateTransfer(m))) => {
                        done |= engine.on_msg(group[r.index()].as_mut(), m, &mut next);
                    }
                    (NodeId::Switch(_), PacketBody::Control(ControlMsg::UngateReplica { .. })) => {}
                    other => panic!("unexpected effect {other:?}"),
                }
            }
            fx = next;
        }
        assert!(done, "transfer completed");
        assert!(!engine.is_recovering());
        for n in 1..=4u64 {
            assert_eq!(
                group[2].local_value(format!("key{n}").as_bytes()),
                Some(Bytes::copy_from_slice(format!("val{n}").as_bytes())),
                "key{n} restored"
            );
        }
        assert_eq!(group[2].applied_seq(), seq(1, 4));
    }

    #[test]
    fn state_transfer_done_emits_an_ungate_burst() {
        let cfg = GroupConfig::new(crate::common::ProtocolKind::PrimaryBackup, 2, 1, true);
        let mut replica = crate::build_replica(cfg);
        let mut engine = StateTransfer::new(ReplicaId(1));
        let mut fx = Effects::new();
        engine.begin(ReplicaId(0), &mut fx);
        let mut out = Effects::new();
        engine.on_msg(
            replica.as_mut(),
            StateTransferMsg::Done {
                state: SnapshotState::default(),
            },
            &mut out,
        );
        let ungates = out
            .out
            .iter()
            .filter(|(_, b)| {
                matches!(
                    b,
                    harmonia_types::PacketBody::Control(ControlMsg::UngateReplica {
                        replica: ReplicaId(1),
                        ..
                    })
                )
            })
            .count();
        assert_eq!(ungates, 3, "loss-tolerant burst");
        // A stray Done with no transfer in flight is ignored.
        let mut out = Effects::new();
        assert!(!engine.on_msg(
            replica.as_mut(),
            StateTransferMsg::Done {
                state: SnapshotState::default(),
            },
            &mut out,
        ));
        assert!(out.is_empty());
    }

    #[test]
    fn effects_address_the_right_nodes() {
        let mut fx = Effects::new();
        assert!(fx.is_empty());
        fx.protocol(
            ReplicaId(2),
            ProtocolMsg::Control(ReplicaControlMsg::SetMembers(vec![])),
        );
        fx.completion(
            SwitchId(1),
            WriteCompletion {
                obj: ObjectId(1),
                seq: seq(1, 1),
            },
        );
        let req = ClientRequest::read(ClientId(1), RequestId(1), &b"k"[..]);
        fx.reply(SwitchId(1), read_reply(ReplicaId(0), &req, None));
        fx.forward_request(ReplicaId(0), req);
        assert_eq!(fx.len(), 4);
        assert!(matches!(fx.out[0].0, NodeId::Replica(ReplicaId(2))));
        assert!(matches!(fx.out[1].0, NodeId::Switch(SwitchId(1))));
        assert!(matches!(fx.out[2].0, NodeId::Switch(SwitchId(1))));
        assert!(matches!(fx.out[3].0, NodeId::Replica(ReplicaId(0))));
    }
}
