//! Shared protocol plumbing: the replica trait, effects, configuration, and
//! the three Harmonia responsibilities from §7 of the paper.

use bytes::Bytes;
use harmonia_types::{
    ClientReply, ClientRequest, Duration, NodeId, PacketBody, ReplicaId, SwitchId, SwitchSeq,
    WriteCompletion, WriteOutcome,
};

use crate::messages::{ProtocolMsg, ReplicaControlMsg};

/// Which replication protocol a group runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProtocolKind {
    /// Primary-backup (§2).
    PrimaryBackup,
    /// Chain replication.
    Chain,
    /// CRAQ (baseline comparison only; no Harmonia adaptation exists —
    /// CRAQ *is* the protocol-level alternative).
    Craq,
    /// Viewstamped Replication / Multi-Paxos.
    Vr,
    /// NOPaxos.
    Nopaxos,
}

impl ProtocolKind {
    /// Read-ahead protocols can expose uncommitted state at replicas;
    /// read-behind protocols can lag the commit point (§3).
    pub fn is_read_ahead(self) -> bool {
        matches!(self, ProtocolKind::PrimaryBackup | ProtocolKind::Chain)
    }

    /// Writes entering a quorum protocol need a majority; primary-backup
    /// protocols need every replica.
    pub fn quorum(self, n: usize) -> usize {
        match self {
            ProtocolKind::PrimaryBackup | ProtocolKind::Chain | ProtocolKind::Craq => n,
            ProtocolKind::Vr | ProtocolKind::Nopaxos => n / 2 + 1,
        }
    }
}

/// Per-replica configuration.
#[derive(Clone, Debug)]
pub struct GroupConfig {
    /// The protocol this group runs.
    pub protocol: ProtocolKind,
    /// This replica's id.
    pub me: ReplicaId,
    /// Ordered membership: index 0 is primary/head/leader; the last element
    /// is the chain tail.
    pub members: Vec<ReplicaId>,
    /// Whether the Harmonia adaptation is active (switch-stamped sequence
    /// numbers, write completions, fast-path read guards).
    pub harmonia: bool,
    /// The currently active switch (lease, §5.3).
    pub active_switch: SwitchId,
    /// VR commit-broadcast / NOPaxos synchronization cadence.
    pub sync_interval: Duration,
}

impl GroupConfig {
    /// A default-configured group of `n` replicas for `protocol`, as seen by
    /// replica `me`.
    pub fn new(protocol: ProtocolKind, n: usize, me: u32, harmonia: bool) -> Self {
        GroupConfig {
            protocol,
            me: ReplicaId(me),
            members: (0..n as u32).map(ReplicaId).collect(),
            harmonia,
            active_switch: SwitchId(1),
            sync_interval: Duration::from_micros(200),
        }
    }
}

/// Messages a replica wants delivered, produced by one handler invocation.
#[derive(Debug, Default)]
pub struct Effects {
    /// `(destination, payload)` pairs, in send order.
    pub out: Vec<(NodeId, PacketBody<ProtocolMsg>)>,
}

impl Effects {
    /// Fresh, empty effect set.
    pub fn new() -> Self {
        Effects::default()
    }

    /// Send a protocol-internal message to a replica (direct rack hop).
    pub fn protocol(&mut self, to: ReplicaId, msg: ProtocolMsg) {
        self.out
            .push((NodeId::Replica(to), PacketBody::Protocol(msg)));
    }

    /// Send a client reply; replies travel back through the switch so the
    /// data plane can snoop piggybacked completions (Figure 2b).
    pub fn reply(&mut self, via_switch: SwitchId, reply: ClientReply) {
        self.out
            .push((NodeId::Switch(via_switch), PacketBody::Reply(reply)));
    }

    /// Send a standalone WRITE-COMPLETION to the switch (read-behind
    /// protocols, §7.3).
    pub fn completion(&mut self, to_switch: SwitchId, wc: WriteCompletion) {
        self.out
            .push((NodeId::Switch(to_switch), PacketBody::Completion(wc)));
    }

    /// Hand a client request to another replica (fast-path reads failing the
    /// guard are forwarded to the primary/tail/leader, §7.2).
    pub fn forward_request(&mut self, to: ReplicaId, req: ClientRequest) {
        self.out
            .push((NodeId::Replica(to), PacketBody::Request(req)));
    }

    /// Number of buffered sends.
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// True if no sends were produced.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }
}

/// §7 responsibility 1: process writes only in sequence-number order.
/// Out-of-order arrivals are rejected (the paper drops them; we surface the
/// rejection so clients can retry immediately).
#[derive(Clone, Copy, Debug, Default)]
pub struct InOrder {
    last: SwitchSeq,
}

impl InOrder {
    /// Fresh tracker accepting any first sequence number.
    pub fn new() -> Self {
        InOrder::default()
    }

    /// Accept `seq` iff it is strictly newer than everything seen; gaps are
    /// fine (dropped writes consume numbers).
    pub fn accept(&mut self, seq: SwitchSeq) -> bool {
        if seq > self.last {
            self.last = seq;
            true
        } else {
            false
        }
    }

    /// Largest accepted sequence number.
    pub fn last(&self) -> SwitchSeq {
        self.last
    }
}

/// Verdict on an incoming write's `(client, request)` pair.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Admission {
    /// First sighting: execute it.
    Fresh,
    /// Retransmission of the most recent admitted request: do not
    /// re-execute; re-send the cached reply if the original already
    /// completed (otherwise the original's in-flight reply will serve).
    Duplicate,
    /// Older than the last admitted request: drop silently.
    Stale,
}

/// Exactly-once write sessions (standard replication hygiene — the original
/// NOPaxos replicas keep the same table): each client's writes carry
/// monotonically increasing request ids; retries reuse the id. The protocol
/// entry point executes each id at most once, and the *replying* node caches
/// the last reply per client so a retransmission whose original reply was
/// lost can be answered without re-execution. Without this, a duplicated or
/// retried write would be sequenced twice, and the second application could
/// land after the client's operation completed — breaking linearizability
/// for blind writes. Reads are idempotent and bypass all of it.
#[derive(Clone, Debug, Default)]
pub struct ClientTable {
    last: std::collections::HashMap<harmonia_types::ClientId, harmonia_types::RequestId>,
    replies: std::collections::HashMap<harmonia_types::ClientId, ClientReply>,
}

impl ClientTable {
    /// Empty table.
    pub fn new() -> Self {
        ClientTable::default()
    }

    /// Classify `(client, request)`; `Fresh` admissions update the table.
    pub fn admit(
        &mut self,
        client: harmonia_types::ClientId,
        request: harmonia_types::RequestId,
    ) -> Admission {
        match self.last.get_mut(&client) {
            Some(seen) if request == *seen => Admission::Duplicate,
            Some(seen) if request < *seen => Admission::Stale,
            Some(seen) => {
                *seen = request;
                Admission::Fresh
            }
            None => {
                self.last.insert(client, request);
                Admission::Fresh
            }
        }
    }

    /// Cache the reply sent for a client's most recent request.
    pub fn record_reply(&mut self, reply: ClientReply) {
        self.replies.insert(reply.client, reply);
    }

    /// The cached reply for `(client, request)`, if the original completed.
    pub fn cached_reply(
        &self,
        client: harmonia_types::ClientId,
        request: harmonia_types::RequestId,
    ) -> Option<ClientReply> {
        self.replies
            .get(&client)
            .filter(|r| r.request == request)
            .cloned()
    }
}

/// §7 responsibility 2: honour single-replica reads only from the one active
/// switch. The configuration service moves the lease; replicas reject
/// fast-path reads flagged by any other incarnation.
#[derive(Clone, Copy, Debug)]
pub struct LeaseState {
    active: SwitchId,
}

impl LeaseState {
    /// Lease initially held by `active`.
    pub fn new(active: SwitchId) -> Self {
        LeaseState { active }
    }

    /// The switch currently allowed to issue fast-path reads.
    pub fn active(&self) -> SwitchId {
        self.active
    }

    /// Move the lease (monotone: an older incarnation can never regain it).
    pub fn set_active(&mut self, s: SwitchId) {
        if s > self.active {
            self.active = s;
        }
    }

    /// May a fast-path read flagged by `from` be honoured?
    pub fn allows(&self, from: SwitchId) -> bool {
        from == self.active
    }
}

/// §7 responsibility 3a — read-ahead guard (PB, chain): a replica may answer
/// a fast-path read iff the stamped last-committed point covers the latest
/// write it has *applied* to the object; otherwise the applied value might
/// be uncommitted (P2 would break).
pub fn read_ahead_ok(applied_seq: SwitchSeq, stamped_last_committed: SwitchSeq) -> bool {
    stamped_last_committed >= applied_seq
}

/// §7 responsibility 3b — read-behind guard (VR, NOPaxos): a replica may
/// answer a fast-path read iff it has *executed* at least up to the stamped
/// last-committed point; otherwise it might miss a committed write (P1
/// would break).
pub fn read_behind_ok(executed_seq: SwitchSeq, stamped_last_committed: SwitchSeq) -> bool {
    executed_seq >= stamped_last_committed
}

/// Build a read reply from replica `me`.
pub fn read_reply(me: ReplicaId, req: &ClientRequest, value: Option<Bytes>) -> ClientReply {
    ClientReply {
        client: req.client,
        from: me,
        request: req.request,
        obj: req.obj,
        value,
        write_outcome: None,
        completion: None,
    }
}

/// Build a write reply, optionally piggybacking a completion (read-ahead
/// protocols complete writes at reply time, Figure 2b).
#[allow(clippy::too_many_arguments)]
pub fn write_reply(
    me: ReplicaId,
    req_client: harmonia_types::ClientId,
    req_id: harmonia_types::RequestId,
    obj: harmonia_types::ObjectId,
    outcome: WriteOutcome,
    completion: Option<WriteCompletion>,
) -> ClientReply {
    ClientReply {
        client: req_client,
        from: me,
        request: req_id,
        obj,
        value: None,
        write_outcome: Some(outcome),
        completion,
    }
}

/// A replica state machine. One instance runs per storage server; the
/// drivers in `harmonia-core` deliver packets and ticks.
pub trait Replica: Send {
    /// Handle a client request (write, normal read, or fast-path read).
    fn on_request(&mut self, src: NodeId, req: ClientRequest, out: &mut Effects);

    /// Handle a protocol-internal message.
    fn on_protocol(&mut self, src: NodeId, msg: ProtocolMsg, out: &mut Effects);

    /// Periodic tick (commit broadcasts, synchronization); driven at
    /// [`Replica::tick_interval`].
    fn on_tick(&mut self, _out: &mut Effects) {}

    /// How often `on_tick` should run, if at all.
    fn tick_interval(&self) -> Option<Duration> {
        None
    }

    /// This replica's current best-known value for `key` (its applied state;
    /// equal to the committed value once the system quiesces). For audits
    /// and tests.
    fn local_value(&self, key: &[u8]) -> Option<Bytes>;

    /// The largest write sequence number this replica has applied/executed.
    fn applied_seq(&self) -> SwitchSeq;
}

/// Shared handling of configuration-service control messages. Returns true
/// if the message was a control message (and `lease`/`members` were
/// updated).
pub fn handle_control(
    msg: &ProtocolMsg,
    lease: &mut LeaseState,
    members: &mut Vec<ReplicaId>,
) -> bool {
    match msg {
        ProtocolMsg::Control(ReplicaControlMsg::SetActiveSwitch(s)) => {
            lease.set_active(*s);
            true
        }
        ProtocolMsg::Control(ReplicaControlMsg::SetMembers(m)) => {
            *members = m.clone();
            true
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_types::{ClientId, ObjectId, RequestId};

    fn seq(sw: u32, n: u64) -> SwitchSeq {
        SwitchSeq::new(SwitchId(sw), n)
    }

    #[test]
    fn in_order_accepts_monotone_with_gaps() {
        let mut io = InOrder::new();
        assert!(io.accept(seq(1, 1)));
        assert!(io.accept(seq(1, 5)), "gaps are fine");
        assert!(!io.accept(seq(1, 5)), "duplicates rejected");
        assert!(!io.accept(seq(1, 3)), "regressions rejected");
        assert!(io.accept(seq(2, 1)), "new switch outranks old");
        assert!(!io.accept(seq(1, 100)), "old switch can never re-enter");
        assert_eq!(io.last(), seq(2, 1));
    }

    #[test]
    fn lease_is_monotone() {
        let mut l = LeaseState::new(SwitchId(1));
        assert!(l.allows(SwitchId(1)));
        assert!(!l.allows(SwitchId(2)));
        l.set_active(SwitchId(2));
        assert!(l.allows(SwitchId(2)));
        assert!(!l.allows(SwitchId(1)));
        // A stale control message cannot resurrect the old switch.
        l.set_active(SwitchId(1));
        assert!(l.allows(SwitchId(2)));
    }

    #[test]
    fn guards_match_the_paper() {
        // Read-ahead (Appendix A): serve iff Q.commit >= R.obj.seq.
        assert!(read_ahead_ok(seq(1, 5), seq(1, 5)));
        assert!(read_ahead_ok(seq(1, 5), seq(1, 9)));
        assert!(!read_ahead_ok(seq(1, 5), seq(1, 4)));
        // Read-behind: serve iff Q.commit <= R.seq.
        assert!(read_behind_ok(seq(1, 5), seq(1, 5)));
        assert!(read_behind_ok(seq(1, 9), seq(1, 5)));
        assert!(!read_behind_ok(seq(1, 4), seq(1, 5)));
    }

    #[test]
    fn quorum_sizes() {
        assert_eq!(ProtocolKind::PrimaryBackup.quorum(3), 3);
        assert_eq!(ProtocolKind::Chain.quorum(5), 5);
        assert_eq!(ProtocolKind::Vr.quorum(3), 2);
        assert_eq!(ProtocolKind::Vr.quorum(5), 3);
        assert_eq!(ProtocolKind::Nopaxos.quorum(4), 3);
    }

    #[test]
    fn control_messages_update_shared_state() {
        let mut lease = LeaseState::new(SwitchId(1));
        let mut members = vec![ReplicaId(0), ReplicaId(1)];
        assert!(handle_control(
            &ProtocolMsg::Control(ReplicaControlMsg::SetActiveSwitch(SwitchId(3))),
            &mut lease,
            &mut members
        ));
        assert_eq!(lease.active(), SwitchId(3));
        assert!(handle_control(
            &ProtocolMsg::Control(ReplicaControlMsg::SetMembers(vec![ReplicaId(1)])),
            &mut lease,
            &mut members
        ));
        assert_eq!(members, vec![ReplicaId(1)]);
        assert!(!handle_control(
            &ProtocolMsg::Vr(crate::messages::VrMsg::Commit { view: 0, commit: 0 }),
            &mut lease,
            &mut members
        ));
    }

    #[test]
    fn effects_address_the_right_nodes() {
        let mut fx = Effects::new();
        assert!(fx.is_empty());
        fx.protocol(
            ReplicaId(2),
            ProtocolMsg::Control(ReplicaControlMsg::SetMembers(vec![])),
        );
        fx.completion(
            SwitchId(1),
            WriteCompletion {
                obj: ObjectId(1),
                seq: seq(1, 1),
            },
        );
        let req = ClientRequest::read(ClientId(1), RequestId(1), &b"k"[..]);
        fx.reply(SwitchId(1), read_reply(ReplicaId(0), &req, None));
        fx.forward_request(ReplicaId(0), req);
        assert_eq!(fx.len(), 4);
        assert!(matches!(fx.out[0].0, NodeId::Replica(ReplicaId(2))));
        assert!(matches!(fx.out[1].0, NodeId::Switch(SwitchId(1))));
        assert!(matches!(fx.out[2].0, NodeId::Switch(SwitchId(1))));
        assert!(matches!(fx.out[3].0, NodeId::Replica(ReplicaId(0))));
    }
}
