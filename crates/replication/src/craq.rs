//! CRAQ — Chain Replication with Apportioned Queries (Terrace & Freedman,
//! USENIX ATC '09).
//!
//! CRAQ is the protocol-level alternative that Harmonia is compared against
//! (§3.1, §9.5 / Figure 9a of the Harmonia paper). Every replica may answer
//! reads for *clean* objects; reads of *dirty* objects are forwarded to the
//! tail. The price is an extra write phase: a write first propagates down
//! the chain as a dirty version, and after the tail commits it a CLEAN
//! acknowledgement travels back up, node by node. That second phase is why
//! CRAQ's write throughput falls below plain chain replication — the effect
//! Figure 9a shows and Harmonia avoids by moving conflict tracking into the
//! switch.
//!
//! CRAQ has no Harmonia adaptation: it *is* the baseline.

use bytes::Bytes;
use harmonia_kv::{Store, VersionChain, VersionedValue};
use harmonia_types::{ClientRequest, NodeId, OpKind, ReplicaId, SwitchId, SwitchSeq, WriteOutcome};

use crate::common::{
    handle_control, read_reply, write_reply, Admission, ClientTable, Effects, GroupConfig, InOrder,
    LeaseState, Replica, Snapshot,
};
use crate::messages::{CraqMsg, ProtocolMsg, SnapshotEntry, SnapshotState, WriteOp};

/// One CRAQ node.
pub struct CraqReplica {
    me: ReplicaId,
    members: Vec<ReplicaId>,
    lease: LeaseState,
    store: Store<VersionChain>,
    in_order: InOrder,
    local_seq: u64,
    /// Head only: at-most-once admission (drops network duplicates).
    clients: ClientTable,
    applied: SwitchSeq,
}

impl CraqReplica {
    /// Build the replica for `config`.
    pub fn new(config: GroupConfig) -> Self {
        CraqReplica {
            me: config.me,
            members: config.members,
            lease: LeaseState::new(config.active_switch),
            store: Store::new(),
            in_order: InOrder::new(),
            local_seq: 0,
            clients: ClientTable::new(),
            applied: SwitchSeq::ZERO,
        }
    }

    fn head(&self) -> ReplicaId {
        self.members[0]
    }

    fn tail(&self) -> ReplicaId {
        *self.members.last().expect("non-empty chain")
    }

    fn is_tail(&self) -> bool {
        self.me == self.tail()
    }

    fn successor(&self) -> Option<ReplicaId> {
        let idx = self.members.iter().position(|&r| r == self.me)?;
        self.members.get(idx + 1).copied()
    }

    fn predecessor(&self) -> Option<ReplicaId> {
        let idx = self.members.iter().position(|&r| r == self.me)?;
        idx.checked_sub(1).map(|i| self.members[i])
    }

    /// Stage/commit a write at this node and keep it moving down the chain;
    /// at the tail, commit, reply, and start the CLEAN back-propagation.
    fn propagate(&mut self, op: WriteOp, out: &mut Effects) {
        self.applied = self.applied.max(op.seq);
        if self.is_tail() {
            // Tail commits immediately: its clean version is the committed
            // version by definition.
            self.store
                .update(&op.key.clone(), VersionChain::empty, |chain| {
                    chain.install_clean(VersionedValue::new(op.value.clone(), op.seq))
                });
            let reply = write_reply(
                self.me,
                op.client,
                op.request,
                op.obj,
                WriteOutcome::Committed,
                None,
            );
            self.clients.record_reply(reply.clone());
            out.reply(self.lease.active(), reply);
            // Second phase: mark clean back up the chain.
            if let Some(prev) = self.predecessor() {
                out.protocol(
                    prev,
                    ProtocolMsg::Craq(CraqMsg::Clean {
                        obj: op.obj,
                        key: op.key,
                        seq: op.seq,
                    }),
                );
            }
        } else {
            self.store
                .update(&op.key.clone(), VersionChain::empty, |chain| {
                    chain.stage(VersionedValue::new(op.value.clone(), op.seq))
                });
            let next = self.successor().expect("non-tail has a successor");
            out.protocol(next, ProtocolMsg::Craq(CraqMsg::Down(op)));
        }
    }

    fn handle_write(&mut self, mut req: ClientRequest, out: &mut Effects) {
        if self.me != self.head() {
            out.forward_request(self.head(), req);
            return;
        }
        match self.clients.admit(req.client, req.request) {
            Admission::Fresh => {}
            Admission::Duplicate => {
                if self.is_tail() {
                    if let Some(r) = self.clients.cached_reply(req.client, req.request) {
                        out.reply(self.lease.active(), r);
                    }
                } else {
                    out.protocol(
                        self.tail(),
                        ProtocolMsg::Craq(CraqMsg::ReReply {
                            client: req.client,
                            request: req.request,
                        }),
                    );
                }
                return;
            }
            Admission::Stale => return,
        }
        // CRAQ runs without switch stamping; the head versions writes.
        self.local_seq += 1;
        let seq = SwitchSeq::new(self.lease.active(), self.local_seq);
        req.seq = Some(seq);
        if !self.in_order.accept(seq) {
            out.reply(
                self.lease.active(),
                write_reply(
                    self.me,
                    req.client,
                    req.request,
                    req.obj,
                    WriteOutcome::Rejected,
                    None,
                ),
            );
            return;
        }
        let op = WriteOp {
            seq,
            obj: req.obj,
            key: req.key.clone(),
            value: req.value.clone().unwrap_or_default(),
            client: req.client,
            request: req.request,
        };
        self.propagate(op, out);
    }

    fn handle_read(&mut self, req: ClientRequest, out: &mut Effects) {
        // Any replica takes reads (that is CRAQ's point); `read_mode` is
        // irrelevant here.
        enum Verdict {
            Clean(Option<Bytes>),
            Dirty,
        }
        let verdict = self.store.with(&req.key, |chain| match chain {
            None => Verdict::Clean(None),
            Some(c) if c.is_dirty() && !self.is_tail() => Verdict::Dirty,
            Some(c) => Verdict::Clean(c.clean().map(|v| v.value.clone())),
        });
        match verdict {
            Verdict::Clean(value) => {
                out.reply(self.lease.active(), read_reply(self.me, &req, value));
            }
            Verdict::Dirty => {
                // Dirty object: ask the tail, which always has the committed
                // truth.
                out.forward_request(self.tail(), req);
            }
        }
    }
}

impl Replica for CraqReplica {
    fn on_request(&mut self, _src: NodeId, req: ClientRequest, out: &mut Effects) {
        match req.op {
            OpKind::Write => self.handle_write(req, out),
            OpKind::Read => self.handle_read(req, out),
        }
    }

    fn on_protocol(&mut self, _src: NodeId, msg: ProtocolMsg, out: &mut Effects) {
        if handle_control(&msg, &mut self.lease, &mut self.members) {
            return;
        }
        match msg {
            ProtocolMsg::Craq(CraqMsg::Down(op)) if self.in_order.accept(op.seq) => {
                self.propagate(op, out);
            }
            ProtocolMsg::Craq(CraqMsg::Clean { obj, key, seq }) => {
                self.store
                    .update(&key.clone(), VersionChain::empty, |chain| {
                        chain.commit_up_to(seq)
                    });
                // Keep the acknowledgement flowing toward the head.
                if let Some(prev) = self.predecessor() {
                    out.protocol(prev, ProtocolMsg::Craq(CraqMsg::Clean { obj, key, seq }));
                }
            }
            ProtocolMsg::Craq(CraqMsg::ReReply { client, request }) => {
                if let Some(r) = self.clients.cached_reply(client, request) {
                    out.reply(self.lease.active(), r);
                } else if let Some(pred) = self.predecessor() {
                    // A freshly recovered tail has no cache for replies its
                    // predecessor sent while it was down; walk upstream.
                    out.protocol(
                        pred,
                        ProtocolMsg::Craq(CraqMsg::ReReply { client, request }),
                    );
                }
            }
            _ => {}
        }
    }

    fn local_value(&self, key: &[u8]) -> Option<Bytes> {
        self.store
            .with(key, |c| c.and_then(|c| c.latest().map(|v| v.value.clone())))
    }

    fn applied_seq(&self) -> SwitchSeq {
        self.applied
    }

    fn export_snapshot(&self) -> Snapshot {
        // Per key: the clean (committed) version plus every staged dirty
        // version. Dirty versions cannot ride in the WriteOp log — they
        // carry no client/request — so the `dirty` flag marks them.
        let mut entries = Vec::new();
        self.store.for_each(|key, chain| {
            let obj = harmonia_types::ObjectId::from_key(key);
            if let Some(v) = chain.clean() {
                entries.push(SnapshotEntry {
                    key: key.clone(),
                    obj,
                    value: v.value.clone(),
                    seq: v.seq,
                    dirty: false,
                });
            }
            for v in chain.dirty_versions() {
                entries.push(SnapshotEntry {
                    key: key.clone(),
                    obj,
                    value: v.value.clone(),
                    seq: v.seq,
                    dirty: true,
                });
            }
        });
        // Sorting by (key, seq) puts each key's clean version before its
        // dirty ones, which is the order `install_snapshot` needs.
        entries.sort_by(|a, b| a.key.cmp(&b.key).then(a.seq.cmp(&b.seq)));
        let (clients, replies) = self.clients.export();
        Snapshot {
            entries,
            log: Vec::new(),
            state: SnapshotState {
                in_order: self.in_order.last(),
                applied: self.applied,
                local_seq: self.local_seq,
                commit_num: 0,
                session: 0,
                clients,
                replies,
            },
        }
    }

    fn install_snapshot(&mut self, snap: Snapshot, out: &mut Effects) {
        let _ = out;
        for e in snap.entries {
            self.applied = self.applied.max(e.seq);
            let v = VersionedValue::new(e.value.clone(), e.seq);
            self.store.update(&e.key, VersionChain::empty, |chain| {
                // Both paths reject versions at or below what the chain
                // already holds, so live Downs staged during the transfer
                // are never regressed; a snapshot dirty version they
                // superseded simply drops (its CLEAN will find nothing to
                // commit here, which is fine — a newer version follows).
                if e.dirty {
                    chain.stage(v);
                } else {
                    chain.install_clean(v);
                }
            });
        }
        self.applied = self.applied.max(snap.state.applied);
        // `in_order` stays untouched for the same reason as plain chain:
        // Downs still in flight must keep propagating.
        self.local_seq = self.local_seq.max(snap.state.local_seq);
        self.clients.install(snap.state.clients, snap.state.replies);
    }

    fn active_switch(&self) -> SwitchId {
        self.lease.active()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_types::{ClientId, PacketBody, RequestId};

    fn group(n: usize) -> Vec<CraqReplica> {
        (0..n)
            .map(|i| {
                CraqReplica::new(GroupConfig::new(
                    crate::common::ProtocolKind::Craq,
                    n,
                    i as u32,
                    false,
                ))
            })
            .collect()
    }

    fn write_req(n: u64, key: &str, val: &str) -> ClientRequest {
        ClientRequest::write(
            ClientId(1),
            RequestId(n),
            Bytes::copy_from_slice(key.as_bytes()),
            Bytes::copy_from_slice(val.as_bytes()),
        )
    }

    fn pump(replicas: &mut [CraqReplica], mut fx: Effects) -> Vec<PacketBody<ProtocolMsg>> {
        let mut replies = vec![];
        while !fx.out.is_empty() {
            let mut next = Effects::new();
            for (dst, body) in fx.out.drain(..) {
                match (dst, body) {
                    (NodeId::Replica(r), PacketBody::Protocol(m)) => {
                        replicas[r.index()].on_protocol(NodeId::Replica(r), m, &mut next);
                    }
                    (NodeId::Replica(r), PacketBody::Request(req)) => {
                        replicas[r.index()].on_request(NodeId::Replica(r), req, &mut next);
                    }
                    (NodeId::Switch(_), b) => replies.push(b),
                    other => panic!("unexpected effect {other:?}"),
                }
            }
            fx = next;
        }
        replies
    }

    fn dirty_at(g: &CraqReplica, key: &[u8]) -> bool {
        g.store
            .with(key, |c| c.map(|c| c.is_dirty()).unwrap_or(false))
    }

    #[test]
    fn write_has_two_phases_and_all_nodes_end_clean() {
        let mut g = group(3);
        let mut fx = Effects::new();
        g[0].on_request(NodeId::Client(ClientId(1)), write_req(1, "k", "v"), &mut fx);
        // Phase 1 in flight: head has a dirty version.
        assert!(dirty_at(&g[0], b"k"));
        let replies = pump(&mut g, fx);
        assert_eq!(replies.len(), 1);
        // Phase 2 done: everyone is clean with the committed value.
        for (i, rep) in g.iter().enumerate() {
            assert!(!dirty_at(rep, b"k"), "node {i} still dirty");
            assert_eq!(rep.local_value(b"k"), Some(Bytes::from_static(b"v")));
        }
    }

    #[test]
    fn any_replica_serves_clean_reads_locally() {
        let mut g = group(3);
        let fx = {
            let mut fx = Effects::new();
            g[0].on_request(NodeId::Client(ClientId(1)), write_req(1, "k", "v"), &mut fx);
            fx
        };
        pump(&mut g, fx);
        for (idx, replica) in g.iter_mut().enumerate() {
            let read = ClientRequest::read(ClientId(2), RequestId(9), &b"k"[..]);
            let mut fx = Effects::new();
            replica.on_request(NodeId::Client(ClientId(2)), read, &mut fx);
            let PacketBody::Reply(r) = &fx.out[0].1 else {
                panic!("node {idx} forwarded a clean read")
            };
            assert_eq!(r.value, Some(Bytes::from_static(b"v")));
        }
    }

    #[test]
    fn dirty_read_goes_to_the_tail() {
        let mut g = group(3);
        // Start a write but stop after the head stages it.
        let mut fx = Effects::new();
        g[0].on_request(
            NodeId::Client(ClientId(1)),
            write_req(1, "k", "v1"),
            &mut fx,
        );
        // Head is dirty: a read there must be forwarded to the tail.
        let read = ClientRequest::read(ClientId(2), RequestId(9), &b"k"[..]);
        let mut fx2 = Effects::new();
        g[0].on_request(NodeId::Client(ClientId(2)), read, &mut fx2);
        assert!(matches!(
            fx2.out[0],
            (NodeId::Replica(ReplicaId(2)), PacketBody::Request(_))
        ));
        // The tail hasn't seen the write; it serves the old (absent) value —
        // correct, the write hasn't committed.
        let replies = pump(&mut g, fx2);
        let PacketBody::Reply(r) = &replies[0] else {
            panic!()
        };
        assert_eq!(r.value, None);
    }

    #[test]
    fn overlapping_writes_keep_monotone_versions() {
        let mut g = group(3);
        // Two writes to the same key, fully processed.
        for (n, v) in [(1, "v1"), (2, "v2")] {
            let fx = {
                let mut fx = Effects::new();
                g[0].on_request(NodeId::Client(ClientId(1)), write_req(n, "k", v), &mut fx);
                fx
            };
            pump(&mut g, fx);
        }
        for rep in &g {
            assert_eq!(rep.local_value(b"k"), Some(Bytes::from_static(b"v2")));
        }
    }

    #[test]
    fn reads_of_other_keys_unaffected_by_dirty_key() {
        let mut g = group(3);
        // Commit "a", then leave "b" dirty at the head.
        let fx = {
            let mut fx = Effects::new();
            g[0].on_request(
                NodeId::Client(ClientId(1)),
                write_req(1, "a", "va"),
                &mut fx,
            );
            fx
        };
        pump(&mut g, fx);
        let mut fx = Effects::new();
        g[0].on_request(
            NodeId::Client(ClientId(1)),
            write_req(2, "b", "vb"),
            &mut fx,
        );
        // "a" still serves locally at the head.
        let read = ClientRequest::read(ClientId(2), RequestId(9), &b"a"[..]);
        let mut fx2 = Effects::new();
        g[0].on_request(NodeId::Client(ClientId(2)), read, &mut fx2);
        let PacketBody::Reply(r) = &fx2.out[0].1 else {
            panic!()
        };
        assert_eq!(r.value, Some(Bytes::from_static(b"va")));
    }

    #[test]
    fn misrouted_write_forwards_to_head() {
        let mut g = group(3);
        let mut fx = Effects::new();
        g[1].on_request(NodeId::Client(ClientId(1)), write_req(1, "k", "v"), &mut fx);
        assert!(matches!(
            fx.out[0],
            (NodeId::Replica(ReplicaId(0)), PacketBody::Request(_))
        ));
    }
}
