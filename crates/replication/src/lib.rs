//! Replication protocols, with and without Harmonia.
//!
//! Every protocol from the paper's evaluation (§9.5) is implemented here as a
//! transport-agnostic (sans-IO) state machine:
//!
//! | module | protocol | class | Harmonia adaptation (§7) |
//! |---|---|---|---|
//! | [`pb`] | primary-backup | read-ahead | last-committed ≥ object seq guard; completion piggybacked on reply |
//! | [`chain`] | chain replication | read-ahead | same guard; completion piggybacked on the tail's reply |
//! | [`craq`] | CRAQ | baseline only | — (the protocol-level alternative Harmonia is compared against) |
//! | [`vr`] | Viewstamped Replication | read-behind | extra COMMIT-ACK phase; completion after quorum executes |
//! | [`nopaxos`] | NOPaxos | read-behind | completions batched out of the periodic synchronization |
//!
//! A state machine consumes packets/ticks and emits [`Effects`] — messages to
//! send. The simulation driver and the live threaded driver (both in
//! `harmonia-core`) execute the same machines.
//!
//! The three protocol responsibilities Harmonia imposes (§7) are visible in
//! the code: writes are processed in sequence-number order ([`common::InOrder`]),
//! fast-path reads are honoured only from the active switch
//! ([`common::LeaseState`]), and each replica applies the class-appropriate
//! guard before answering a single-replica read ([`common::read_ahead_ok`],
//! [`common::read_behind_ok`]).

#![forbid(unsafe_code)]

pub mod chain;
pub mod common;
pub mod craq;
pub mod messages;
pub mod nopaxos;
pub mod pb;
pub mod vr;
pub mod wire;

pub use common::{
    read_ahead_ok, read_behind_ok, Effects, GroupConfig, InOrder, LeaseState, ProtocolKind,
    Replica, Snapshot, StateTransfer,
};
pub use messages::{ProtocolMsg, ReplicaControlMsg};

/// Construct the replica state machine for `config`.
pub fn build_replica(config: GroupConfig) -> Box<dyn Replica> {
    match config.protocol {
        ProtocolKind::PrimaryBackup => Box::new(pb::PbReplica::new(config)),
        ProtocolKind::Chain => Box::new(chain::ChainReplica::new(config)),
        ProtocolKind::Craq => Box::new(craq::CraqReplica::new(config)),
        ProtocolKind::Vr => Box::new(vr::VrReplica::new(config)),
        ProtocolKind::Nopaxos => Box::new(nopaxos::NopaxosReplica::new(config)),
    }
}
