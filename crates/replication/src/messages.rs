//! Protocol-internal messages.
//!
//! These ride in [`PacketBody::Protocol`] and are forwarded by the switch as
//! ordinary L2/L3 traffic — the conflict-detection pipeline never inspects
//! them.
//!
//! [`PacketBody::Protocol`]: harmonia_types::PacketBody::Protocol

use bytes::Bytes;
use harmonia_types::{ClientId, ClientReply, ObjectId, ReplicaId, RequestId, SwitchId, SwitchSeq};

/// A write as it travels inside a replica group.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WriteOp {
    /// Sequence number (switch-assigned under Harmonia, entry-node-assigned
    /// otherwise).
    pub seq: SwitchSeq,
    /// Fixed-width object id (what the dirty set tracks).
    pub obj: ObjectId,
    /// Full application key.
    pub key: Bytes,
    /// New value.
    pub value: Bytes,
    /// Issuing client (for the final reply).
    pub client: ClientId,
    /// Client request number (for the final reply).
    pub request: RequestId,
}

/// Primary-backup messages.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PbMsg {
    /// Primary → backup: apply this state update.
    Update(WriteOp),
    /// Backup → primary: update applied.
    Ack {
        /// Acknowledged sequence number.
        seq: SwitchSeq,
        /// Acknowledging backup.
        from: ReplicaId,
    },
}

/// Chain replication messages.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ChainMsg {
    /// Predecessor → successor: propagate the write down the chain.
    Down(WriteOp),
    /// Head → tail: a client retransmitted `(client, request)`; if the tail
    /// already replied for it, re-send the cached reply (exactly-once
    /// sessions — the tail is the replying node in chain replication).
    ReReply {
        /// Retransmitting client.
        client: ClientId,
        /// The retransmitted request id.
        request: RequestId,
    },
}

/// CRAQ messages.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CraqMsg {
    /// Propagate a dirty version down the chain.
    Down(WriteOp),
    /// Tail → everyone upstream: version `seq` of `obj` is committed; mark
    /// it clean (CRAQ's extra write phase).
    Clean {
        /// Object whose version committed.
        obj: ObjectId,
        /// Key (chains are keyed by full key).
        key: Bytes,
        /// Committed version.
        seq: SwitchSeq,
    },
    /// Head → tail: re-send the cached reply for a retransmitted request.
    ReReply {
        /// Retransmitting client.
        client: ClientId,
        /// The retransmitted request id.
        request: RequestId,
    },
}

/// Viewstamped Replication messages (normal case + the Harmonia
/// COMMIT-ACK phase of §7.3).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum VrMsg {
    /// Leader → replica: log this operation at position `op_num`.
    Prepare {
        /// Current view.
        view: u64,
        /// Log position.
        op_num: u64,
        /// The operation.
        op: WriteOp,
        /// Leader's commit point, piggybacked.
        commit: u64,
    },
    /// Replica → leader: operation logged.
    PrepareOk {
        /// View of the prepare.
        view: u64,
        /// Log position acknowledged.
        op_num: u64,
        /// Acknowledging replica.
        from: ReplicaId,
    },
    /// Leader → replica: commit point advanced (async notification).
    Commit {
        /// Current view.
        view: u64,
        /// Commit point.
        commit: u64,
    },
    /// Replica → leader: executed through `op_num` (the Harmonia-added
    /// COMMIT-ACK; §7.3).
    CommitAck {
        /// View.
        view: u64,
        /// Executed-through position.
        op_num: u64,
        /// Acknowledging replica.
        from: ReplicaId,
    },
}

/// NOPaxos messages (normal case + periodic synchronization).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum NopaxosMsg {
    /// Sequencer-stamped write, multicast by the switch to every replica.
    Sequenced {
        /// OUM session (switch incarnation).
        session: u64,
        /// Dense per-session sequence number.
        oum_seq: u64,
        /// The operation.
        op: WriteOp,
    },
    /// Replica → client-side quorum aggregation happens at the client; each
    /// replica acknowledges the slot to the *leader*, which tracks quorum
    /// for the synchronization protocol.
    SlotAck {
        /// Session.
        session: u64,
        /// Slot acknowledged.
        oum_seq: u64,
        /// Acknowledging replica.
        from: ReplicaId,
    },
    /// Replica → leader: a gap was detected at `oum_seq`; ask for the entry.
    GapRequest {
        /// Session.
        session: u64,
        /// Missing slot.
        oum_seq: u64,
        /// Requesting replica.
        from: ReplicaId,
    },
    /// Leader → replica: fill for a gap request (`None` = commit a no-op).
    GapReply {
        /// Session.
        session: u64,
        /// Slot being filled.
        oum_seq: u64,
        /// The operation, if the leader has it.
        op: Option<WriteOp>,
    },
    /// Leader → replicas: synchronization round `upto` (§7.3: the periodic
    /// sync NOPaxos already runs; Harmonia hooks completions onto it).
    Sync {
        /// Session.
        session: u64,
        /// Leader's log length (all slots ≤ upto are stable at the leader).
        upto: u64,
    },
    /// Replica → leader: executed through `upto`.
    SyncAck {
        /// Session.
        session: u64,
        /// Executed-through slot.
        upto: u64,
        /// Acknowledging replica.
        from: ReplicaId,
    },
}

/// One key's snapshotted version, as shipped during state transfer.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SnapshotEntry {
    /// Full application key.
    pub key: Bytes,
    /// Fixed-width object id.
    pub obj: ObjectId,
    /// The stored bytes.
    pub value: Bytes,
    /// Sequence number of the write that installed this version.
    pub seq: SwitchSeq,
    /// CRAQ only: the version is staged but not yet committed (a pending
    /// dirty version). Every other protocol ships committed/applied state
    /// and sets this false.
    pub dirty: bool,
}

/// Scalar protocol state shipped at the end of a state transfer: everything
/// a rejoining replica needs beyond the store and log to resume the
/// protocol without violating its invariants.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SnapshotState {
    /// The peer's in-order write-admission point (§7 responsibility 1).
    pub in_order: SwitchSeq,
    /// The peer's applied/executed point (what the read guards compare).
    pub applied: SwitchSeq,
    /// Entry-node local version counter (baseline self-stamping); 0 when
    /// the switch stamps.
    pub local_seq: u64,
    /// VR commit number / NOPaxos executed-slot count; 0 elsewhere.
    pub commit_num: u64,
    /// NOPaxos OUM session; 0 elsewhere.
    pub session: u64,
    /// Exactly-once session table: each client's last admitted request id,
    /// sorted by client id for deterministic wire bytes.
    pub clients: Vec<(ClientId, RequestId)>,
    /// Cached last reply per client (retransmission answers), sorted by
    /// client id.
    pub replies: Vec<ClientReply>,
}

/// Replica crash-recovery state transfer (snapshot + log catchup). A
/// rejoining replica pulls from one live peer; chunks are sized to fit the
/// wire codec's frame bound so the transfer crosses real sockets.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StateTransferMsg {
    /// Rejoining replica → live peer: send me your state.
    Request {
        /// The recovering replica (chunks are addressed back to it).
        from: ReplicaId,
    },
    /// Peer → rejoining replica: a chunk of store entries.
    Entries {
        /// Snapshotted versions.
        entries: Vec<SnapshotEntry>,
    },
    /// Peer → rejoining replica: a chunk of log / pending operations
    /// (VR log, NOPaxos log, PB pending writes).
    Log {
        /// Operations in log order.
        ops: Vec<WriteOp>,
    },
    /// Peer → rejoining replica: transfer complete; install and rejoin.
    Done {
        /// Scalar protocol state.
        state: SnapshotState,
    },
}

/// Control commands delivered to replicas by the configuration service
/// (leases and membership, §5.3 / §7 responsibility 2).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ReplicaControlMsg {
    /// Henceforth honour single-replica reads only from this switch; reject
    /// (route through the normal protocol) reads flagged by any other
    /// incarnation.
    SetActiveSwitch(SwitchId),
    /// Membership change: the ordered live replica list (chain order / role
    /// order).
    SetMembers(Vec<ReplicaId>),
}

/// Union of all protocol-internal traffic.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ProtocolMsg {
    /// Primary-backup.
    Pb(PbMsg),
    /// Chain replication.
    Chain(ChainMsg),
    /// CRAQ.
    Craq(CraqMsg),
    /// Viewstamped Replication.
    Vr(VrMsg),
    /// NOPaxos.
    Nopaxos(NopaxosMsg),
    /// Configuration-service control traffic.
    Control(ReplicaControlMsg),
    /// Crash-recovery state transfer (protocol-agnostic framing; the
    /// payload encodes whichever state the group's protocol exports).
    StateTransfer(StateTransferMsg),
}
