//! NOPaxos — consensus from network ordering (Li et al., OSDI '16) — with
//! the Harmonia read-behind adaptation (§7.3).
//!
//! The in-switch sequencer stamps every write with a dense `(session, seq)`
//! pair and the switch multicasts it to all replicas (ordered unreliable
//! multicast). Replicas log stamped writes in order; the leader additionally
//! executes immediately and replies. Followers acknowledge directly to the
//! *client*, which treats a write as committed once it holds replies from a
//! majority including the leader — that client-side quorum is what keeps the
//! leader's per-operation work to one receive and one send, NOPaxos's whole
//! advantage over VR (visible in Figure 9b).
//!
//! Replicas already run a periodic synchronization so that a common log
//! prefix is executed everywhere; Harmonia hooks WRITE-COMPLETIONs onto
//! exactly that mechanism (§7.3): when a synchronization round establishes
//! that a majority has executed through slot `u`, the leader emits
//! completions for every operation up to `u`.
//!
//! Scope: gap recovery covers the common case of a follower missing a
//! multicast copy (it fetches the slot from the leader). Full gap agreement
//! (leader-side no-op commits) and view changes are out of scope; the test
//! harnesses inject loss only on follower links (see DESIGN.md §6).

use std::collections::{BTreeMap, HashMap};

use bytes::Bytes;
use harmonia_kv::{Store, VersionedValue};
use harmonia_types::{
    ClientRequest, NodeId, OpKind, ReadMode, ReplicaId, SwitchId, SwitchSeq, WriteCompletion,
    WriteOutcome,
};

use crate::common::{
    export_store, handle_control, install_store, read_behind_ok, read_reply, write_reply,
    Admission, ClientTable, Effects, GroupConfig, LeaseState, ProtocolKind, Replica, Snapshot,
};
use crate::messages::{NopaxosMsg, ProtocolMsg, SnapshotState, WriteOp};

/// One slot of the NOPaxos log. `fresh` is decided at append time by the
/// per-replica client table; because every replica appends in slot order,
/// the decision is identical everywhere, and execution skips stale slots
/// (at-most-once semantics for duplicated multicasts).
struct LogEntry {
    op: WriteOp,
    fresh: bool,
}

/// One NOPaxos replica.
pub struct NopaxosReplica {
    me: ReplicaId,
    members: Vec<ReplicaId>,
    harmonia: bool,
    lease: LeaseState,
    sync_interval: harmonia_types::Duration,

    /// Current OUM session (switch incarnation).
    session: u64,
    /// This session's log; slot `i + 1` holds the i-th sequenced write.
    log: Vec<LogEntry>,
    /// Next expected OUM sequence number.
    next_oum: u64,
    /// Out-of-order sequenced writes awaiting the gap fill.
    buffered: BTreeMap<u64, WriteOp>,
    /// Highest slot already requested from the leader (gap dedup).
    gap_requested: u64,
    /// Slots executed (applied to `store`).
    executed: u64,
    /// Leader: executed-through points from SYNC-ACKs.
    sync_points: HashMap<ReplicaId, u64>,
    /// Leader: completions emitted through this slot.
    completed: u64,

    store: Store<VersionedValue>,
    /// At-most-once admission, updated in slot order at append time.
    clients: ClientTable,
    /// Largest switch sequence number among executed writes (guard input).
    exec_seq: SwitchSeq,
}

impl NopaxosReplica {
    /// Build the replica for `config`.
    pub fn new(config: GroupConfig) -> Self {
        NopaxosReplica {
            me: config.me,
            members: config.members,
            harmonia: config.harmonia,
            lease: LeaseState::new(config.active_switch),
            sync_interval: config.sync_interval,
            session: 1,
            log: Vec::new(),
            next_oum: 1,
            buffered: BTreeMap::new(),
            gap_requested: 0,
            executed: 0,
            sync_points: HashMap::new(),
            completed: 0,
            store: Store::new(),
            clients: ClientTable::new(),
            exec_seq: SwitchSeq::ZERO,
        }
    }

    fn leader(&self) -> ReplicaId {
        self.members[0]
    }

    fn is_leader(&self) -> bool {
        self.me == self.leader()
    }

    fn quorum(&self) -> usize {
        ProtocolKind::Nopaxos.quorum(self.members.len())
    }

    fn others(&self) -> Vec<ReplicaId> {
        self.members
            .iter()
            .copied()
            .filter(|&r| r != self.me)
            .collect()
    }

    fn execute_up_to(&mut self, slot: u64) {
        let slot = slot.min(self.log.len() as u64);
        while self.executed < slot {
            let entry = &self.log[self.executed as usize];
            if entry.fresh {
                let op = &entry.op;
                self.store.put(
                    op.key.clone(),
                    VersionedValue::new(op.value.clone(), op.seq),
                );
            }
            // The guard point advances over stale slots too: they are
            // processed (as no-ops).
            self.exec_seq = self.exec_seq.max(entry.op.seq);
            self.executed += 1;
        }
    }

    /// Append an in-order sequenced write and react per role: the leader
    /// executes and replies with the result; followers acknowledge straight
    /// to the client (client-side quorum).
    fn append(&mut self, op: WriteOp, out: &mut Effects) {
        // Slot-order admission: every replica reaches the same verdict.
        let admission = self.clients.admit(op.client, op.request);
        let fresh = admission == Admission::Fresh;
        self.log.push(LogEntry {
            op: op.clone(),
            fresh,
        });
        self.next_oum += 1;
        if self.is_leader() {
            self.execute_up_to(self.log.len() as u64);
        }
        match admission {
            Admission::Fresh => {
                let reply = write_reply(
                    self.me,
                    op.client,
                    op.request,
                    op.obj,
                    WriteOutcome::Committed,
                    None,
                );
                self.clients.record_reply(reply.clone());
                out.reply(self.lease.active(), reply);
            }
            Admission::Duplicate => {
                // A retransmission was sequenced: re-send this replica's
                // cached acknowledgement instead of re-executing.
                if let Some(r) = self.clients.cached_reply(op.client, op.request) {
                    out.reply(self.lease.active(), r);
                }
            }
            Admission::Stale => {}
        }
    }

    fn drain_buffered(&mut self, out: &mut Effects) {
        while let Some(op) = self.buffered.remove(&self.next_oum) {
            self.append(op, out);
        }
    }

    fn on_sequenced(&mut self, session: u64, oum_seq: u64, op: WriteOp, out: &mut Effects) {
        if session < self.session {
            return; // stale session
        }
        if session > self.session {
            // New switch incarnation. Adopt at the session start; the
            // failover orchestration drains old-session traffic first.
            if oum_seq == 1 {
                self.session = session;
                self.next_oum = 1;
                self.buffered.clear();
                self.gap_requested = 0;
            } else {
                return;
            }
        }
        match oum_seq.cmp(&self.next_oum) {
            std::cmp::Ordering::Equal => {
                self.append(op, out);
                self.drain_buffered(out);
            }
            std::cmp::Ordering::Greater => {
                self.buffered.insert(oum_seq, op);
                // Fetch the missing head-of-line slot from the leader.
                if !self.is_leader() && self.gap_requested < self.next_oum {
                    self.gap_requested = self.next_oum;
                    out.protocol(
                        self.leader(),
                        ProtocolMsg::Nopaxos(NopaxosMsg::GapRequest {
                            session: self.session,
                            oum_seq: self.next_oum,
                            from: self.me,
                        }),
                    );
                }
            }
            std::cmp::Ordering::Less => {} // duplicate
        }
    }

    /// Leader: emit completions once a majority has executed through a slot
    /// (§7.3 — completions ride on the synchronization protocol).
    fn maybe_emit_completions(&mut self, out: &mut Effects) {
        if !self.harmonia || !self.is_leader() {
            return;
        }
        let mut points: Vec<u64> = self
            .members
            .iter()
            .map(|r| {
                if *r == self.me {
                    self.executed
                } else {
                    self.sync_points.get(r).copied().unwrap_or(0)
                }
            })
            .collect();
        points.sort_unstable_by(|a, b| b.cmp(a));
        let point = points[self.quorum() - 1];
        while self.completed < point {
            self.completed += 1;
            // Completions are emitted for stale slots too: the duplicate
            // also left a dirty-set entry at the switch that must clear.
            let op = &self.log[(self.completed - 1) as usize].op;
            out.completion(
                self.lease.active(),
                WriteCompletion {
                    obj: op.obj,
                    seq: op.seq,
                },
            );
        }
    }

    fn handle_read(&mut self, req: ClientRequest, out: &mut Effects) {
        match req.read_mode {
            ReadMode::FastPath { switch } => {
                let allowed = self.lease.allows(switch);
                let stamped = req.last_committed.unwrap_or(SwitchSeq::ZERO);
                if allowed && read_behind_ok(self.exec_seq, stamped) {
                    let value = self.store.with(&req.key, |v| v.map(|vv| vv.value.clone()));
                    out.reply(self.lease.active(), read_reply(self.me, &req, value));
                } else {
                    let mut fwd = req;
                    fwd.read_mode = ReadMode::Normal;
                    if self.is_leader() {
                        self.handle_read(fwd, out);
                    } else {
                        out.forward_request(self.leader(), fwd);
                    }
                }
            }
            ReadMode::Normal => {
                if self.is_leader() {
                    let value = self.store.with(&req.key, |v| v.map(|vv| vv.value.clone()));
                    out.reply(self.lease.active(), read_reply(self.me, &req, value));
                } else {
                    out.forward_request(self.leader(), req);
                }
            }
        }
    }
}

impl Replica for NopaxosReplica {
    fn on_request(&mut self, _src: NodeId, req: ClientRequest, out: &mut Effects) {
        match req.op {
            // Writes reach NOPaxos replicas only as `Sequenced` multicasts
            // (the switch sequences them). A raw write here means the
            // sequencer was bypassed; route it back through the leader,
            // which cannot order it — reject so the client retries through
            // the switch.
            OpKind::Write => {
                out.reply(
                    self.lease.active(),
                    write_reply(
                        self.me,
                        req.client,
                        req.request,
                        req.obj,
                        WriteOutcome::Rejected,
                        None,
                    ),
                );
            }
            OpKind::Read => self.handle_read(req, out),
        }
    }

    fn on_protocol(&mut self, _src: NodeId, msg: ProtocolMsg, out: &mut Effects) {
        if handle_control(&msg, &mut self.lease, &mut self.members) {
            return;
        }
        let ProtocolMsg::Nopaxos(msg) = msg else {
            return;
        };
        match msg {
            NopaxosMsg::Sequenced {
                session,
                oum_seq,
                op,
            } => self.on_sequenced(session, oum_seq, op, out),
            NopaxosMsg::GapRequest {
                session,
                oum_seq,
                from,
            } => {
                if session == self.session && oum_seq <= self.log.len() as u64 {
                    out.protocol(
                        from,
                        ProtocolMsg::Nopaxos(NopaxosMsg::GapReply {
                            session,
                            oum_seq,
                            op: Some(self.log[(oum_seq - 1) as usize].op.clone()),
                        }),
                    );
                }
            }
            NopaxosMsg::GapReply {
                session,
                oum_seq,
                op,
            } => {
                if session == self.session && oum_seq == self.next_oum {
                    if let Some(op) = op {
                        self.append(op, out);
                        self.drain_buffered(out);
                    }
                }
            }
            NopaxosMsg::Sync { session, upto } => {
                if session != self.session || self.is_leader() {
                    return;
                }
                self.execute_up_to(upto);
                out.protocol(
                    self.leader(),
                    ProtocolMsg::Nopaxos(NopaxosMsg::SyncAck {
                        session,
                        upto: self.executed,
                        from: self.me,
                    }),
                );
            }
            NopaxosMsg::SyncAck {
                session,
                upto,
                from,
            } => {
                if session != self.session || !self.is_leader() {
                    return;
                }
                let p = self.sync_points.entry(from).or_insert(0);
                *p = (*p).max(upto);
                self.maybe_emit_completions(out);
            }
            NopaxosMsg::SlotAck { .. } => {
                // Retained for protocol-structure completeness; the client
                // aggregates follower acknowledgements directly.
            }
        }
    }

    fn on_tick(&mut self, out: &mut Effects) {
        // Periodic synchronization (leader-driven).
        if self.is_leader() && self.executed > 0 {
            let msg = NopaxosMsg::Sync {
                session: self.session,
                upto: self.executed,
            };
            for r in self.others() {
                out.protocol(r, ProtocolMsg::Nopaxos(msg.clone()));
            }
        }
    }

    fn tick_interval(&self) -> Option<harmonia_types::Duration> {
        Some(self.sync_interval)
    }

    fn local_value(&self, key: &[u8]) -> Option<Bytes> {
        self.store.with(key, |v| v.map(|vv| vv.value.clone()))
    }

    fn applied_seq(&self) -> SwitchSeq {
        self.exec_seq
    }

    fn export_snapshot(&self) -> Snapshot {
        let (clients, replies) = self.clients.export();
        Snapshot {
            entries: export_store(&self.store),
            log: self.log.iter().map(|e| e.op.clone()).collect(),
            state: SnapshotState {
                in_order: SwitchSeq::ZERO,
                applied: self.exec_seq,
                local_seq: 0,
                // The executed-slot count doubles as the commit point.
                commit_num: self.executed,
                session: self.session,
                clients,
                replies,
            },
        }
    }

    fn install_snapshot(&mut self, snap: Snapshot, out: &mut Effects) {
        if snap.state.session > self.session {
            self.session = snap.state.session;
            self.buffered.clear();
            self.gap_requested = 0;
        }
        if snap.log.len() > self.log.len() {
            for op in snap.log.into_iter().skip(self.log.len()) {
                // Freshness verdicts are not shipped: these slots sit at or
                // below the peer's executed point, so execution never
                // reaches them here — the installed store entries already
                // carry their effects. `true` is an unconsulted placeholder.
                self.log.push(LogEntry { op, fresh: true });
            }
        }
        self.next_oum = self.next_oum.max(self.log.len() as u64 + 1);
        let installed = install_store(&self.store, snap.entries);
        self.executed = self
            .executed
            .max(snap.state.commit_num.min(self.log.len() as u64));
        self.exec_seq = self.exec_seq.max(installed).max(snap.state.applied);
        self.clients.install(snap.state.clients, snap.state.replies);
        // Sequenced writes that arrived mid-transfer were buffered as
        // out-of-order; they slot onto the caught-up log now.
        self.drain_buffered(out);
    }

    fn active_switch(&self) -> SwitchId {
        self.lease.active()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_types::{ClientId, ObjectId, PacketBody, RequestId, SwitchId};

    fn seq(n: u64) -> SwitchSeq {
        SwitchSeq::new(SwitchId(1), n)
    }

    fn group(n: usize, harmonia: bool) -> Vec<NopaxosReplica> {
        (0..n)
            .map(|i| {
                NopaxosReplica::new(GroupConfig::new(
                    ProtocolKind::Nopaxos,
                    n,
                    i as u32,
                    harmonia,
                ))
            })
            .collect()
    }

    fn sequenced(n: u64, key: &str, val: &str) -> ProtocolMsg {
        ProtocolMsg::Nopaxos(NopaxosMsg::Sequenced {
            session: 1,
            oum_seq: n,
            op: WriteOp {
                seq: seq(n),
                obj: ObjectId::from_key(key.as_bytes()),
                key: Bytes::copy_from_slice(key.as_bytes()),
                value: Bytes::copy_from_slice(val.as_bytes()),
                client: ClientId(1),
                request: RequestId(n),
            },
        })
    }

    /// Multicast a sequenced write to every replica; returns switch-bound
    /// bodies after the exchange quiesces.
    fn multicast(g: &mut [NopaxosReplica], msg: ProtocolMsg) -> Vec<PacketBody<ProtocolMsg>> {
        let mut fx = Effects::new();
        for replica in g.iter_mut() {
            replica.on_protocol(NodeId::Switch(SwitchId(1)), msg.clone(), &mut fx);
        }
        pump(g, fx)
    }

    fn pump(g: &mut [NopaxosReplica], mut fx: Effects) -> Vec<PacketBody<ProtocolMsg>> {
        let mut bodies = vec![];
        while !fx.out.is_empty() {
            let mut next = Effects::new();
            for (dst, body) in fx.out.drain(..) {
                match (dst, body) {
                    (NodeId::Replica(r), PacketBody::Protocol(m)) => {
                        g[r.index()].on_protocol(NodeId::Replica(r), m, &mut next);
                    }
                    (NodeId::Replica(r), PacketBody::Request(req)) => {
                        g[r.index()].on_request(NodeId::Replica(r), req, &mut next);
                    }
                    (NodeId::Switch(_), b) => bodies.push(b),
                    other => panic!("unexpected effect {other:?}"),
                }
            }
            fx = next;
        }
        bodies
    }

    fn count_replies(bodies: &[PacketBody<ProtocolMsg>]) -> usize {
        bodies
            .iter()
            .filter(|b| matches!(b, PacketBody::Reply(_)))
            .count()
    }

    #[test]
    fn every_replica_replies_once_leader_executes() {
        let mut g = group(3, true);
        let bodies = multicast(&mut g, sequenced(1, "k", "v"));
        // All three replicas acknowledge to the client (client-side quorum).
        assert_eq!(count_replies(&bodies), 3);
        // Leader executed immediately; followers have not yet.
        assert_eq!(g[0].local_value(b"k"), Some(Bytes::from_static(b"v")));
        assert_eq!(g[1].local_value(b"k"), None);
    }

    #[test]
    fn sync_executes_followers_and_emits_completions() {
        let mut g = group(3, true);
        multicast(&mut g, sequenced(1, "k", "v"));
        // Leader's periodic sync runs.
        let mut fx = Effects::new();
        g[0].on_tick(&mut fx);
        assert_eq!(fx.len(), 2, "sync to both followers");
        let bodies = pump(&mut g, fx);
        // Followers executed.
        assert_eq!(g[1].local_value(b"k"), Some(Bytes::from_static(b"v")));
        assert_eq!(g[2].local_value(b"k"), Some(Bytes::from_static(b"v")));
        // Quorum executed -> completion emitted for slot 1.
        let comps: Vec<_> = bodies
            .iter()
            .filter(|b| matches!(b, PacketBody::Completion(_)))
            .collect();
        assert_eq!(comps.len(), 1);
    }

    #[test]
    fn baseline_sync_emits_no_completions() {
        let mut g = group(3, false);
        multicast(&mut g, sequenced(1, "k", "v"));
        let mut fx = Effects::new();
        g[0].on_tick(&mut fx);
        let bodies = pump(&mut g, fx);
        assert!(bodies
            .iter()
            .all(|b| !matches!(b, PacketBody::Completion(_))));
    }

    #[test]
    fn follower_gap_is_filled_from_the_leader() {
        let mut g = group(3, true);
        // Slot 1 reaches everyone.
        multicast(&mut g, sequenced(1, "a", "va"));
        // Slot 2's copy to follower 1 is lost; followers 0 (leader) and 2
        // receive it.
        let msg2 = sequenced(2, "b", "vb");
        let mut fx = Effects::new();
        g[0].on_protocol(NodeId::Switch(SwitchId(1)), msg2.clone(), &mut fx);
        g[2].on_protocol(NodeId::Switch(SwitchId(1)), msg2, &mut fx);
        pump(&mut g, fx);
        assert_eq!(g[1].log.len(), 1, "follower 1 missed slot 2");
        // Slot 3 arrives at follower 1: it detects the gap and fetches
        // slot 2 from the leader.
        let msg3 = sequenced(3, "c", "vc");
        let mut fx = Effects::new();
        g[1].on_protocol(NodeId::Switch(SwitchId(1)), msg3.clone(), &mut fx);
        assert!(
            fx.out.iter().any(|(dst, b)| matches!(
                (dst, b),
                (
                    NodeId::Replica(ReplicaId(0)),
                    PacketBody::Protocol(ProtocolMsg::Nopaxos(NopaxosMsg::GapRequest { .. }))
                )
            )),
            "gap request sent to leader"
        );
        pump(&mut g, fx);
        assert_eq!(g[1].log.len(), 3, "gap filled, buffered slot drained");
    }

    #[test]
    fn fast_path_guard_blocks_unsynced_follower() {
        let mut g = group(3, true);
        multicast(&mut g, sequenced(1, "k", "v"));
        // Follower 1 has logged but not executed (no sync yet). The switch
        // meanwhile saw the completion of... nothing yet; but simulate a
        // read stamped with last_committed = seq 1 (e.g. a reordered packet
        // from the future).
        let mut read = ClientRequest::read(ClientId(2), RequestId(9), &b"k"[..]);
        read.read_mode = ReadMode::FastPath {
            switch: SwitchId(1),
        };
        read.last_committed = Some(seq(1));
        let mut fx = Effects::new();
        g[1].on_request(NodeId::Client(ClientId(2)), read.clone(), &mut fx);
        assert!(
            matches!(
                fx.out[0],
                (NodeId::Replica(ReplicaId(0)), PacketBody::Request(_))
            ),
            "unsynced follower must forward to the leader"
        );
        // After sync, the same read is served locally.
        let mut tick = Effects::new();
        g[0].on_tick(&mut tick);
        pump(&mut g, tick);
        let mut fx = Effects::new();
        g[1].on_request(NodeId::Client(ClientId(2)), read, &mut fx);
        let PacketBody::Reply(r) = &fx.out[0].1 else {
            panic!()
        };
        assert_eq!(r.value, Some(Bytes::from_static(b"v")));
    }

    #[test]
    fn new_session_adopted_at_slot_one() {
        let mut g = group(3, true);
        multicast(&mut g, sequenced(1, "k", "v1"));
        // Switch 2 takes over: new session, slot numbering restarts.
        let msg = ProtocolMsg::Nopaxos(NopaxosMsg::Sequenced {
            session: 2,
            oum_seq: 1,
            op: WriteOp {
                seq: SwitchSeq::new(SwitchId(2), 1),
                obj: ObjectId::from_key(b"k"),
                key: Bytes::from_static(b"k"),
                value: Bytes::from_static(b"v2"),
                client: ClientId(1),
                request: RequestId(7),
            },
        });
        multicast(&mut g, msg);
        assert_eq!(g[0].session, 2);
        assert_eq!(g[0].local_value(b"k"), Some(Bytes::from_static(b"v2")));
        // Stale old-session traffic is ignored.
        let bodies = multicast(&mut g, sequenced(2, "k", "stale"));
        assert_eq!(count_replies(&bodies), 0);
        assert_eq!(g[0].local_value(b"k"), Some(Bytes::from_static(b"v2")));
    }

    #[test]
    fn raw_write_request_is_rejected() {
        let mut g = group(3, true);
        let req = ClientRequest::write(ClientId(1), RequestId(1), &b"k"[..], &b"v"[..]);
        let mut fx = Effects::new();
        g[0].on_request(NodeId::Client(ClientId(1)), req, &mut fx);
        let PacketBody::Reply(r) = &fx.out[0].1 else {
            panic!()
        };
        assert_eq!(r.write_outcome, Some(WriteOutcome::Rejected));
    }
}
