//! Primary-backup replication (§2), with the Harmonia read-ahead adaptation
//! (§7.2).
//!
//! Normal case: the primary orders writes and sends state updates to every
//! backup; once all backups acknowledge, the write commits, the primary
//! applies it and replies to the client with the WRITE-COMPLETION
//! piggybacked. Backups apply updates *on receipt* — before commit — which
//! is what makes the protocol read-ahead: a backup's state can run ahead of
//! the commit point, and the §7.2 guard (`pkt.last_committed >= obj.seq`)
//! protects fast-path reads against exactly that.
//!
//! The primary itself applies at commit time, so its local state is always
//! committed state and it can serve normal-path reads directly.

use std::collections::{BTreeMap, BTreeSet};

use bytes::Bytes;
use harmonia_kv::{Store, VersionedValue};
use harmonia_types::{
    ClientRequest, NodeId, OpKind, ReadMode, ReplicaId, SwitchId, SwitchSeq, WriteCompletion,
    WriteOutcome,
};

use crate::common::{
    export_store, handle_control, install_store, read_ahead_ok, read_reply, write_reply, Admission,
    ClientTable, Effects, GroupConfig, InOrder, LeaseState, Replica, Snapshot,
};
use crate::messages::{PbMsg, ProtocolMsg, SnapshotState, WriteOp};

struct PendingWrite {
    op: WriteOp,
    acks: BTreeSet<ReplicaId>,
}

/// One primary-backup replica.
pub struct PbReplica {
    me: ReplicaId,
    members: Vec<ReplicaId>,
    harmonia: bool,
    lease: LeaseState,
    /// Applied state: committed-only at the primary, applied-on-receipt at
    /// backups (read-ahead).
    store: Store<VersionedValue>,
    in_order: InOrder,
    /// Baseline mode: the primary stamps writes itself.
    local_seq: u64,
    /// Primary only: writes awaiting acknowledgement, in sequence order.
    pending: BTreeMap<SwitchSeq, PendingWrite>,
    /// Primary only: at-most-once admission (drops network duplicates).
    clients: ClientTable,
    applied: SwitchSeq,
}

impl PbReplica {
    /// Build the replica for `config`.
    pub fn new(config: GroupConfig) -> Self {
        PbReplica {
            me: config.me,
            members: config.members,
            harmonia: config.harmonia,
            lease: LeaseState::new(config.active_switch),
            store: Store::new(),
            in_order: InOrder::new(),
            local_seq: 0,
            pending: BTreeMap::new(),
            clients: ClientTable::new(),
            applied: SwitchSeq::ZERO,
        }
    }

    fn primary(&self) -> ReplicaId {
        self.members[0]
    }

    fn is_primary(&self) -> bool {
        self.me == self.primary()
    }

    fn backups(&self) -> impl Iterator<Item = ReplicaId> + '_ {
        self.members.iter().copied().filter(move |&r| r != self.me)
    }

    fn apply(&mut self, op: &WriteOp) {
        self.store.put(
            op.key.clone(),
            VersionedValue::new(op.value.clone(), op.seq),
        );
        self.applied = self.applied.max(op.seq);
    }

    fn handle_write(&mut self, mut req: ClientRequest, out: &mut Effects) {
        if !self.is_primary() {
            // Misrouted write (e.g. stale forwarding state): hand it to the
            // primary.
            out.forward_request(self.primary(), req);
            return;
        }
        match self.clients.admit(req.client, req.request) {
            Admission::Fresh => {}
            Admission::Duplicate => {
                // Re-execution would double-apply; answer from the cache if
                // the original committed (else its in-flight reply serves).
                if let Some(r) = self.clients.cached_reply(req.client, req.request) {
                    out.reply(self.lease.active(), r);
                }
                return;
            }
            Admission::Stale => return,
        }
        let seq = match req.seq {
            Some(s) if self.harmonia => s,
            _ => {
                // Baseline: the primary stamps the write itself.
                self.local_seq += 1;
                SwitchSeq::new(self.lease.active(), self.local_seq)
            }
        };
        req.seq = Some(seq);
        if !self.in_order.accept(seq) {
            out.reply(
                self.lease.active(),
                write_reply(
                    self.me,
                    req.client,
                    req.request,
                    req.obj,
                    WriteOutcome::Rejected,
                    None,
                ),
            );
            return;
        }
        let op = WriteOp {
            seq,
            obj: req.obj,
            key: req.key.clone(),
            value: req.value.clone().unwrap_or_default(),
            client: req.client,
            request: req.request,
        };
        for b in self.backups().collect::<Vec<_>>() {
            out.protocol(b, ProtocolMsg::Pb(PbMsg::Update(op.clone())));
        }
        self.pending.insert(
            seq,
            PendingWrite {
                op,
                acks: BTreeSet::new(),
            },
        );
        // Single-replica group: nothing to wait for.
        self.try_commit(out);
    }

    /// Commit pending writes in sequence order while the head of the queue
    /// has been acknowledged by every current backup.
    fn try_commit(&mut self, out: &mut Effects) {
        let needed: BTreeSet<ReplicaId> = self.backups().collect();
        while let Some((&seq, pw)) = self.pending.iter().next() {
            if !needed.iter().all(|r| pw.acks.contains(r)) {
                break;
            }
            let pw = self.pending.remove(&seq).expect("head exists");
            self.apply(&pw.op);
            let completion = WriteCompletion {
                obj: pw.op.obj,
                seq,
            };
            let reply = write_reply(
                self.me,
                pw.op.client,
                pw.op.request,
                pw.op.obj,
                WriteOutcome::Committed,
                // Figure 2b: the completion rides on the write reply.
                self.harmonia.then_some(completion),
            );
            self.clients.record_reply(reply.clone());
            out.reply(self.lease.active(), reply);
        }
    }

    fn handle_read(&mut self, req: ClientRequest, out: &mut Effects) {
        match req.read_mode {
            ReadMode::FastPath { switch } => {
                let allowed = self.lease.allows(switch);
                let stamped = req.last_committed.unwrap_or(SwitchSeq::ZERO);
                let obj_seq = self
                    .store
                    .with(&req.key, |v| v.map(|vv| vv.seq))
                    .unwrap_or(SwitchSeq::ZERO);
                if allowed && read_ahead_ok(obj_seq, stamped) {
                    let value = self.store.with(&req.key, |v| v.map(|vv| vv.value.clone()));
                    out.reply(self.lease.active(), read_reply(self.me, &req, value));
                } else {
                    // §7.2: forward to the primary for the normal protocol.
                    let mut fwd = req;
                    fwd.read_mode = ReadMode::Normal;
                    if self.is_primary() {
                        self.handle_read(fwd, out);
                    } else {
                        out.forward_request(self.primary(), fwd);
                    }
                }
            }
            ReadMode::Normal => {
                if self.is_primary() {
                    // The primary's store holds committed state only.
                    let value = self.store.with(&req.key, |v| v.map(|vv| vv.value.clone()));
                    out.reply(self.lease.active(), read_reply(self.me, &req, value));
                } else {
                    out.forward_request(self.primary(), req);
                }
            }
        }
    }
}

impl Replica for PbReplica {
    fn on_request(&mut self, _src: NodeId, req: ClientRequest, out: &mut Effects) {
        match req.op {
            OpKind::Write => self.handle_write(req, out),
            OpKind::Read => self.handle_read(req, out),
        }
    }

    fn on_protocol(&mut self, _src: NodeId, msg: ProtocolMsg, out: &mut Effects) {
        if handle_control(&msg, &mut self.lease, &mut self.members) {
            return;
        }
        match msg {
            // Backup path: apply on receipt (read-ahead), ack in order.
            ProtocolMsg::Pb(PbMsg::Update(op)) if self.in_order.accept(op.seq) => {
                self.apply(&op);
                out.protocol(
                    self.primary(),
                    ProtocolMsg::Pb(PbMsg::Ack {
                        seq: op.seq,
                        from: self.me,
                    }),
                );
            }
            ProtocolMsg::Pb(PbMsg::Ack { seq, from }) => {
                if let Some(pw) = self.pending.get_mut(&seq) {
                    pw.acks.insert(from);
                    self.try_commit(out);
                }
            }
            _ => {}
        }
    }

    fn local_value(&self, key: &[u8]) -> Option<Bytes> {
        self.store.with(key, |v| v.map(|vv| vv.value.clone()))
    }

    fn applied_seq(&self) -> SwitchSeq {
        self.applied
    }

    fn export_snapshot(&self) -> Snapshot {
        let (clients, replies) = self.clients.export();
        Snapshot {
            entries: export_store(&self.store),
            // Primary only: writes awaiting acknowledgement, in sequence
            // order. A rejoining backup must apply and ack these or the
            // all-backup commit rule would stall them forever.
            log: self.pending.values().map(|pw| pw.op.clone()).collect(),
            state: SnapshotState {
                in_order: self.in_order.last(),
                applied: self.applied,
                local_seq: self.local_seq,
                commit_num: 0,
                session: 0,
                clients,
                replies,
            },
        }
    }

    fn install_snapshot(&mut self, snap: Snapshot, out: &mut Effects) {
        let installed = install_store(&self.store, snap.entries);
        self.applied = self.applied.max(installed).max(snap.state.applied);
        // The peer's pending (uncommitted) writes: backups apply on receipt,
        // so apply each (where newer) and ack it to the primary — the
        // primary may be waiting on this replica's ack to commit.
        for op in snap.log {
            self.store.update(
                &op.key,
                || VersionedValue::new(op.value.clone(), op.seq),
                |vv| {
                    if op.seq > vv.seq {
                        *vv = VersionedValue::new(op.value.clone(), op.seq);
                    }
                },
            );
            self.applied = self.applied.max(op.seq);
            self.in_order.accept(op.seq);
            out.protocol(
                self.primary(),
                ProtocolMsg::Pb(PbMsg::Ack {
                    seq: op.seq,
                    from: self.me,
                }),
            );
        }
        self.in_order.accept(snap.state.in_order);
        self.local_seq = self.local_seq.max(snap.state.local_seq);
        self.clients.install(snap.state.clients, snap.state.replies);
    }

    fn active_switch(&self) -> SwitchId {
        self.lease.active()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_types::{ClientId, PacketBody, RequestId, SwitchId};

    fn seq(n: u64) -> SwitchSeq {
        SwitchSeq::new(SwitchId(1), n)
    }

    fn group(n: usize, harmonia: bool) -> Vec<PbReplica> {
        (0..n)
            .map(|i| {
                PbReplica::new(GroupConfig::new(
                    crate::common::ProtocolKind::PrimaryBackup,
                    n,
                    i as u32,
                    harmonia,
                ))
            })
            .collect()
    }

    fn write_req(n: u64, key: &str, val: &str, harmonia: bool) -> ClientRequest {
        let mut r = ClientRequest::write(
            ClientId(1),
            RequestId(n),
            Bytes::copy_from_slice(key.as_bytes()),
            Bytes::copy_from_slice(val.as_bytes()),
        );
        if harmonia {
            r.seq = Some(seq(n));
        }
        r
    }

    /// Deliver effects between replicas until quiescent; returns replies
    /// (bodies addressed to a switch).
    fn pump(replicas: &mut [PbReplica], mut fx: Effects) -> Vec<PacketBody<ProtocolMsg>> {
        let mut replies = vec![];
        while !fx.out.is_empty() {
            let mut next = Effects::new();
            for (dst, body) in fx.out.drain(..) {
                match (dst, body) {
                    (NodeId::Replica(r), PacketBody::Protocol(m)) => {
                        replicas[r.index()].on_protocol(NodeId::Replica(r), m, &mut next);
                    }
                    (NodeId::Replica(r), PacketBody::Request(req)) => {
                        replicas[r.index()].on_request(NodeId::Replica(r), req, &mut next);
                    }
                    (NodeId::Switch(_), b) => replies.push(b),
                    other => panic!("unexpected effect {other:?}"),
                }
            }
            fx = next;
        }
        replies
    }

    #[test]
    fn write_commits_after_all_backups_ack() {
        let mut g = group(3, true);
        let mut fx = Effects::new();
        g[0].on_request(
            NodeId::Client(ClientId(1)),
            write_req(1, "k", "v", true),
            &mut fx,
        );
        // Updates sent to both backups; no reply yet.
        assert_eq!(fx.len(), 2);
        let replies = pump(&mut g, fx);
        assert_eq!(replies.len(), 1);
        let PacketBody::Reply(r) = &replies[0] else {
            panic!("expected reply")
        };
        assert_eq!(r.write_outcome, Some(WriteOutcome::Committed));
        assert_eq!(
            r.completion,
            Some(WriteCompletion {
                obj: harmonia_types::ObjectId::from_key(b"k"),
                seq: seq(1)
            })
        );
        // Every replica has applied the value.
        for rep in &g {
            assert_eq!(rep.local_value(b"k"), Some(Bytes::from_static(b"v")));
        }
    }

    #[test]
    fn out_of_order_write_rejected() {
        let mut g = group(3, true);
        let mut fx = Effects::new();
        g[0].on_request(
            NodeId::Client(ClientId(1)),
            write_req(5, "k", "v5", true),
            &mut fx,
        );
        pump(&mut g, fx);
        // Fresh request id (admission passes) but a stale switch sequence:
        // the in-order rule must reject it.
        let mut stale = write_req(6, "k", "v3", true);
        stale.seq = Some(seq(3));
        let mut fx = Effects::new();
        g[0].on_request(NodeId::Client(ClientId(1)), stale, &mut fx);
        let replies = pump(&mut g, fx);
        let PacketBody::Reply(r) = &replies[0] else {
            panic!()
        };
        assert_eq!(r.write_outcome, Some(WriteOutcome::Rejected));
        assert_eq!(g[0].local_value(b"k"), Some(Bytes::from_static(b"v5")));
    }

    #[test]
    fn duplicate_write_is_answered_from_the_reply_cache() {
        let mut g = group(3, true);
        let fx = {
            let mut fx = Effects::new();
            g[0].on_request(
                NodeId::Client(ClientId(1)),
                write_req(1, "k", "v1", true),
                &mut fx,
            );
            fx
        };
        pump(&mut g, fx);
        // A retransmission of request 1 arrives with a fresh switch stamp:
        // the exactly-once layer must NOT re-sequence it — it re-sends the
        // cached reply and nothing else.
        let mut dup = write_req(1, "k", "v1", true);
        dup.seq = Some(seq(9));
        let mut fx = Effects::new();
        g[0].on_request(NodeId::Client(ClientId(1)), dup, &mut fx);
        assert_eq!(fx.len(), 1, "exactly the cached reply: {fx:?}");
        let (dst, PacketBody::Reply(r)) = &fx.out[0] else {
            panic!("expected cached reply, got {:?}", fx.out)
        };
        assert!(matches!(dst, NodeId::Switch(_)));
        assert_eq!(r.write_outcome, Some(WriteOutcome::Committed));
        assert_eq!(r.request, RequestId(1));
        // No re-application: the store still holds exactly one write.
        assert_eq!(g[0].local_value(b"k"), Some(Bytes::from_static(b"v1")));
        assert_eq!(
            g[0].in_order.last(),
            seq(1),
            "duplicate was not re-sequenced"
        );
    }

    #[test]
    fn primary_serves_normal_reads_from_committed_state_only() {
        let mut g = group(3, true);
        let mut fx = Effects::new();
        g[0].on_request(
            NodeId::Client(ClientId(1)),
            write_req(1, "k", "v1", true),
            &mut fx,
        );
        // Do NOT deliver backup acks: the write is pending, uncommitted.
        let mut read_fx = Effects::new();
        let read = ClientRequest::read(ClientId(2), RequestId(9), &b"k"[..]);
        g[0].on_request(NodeId::Client(ClientId(2)), read, &mut read_fx);
        let PacketBody::Reply(r) = &read_fx.out[0].1 else {
            panic!()
        };
        assert_eq!(r.value, None, "uncommitted write must be invisible (P2)");
    }

    #[test]
    fn backup_fast_path_guard_detects_read_ahead_anomaly() {
        let mut g = group(3, true);
        // Commit write 1 fully.
        let mut fx = Effects::new();
        g[0].on_request(
            NodeId::Client(ClientId(1)),
            write_req(1, "k", "v1", true),
            &mut fx,
        );
        pump(&mut g, fx);
        // Write 2 reaches backup 1 but is NOT yet committed.
        let op2 = WriteOp {
            seq: seq(2),
            obj: harmonia_types::ObjectId::from_key(b"k"),
            key: Bytes::from_static(b"k"),
            value: Bytes::from_static(b"v2"),
            client: ClientId(1),
            request: RequestId(2),
        };
        let mut fx = Effects::new();
        g[1].on_protocol(
            NodeId::Replica(ReplicaId(0)),
            ProtocolMsg::Pb(PbMsg::Update(op2)),
            &mut fx,
        );
        // A fast-path read stamped with last_committed = 1 arrives at the
        // backup, which has applied the uncommitted write 2.
        let mut read = ClientRequest::read(ClientId(2), RequestId(9), &b"k"[..]);
        read.read_mode = ReadMode::FastPath {
            switch: SwitchId(1),
        };
        read.last_committed = Some(seq(1));
        let mut read_fx = Effects::new();
        g[1].on_request(NodeId::Client(ClientId(2)), read, &mut read_fx);
        // Guard fails -> forwarded to the primary, not answered locally.
        assert!(matches!(
            read_fx.out[0],
            (NodeId::Replica(ReplicaId(0)), PacketBody::Request(_))
        ));
        // The forwarded read is served by the primary from committed state.
        let replies = pump(&mut g, read_fx);
        let PacketBody::Reply(r) = &replies[0] else {
            panic!()
        };
        assert_eq!(r.value, Some(Bytes::from_static(b"v1")));
    }

    #[test]
    fn backup_fast_path_serves_when_guard_passes() {
        let mut g = group(3, true);
        let mut fx = Effects::new();
        g[0].on_request(
            NodeId::Client(ClientId(1)),
            write_req(1, "k", "v1", true),
            &mut fx,
        );
        pump(&mut g, fx);
        let mut read = ClientRequest::read(ClientId(2), RequestId(9), &b"k"[..]);
        read.read_mode = ReadMode::FastPath {
            switch: SwitchId(1),
        };
        read.last_committed = Some(seq(1));
        let mut read_fx = Effects::new();
        g[2].on_request(NodeId::Client(ClientId(2)), read, &mut read_fx);
        let (dst, PacketBody::Reply(r)) = &read_fx.out[0] else {
            panic!("expected local reply, got {:?}", read_fx.out)
        };
        assert!(matches!(dst, NodeId::Switch(_)));
        assert_eq!(r.value, Some(Bytes::from_static(b"v1")));
    }

    #[test]
    fn fast_path_from_stale_switch_is_rejected() {
        let mut g = group(3, true);
        let mut fx = Effects::new();
        g[0].on_request(
            NodeId::Client(ClientId(1)),
            write_req(1, "k", "v1", true),
            &mut fx,
        );
        pump(&mut g, fx);
        // Lease moves to switch 2.
        for r in g.iter_mut() {
            let mut fx = Effects::new();
            r.on_protocol(
                NodeId::Controller,
                ProtocolMsg::Control(crate::messages::ReplicaControlMsg::SetActiveSwitch(
                    SwitchId(2),
                )),
                &mut fx,
            );
        }
        let mut read = ClientRequest::read(ClientId(2), RequestId(9), &b"k"[..]);
        read.read_mode = ReadMode::FastPath {
            switch: SwitchId(1),
        };
        read.last_committed = Some(seq(1));
        let mut read_fx = Effects::new();
        g[1].on_request(NodeId::Client(ClientId(2)), read, &mut read_fx);
        // Rejected locally; forwarded to primary.
        assert!(matches!(
            read_fx.out[0],
            (NodeId::Replica(ReplicaId(0)), PacketBody::Request(_))
        ));
    }

    #[test]
    fn baseline_mode_stamps_writes_at_primary() {
        let mut g = group(3, false);
        let mut fx = Effects::new();
        g[0].on_request(
            NodeId::Client(ClientId(1)),
            write_req(1, "k", "v", false),
            &mut fx,
        );
        let replies = pump(&mut g, fx);
        let PacketBody::Reply(r) = &replies[0] else {
            panic!()
        };
        assert_eq!(r.write_outcome, Some(WriteOutcome::Committed));
        assert_eq!(r.completion, None, "baseline piggybacks nothing");
        assert_eq!(g[1].local_value(b"k"), Some(Bytes::from_static(b"v")));
    }

    #[test]
    fn misrouted_write_forwards_to_primary() {
        let mut g = group(3, true);
        let mut fx = Effects::new();
        g[2].on_request(
            NodeId::Client(ClientId(1)),
            write_req(1, "k", "v", true),
            &mut fx,
        );
        assert!(matches!(
            fx.out[0],
            (NodeId::Replica(ReplicaId(0)), PacketBody::Request(_))
        ));
        let replies = pump(&mut g, fx);
        assert_eq!(replies.len(), 1);
    }

    #[test]
    fn commits_apply_in_sequence_order_despite_ack_reordering() {
        let mut g = group(2, true);
        let mut fx1 = Effects::new();
        g[0].on_request(
            NodeId::Client(ClientId(1)),
            write_req(1, "k", "v1", true),
            &mut fx1,
        );
        let mut fx2 = Effects::new();
        g[0].on_request(
            NodeId::Client(ClientId(1)),
            write_req(2, "k", "v2", true),
            &mut fx2,
        );
        // Ack for write 2 arrives first (simulated directly).
        let mut out = Effects::new();
        g[0].on_protocol(
            NodeId::Replica(ReplicaId(1)),
            ProtocolMsg::Pb(PbMsg::Ack {
                seq: seq(2),
                from: ReplicaId(1),
            }),
            &mut out,
        );
        assert!(out.is_empty(), "write 2 must wait for write 1");
        g[0].on_protocol(
            NodeId::Replica(ReplicaId(1)),
            ProtocolMsg::Pb(PbMsg::Ack {
                seq: seq(1),
                from: ReplicaId(1),
            }),
            &mut out,
        );
        // Both commit now, in order.
        assert_eq!(out.len(), 2);
        assert_eq!(g[0].local_value(b"k"), Some(Bytes::from_static(b"v2")));
    }
}
