//! Viewstamped Replication (Oki & Liskov; Liskov & Cowling's VR-Revisited),
//! normal-case protocol, with the Harmonia read-behind adaptation (§7.3).
//!
//! The leader orders writes into a log and runs the PREPARE / PREPARE-OK
//! phase; an operation commits once a majority has logged it, at which point
//! the leader executes it and replies to the client. Backups execute only
//! once they learn the commit point — they can therefore *lag* the committed
//! state (read-behind).
//!
//! Harmonia adds one phase (§7.3): concurrently with replying, the leader
//! broadcasts COMMIT; replicas execute and answer COMMIT-ACK; only when a
//! majority has *executed* operation `n` does the leader emit the
//! WRITE-COMPLETION for it. This delay is what makes the switch's
//! last-committed point a safe lower bound for the fast-path read guard:
//! a replica may answer a single-replica read iff it has executed at least
//! up to the stamped last-committed point.
//!
//! View changes are out of scope (the paper's evaluation exercises the
//! normal case and switch failover; the leader is fixed at member 0). The
//! view number is carried in every message so the structure matches VR.

use std::collections::{BTreeMap, HashMap, HashSet};

use bytes::Bytes;
use harmonia_kv::{Store, VersionedValue};
use harmonia_types::{
    ClientRequest, NodeId, OpKind, ReadMode, ReplicaId, SwitchId, SwitchSeq, WriteCompletion,
    WriteOutcome,
};

use crate::common::{
    export_store, handle_control, install_store, read_behind_ok, read_reply, write_reply,
    Admission, ClientTable, Effects, GroupConfig, InOrder, LeaseState, ProtocolKind, Replica,
    Snapshot,
};
use crate::messages::{ProtocolMsg, SnapshotState, VrMsg, WriteOp};

/// One VR replica.
pub struct VrReplica {
    me: ReplicaId,
    members: Vec<ReplicaId>,
    harmonia: bool,
    lease: LeaseState,
    sync_interval: harmonia_types::Duration,

    view: u64,
    /// The replicated log; position `i + 1` is op-number `i + 1`.
    log: Vec<WriteOp>,
    /// Highest committed op-number.
    commit_num: u64,
    /// Highest executed op-number (applied to `store`).
    executed: u64,
    /// Out-of-order PREPAREs buffered until the log catches up.
    pending_prepares: BTreeMap<u64, WriteOp>,
    /// Leader: PREPARE-OK collection per op-number.
    prepare_acks: HashMap<u64, HashSet<ReplicaId>>,
    /// Leader: executed-through points learned from COMMIT-ACKs.
    exec_points: HashMap<ReplicaId, u64>,
    /// Leader: completions emitted through this op-number.
    completed: u64,

    store: Store<VersionedValue>,
    in_order: InOrder,
    local_seq: u64,
    /// Leader only: at-most-once admission (drops network duplicates).
    clients: ClientTable,
    /// Largest switch sequence number among executed writes (`R.seq` in the
    /// Appendix A proof) — the read-behind guard input.
    exec_seq: SwitchSeq,
}

impl VrReplica {
    /// Build the replica for `config`.
    pub fn new(config: GroupConfig) -> Self {
        VrReplica {
            me: config.me,
            members: config.members,
            harmonia: config.harmonia,
            lease: LeaseState::new(config.active_switch),
            sync_interval: config.sync_interval,
            view: 0,
            log: Vec::new(),
            commit_num: 0,
            executed: 0,
            pending_prepares: BTreeMap::new(),
            prepare_acks: HashMap::new(),
            exec_points: HashMap::new(),
            completed: 0,
            store: Store::new(),
            in_order: InOrder::new(),
            local_seq: 0,
            clients: ClientTable::new(),
            exec_seq: SwitchSeq::ZERO,
        }
    }

    fn leader(&self) -> ReplicaId {
        self.members[self.view as usize % self.members.len()]
    }

    fn is_leader(&self) -> bool {
        self.me == self.leader()
    }

    fn quorum(&self) -> usize {
        ProtocolKind::Vr.quorum(self.members.len())
    }

    fn others(&self) -> Vec<ReplicaId> {
        self.members
            .iter()
            .copied()
            .filter(|&r| r != self.me)
            .collect()
    }

    fn execute_up_to(&mut self, n: u64) {
        let n = n.min(self.log.len() as u64);
        while self.executed < n {
            let op = &self.log[self.executed as usize];
            self.store.put(
                op.key.clone(),
                VersionedValue::new(op.value.clone(), op.seq),
            );
            self.exec_seq = self.exec_seq.max(op.seq);
            self.executed += 1;
        }
    }

    fn handle_write(&mut self, mut req: ClientRequest, out: &mut Effects) {
        if !self.is_leader() {
            out.forward_request(self.leader(), req);
            return;
        }
        match self.clients.admit(req.client, req.request) {
            Admission::Fresh => {}
            Admission::Duplicate => {
                if let Some(r) = self.clients.cached_reply(req.client, req.request) {
                    out.reply(self.lease.active(), r);
                }
                return;
            }
            Admission::Stale => return,
        }
        let seq = match req.seq {
            Some(s) if self.harmonia => s,
            _ => {
                self.local_seq += 1;
                SwitchSeq::new(self.lease.active(), self.local_seq)
            }
        };
        req.seq = Some(seq);
        if !self.in_order.accept(seq) {
            out.reply(
                self.lease.active(),
                write_reply(
                    self.me,
                    req.client,
                    req.request,
                    req.obj,
                    WriteOutcome::Rejected,
                    None,
                ),
            );
            return;
        }
        let op = WriteOp {
            seq,
            obj: req.obj,
            key: req.key.clone(),
            value: req.value.clone().unwrap_or_default(),
            client: req.client,
            request: req.request,
        };
        self.log.push(op.clone());
        let op_num = self.log.len() as u64;
        for r in self.others() {
            out.protocol(
                r,
                ProtocolMsg::Vr(VrMsg::Prepare {
                    view: self.view,
                    op_num,
                    op: op.clone(),
                    commit: self.commit_num,
                }),
            );
        }
        // Single-replica group commits immediately.
        self.advance_commit(out);
    }

    /// Leader: advance the commit point over consecutively-quorumed ops,
    /// executing and replying as each commits.
    fn advance_commit(&mut self, out: &mut Effects) {
        let quorum = self.quorum();
        let mut advanced = false;
        while self.commit_num < self.log.len() as u64 {
            let next = self.commit_num + 1;
            let acks = self.prepare_acks.get(&next).map(|s| s.len()).unwrap_or(0);
            // +1 for the leader's own log entry.
            if acks + 1 < quorum {
                break;
            }
            self.commit_num = next;
            self.prepare_acks.remove(&next);
            self.execute_up_to(next);
            let op = &self.log[(next - 1) as usize];
            let reply = write_reply(
                self.me,
                op.client,
                op.request,
                op.obj,
                WriteOutcome::Committed,
                None,
            );
            self.clients.record_reply(reply.clone());
            out.reply(self.lease.active(), reply);
            advanced = true;
        }
        if advanced {
            // §7.3: concurrently with replying, tell the replicas to commit;
            // they answer COMMIT-ACK (the Harmonia-added phase). The
            // baseline also broadcasts commits (VR does this lazily; the
            // periodic tick covers quiescence either way).
            let msg = VrMsg::Commit {
                view: self.view,
                commit: self.commit_num,
            };
            for r in self.others() {
                out.protocol(r, ProtocolMsg::Vr(msg.clone()));
            }
            self.maybe_emit_completions(out);
        }
    }

    /// Leader: the completion point is the largest op-number that a majority
    /// (counting the leader) has *executed*; emit WRITE-COMPLETIONs up to it.
    fn maybe_emit_completions(&mut self, out: &mut Effects) {
        if !self.harmonia {
            return;
        }
        let mut points: Vec<u64> = self
            .members
            .iter()
            .map(|r| {
                if *r == self.me {
                    self.executed
                } else {
                    self.exec_points.get(r).copied().unwrap_or(0)
                }
            })
            .collect();
        points.sort_unstable_by(|a, b| b.cmp(a));
        let point = points[self.quorum() - 1];
        while self.completed < point {
            self.completed += 1;
            let op = &self.log[(self.completed - 1) as usize];
            out.completion(
                self.lease.active(),
                WriteCompletion {
                    obj: op.obj,
                    seq: op.seq,
                },
            );
        }
    }

    fn handle_read(&mut self, req: ClientRequest, out: &mut Effects) {
        match req.read_mode {
            ReadMode::FastPath { switch } => {
                let allowed = self.lease.allows(switch);
                let stamped = req.last_committed.unwrap_or(SwitchSeq::ZERO);
                if allowed && read_behind_ok(self.exec_seq, stamped) {
                    let value = self.store.with(&req.key, |v| v.map(|vv| vv.value.clone()));
                    out.reply(self.lease.active(), read_reply(self.me, &req, value));
                } else {
                    let mut fwd = req;
                    fwd.read_mode = ReadMode::Normal;
                    if self.is_leader() {
                        self.handle_read(fwd, out);
                    } else {
                        out.forward_request(self.leader(), fwd);
                    }
                }
            }
            ReadMode::Normal => {
                if self.is_leader() {
                    let value = self.store.with(&req.key, |v| v.map(|vv| vv.value.clone()));
                    out.reply(self.lease.active(), read_reply(self.me, &req, value));
                } else {
                    out.forward_request(self.leader(), req);
                }
            }
        }
    }

    /// Backup: drain consecutively-numbered buffered prepares into the log,
    /// acknowledging each.
    fn drain_prepares(&mut self, out: &mut Effects) {
        while let Some(op) = self.pending_prepares.remove(&(self.log.len() as u64 + 1)) {
            self.log.push(op);
            out.protocol(
                self.leader(),
                ProtocolMsg::Vr(VrMsg::PrepareOk {
                    view: self.view,
                    op_num: self.log.len() as u64,
                    from: self.me,
                }),
            );
        }
    }

    /// Backup: execute through the learned commit point and (under
    /// Harmonia) answer COMMIT-ACK with the executed-through position.
    fn learn_commit(&mut self, commit: u64, out: &mut Effects) {
        self.commit_num = self.commit_num.max(commit.min(self.log.len() as u64));
        let before = self.executed;
        self.execute_up_to(self.commit_num);
        if self.harmonia && self.executed > before {
            out.protocol(
                self.leader(),
                ProtocolMsg::Vr(VrMsg::CommitAck {
                    view: self.view,
                    op_num: self.executed,
                    from: self.me,
                }),
            );
        }
    }
}

impl Replica for VrReplica {
    fn on_request(&mut self, _src: NodeId, req: ClientRequest, out: &mut Effects) {
        match req.op {
            OpKind::Write => self.handle_write(req, out),
            OpKind::Read => self.handle_read(req, out),
        }
    }

    fn on_protocol(&mut self, _src: NodeId, msg: ProtocolMsg, out: &mut Effects) {
        if handle_control(&msg, &mut self.lease, &mut self.members) {
            return;
        }
        let ProtocolMsg::Vr(msg) = msg else { return };
        match msg {
            VrMsg::Prepare {
                view,
                op_num,
                op,
                commit,
            } => {
                if view != self.view || self.is_leader() {
                    return;
                }
                if op_num == self.log.len() as u64 + 1 {
                    self.log.push(op);
                    out.protocol(
                        self.leader(),
                        ProtocolMsg::Vr(VrMsg::PrepareOk {
                            view: self.view,
                            op_num,
                            from: self.me,
                        }),
                    );
                    self.drain_prepares(out);
                } else if op_num > self.log.len() as u64 {
                    self.pending_prepares.insert(op_num, op);
                } else {
                    // Duplicate of something already logged: re-ack.
                    out.protocol(
                        self.leader(),
                        ProtocolMsg::Vr(VrMsg::PrepareOk {
                            view: self.view,
                            op_num,
                            from: self.me,
                        }),
                    );
                }
                self.learn_commit(commit, out);
            }
            VrMsg::PrepareOk { view, op_num, from } => {
                if view != self.view || !self.is_leader() {
                    return;
                }
                if op_num > self.commit_num {
                    self.prepare_acks.entry(op_num).or_default().insert(from);
                    self.advance_commit(out);
                }
            }
            VrMsg::Commit { view, commit } => {
                if view != self.view || self.is_leader() {
                    return;
                }
                self.learn_commit(commit, out);
            }
            VrMsg::CommitAck { view, op_num, from } => {
                if view != self.view || !self.is_leader() {
                    return;
                }
                let p = self.exec_points.entry(from).or_insert(0);
                *p = (*p).max(op_num);
                self.maybe_emit_completions(out);
            }
        }
    }

    fn on_tick(&mut self, out: &mut Effects) {
        // Periodic commit broadcast: keeps backups executing under
        // quiescence and re-drives lost COMMIT/COMMIT-ACK exchanges.
        if self.is_leader() && self.commit_num > 0 {
            let msg = VrMsg::Commit {
                view: self.view,
                commit: self.commit_num,
            };
            for r in self.others() {
                out.protocol(r, ProtocolMsg::Vr(msg.clone()));
            }
        }
    }

    fn tick_interval(&self) -> Option<harmonia_types::Duration> {
        Some(self.sync_interval)
    }

    fn local_value(&self, key: &[u8]) -> Option<Bytes> {
        self.store.with(key, |v| v.map(|vv| vv.value.clone()))
    }

    fn applied_seq(&self) -> SwitchSeq {
        self.exec_seq
    }

    fn export_snapshot(&self) -> Snapshot {
        let (clients, replies) = self.clients.export();
        Snapshot {
            entries: export_store(&self.store),
            log: self.log.clone(),
            state: SnapshotState {
                in_order: self.in_order.last(),
                applied: self.exec_seq,
                local_seq: self.local_seq,
                commit_num: self.commit_num,
                session: 0,
                clients,
                replies,
            },
        }
    }

    fn install_snapshot(&mut self, snap: Snapshot, out: &mut Effects) {
        // Log catchup: the leader's log is authoritative and a prefix-
        // superset of ours (a recovering backup buffers live Prepares in
        // `pending_prepares` until the log catches up, so its own log is
        // still empty at install time).
        if snap.log.len() > self.log.len() {
            self.log = snap.log;
        }
        let installed = install_store(&self.store, snap.entries);
        let before = self.executed;
        self.commit_num = self.commit_num.max(snap.state.commit_num);
        self.execute_up_to(self.commit_num);
        // The store now reflects every committed write through the leader's
        // export point, so the read-behind guard may trust that point.
        self.exec_seq = self.exec_seq.max(installed).max(snap.state.applied);
        self.in_order.accept(snap.state.in_order);
        self.local_seq = self.local_seq.max(snap.state.local_seq);
        self.clients.install(snap.state.clients, snap.state.replies);
        // Prepares buffered during the transfer now slot onto the caught-up
        // log; ack them so the leader's quorum counting proceeds.
        self.drain_prepares(out);
        if self.harmonia && self.executed > before {
            out.protocol(
                self.leader(),
                ProtocolMsg::Vr(VrMsg::CommitAck {
                    view: self.view,
                    op_num: self.executed,
                    from: self.me,
                }),
            );
        }
    }

    fn active_switch(&self) -> SwitchId {
        self.lease.active()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_types::{ClientId, PacketBody, RequestId, SwitchId};

    fn seq(n: u64) -> SwitchSeq {
        SwitchSeq::new(SwitchId(1), n)
    }

    fn group(n: usize, harmonia: bool) -> Vec<VrReplica> {
        (0..n)
            .map(|i| VrReplica::new(GroupConfig::new(ProtocolKind::Vr, n, i as u32, harmonia)))
            .collect()
    }

    fn write_req(n: u64, key: &str, val: &str, harmonia: bool) -> ClientRequest {
        let mut r = ClientRequest::write(
            ClientId(1),
            RequestId(n),
            Bytes::copy_from_slice(key.as_bytes()),
            Bytes::copy_from_slice(val.as_bytes()),
        );
        if harmonia {
            r.seq = Some(seq(n));
        }
        r
    }

    /// Deliver effects until quiescent; returns switch-bound bodies.
    fn pump(replicas: &mut [VrReplica], mut fx: Effects) -> Vec<PacketBody<ProtocolMsg>> {
        let mut to_switch = vec![];
        while !fx.out.is_empty() {
            let mut next = Effects::new();
            for (dst, body) in fx.out.drain(..) {
                match (dst, body) {
                    (NodeId::Replica(r), PacketBody::Protocol(m)) => {
                        replicas[r.index()].on_protocol(NodeId::Replica(r), m, &mut next);
                    }
                    (NodeId::Replica(r), PacketBody::Request(req)) => {
                        replicas[r.index()].on_request(NodeId::Replica(r), req, &mut next);
                    }
                    (NodeId::Switch(_), b) => to_switch.push(b),
                    other => panic!("unexpected effect {other:?}"),
                }
            }
            fx = next;
        }
        to_switch
    }

    fn replies(bodies: &[PacketBody<ProtocolMsg>]) -> Vec<&harmonia_types::ClientReply> {
        bodies
            .iter()
            .filter_map(|b| match b {
                PacketBody::Reply(r) => Some(r),
                _ => None,
            })
            .collect()
    }

    fn completions(bodies: &[PacketBody<ProtocolMsg>]) -> Vec<WriteCompletion> {
        bodies
            .iter()
            .filter_map(|b| match b {
                PacketBody::Completion(c) => Some(*c),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn write_commits_at_majority_and_completion_follows_commit_acks() {
        let mut g = group(3, true);
        let mut fx = Effects::new();
        g[0].on_request(
            NodeId::Client(ClientId(1)),
            write_req(1, "k", "v", true),
            &mut fx,
        );
        assert_eq!(fx.len(), 2, "prepare to both backups");
        let bodies = pump(&mut g, fx);
        let rs = replies(&bodies);
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].write_outcome, Some(WriteOutcome::Committed));
        assert_eq!(rs[0].completion, None, "read-behind: no piggyback");
        // The COMMIT-ACK phase produced exactly one completion.
        let cs = completions(&bodies);
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].seq, seq(1));
        // All replicas executed.
        for rep in &g {
            assert_eq!(rep.local_value(b"k"), Some(Bytes::from_static(b"v")));
        }
    }

    #[test]
    fn baseline_emits_no_completions() {
        let mut g = group(3, false);
        let mut fx = Effects::new();
        g[0].on_request(
            NodeId::Client(ClientId(1)),
            write_req(1, "k", "v", false),
            &mut fx,
        );
        let bodies = pump(&mut g, fx);
        assert_eq!(replies(&bodies).len(), 1);
        assert!(completions(&bodies).is_empty());
    }

    #[test]
    fn commit_point_needs_majority_not_all() {
        let mut g = group(5, true);
        let mut fx = Effects::new();
        g[0].on_request(
            NodeId::Client(ClientId(1)),
            write_req(1, "k", "v", true),
            &mut fx,
        );
        // Deliver prepares to backups 1 and 2 only (leader + 2 = majority of 5).
        let mut acks = Effects::new();
        for (dst, body) in fx.out.drain(..) {
            if let (NodeId::Replica(r), PacketBody::Protocol(m)) = (dst, body) {
                if r.index() <= 2 {
                    g[r.index()].on_protocol(NodeId::Replica(r), m, &mut acks);
                }
            }
        }
        let bodies = pump(&mut g, acks);
        assert_eq!(replies(&bodies).len(), 1, "commit at majority");
    }

    #[test]
    fn backup_lags_until_commit_message() {
        let mut g = group(3, true);
        let mut fx = Effects::new();
        g[0].on_request(
            NodeId::Client(ClientId(1)),
            write_req(1, "k", "v", true),
            &mut fx,
        );
        // Deliver only the prepares (not the resulting acks/commits).
        for (dst, body) in fx.out.drain(..) {
            if let (NodeId::Replica(r), PacketBody::Protocol(m)) = (dst, body) {
                let mut sink = Effects::new();
                g[r.index()].on_protocol(NodeId::Replica(r), m, &mut sink);
                // Swallow the PrepareOks.
            }
        }
        // Backups logged but did not execute: read-behind.
        assert_eq!(g[1].local_value(b"k"), None);
        assert_eq!(g[1].executed, 0);
        assert_eq!(g[1].log.len(), 1);
    }

    #[test]
    fn fast_path_guard_rejects_lagging_replica() {
        let mut g = group(3, true);
        let fx = {
            let mut fx = Effects::new();
            g[0].on_request(
                NodeId::Client(ClientId(1)),
                write_req(1, "k", "v", true),
                &mut fx,
            );
            fx
        };
        pump(&mut g, fx);
        // Forge a lagging backup: fresh replica that executed nothing.
        let mut lagger = VrReplica::new(GroupConfig::new(ProtocolKind::Vr, 3, 1, true));
        let mut read = ClientRequest::read(ClientId(2), RequestId(9), &b"k"[..]);
        read.read_mode = ReadMode::FastPath {
            switch: SwitchId(1),
        };
        read.last_committed = Some(seq(1));
        let mut fx = Effects::new();
        lagger.on_request(NodeId::Client(ClientId(2)), read, &mut fx);
        // Guard fails (executed 0 < stamped 1): forwarded to leader.
        assert!(matches!(
            fx.out[0],
            (NodeId::Replica(ReplicaId(0)), PacketBody::Request(_))
        ));
    }

    #[test]
    fn fast_path_serves_when_replica_is_current() {
        let mut g = group(3, true);
        let fx = {
            let mut fx = Effects::new();
            g[0].on_request(
                NodeId::Client(ClientId(1)),
                write_req(1, "k", "v", true),
                &mut fx,
            );
            fx
        };
        pump(&mut g, fx);
        let mut read = ClientRequest::read(ClientId(2), RequestId(9), &b"k"[..]);
        read.read_mode = ReadMode::FastPath {
            switch: SwitchId(1),
        };
        read.last_committed = Some(seq(1));
        let mut fx = Effects::new();
        g[2].on_request(NodeId::Client(ClientId(2)), read, &mut fx);
        let PacketBody::Reply(r) = &fx.out[0].1 else {
            panic!("expected local reply: {:?}", fx.out)
        };
        assert_eq!(r.value, Some(Bytes::from_static(b"v")));
    }

    #[test]
    fn out_of_order_prepares_are_buffered_and_drained() {
        let mut g = group(3, true);
        let mk_prepare = |n: u64| {
            ProtocolMsg::Vr(VrMsg::Prepare {
                view: 0,
                op_num: n,
                op: WriteOp {
                    seq: seq(n),
                    obj: harmonia_types::ObjectId::from_key(b"k"),
                    key: Bytes::from_static(b"k"),
                    value: Bytes::copy_from_slice(format!("v{n}").as_bytes()),
                    client: ClientId(1),
                    request: RequestId(n),
                },
                commit: 0,
            })
        };
        let mut fx = Effects::new();
        g[1].on_protocol(NodeId::Replica(ReplicaId(0)), mk_prepare(2), &mut fx);
        assert!(fx.is_empty(), "op 2 buffered until op 1 arrives");
        g[1].on_protocol(NodeId::Replica(ReplicaId(0)), mk_prepare(1), &mut fx);
        // Both acks now flow (op 1 then op 2).
        let ack_nums: Vec<u64> = fx
            .out
            .iter()
            .filter_map(|(_, b)| match b {
                PacketBody::Protocol(ProtocolMsg::Vr(VrMsg::PrepareOk { op_num, .. })) => {
                    Some(*op_num)
                }
                _ => None,
            })
            .collect();
        assert_eq!(ack_nums, vec![1, 2]);
        assert_eq!(g[1].log.len(), 2);
    }

    #[test]
    fn periodic_tick_rebroadcasts_commit() {
        let mut g = group(3, true);
        let fx = {
            let mut fx = Effects::new();
            g[0].on_request(
                NodeId::Client(ClientId(1)),
                write_req(1, "k", "v", true),
                &mut fx,
            );
            fx
        };
        pump(&mut g, fx);
        let mut fx = Effects::new();
        g[0].on_tick(&mut fx);
        assert_eq!(fx.len(), 2, "commit re-broadcast to both backups");
        let mut fx2 = Effects::new();
        g[1].on_tick(&mut fx2);
        assert!(fx2.is_empty(), "backups do not broadcast");
    }

    #[test]
    fn five_node_completion_needs_execution_majority() {
        let mut g = group(5, true);
        let mut fx = Effects::new();
        g[0].on_request(
            NodeId::Client(ClientId(1)),
            write_req(1, "k", "v", true),
            &mut fx,
        );
        // Full prepare round, but suppress COMMIT delivery to backups 3 & 4.
        // FIFO delivery: links in one rack preserve order.
        let mut commit_acks_seen = 0;
        let mut queue: std::collections::VecDeque<_> = fx.out.drain(..).collect();
        let mut bodies = vec![];
        while let Some((dst, body)) = queue.pop_front() {
            match (dst, body) {
                (NodeId::Replica(r), PacketBody::Protocol(m)) => {
                    // Drop COMMITs to replicas 3 and 4.
                    if matches!(m, ProtocolMsg::Vr(VrMsg::Commit { .. })) && r.index() >= 3 {
                        continue;
                    }
                    if matches!(m, ProtocolMsg::Vr(VrMsg::CommitAck { .. })) {
                        commit_acks_seen += 1;
                    }
                    let mut next = Effects::new();
                    g[r.index()].on_protocol(NodeId::Replica(r), m, &mut next);
                    queue.extend(next.out);
                }
                (NodeId::Switch(_), b) => bodies.push(b),
                (NodeId::Replica(_), PacketBody::Request(_)) => {}
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(commit_acks_seen, 2, "only replicas 1,2 commit-acked");
        // Quorum = 3 (leader + 2 backups executed): completion emitted.
        assert_eq!(completions(&bodies).len(), 1);
    }
}
