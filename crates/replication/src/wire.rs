//! Wire codec for protocol-internal messages.
//!
//! The UDP deployment driver (`harmonia-net` + `harmonia-core`'s
//! `spawn_udp`) puts *every* packet on a real socket — including the
//! replica↔replica traffic the in-process drivers pass by value. These
//! [`Wire`] implementations make `Packet<ProtocolMsg>` a first-class wire
//! type: same hand-rolled little-endian layout as `harmonia-types`, one
//! discriminant byte per enum, every variant's fields in declaration order.

use bytes::{BufMut, Bytes, BytesMut};
use harmonia_types::wire::Wire;
use harmonia_types::{ClientId, ObjectId, ReplicaId, RequestId, SwitchId, SwitchSeq, TypeError};

use crate::messages::{
    ChainMsg, CraqMsg, NopaxosMsg, PbMsg, ProtocolMsg, ReplicaControlMsg, SnapshotEntry,
    SnapshotState, StateTransferMsg, VrMsg, WriteOp,
};

impl Wire for WriteOp {
    fn encode(&self, buf: &mut BytesMut) {
        self.seq.encode(buf);
        self.obj.encode(buf);
        self.key.encode(buf);
        self.value.encode(buf);
        self.client.encode(buf);
        self.request.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, TypeError> {
        Ok(WriteOp {
            seq: SwitchSeq::decode(buf)?,
            obj: ObjectId::decode(buf)?,
            key: Bytes::decode(buf)?,
            value: Bytes::decode(buf)?,
            client: ClientId::decode(buf)?,
            request: RequestId::decode(buf)?,
        })
    }
}

impl Wire for PbMsg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            PbMsg::Update(op) => {
                buf.put_u8(0);
                op.encode(buf);
            }
            PbMsg::Ack { seq, from } => {
                buf.put_u8(1);
                seq.encode(buf);
                from.encode(buf);
            }
        }
    }
    fn decode(buf: &mut Bytes) -> Result<Self, TypeError> {
        match u8::decode(buf)? {
            0 => Ok(PbMsg::Update(WriteOp::decode(buf)?)),
            1 => Ok(PbMsg::Ack {
                seq: SwitchSeq::decode(buf)?,
                from: ReplicaId::decode(buf)?,
            }),
            v => Err(TypeError::BadDiscriminant {
                field: "PbMsg",
                value: u64::from(v),
            }),
        }
    }
}

impl Wire for ChainMsg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            ChainMsg::Down(op) => {
                buf.put_u8(0);
                op.encode(buf);
            }
            ChainMsg::ReReply { client, request } => {
                buf.put_u8(1);
                client.encode(buf);
                request.encode(buf);
            }
        }
    }
    fn decode(buf: &mut Bytes) -> Result<Self, TypeError> {
        match u8::decode(buf)? {
            0 => Ok(ChainMsg::Down(WriteOp::decode(buf)?)),
            1 => Ok(ChainMsg::ReReply {
                client: ClientId::decode(buf)?,
                request: RequestId::decode(buf)?,
            }),
            v => Err(TypeError::BadDiscriminant {
                field: "ChainMsg",
                value: u64::from(v),
            }),
        }
    }
}

impl Wire for CraqMsg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            CraqMsg::Down(op) => {
                buf.put_u8(0);
                op.encode(buf);
            }
            CraqMsg::Clean { obj, key, seq } => {
                buf.put_u8(1);
                obj.encode(buf);
                key.encode(buf);
                seq.encode(buf);
            }
            CraqMsg::ReReply { client, request } => {
                buf.put_u8(2);
                client.encode(buf);
                request.encode(buf);
            }
        }
    }
    fn decode(buf: &mut Bytes) -> Result<Self, TypeError> {
        match u8::decode(buf)? {
            0 => Ok(CraqMsg::Down(WriteOp::decode(buf)?)),
            1 => Ok(CraqMsg::Clean {
                obj: ObjectId::decode(buf)?,
                key: Bytes::decode(buf)?,
                seq: SwitchSeq::decode(buf)?,
            }),
            2 => Ok(CraqMsg::ReReply {
                client: ClientId::decode(buf)?,
                request: RequestId::decode(buf)?,
            }),
            v => Err(TypeError::BadDiscriminant {
                field: "CraqMsg",
                value: u64::from(v),
            }),
        }
    }
}

impl Wire for VrMsg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            VrMsg::Prepare {
                view,
                op_num,
                op,
                commit,
            } => {
                buf.put_u8(0);
                view.encode(buf);
                op_num.encode(buf);
                op.encode(buf);
                commit.encode(buf);
            }
            VrMsg::PrepareOk { view, op_num, from } => {
                buf.put_u8(1);
                view.encode(buf);
                op_num.encode(buf);
                from.encode(buf);
            }
            VrMsg::Commit { view, commit } => {
                buf.put_u8(2);
                view.encode(buf);
                commit.encode(buf);
            }
            VrMsg::CommitAck { view, op_num, from } => {
                buf.put_u8(3);
                view.encode(buf);
                op_num.encode(buf);
                from.encode(buf);
            }
        }
    }
    fn decode(buf: &mut Bytes) -> Result<Self, TypeError> {
        match u8::decode(buf)? {
            0 => Ok(VrMsg::Prepare {
                view: u64::decode(buf)?,
                op_num: u64::decode(buf)?,
                op: WriteOp::decode(buf)?,
                commit: u64::decode(buf)?,
            }),
            1 => Ok(VrMsg::PrepareOk {
                view: u64::decode(buf)?,
                op_num: u64::decode(buf)?,
                from: ReplicaId::decode(buf)?,
            }),
            2 => Ok(VrMsg::Commit {
                view: u64::decode(buf)?,
                commit: u64::decode(buf)?,
            }),
            3 => Ok(VrMsg::CommitAck {
                view: u64::decode(buf)?,
                op_num: u64::decode(buf)?,
                from: ReplicaId::decode(buf)?,
            }),
            v => Err(TypeError::BadDiscriminant {
                field: "VrMsg",
                value: u64::from(v),
            }),
        }
    }
}

impl Wire for NopaxosMsg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            NopaxosMsg::Sequenced {
                session,
                oum_seq,
                op,
            } => {
                buf.put_u8(0);
                session.encode(buf);
                oum_seq.encode(buf);
                op.encode(buf);
            }
            NopaxosMsg::SlotAck {
                session,
                oum_seq,
                from,
            } => {
                buf.put_u8(1);
                session.encode(buf);
                oum_seq.encode(buf);
                from.encode(buf);
            }
            NopaxosMsg::GapRequest {
                session,
                oum_seq,
                from,
            } => {
                buf.put_u8(2);
                session.encode(buf);
                oum_seq.encode(buf);
                from.encode(buf);
            }
            NopaxosMsg::GapReply {
                session,
                oum_seq,
                op,
            } => {
                buf.put_u8(3);
                session.encode(buf);
                oum_seq.encode(buf);
                op.encode(buf);
            }
            NopaxosMsg::Sync { session, upto } => {
                buf.put_u8(4);
                session.encode(buf);
                upto.encode(buf);
            }
            NopaxosMsg::SyncAck {
                session,
                upto,
                from,
            } => {
                buf.put_u8(5);
                session.encode(buf);
                upto.encode(buf);
                from.encode(buf);
            }
        }
    }
    fn decode(buf: &mut Bytes) -> Result<Self, TypeError> {
        match u8::decode(buf)? {
            0 => Ok(NopaxosMsg::Sequenced {
                session: u64::decode(buf)?,
                oum_seq: u64::decode(buf)?,
                op: WriteOp::decode(buf)?,
            }),
            1 => Ok(NopaxosMsg::SlotAck {
                session: u64::decode(buf)?,
                oum_seq: u64::decode(buf)?,
                from: ReplicaId::decode(buf)?,
            }),
            2 => Ok(NopaxosMsg::GapRequest {
                session: u64::decode(buf)?,
                oum_seq: u64::decode(buf)?,
                from: ReplicaId::decode(buf)?,
            }),
            3 => Ok(NopaxosMsg::GapReply {
                session: u64::decode(buf)?,
                oum_seq: u64::decode(buf)?,
                op: Option::<WriteOp>::decode(buf)?,
            }),
            4 => Ok(NopaxosMsg::Sync {
                session: u64::decode(buf)?,
                upto: u64::decode(buf)?,
            }),
            5 => Ok(NopaxosMsg::SyncAck {
                session: u64::decode(buf)?,
                upto: u64::decode(buf)?,
                from: ReplicaId::decode(buf)?,
            }),
            v => Err(TypeError::BadDiscriminant {
                field: "NopaxosMsg",
                value: u64::from(v),
            }),
        }
    }
}

impl Wire for ReplicaControlMsg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            ReplicaControlMsg::SetActiveSwitch(s) => {
                buf.put_u8(0);
                s.encode(buf);
            }
            ReplicaControlMsg::SetMembers(m) => {
                buf.put_u8(1);
                m.encode(buf);
            }
        }
    }
    fn decode(buf: &mut Bytes) -> Result<Self, TypeError> {
        match u8::decode(buf)? {
            0 => Ok(ReplicaControlMsg::SetActiveSwitch(SwitchId::decode(buf)?)),
            1 => Ok(ReplicaControlMsg::SetMembers(Vec::<ReplicaId>::decode(
                buf,
            )?)),
            v => Err(TypeError::BadDiscriminant {
                field: "ReplicaControlMsg",
                value: u64::from(v),
            }),
        }
    }
}

impl Wire for SnapshotEntry {
    fn encode(&self, buf: &mut BytesMut) {
        self.key.encode(buf);
        self.obj.encode(buf);
        self.value.encode(buf);
        self.seq.encode(buf);
        buf.put_u8(u8::from(self.dirty));
    }
    fn decode(buf: &mut Bytes) -> Result<Self, TypeError> {
        Ok(SnapshotEntry {
            key: Bytes::decode(buf)?,
            obj: ObjectId::decode(buf)?,
            value: Bytes::decode(buf)?,
            seq: SwitchSeq::decode(buf)?,
            dirty: match u8::decode(buf)? {
                0 => false,
                1 => true,
                v => {
                    return Err(TypeError::BadDiscriminant {
                        field: "SnapshotEntry.dirty",
                        value: u64::from(v),
                    })
                }
            },
        })
    }
}

impl Wire for SnapshotState {
    fn encode(&self, buf: &mut BytesMut) {
        self.in_order.encode(buf);
        self.applied.encode(buf);
        self.local_seq.encode(buf);
        self.commit_num.encode(buf);
        self.session.encode(buf);
        buf.put_u32_le(self.clients.len() as u32);
        for (client, request) in &self.clients {
            client.encode(buf);
            request.encode(buf);
        }
        self.replies.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Self, TypeError> {
        let in_order = SwitchSeq::decode(buf)?;
        let applied = SwitchSeq::decode(buf)?;
        let local_seq = u64::decode(buf)?;
        let commit_num = u64::decode(buf)?;
        let session = u64::decode(buf)?;
        let n = u32::decode(buf)? as usize;
        if n > harmonia_types::wire::MAX_FRAME_BYTES {
            return Err(TypeError::OversizedField {
                field: "SnapshotState.clients",
                len: n,
            });
        }
        let mut clients = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            clients.push((ClientId::decode(buf)?, RequestId::decode(buf)?));
        }
        Ok(SnapshotState {
            in_order,
            applied,
            local_seq,
            commit_num,
            session,
            clients,
            replies: Vec::<harmonia_types::ClientReply>::decode(buf)?,
        })
    }
}

impl Wire for StateTransferMsg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            StateTransferMsg::Request { from } => {
                buf.put_u8(0);
                from.encode(buf);
            }
            StateTransferMsg::Entries { entries } => {
                buf.put_u8(1);
                entries.encode(buf);
            }
            StateTransferMsg::Log { ops } => {
                buf.put_u8(2);
                ops.encode(buf);
            }
            StateTransferMsg::Done { state } => {
                buf.put_u8(3);
                state.encode(buf);
            }
        }
    }
    fn decode(buf: &mut Bytes) -> Result<Self, TypeError> {
        match u8::decode(buf)? {
            0 => Ok(StateTransferMsg::Request {
                from: ReplicaId::decode(buf)?,
            }),
            1 => Ok(StateTransferMsg::Entries {
                entries: Vec::<SnapshotEntry>::decode(buf)?,
            }),
            2 => Ok(StateTransferMsg::Log {
                ops: Vec::<WriteOp>::decode(buf)?,
            }),
            3 => Ok(StateTransferMsg::Done {
                state: SnapshotState::decode(buf)?,
            }),
            v => Err(TypeError::BadDiscriminant {
                field: "StateTransferMsg",
                value: u64::from(v),
            }),
        }
    }
}

impl Wire for ProtocolMsg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            ProtocolMsg::Pb(m) => {
                buf.put_u8(0);
                m.encode(buf);
            }
            ProtocolMsg::Chain(m) => {
                buf.put_u8(1);
                m.encode(buf);
            }
            ProtocolMsg::Craq(m) => {
                buf.put_u8(2);
                m.encode(buf);
            }
            ProtocolMsg::Vr(m) => {
                buf.put_u8(3);
                m.encode(buf);
            }
            ProtocolMsg::Nopaxos(m) => {
                buf.put_u8(4);
                m.encode(buf);
            }
            ProtocolMsg::Control(m) => {
                buf.put_u8(5);
                m.encode(buf);
            }
            ProtocolMsg::StateTransfer(m) => {
                buf.put_u8(6);
                m.encode(buf);
            }
        }
    }
    fn decode(buf: &mut Bytes) -> Result<Self, TypeError> {
        match u8::decode(buf)? {
            0 => Ok(ProtocolMsg::Pb(PbMsg::decode(buf)?)),
            1 => Ok(ProtocolMsg::Chain(ChainMsg::decode(buf)?)),
            2 => Ok(ProtocolMsg::Craq(CraqMsg::decode(buf)?)),
            3 => Ok(ProtocolMsg::Vr(VrMsg::decode(buf)?)),
            4 => Ok(ProtocolMsg::Nopaxos(NopaxosMsg::decode(buf)?)),
            5 => Ok(ProtocolMsg::Control(ReplicaControlMsg::decode(buf)?)),
            6 => Ok(ProtocolMsg::StateTransfer(StateTransferMsg::decode(buf)?)),
            v => Err(TypeError::BadDiscriminant {
                field: "ProtocolMsg",
                value: u64::from(v),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_types::wire::{decode_frame, encode_frame};

    fn op(n: u64) -> WriteOp {
        WriteOp {
            seq: SwitchSeq::new(SwitchId(2), n),
            obj: ObjectId(7),
            key: Bytes::from_static(b"key"),
            value: Bytes::from_static(b"value"),
            client: ClientId(3),
            request: RequestId(n),
        }
    }

    fn roundtrip(msg: ProtocolMsg) {
        let frame = encode_frame(&msg).unwrap();
        let (decoded, used) = decode_frame::<ProtocolMsg>(&frame).unwrap().unwrap();
        assert_eq!(decoded, msg);
        assert_eq!(used, frame.len());
    }

    #[test]
    fn every_protocol_message_roundtrips() {
        let all = vec![
            ProtocolMsg::Pb(PbMsg::Update(op(1))),
            ProtocolMsg::Pb(PbMsg::Ack {
                seq: SwitchSeq::new(SwitchId(1), 4),
                from: ReplicaId(2),
            }),
            ProtocolMsg::Chain(ChainMsg::Down(op(2))),
            ProtocolMsg::Chain(ChainMsg::ReReply {
                client: ClientId(9),
                request: RequestId(11),
            }),
            ProtocolMsg::Craq(CraqMsg::Down(op(3))),
            ProtocolMsg::Craq(CraqMsg::Clean {
                obj: ObjectId(5),
                key: Bytes::from_static(b"k"),
                seq: SwitchSeq::new(SwitchId(1), 6),
            }),
            ProtocolMsg::Craq(CraqMsg::ReReply {
                client: ClientId(1),
                request: RequestId(2),
            }),
            ProtocolMsg::Vr(VrMsg::Prepare {
                view: 3,
                op_num: 14,
                op: op(4),
                commit: 13,
            }),
            ProtocolMsg::Vr(VrMsg::PrepareOk {
                view: 3,
                op_num: 14,
                from: ReplicaId(1),
            }),
            ProtocolMsg::Vr(VrMsg::Commit { view: 3, commit: 9 }),
            ProtocolMsg::Vr(VrMsg::CommitAck {
                view: 3,
                op_num: 8,
                from: ReplicaId(0),
            }),
            ProtocolMsg::Nopaxos(NopaxosMsg::Sequenced {
                session: 1,
                oum_seq: 5,
                op: op(5),
            }),
            ProtocolMsg::Nopaxos(NopaxosMsg::SlotAck {
                session: 1,
                oum_seq: 5,
                from: ReplicaId(2),
            }),
            ProtocolMsg::Nopaxos(NopaxosMsg::GapRequest {
                session: 1,
                oum_seq: 6,
                from: ReplicaId(1),
            }),
            ProtocolMsg::Nopaxos(NopaxosMsg::GapReply {
                session: 1,
                oum_seq: 6,
                op: Some(op(6)),
            }),
            ProtocolMsg::Nopaxos(NopaxosMsg::GapReply {
                session: 1,
                oum_seq: 7,
                op: None,
            }),
            ProtocolMsg::Nopaxos(NopaxosMsg::Sync {
                session: 2,
                upto: 40,
            }),
            ProtocolMsg::Nopaxos(NopaxosMsg::SyncAck {
                session: 2,
                upto: 40,
                from: ReplicaId(0),
            }),
            ProtocolMsg::Control(ReplicaControlMsg::SetActiveSwitch(SwitchId(4))),
            ProtocolMsg::Control(ReplicaControlMsg::SetMembers(vec![
                ReplicaId(0),
                ReplicaId(2),
            ])),
            ProtocolMsg::StateTransfer(StateTransferMsg::Request { from: ReplicaId(1) }),
            ProtocolMsg::StateTransfer(StateTransferMsg::Entries {
                entries: vec![
                    SnapshotEntry {
                        key: Bytes::from_static(b"k1"),
                        obj: ObjectId(4),
                        value: Bytes::from_static(b"v1"),
                        seq: SwitchSeq::new(SwitchId(1), 8),
                        dirty: false,
                    },
                    SnapshotEntry {
                        key: Bytes::from_static(b"k2"),
                        obj: ObjectId(5),
                        value: Bytes::from_static(b"v2"),
                        seq: SwitchSeq::new(SwitchId(1), 9),
                        dirty: true,
                    },
                ],
            }),
            ProtocolMsg::StateTransfer(StateTransferMsg::Log {
                ops: vec![op(7), op(8)],
            }),
            ProtocolMsg::StateTransfer(StateTransferMsg::Done {
                state: SnapshotState {
                    in_order: SwitchSeq::new(SwitchId(1), 9),
                    applied: SwitchSeq::new(SwitchId(1), 8),
                    local_seq: 3,
                    commit_num: 7,
                    session: 2,
                    clients: vec![(ClientId(3), RequestId(5)), (ClientId(4), RequestId(1))],
                    replies: vec![harmonia_types::ClientReply {
                        client: ClientId(3),
                        from: ReplicaId(2),
                        request: RequestId(5),
                        obj: ObjectId(4),
                        value: None,
                        write_outcome: Some(harmonia_types::WriteOutcome::Committed),
                        completion: None,
                    }],
                },
            }),
        ];
        for msg in all {
            roundtrip(msg);
        }
    }

    #[test]
    fn bad_discriminants_error_at_every_level() {
        for (field, bytes) in [
            ("ProtocolMsg", vec![9u8]),
            ("PbMsg", vec![0, 9]),
            ("ChainMsg", vec![1, 9]),
            ("CraqMsg", vec![2, 9]),
            ("VrMsg", vec![3, 9]),
            ("NopaxosMsg", vec![4, 9]),
            ("ReplicaControlMsg", vec![5, 9]),
            ("StateTransferMsg", vec![6, 9]),
        ] {
            let mut b = Bytes::from(bytes);
            match ProtocolMsg::decode(&mut b) {
                Err(TypeError::BadDiscriminant { field: f, value: 9 }) => assert_eq!(f, field),
                other => panic!("{field}: expected bad-discriminant error, got {other:?}"),
            }
        }
    }
}
