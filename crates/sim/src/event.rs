//! The event queue.
//!
//! Events are totally ordered by `(time, sequence)` where `sequence` is a
//! monotone insertion counter: two events scheduled for the same instant fire
//! in scheduling order. This makes runs bit-for-bit reproducible.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use harmonia_types::{Instant, NodeId};

/// Token identifying a timer registration; delivered back to the actor when
/// the timer fires so it can distinguish (and ignore stale) timers.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TimerToken(pub u64);

/// What happens when an event fires.
#[derive(Debug)]
pub(crate) enum EventKind<M> {
    /// A message arrives at `to`'s input (it then enters the service queue).
    Arrive {
        /// Receiving node.
        to: NodeId,
        /// Sending node.
        from: NodeId,
        /// The message.
        msg: M,
    },
    /// A node finishes servicing the message at the head of its queue.
    ServiceDone {
        /// The node completing service.
        node: NodeId,
    },
    /// A timer registered by `node` fires.
    Timer {
        /// The owning node.
        node: NodeId,
        /// The registration token.
        token: TimerToken,
    },
    /// An external control action (test / benchmark harness intervention,
    /// e.g. "stop the switch at t = 20 s").
    Control(u64),
}

pub(crate) struct ScheduledEvent<M> {
    pub at: Instant,
    pub seq: u64,
    pub kind: EventKind<M>,
}

impl<M> PartialEq for ScheduledEvent<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for ScheduledEvent<M> {}
impl<M> PartialOrd for ScheduledEvent<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for ScheduledEvent<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Min-heap of scheduled events with deterministic tie-breaking.
pub(crate) struct EventQueue<M> {
    heap: BinaryHeap<Reverse<ScheduledEvent<M>>>,
    next_seq: u64,
}

impl<M> EventQueue<M> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    pub fn push(&mut self, at: Instant, kind: EventKind<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(ScheduledEvent { at, seq, kind }));
    }

    pub fn pop(&mut self) -> Option<ScheduledEvent<M>> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    pub fn peek_time(&self) -> Option<Instant> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_types::Duration;

    #[test]
    fn events_pop_in_time_order() {
        let mut q: EventQueue<u32> = EventQueue::new();
        let t = |ms| Instant::ZERO + Duration::from_millis(ms);
        q.push(t(5), EventKind::Control(5));
        q.push(t(1), EventKind::Control(1));
        q.push(t(3), EventKind::Control(3));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Control(v) => v,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn same_time_events_fire_in_scheduling_order() {
        let mut q: EventQueue<u32> = EventQueue::new();
        let t = Instant::ZERO + Duration::from_millis(1);
        for v in 0..10 {
            q.push(t, EventKind::Control(v));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Control(v) => v,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_tracks_minimum() {
        let mut q: EventQueue<u32> = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        assert!(q.is_empty());
        let t = |ms| Instant::ZERO + Duration::from_millis(ms);
        q.push(t(9), EventKind::Control(0));
        q.push(t(2), EventKind::Control(1));
        assert_eq!(q.peek_time(), Some(t(2)));
        assert_eq!(q.len(), 2);
    }
}
