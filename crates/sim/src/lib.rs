//! Deterministic discrete-event simulator.
//!
//! This crate is the testbed substitute (DESIGN.md §1): a virtual-time world
//! in which every Harmonia component — clients, the switch, storage replicas —
//! runs as an [`Actor`]. The simulator provides:
//!
//! * a virtual-time event scheduler with a deterministic tie-break order;
//! * a configurable network model (per-link latency, jitter, drop, reorder,
//!   duplication) driven by a seeded RNG, so every run is reproducible;
//! * a per-node *service model*: replicas are single-server queues with
//!   calibrated service times (saturation and latency curves emerge from
//!   queueing, exactly like the paper's testbed saturates its tail node),
//!   while the switch is a pure-delay element (line rate, §6);
//! * node failure switches (used by the switch-failover experiment, Fig. 10);
//! * a metrics registry (counters + latency histograms).
//!
//! The same protocol state machines run unmodified under the live threaded
//! driver in `harmonia-core`; nothing in this crate is Harmonia-specific.

#![forbid(unsafe_code)]

pub mod event;
pub mod metrics;
pub mod network;
pub mod node;
pub mod world;

pub use event::TimerToken;
pub use metrics::{Histogram, Metrics};
pub use network::{LinkConfig, NetworkModel};
pub use node::{Actor, Context, Service};
pub use world::{World, WorldConfig};
