//! Counters and latency histograms.
//!
//! The benchmark harnesses read throughput from counters (completed ops in a
//! measurement window) and latency from histograms. Histograms delegate to
//! `harmonia-obs`'s log-bucketed [`LogHistogram`]: fixed memory no matter
//! how long the run (the old implementation kept up to 2²⁰ raw samples and
//! fell back to reservoir sampling beyond that), exact count/mean/min/max,
//! and ≤ 3.2% relative error on interior percentiles.

use std::collections::BTreeMap;

use harmonia_obs::LogHistogram;
use harmonia_types::Duration;

/// A latency histogram: count, mean, and max are exact; interior
/// percentiles are log-bucketed (≤ 3.2% relative error) in fixed memory.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    inner: LogHistogram,
}

impl Histogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one duration.
    pub fn record(&mut self, d: Duration) {
        self.inner.record(d);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.inner.count()
    }

    /// Exact arithmetic mean.
    pub fn mean(&self) -> Duration {
        self.inner.mean()
    }

    /// Exact largest recorded sample.
    pub fn max(&self) -> Duration {
        self.inner.max()
    }

    /// The `p`-th percentile (0.0 ..= 1.0). `p <= 0.0` and `p >= 1.0`
    /// return the exact min/max; interior ranks are bucket midpoints.
    pub fn percentile(&self, p: f64) -> Duration {
        self.inner.percentile(p)
    }

    /// The 99.9th percentile (tail latency shorthand).
    pub fn p999(&self) -> Duration {
        self.inner.percentile(0.999)
    }

    /// Discard all samples.
    pub fn reset(&mut self) {
        self.inner.reset();
    }

    /// The underlying log-bucketed histogram (for merging into obs
    /// snapshots).
    pub fn log_histogram(&self) -> &LogHistogram {
        &self.inner
    }
}

/// Named counters and histograms for one simulation run.
///
/// Name-ordered maps so every iteration (resets, debugging dumps) visits
/// entries in the same order on every run — the registry is tiny and cold,
/// so the ordered map costs nothing on the hot record path.
#[derive(Default, Debug)]
pub struct Metrics {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl Metrics {
    /// Create an empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Add `delta` to counter `name`.
    pub fn add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Increment counter `name` by one.
    pub fn incr(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Read counter `name` (0 if never touched).
    pub fn counter(&self, name: &'static str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Record a duration into histogram `name`.
    pub fn observe(&mut self, name: &'static str, d: Duration) {
        self.histograms.entry(name).or_default().record(d);
    }

    /// Access histogram `name`, if any samples were recorded.
    pub fn histogram(&self, name: &'static str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Reset every counter and histogram (used to discard warmup).
    pub fn reset(&mut self) {
        self.counters.clear();
        for h in self.histograms.values_mut() {
            h.reset();
        }
    }

    /// Iterate counters in name order (for debugging dumps).
    pub fn counters_sorted(&self) -> Vec<(&'static str, u64)> {
        self.counters.iter().map(|(k, c)| (*k, *c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.incr("ops");
        m.add("ops", 4);
        assert_eq!(m.counter("ops"), 5);
        assert_eq!(m.counter("absent"), 0);
        m.reset();
        assert_eq!(m.counter("ops"), 0);
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::default();
        for us in 1..=100u64 {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.mean(), Duration::from_nanos(50_500));
        assert_eq!(h.max(), Duration::from_micros(100));
        assert_eq!(h.percentile(0.0), Duration::from_micros(1));
        assert_eq!(h.percentile(1.0), Duration::from_micros(100));
        let p50 = h.percentile(0.5);
        assert!(p50 >= Duration::from_micros(48) && p50 <= Duration::from_micros(52));
        assert!(h.p999() <= h.max());
    }

    #[test]
    fn histogram_memory_stays_fixed_and_mean_exact() {
        // The point of the log-bucketed rewrite: a long run records far
        // beyond any sample cap and the exact statistics still hold.
        let mut h = Histogram::new();
        for us in 0..1000u64 {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.mean(), Duration::from_nanos(499_500));
        let p99 = h.percentile(0.99).nanos() as f64;
        assert!(
            (p99 - 990_000.0).abs() / 990_000.0 <= 1.0 / 32.0,
            "p99={p99}"
        );
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::default();
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.percentile(0.99), Duration::ZERO);
    }
}
