//! Counters and latency histograms.
//!
//! The benchmark harnesses read throughput from counters (completed ops in a
//! measurement window) and latency from histograms. Histograms store raw
//! nanosecond samples up to a cap and switch to reservoir sampling beyond it,
//! which keeps percentile queries exact for the sizes our benches use while
//! bounding memory for very long runs.

use std::collections::BTreeMap;

use harmonia_types::Duration;

/// A latency histogram: mean is exact; percentiles are exact up to the
/// retention cap and sampled beyond it.
#[derive(Clone, Debug)]
pub struct Histogram {
    samples: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
    cap: usize,
    /// Simple linear-congruential state for reservoir sampling; avoids
    /// carrying an RNG handle here. Determinism is preserved because inserts
    /// happen in simulation order.
    lcg: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::with_capacity(1 << 20)
    }
}

impl Histogram {
    /// Create a histogram retaining up to `cap` exact samples.
    pub fn with_capacity(cap: usize) -> Self {
        Histogram {
            samples: Vec::new(),
            count: 0,
            sum: 0,
            max: 0,
            cap: cap.max(1),
            lcg: 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Record one duration.
    pub fn record(&mut self, d: Duration) {
        let v = d.nanos();
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
        if self.samples.len() < self.cap {
            self.samples.push(v);
        } else {
            // Vitter's algorithm R with an inline LCG.
            self.lcg = self
                .lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let idx = (self.lcg >> 33) % self.count;
            if (idx as usize) < self.samples.len() {
                self.samples[idx as usize] = v;
            }
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> Duration {
        self.sum
            .checked_div(self.count)
            .map_or(Duration::ZERO, Duration::from_nanos)
    }

    /// Largest recorded sample.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max)
    }

    /// The `p`-th percentile (0.0 ..= 1.0) over retained samples.
    pub fn percentile(&self, p: f64) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let rank = ((sorted.len() as f64 - 1.0) * p.clamp(0.0, 1.0)).round() as usize;
        Duration::from_nanos(sorted[rank])
    }

    /// Discard all samples but keep the configuration.
    pub fn reset(&mut self) {
        self.samples.clear();
        self.count = 0;
        self.sum = 0;
        self.max = 0;
    }
}

/// Named counters and histograms for one simulation run.
///
/// Name-ordered maps so every iteration (resets, debugging dumps) visits
/// entries in the same order on every run — the registry is tiny and cold,
/// so the ordered map costs nothing on the hot record path.
#[derive(Default, Debug)]
pub struct Metrics {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl Metrics {
    /// Create an empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Add `delta` to counter `name`.
    pub fn add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Increment counter `name` by one.
    pub fn incr(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Read counter `name` (0 if never touched).
    pub fn counter(&self, name: &'static str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Record a duration into histogram `name`.
    pub fn observe(&mut self, name: &'static str, d: Duration) {
        self.histograms.entry(name).or_default().record(d);
    }

    /// Access histogram `name`, if any samples were recorded.
    pub fn histogram(&self, name: &'static str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Reset every counter and histogram (used to discard warmup).
    pub fn reset(&mut self) {
        self.counters.clear();
        for h in self.histograms.values_mut() {
            h.reset();
        }
    }

    /// Iterate counters in name order (for debugging dumps).
    pub fn counters_sorted(&self) -> Vec<(&'static str, u64)> {
        self.counters.iter().map(|(k, c)| (*k, *c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.incr("ops");
        m.add("ops", 4);
        assert_eq!(m.counter("ops"), 5);
        assert_eq!(m.counter("absent"), 0);
        m.reset();
        assert_eq!(m.counter("ops"), 0);
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::default();
        for us in 1..=100u64 {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.mean(), Duration::from_nanos(50_500));
        assert_eq!(h.max(), Duration::from_micros(100));
        assert_eq!(h.percentile(0.0), Duration::from_micros(1));
        assert_eq!(h.percentile(1.0), Duration::from_micros(100));
        let p50 = h.percentile(0.5);
        assert!(p50 >= Duration::from_micros(49) && p50 <= Duration::from_micros(52));
    }

    #[test]
    fn histogram_reservoir_keeps_count_exact() {
        let mut h = Histogram::with_capacity(10);
        for us in 0..1000u64 {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.samples.len(), 10);
        // Mean is exact even though samples are subsampled.
        assert_eq!(h.mean(), Duration::from_nanos(499_500));
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::default();
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.percentile(0.99), Duration::ZERO);
    }
}
