//! The network model.
//!
//! Links between nodes are characterized by a base one-way latency, uniform
//! jitter, and independent drop / duplication probabilities. Reordering
//! arises naturally from jitter (two packets sent back-to-back can have their
//! delivery order inverted); an explicit `reorder_prob` adds an extra delay
//! penalty to a random subset of packets, which is the standard way to force
//! reordering-heavy schedules in tests of §5.2's asynchrony handling.
//!
//! Defaults model an intra-rack hop: 5 µs ± 2 µs, no loss. The paper's
//! testbed is a single ToR switch, so every client↔switch↔server path is one
//! or two such hops.

use harmonia_types::{Duration, NodeId};
use rand::Rng;

/// Behaviour of one (directed) link.
#[derive(Clone, Copy, Debug)]
pub struct LinkConfig {
    /// Base propagation + processing delay.
    pub base_latency: Duration,
    /// Uniform jitter added on top: `U[0, jitter]`.
    pub jitter: Duration,
    /// Probability a packet is silently dropped.
    pub drop_prob: f64,
    /// Probability a packet is duplicated (delivered twice).
    pub duplicate_prob: f64,
    /// Probability a packet is held back by an extra `reorder_delay`.
    pub reorder_prob: f64,
    /// The extra delay applied to reordered packets.
    pub reorder_delay: Duration,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            base_latency: Duration::from_micros(5),
            jitter: Duration::from_micros(2),
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            reorder_prob: 0.0,
            reorder_delay: Duration::from_micros(50),
        }
    }
}

impl LinkConfig {
    /// A perfectly reliable, fixed-latency link (useful in unit tests).
    pub fn ideal(latency: Duration) -> Self {
        LinkConfig {
            base_latency: latency,
            jitter: Duration::ZERO,
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            reorder_prob: 0.0,
            reorder_delay: Duration::ZERO,
        }
    }

    /// An adversarial link for asynchrony tests.
    pub fn lossy(drop: f64, duplicate: f64, reorder: f64) -> Self {
        LinkConfig {
            drop_prob: drop,
            duplicate_prob: duplicate,
            reorder_prob: reorder,
            ..LinkConfig::default()
        }
    }
}

/// Delivery plan for one packet: zero, one, or two copies with delays.
#[derive(Debug, PartialEq, Eq)]
pub(crate) struct Delivery {
    /// Delay for each delivered copy (empty = dropped).
    pub delays: Vec<Duration>,
    /// Copies held back by the explicit reorder penalty.
    pub reordered: u32,
}

/// The full network: a default link plus per-pair overrides and a partition
/// set. Node outages are handled at the world level; partitions here model
/// *link* failures between live nodes.
#[derive(Clone, Debug, Default)]
pub struct NetworkModel {
    default_link: LinkConfig,
    overrides: Vec<((NodeId, NodeId), LinkConfig)>,
    partitioned: Vec<(NodeId, NodeId)>,
}

impl NetworkModel {
    /// A network where every link uses `default_link`.
    pub fn uniform(default_link: LinkConfig) -> Self {
        NetworkModel {
            default_link,
            overrides: Vec::new(),
            partitioned: Vec::new(),
        }
    }

    /// Override the directed link `from → to`.
    pub fn set_link(&mut self, from: NodeId, to: NodeId, cfg: LinkConfig) {
        if let Some(slot) = self
            .overrides
            .iter_mut()
            .find(|((f, t), _)| *f == from && *t == to)
        {
            slot.1 = cfg;
        } else {
            self.overrides.push(((from, to), cfg));
        }
    }

    /// Cut both directions between `a` and `b`.
    pub fn partition(&mut self, a: NodeId, b: NodeId) {
        if !self.is_partitioned(a, b) {
            self.partitioned.push((a, b));
        }
    }

    /// Restore both directions between `a` and `b`.
    pub fn heal(&mut self, a: NodeId, b: NodeId) {
        self.partitioned
            .retain(|&(x, y)| !((x == a && y == b) || (x == b && y == a)));
    }

    /// Whether `a` and `b` are currently partitioned.
    pub fn is_partitioned(&self, a: NodeId, b: NodeId) -> bool {
        self.partitioned
            .iter()
            .any(|&(x, y)| (x == a && y == b) || (x == b && y == a))
    }

    /// Link configuration for `from → to`.
    pub fn link(&self, from: NodeId, to: NodeId) -> LinkConfig {
        self.overrides
            .iter()
            .find(|((f, t), _)| *f == from && *t == to)
            .map(|(_, cfg)| *cfg)
            .unwrap_or(self.default_link)
    }

    /// Decide the fate of one packet on `from → to`.
    pub(crate) fn plan<R: Rng>(&self, from: NodeId, to: NodeId, rng: &mut R) -> Delivery {
        if self.is_partitioned(from, to) {
            return Delivery {
                delays: vec![],
                reordered: 0,
            };
        }
        let link = self.link(from, to);
        let mut delays = Vec::with_capacity(1);
        let mut reordered = 0u32;
        let one_delay = |rng: &mut R| {
            let jitter = if link.jitter.nanos() == 0 {
                0
            } else {
                rng.gen_range(0..=link.jitter.nanos())
            };
            let mut d = link.base_latency + Duration::from_nanos(jitter);
            let held_back = link.reorder_prob > 0.0 && rng.gen_bool(link.reorder_prob);
            if held_back {
                d += link.reorder_delay;
            }
            (d, held_back)
        };
        if link.drop_prob > 0.0 && rng.gen_bool(link.drop_prob) {
            // dropped: no copies
        } else {
            let (d, held) = one_delay(rng);
            delays.push(d);
            reordered += u32::from(held);
            if link.duplicate_prob > 0.0 && rng.gen_bool(link.duplicate_prob) {
                let (d, held) = one_delay(rng);
                delays.push(d);
                reordered += u32::from(held);
            }
        }
        Delivery { delays, reordered }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmonia_types::{ClientId, ReplicaId};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn nodes() -> (NodeId, NodeId) {
        (NodeId::Client(ClientId(0)), NodeId::Replica(ReplicaId(0)))
    }

    #[test]
    fn ideal_link_is_deterministic() {
        let (a, b) = nodes();
        let net = NetworkModel::uniform(LinkConfig::ideal(Duration::from_micros(7)));
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10 {
            let d = net.plan(a, b, &mut rng);
            assert_eq!(d.delays, vec![Duration::from_micros(7)]);
        }
    }

    #[test]
    fn partition_drops_everything_until_heal() {
        let (a, b) = nodes();
        let mut net = NetworkModel::uniform(LinkConfig::ideal(Duration::from_micros(1)));
        net.partition(a, b);
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(net.plan(a, b, &mut rng).delays.is_empty());
        assert!(net.plan(b, a, &mut rng).delays.is_empty());
        net.heal(a, b);
        assert_eq!(net.plan(a, b, &mut rng).delays.len(), 1);
    }

    #[test]
    fn drop_probability_roughly_respected() {
        let (a, b) = nodes();
        let net = NetworkModel::uniform(LinkConfig::lossy(0.3, 0.0, 0.0));
        let mut rng = SmallRng::seed_from_u64(3);
        let delivered = (0..10_000)
            .filter(|_| !net.plan(a, b, &mut rng).delays.is_empty())
            .count();
        assert!((6500..7500).contains(&delivered), "delivered={delivered}");
    }

    #[test]
    fn duplication_yields_two_copies() {
        let (a, b) = nodes();
        let net = NetworkModel::uniform(LinkConfig::lossy(0.0, 1.0, 0.0));
        let mut rng = SmallRng::seed_from_u64(4);
        assert_eq!(net.plan(a, b, &mut rng).delays.len(), 2);
    }

    #[test]
    fn per_link_override_wins() {
        let (a, b) = nodes();
        let mut net = NetworkModel::uniform(LinkConfig::ideal(Duration::from_micros(1)));
        net.set_link(a, b, LinkConfig::ideal(Duration::from_micros(99)));
        assert_eq!(net.link(a, b).base_latency, Duration::from_micros(99));
        // Reverse direction untouched.
        assert_eq!(net.link(b, a).base_latency, Duration::from_micros(1));
        // Overriding again replaces, not appends.
        net.set_link(a, b, LinkConfig::ideal(Duration::from_micros(42)));
        assert_eq!(net.link(a, b).base_latency, Duration::from_micros(42));
        assert_eq!(net.overrides.len(), 1);
    }

    #[test]
    fn jitter_produces_reordering_opportunities() {
        let (a, b) = nodes();
        let net = NetworkModel::uniform(LinkConfig {
            base_latency: Duration::from_micros(5),
            jitter: Duration::from_micros(10),
            ..LinkConfig::default()
        });
        let mut rng = SmallRng::seed_from_u64(5);
        let delays: Vec<_> = (0..100)
            .map(|_| net.plan(a, b, &mut rng).delays[0])
            .collect();
        // At least one adjacent pair is inverted (later-sent arrives first).
        assert!(delays.windows(2).any(|w| w[1] < w[0]));
    }
}
