//! The actor abstraction and its execution context.
//!
//! Every simulated component implements [`Actor`]: a state machine receiving
//! messages and timer callbacks through a [`Context`] that records the
//! actions (sends, timers) to apply when the handler returns. Handlers never
//! block and never see real time — the same state machines run under the
//! live threaded driver in `harmonia-core`.

use std::any::Any;

use harmonia_types::{Duration, Instant, NodeId};
use rand::rngs::SmallRng;
#[allow(unused_imports)]
use rand::Rng;

use crate::event::TimerToken;
use crate::metrics::Metrics;

/// How a node's resource model treats an incoming message.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Service {
    /// The message occupies the node's (single) server for the given span
    /// before the handler runs: models a CPU-bound storage server. Arrivals
    /// during service wait in FIFO order — saturation and queueing delay
    /// emerge naturally.
    Queued(Duration),
    /// The handler runs on arrival: models line-rate elements (the switch's
    /// data plane) and open-loop clients, which are never the bottleneck.
    Immediate,
}

/// Blanket object-safe downcast support for actors.
pub trait AsAny {
    /// Upcast to `&dyn Any` for downcasting in tests and harnesses.
    fn as_any(&self) -> &dyn Any;
    /// Upcast to `&mut dyn Any`.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: Any> AsAny for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A simulated component.
pub trait Actor<M>: AsAny {
    /// Called once when the node is added to the world (and again if the
    /// node is restarted): schedule initial timers here.
    fn on_start(&mut self, _ctx: &mut Context<'_, M>) {}

    /// Handle a delivered message.
    fn on_message(&mut self, ctx: &mut Context<'_, M>, from: NodeId, msg: M);

    /// Handle a timer previously registered through [`Context::set_timer`].
    fn on_timer(&mut self, _ctx: &mut Context<'_, M>, _token: TimerToken) {}

    /// Classify the resource cost of `msg` (see [`Service`]). The default is
    /// line-rate processing.
    fn service(&self, _msg: &M) -> Service {
        Service::Immediate
    }
}

/// Actions buffered by a [`Context`] during a handler invocation.
#[derive(Debug)]
pub(crate) enum Action<M> {
    Send { to: NodeId, msg: M },
    SetTimer { after: Duration, token: TimerToken },
}

/// Handler execution context: the only window an actor has onto the world.
pub struct Context<'a, M> {
    pub(crate) node: NodeId,
    pub(crate) now: Instant,
    pub(crate) rng: &'a mut SmallRng,
    pub(crate) metrics: &'a mut Metrics,
    pub(crate) next_timer: &'a mut u64,
    pub(crate) actions: Vec<Action<M>>,
}

impl<'a, M> Context<'a, M> {
    /// The node this handler runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Current virtual time.
    pub fn now(&self) -> Instant {
        self.now
    }

    /// Deterministic per-world RNG (for random replica selection etc.).
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// The world's metrics registry.
    pub fn metrics(&mut self) -> &mut Metrics {
        self.metrics
    }

    /// Send `msg` to `to` over the network model.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.actions.push(Action::Send { to, msg });
    }

    /// Register a timer firing `after` from now; returns its token.
    pub fn set_timer(&mut self, after: Duration) -> TimerToken {
        let token = TimerToken(*self.next_timer);
        *self.next_timer += 1;
        self.actions.push(Action::SetTimer { after, token });
        token
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Probe {
        got: Vec<u32>,
    }

    impl Actor<u32> for Probe {
        fn on_message(&mut self, _ctx: &mut Context<'_, u32>, _from: NodeId, msg: u32) {
            self.got.push(msg);
        }
    }

    #[test]
    fn downcast_via_as_any() {
        let p = Probe { got: vec![1, 2] };
        let boxed: Box<dyn Actor<u32>> = Box::new(p);
        // NB: deref to the trait object first — calling `.as_any()` on the
        // `Box` itself would match the blanket impl for `Box<dyn Actor<_>>`
        // (boxes are `Any` too) and the downcast would fail.
        let back: &Probe = (*boxed).as_any().downcast_ref().expect("downcast");
        assert_eq!(back.got, vec![1, 2]);
    }

    #[test]
    fn default_service_is_immediate() {
        let p = Probe { got: vec![] };
        assert_eq!(p.service(&7), Service::Immediate);
    }
}
