//! The simulation world: nodes + network + event loop.

use std::collections::{HashMap, VecDeque};

use harmonia_types::{Duration, Instant, NodeId};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::event::{EventKind, EventQueue, TimerToken};
use crate::metrics::Metrics;
use crate::network::NetworkModel;
use crate::node::{Action, Actor, Context, Service};

/// World construction parameters.
#[derive(Clone, Debug)]
pub struct WorldConfig {
    /// RNG seed: identical seeds (and identical node/action sequences)
    /// reproduce runs exactly.
    pub seed: u64,
    /// The network model.
    pub network: NetworkModel,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            seed: 0x4a52_4d4e_4941,
            network: NetworkModel::default(),
        }
    }
}

struct NodeSlot<M> {
    actor: Option<Box<dyn Actor<M>>>,
    /// FIFO of messages awaiting service: `(from, msg, service_time)`.
    inbox: VecDeque<(NodeId, M, Duration)>,
    busy: bool,
    down: bool,
}

type ControlFn<M> = Box<dyn FnOnce(&mut World<M>)>;

/// A deterministic discrete-event simulation of one storage rack.
pub struct World<M> {
    now: Instant,
    queue: EventQueue<M>,
    nodes: HashMap<NodeId, NodeSlot<M>>,
    network: NetworkModel,
    rng: SmallRng,
    metrics: Metrics,
    next_timer: u64,
    controls: HashMap<u64, ControlFn<M>>,
    next_control: u64,
}

impl<M: Clone + 'static> World<M> {
    /// Create an empty world.
    pub fn new(config: WorldConfig) -> Self {
        World {
            now: Instant::ZERO,
            queue: EventQueue::new(),
            nodes: HashMap::new(),
            network: config.network,
            rng: SmallRng::seed_from_u64(config.seed),
            metrics: Metrics::new(),
            next_timer: 0,
            controls: HashMap::new(),
            next_control: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Instant {
        self.now
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable metrics access (e.g. to reset after warmup).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Mutable network access (partitions, link overrides mid-run).
    pub fn network_mut(&mut self) -> &mut NetworkModel {
        &mut self.network
    }

    /// Register a node and run its `on_start` hook.
    pub fn add_node(&mut self, id: NodeId, actor: Box<dyn Actor<M>>) {
        self.nodes.insert(
            id,
            NodeSlot {
                actor: Some(actor),
                inbox: VecDeque::new(),
                busy: false,
                down: false,
            },
        );
        self.start_node(id);
    }

    /// Replace a node's actor with a fresh one (models a rebooted switch
    /// that lost all soft state, §5.3) and run `on_start`.
    pub fn replace_node(&mut self, id: NodeId, actor: Box<dyn Actor<M>>) {
        let slot = self.nodes.get_mut(&id).expect("replace_node: unknown node");
        slot.actor = Some(actor);
        slot.inbox.clear();
        slot.busy = false;
        slot.down = false;
        self.start_node(id);
    }

    /// Take a node offline: queued and in-flight-to-it messages are lost,
    /// timers are suppressed while down.
    pub fn set_down(&mut self, id: NodeId) {
        if let Some(slot) = self.nodes.get_mut(&id) {
            slot.down = true;
            slot.inbox.clear();
            slot.busy = false;
        }
    }

    /// Bring a node back (state intact) and re-run `on_start`.
    pub fn set_up(&mut self, id: NodeId) {
        if let Some(slot) = self.nodes.get_mut(&id) {
            slot.down = false;
        }
        self.start_node(id);
    }

    /// Whether the node is currently marked down.
    pub fn is_down(&self, id: NodeId) -> bool {
        self.nodes.get(&id).map(|s| s.down).unwrap_or(true)
    }

    /// Immutable access to a node's actor, downcast to its concrete type.
    pub fn actor<A: 'static>(&self, id: NodeId) -> Option<&A> {
        self.nodes
            .get(&id)
            .and_then(|s| s.actor.as_deref())
            .and_then(|a| a.as_any().downcast_ref())
    }

    /// Mutable access to a node's actor, downcast to its concrete type.
    ///
    /// Mutating actor state outside a handler is a harness-only affordance;
    /// protocol logic must go through messages.
    pub fn actor_mut<A: 'static>(&mut self, id: NodeId) -> Option<&mut A> {
        self.nodes
            .get_mut(&id)
            .and_then(|s| s.actor.as_deref_mut())
            .and_then(|a| a.as_any_mut().downcast_mut())
    }

    /// Inject a message from outside the simulation (no network effects,
    /// delivered at the current instant).
    pub fn inject(&mut self, from: NodeId, to: NodeId, msg: M) {
        self.queue
            .push(self.now, EventKind::Arrive { to, from, msg });
    }

    /// Schedule an arbitrary harness action at an absolute time.
    pub fn schedule_control(&mut self, at: Instant, f: impl FnOnce(&mut World<M>) + 'static) {
        let id = self.next_control;
        self.next_control += 1;
        self.controls.insert(id, Box::new(f));
        self.queue.push(at, EventKind::Control(id));
    }

    /// Number of scheduled control actions that have not fired yet.
    pub fn pending_controls(&self) -> usize {
        self.controls.len()
    }

    /// Number of messages waiting (plus in service) at `id`.
    pub fn backlog(&self, id: NodeId) -> usize {
        self.nodes
            .get(&id)
            .map(|s| s.inbox.len() + usize::from(s.busy))
            .unwrap_or(0)
    }

    /// Process events until (and including) time `t`.
    pub fn run_until(&mut self, t: Instant) {
        while let Some(next) = self.queue.peek_time() {
            if next > t {
                break;
            }
            self.step();
        }
        self.now = self.now.max(t);
    }

    /// Process events until the queue drains or `max_events` fire.
    /// Returns the number of events processed.
    pub fn run_until_idle(&mut self, max_events: u64) -> u64 {
        let mut n = 0;
        while n < max_events && self.step() {
            n += 1;
        }
        n
    }

    /// Fire the next event. Returns false if the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.now, "time went backwards");
        self.now = ev.at;
        match ev.kind {
            EventKind::Arrive { to, from, msg } => self.handle_arrival(to, from, msg),
            EventKind::ServiceDone { node } => self.handle_service_done(node),
            EventKind::Timer { node, token } => self.fire_timer(node, token),
            EventKind::Control(id) => {
                if let Some(f) = self.controls.remove(&id) {
                    f(self);
                }
            }
        }
        true
    }

    fn handle_arrival(&mut self, to: NodeId, from: NodeId, msg: M) {
        let Some(slot) = self.nodes.get_mut(&to) else {
            self.metrics.incr("net.dead_dst");
            return;
        };
        if slot.down {
            self.metrics.incr("net.down_dst");
            return;
        }
        let service = slot
            .actor
            .as_ref()
            .map(|a| a.service(&msg))
            .unwrap_or(Service::Immediate);
        match service {
            Service::Immediate => self.dispatch_message(to, from, msg),
            Service::Queued(d) => {
                let slot = self.nodes.get_mut(&to).expect("slot vanished");
                slot.inbox.push_back((from, msg, d));
                if !slot.busy {
                    slot.busy = true;
                    let head_service = slot.inbox.front().expect("just pushed").2;
                    self.queue
                        .push(self.now + head_service, EventKind::ServiceDone { node: to });
                }
            }
        }
    }

    fn handle_service_done(&mut self, node: NodeId) {
        let Some(slot) = self.nodes.get_mut(&node) else {
            return;
        };
        if slot.down {
            return;
        }
        let Some((from, msg, _)) = slot.inbox.pop_front() else {
            slot.busy = false;
            return;
        };
        // Schedule the next head *before* dispatching, so that messages the
        // handler enqueues locally line up behind existing work.
        if let Some(&(_, _, next_d)) = slot.inbox.front() {
            self.queue
                .push(self.now + next_d, EventKind::ServiceDone { node });
        } else {
            slot.busy = false;
        }
        self.dispatch_message(node, from, msg);
    }

    fn dispatch_message(&mut self, node: NodeId, from: NodeId, msg: M) {
        let Some(mut actor) = self.nodes.get_mut(&node).and_then(|slot| slot.actor.take()) else {
            return;
        };
        let mut ctx = Context {
            node,
            now: self.now,
            rng: &mut self.rng,
            metrics: &mut self.metrics,
            next_timer: &mut self.next_timer,
            actions: Vec::new(),
        };
        actor.on_message(&mut ctx, from, msg);
        let actions = std::mem::take(&mut ctx.actions);
        if let Some(slot) = self.nodes.get_mut(&node) {
            slot.actor = Some(actor);
        }
        self.apply_actions(node, actions);
    }

    fn fire_timer(&mut self, node: NodeId, token: TimerToken) {
        let Some(slot) = self.nodes.get_mut(&node) else {
            return;
        };
        if slot.down {
            return;
        }
        let Some(mut actor) = slot.actor.take() else {
            return;
        };
        let mut ctx = Context {
            node,
            now: self.now,
            rng: &mut self.rng,
            metrics: &mut self.metrics,
            next_timer: &mut self.next_timer,
            actions: Vec::new(),
        };
        actor.on_timer(&mut ctx, token);
        let actions = std::mem::take(&mut ctx.actions);
        if let Some(slot) = self.nodes.get_mut(&node) {
            slot.actor = Some(actor);
        }
        self.apply_actions(node, actions);
    }

    fn start_node(&mut self, node: NodeId) {
        let Some(mut actor) = self.nodes.get_mut(&node).and_then(|slot| slot.actor.take()) else {
            return;
        };
        let mut ctx = Context {
            node,
            now: self.now,
            rng: &mut self.rng,
            metrics: &mut self.metrics,
            next_timer: &mut self.next_timer,
            actions: Vec::new(),
        };
        actor.on_start(&mut ctx);
        let actions = std::mem::take(&mut ctx.actions);
        if let Some(slot) = self.nodes.get_mut(&node) {
            slot.actor = Some(actor);
        }
        self.apply_actions(node, actions);
    }

    fn apply_actions(&mut self, node: NodeId, actions: Vec<Action<M>>) {
        for action in actions {
            match action {
                Action::Send { to, msg } => self.route(node, to, msg),
                Action::SetTimer { after, token } => {
                    self.queue
                        .push(self.now + after, EventKind::Timer { node, token });
                }
            }
        }
    }

    fn route(&mut self, from: NodeId, to: NodeId, msg: M) {
        let plan = self.network.plan(from, to, &mut self.rng);
        if plan.delays.is_empty() {
            self.metrics.incr("net.dropped");
            return;
        }
        if plan.delays.len() > 1 {
            self.metrics
                .add("net.duplicated", plan.delays.len() as u64 - 1);
        }
        if plan.reordered > 0 {
            self.metrics.add("net.reordered", u64::from(plan.reordered));
        }
        for d in plan.delays {
            self.queue.push(
                self.now + d,
                EventKind::Arrive {
                    to,
                    from,
                    msg: msg.clone(),
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::LinkConfig;
    use harmonia_types::{ClientId, ReplicaId};

    fn client(n: u32) -> NodeId {
        NodeId::Client(ClientId(n))
    }
    fn replica(n: u32) -> NodeId {
        NodeId::Replica(ReplicaId(n))
    }

    /// Echoes every message back to its sender after optionally queueing.
    struct Echo {
        service: Service,
        seen: u64,
    }

    impl Actor<u64> for Echo {
        fn on_message(&mut self, ctx: &mut Context<'_, u64>, from: NodeId, msg: u64) {
            self.seen += 1;
            ctx.send(from, msg + 1);
        }
        fn service(&self, _msg: &u64) -> Service {
            self.service
        }
    }

    /// Sends `count` messages at start; records reply arrival times.
    struct Pinger {
        target: NodeId,
        count: u64,
        replies: Vec<(Instant, u64)>,
    }

    impl Actor<u64> for Pinger {
        fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
            for i in 0..self.count {
                ctx.send(self.target, i * 10);
            }
        }
        fn on_message(&mut self, ctx: &mut Context<'_, u64>, _from: NodeId, msg: u64) {
            self.replies.push((ctx.now(), msg));
        }
    }

    fn ideal_world(latency_us: u64) -> World<u64> {
        World::new(WorldConfig {
            seed: 7,
            network: NetworkModel::uniform(LinkConfig::ideal(Duration::from_micros(latency_us))),
        })
    }

    #[test]
    fn request_reply_roundtrip_takes_two_hops() {
        let mut w = ideal_world(5);
        w.add_node(
            replica(0),
            Box::new(Echo {
                service: Service::Immediate,
                seen: 0,
            }),
        );
        w.add_node(
            client(0),
            Box::new(Pinger {
                target: replica(0),
                count: 1,
                replies: vec![],
            }),
        );
        w.run_until_idle(1000);
        let p: &Pinger = w.actor(client(0)).unwrap();
        assert_eq!(p.replies.len(), 1);
        assert_eq!(p.replies[0].1, 1);
        assert_eq!(p.replies[0].0, Instant::ZERO + Duration::from_micros(10));
    }

    #[test]
    fn queued_service_serializes_work() {
        // Three messages arrive together at a server with 100 µs service
        // time: completions must be spaced 100 µs apart (FIFO single server).
        let mut w = ideal_world(1);
        w.add_node(
            replica(0),
            Box::new(Echo {
                service: Service::Queued(Duration::from_micros(100)),
                seen: 0,
            }),
        );
        w.add_node(
            client(0),
            Box::new(Pinger {
                target: replica(0),
                count: 3,
                replies: vec![],
            }),
        );
        w.run_until_idle(1000);
        let p: &Pinger = w.actor(client(0)).unwrap();
        assert_eq!(p.replies.len(), 3);
        let times: Vec<u64> = p.replies.iter().map(|(t, _)| t.nanos()).collect();
        assert_eq!(times[1] - times[0], Duration::from_micros(100).nanos());
        assert_eq!(times[2] - times[1], Duration::from_micros(100).nanos());
    }

    #[test]
    fn down_node_drops_messages_and_counts_them() {
        let mut w = ideal_world(1);
        w.add_node(
            replica(0),
            Box::new(Echo {
                service: Service::Immediate,
                seen: 0,
            }),
        );
        w.set_down(replica(0));
        w.add_node(
            client(0),
            Box::new(Pinger {
                target: replica(0),
                count: 5,
                replies: vec![],
            }),
        );
        w.run_until_idle(1000);
        let p: &Pinger = w.actor(client(0)).unwrap();
        assert!(p.replies.is_empty());
        assert_eq!(w.metrics().counter("net.down_dst"), 5);
    }

    #[test]
    fn set_up_restores_delivery() {
        let mut w = ideal_world(1);
        w.add_node(
            replica(0),
            Box::new(Echo {
                service: Service::Immediate,
                seen: 0,
            }),
        );
        w.set_down(replica(0));
        w.inject(client(0), replica(0), 1);
        w.run_until_idle(100);
        w.set_up(replica(0));
        w.inject(client(0), replica(0), 2);
        w.run_until_idle(100);
        let e: &Echo = w.actor(replica(0)).unwrap();
        assert_eq!(e.seen, 1);
    }

    #[test]
    fn control_actions_run_at_their_time() {
        let mut w = ideal_world(1);
        w.add_node(
            replica(0),
            Box::new(Echo {
                service: Service::Immediate,
                seen: 0,
            }),
        );
        w.schedule_control(Instant::ZERO + Duration::from_millis(3), |w| {
            w.set_down(replica(0));
        });
        assert!(!w.is_down(replica(0)));
        w.run_until(Instant::ZERO + Duration::from_millis(2));
        assert!(!w.is_down(replica(0)));
        w.run_until(Instant::ZERO + Duration::from_millis(4));
        assert!(w.is_down(replica(0)));
    }

    #[test]
    fn timers_fire_and_replace_node_resets_state() {
        struct Ticker {
            ticks: u64,
        }
        impl Actor<u64> for Ticker {
            fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
                ctx.set_timer(Duration::from_millis(1));
            }
            fn on_message(&mut self, _: &mut Context<'_, u64>, _: NodeId, _: u64) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, u64>, _token: TimerToken) {
                self.ticks += 1;
                if self.ticks < 3 {
                    ctx.set_timer(Duration::from_millis(1));
                }
            }
        }
        let mut w = ideal_world(1);
        w.add_node(replica(0), Box::new(Ticker { ticks: 0 }));
        w.run_until_idle(100);
        assert_eq!(w.actor::<Ticker>(replica(0)).unwrap().ticks, 3);
        w.replace_node(replica(0), Box::new(Ticker { ticks: 0 }));
        assert_eq!(w.actor::<Ticker>(replica(0)).unwrap().ticks, 0);
        w.run_until_idle(100);
        assert_eq!(w.actor::<Ticker>(replica(0)).unwrap().ticks, 3);
    }

    #[test]
    fn identical_seeds_reproduce_runs() {
        fn run(seed: u64) -> Vec<(u64, u64)> {
            let mut w = World::new(WorldConfig {
                seed,
                network: NetworkModel::uniform(LinkConfig {
                    jitter: Duration::from_micros(50),
                    drop_prob: 0.1,
                    ..LinkConfig::default()
                }),
            });
            w.add_node(
                replica(0),
                Box::new(Echo {
                    service: Service::Queued(Duration::from_micros(10)),
                    seen: 0,
                }),
            );
            w.add_node(
                client(0),
                Box::new(Pinger {
                    target: replica(0),
                    count: 100,
                    replies: vec![],
                }),
            );
            w.run_until_idle(10_000);
            w.actor::<Pinger>(client(0))
                .unwrap()
                .replies
                .iter()
                .map(|(t, v)| (t.nanos(), *v))
                .collect()
        }
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds should differ");
    }
}
