//! The read-write conflict detection module — Algorithm 1 of the paper.
//!
//! The detector tracks three pieces of state (§5):
//!
//! 1. a monotonically increasing **sequence number**, stamped into writes;
//! 2. the **dirty set** — for each object with pending writes, the largest
//!    pending sequence number (held in the [`MultiStageHashTable`]);
//! 3. the **last-committed point** — the largest sequence number known to be
//!    committed, stamped into fast-path reads so replicas can apply the
//!    visibility/integrity guards of §7.
//!
//! It also implements the §5.3 failover rule: a freshly initialized switch
//! forwards everything through the normal protocol until it observes the
//! first WRITE-COMPLETION carrying *its own* switch id, at which point its
//! dirty set and last-committed point are guaranteed up to date and the
//! single-replica fast path is enabled.

use harmonia_types::{ObjectId, SwitchId, SwitchSeq, WriteCompletion};

use crate::table::{MultiStageHashTable, TableConfig, TableStats};

/// Detector construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct ConflictConfig {
    /// This switch incarnation's id (must exceed every predecessor's).
    pub switch_id: SwitchId,
    /// Dirty-set geometry.
    pub table: TableConfig,
}

impl Default for ConflictConfig {
    fn default() -> Self {
        ConflictConfig {
            switch_id: SwitchId(1),
            table: TableConfig::default(),
        }
    }
}

/// Outcome of processing a write (Algorithm 1, lines 1–4).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WriteDecision {
    /// The write was stamped with this sequence number and the object was
    /// added to the dirty set; forward to the replication protocol.
    Stamped(SwitchSeq),
    /// Every hash-table stage collided: the write is dropped (§6.1) and the
    /// client must retry.
    Dropped,
}

/// Outcome of processing a read (Algorithm 1, lines 9–12).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReadDecision {
    /// Contended (or fast path not yet enabled): forward unmodified through
    /// the normal replication protocol.
    Normal,
    /// Uncontended: send to one replica, stamped with the last-committed
    /// point.
    FastPath {
        /// Value to stamp into `pkt.last_committed`.
        last_committed: SwitchSeq,
    },
}

/// Algorithm 1, plus failover gating. Pure state machine: no I/O, no clock.
#[derive(Clone, Debug)]
pub struct ConflictDetector {
    switch_id: SwitchId,
    next_seq: u64,
    table: MultiStageHashTable,
    last_committed: SwitchSeq,
    fast_path_enabled: bool,
}

impl ConflictDetector {
    /// A freshly booted switch: empty dirty set, fast path disabled.
    pub fn new(config: ConflictConfig) -> Self {
        assert!(
            config.switch_id.0 > 0,
            "switch id 0 is reserved for the bottom sequence number"
        );
        ConflictDetector {
            switch_id: config.switch_id,
            next_seq: 0,
            table: MultiStageHashTable::new(config.table),
            last_committed: SwitchSeq::ZERO,
            fast_path_enabled: false,
        }
    }

    /// This incarnation's id.
    pub fn switch_id(&self) -> SwitchId {
        self.switch_id
    }

    /// Largest committed sequence number observed.
    pub fn last_committed(&self) -> SwitchSeq {
        self.last_committed
    }

    /// Whether single-replica reads are currently being issued.
    pub fn fast_path_enabled(&self) -> bool {
        self.fast_path_enabled
    }

    /// Process a WRITE (Algorithm 1 lines 1–4): assign the next sequence
    /// number and track the object as dirty.
    pub fn process_write(&mut self, obj: ObjectId) -> WriteDecision {
        self.next_seq += 1;
        let seq = SwitchSeq::new(self.switch_id, self.next_seq);
        if self.table.insert(obj, seq) {
            WriteDecision::Stamped(seq)
        } else {
            WriteDecision::Dropped
        }
    }

    /// Process a WRITE-COMPLETION (Algorithm 1 lines 5–8): clear the dirty
    /// entry if this was the last pending write to the object, and advance
    /// the last-committed point.
    pub fn process_completion(&mut self, completion: WriteCompletion) {
        self.table.delete(completion.obj, completion.seq);
        self.last_committed = self.last_committed.max(completion.seq);
        // §5.3: the first completion stamped by *this* incarnation proves the
        // dirty set and last-committed point are up to date.
        if completion.seq.switch_id == self.switch_id {
            self.fast_path_enabled = true;
        }
    }

    /// Process a READ (Algorithm 1 lines 9–12): decide its route. Probing
    /// doubles as lazy cleanup of stale entries (§5.2).
    pub fn process_read(&mut self, obj: ObjectId) -> ReadDecision {
        if !self.fast_path_enabled {
            return ReadDecision::Normal;
        }
        match self.table.search_and_scrub(obj, self.last_committed) {
            Some(_pending) => ReadDecision::Normal,
            None => ReadDecision::FastPath {
                last_committed: self.last_committed,
            },
        }
    }

    /// Control-plane periodic sweep of stale dirty entries (§5.2). Returns
    /// the number of entries removed.
    pub fn sweep(&mut self) -> usize {
        self.table.sweep(self.last_committed)
    }

    /// Dirty-set occupancy (live entries).
    pub fn dirty_len(&self) -> usize {
        self.table.occupancy()
    }

    /// Dirty-set behaviour counters.
    pub fn table_stats(&self) -> TableStats {
        self.table.stats()
    }

    /// SRAM footprint of the dirty set under the §6.2 resource model.
    pub fn memory_bytes(&self) -> usize {
        self.table.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector() -> ConflictDetector {
        ConflictDetector::new(ConflictConfig {
            switch_id: SwitchId(1),
            table: TableConfig {
                stages: 3,
                slots_per_stage: 64,
                entry_bytes: 8,
            },
        })
    }

    /// Drive a write through commit so the fast path turns on.
    fn prime(d: &mut ConflictDetector) {
        let WriteDecision::Stamped(seq) = d.process_write(ObjectId(999)) else {
            panic!("insert failed in empty table");
        };
        d.process_completion(WriteCompletion {
            obj: ObjectId(999),
            seq,
        });
    }

    #[test]
    fn reads_take_normal_path_until_first_completion() {
        let mut d = detector();
        assert_eq!(d.process_read(ObjectId(1)), ReadDecision::Normal);
        let WriteDecision::Stamped(seq) = d.process_write(ObjectId(1)) else {
            panic!()
        };
        // Still gated: the write is pending, no completion yet.
        assert_eq!(d.process_read(ObjectId(2)), ReadDecision::Normal);
        d.process_completion(WriteCompletion {
            obj: ObjectId(1),
            seq,
        });
        assert!(d.fast_path_enabled());
        assert_eq!(
            d.process_read(ObjectId(2)),
            ReadDecision::FastPath {
                last_committed: seq
            }
        );
    }

    #[test]
    fn contended_object_routes_through_normal_path() {
        let mut d = detector();
        prime(&mut d);
        let WriteDecision::Stamped(seq) = d.process_write(ObjectId(5)) else {
            panic!()
        };
        assert_eq!(d.process_read(ObjectId(5)), ReadDecision::Normal);
        d.process_completion(WriteCompletion {
            obj: ObjectId(5),
            seq,
        });
        assert!(matches!(
            d.process_read(ObjectId(5)),
            ReadDecision::FastPath { .. }
        ));
    }

    #[test]
    fn sequence_numbers_strictly_increase() {
        let mut d = detector();
        let mut last = SwitchSeq::ZERO;
        for i in 0..100u32 {
            if let WriteDecision::Stamped(seq) = d.process_write(ObjectId(i)) {
                assert!(seq > last);
                last = seq;
            }
        }
    }

    #[test]
    fn completion_of_older_write_keeps_object_dirty() {
        let mut d = detector();
        prime(&mut d);
        let WriteDecision::Stamped(s1) = d.process_write(ObjectId(7)) else {
            panic!()
        };
        let WriteDecision::Stamped(s2) = d.process_write(ObjectId(7)) else {
            panic!()
        };
        assert!(s2 > s1);
        // First write completes, but the second is still pending.
        d.process_completion(WriteCompletion {
            obj: ObjectId(7),
            seq: s1,
        });
        assert_eq!(d.process_read(ObjectId(7)), ReadDecision::Normal);
        d.process_completion(WriteCompletion {
            obj: ObjectId(7),
            seq: s2,
        });
        assert!(matches!(
            d.process_read(ObjectId(7)),
            ReadDecision::FastPath { .. }
        ));
    }

    #[test]
    fn lost_completion_is_scrubbed_lazily_after_later_commit() {
        let mut d = detector();
        prime(&mut d);
        let WriteDecision::Stamped(s1) = d.process_write(ObjectId(11)) else {
            panic!()
        };
        // s1's completion is lost. A later write to a different object
        // commits, advancing last_committed past s1 (in-order processing).
        let WriteDecision::Stamped(s2) = d.process_write(ObjectId(12)) else {
            panic!()
        };
        assert!(s2 > s1);
        d.process_completion(WriteCompletion {
            obj: ObjectId(12),
            seq: s2,
        });
        // The stray entry for 11 is removed as the read probes.
        assert!(matches!(
            d.process_read(ObjectId(11)),
            ReadDecision::FastPath { .. }
        ));
        assert_eq!(d.dirty_len(), 0);
        assert_eq!(d.table_stats().scrubbed_by_reads, 1);
    }

    #[test]
    fn periodic_sweep_clears_stale_entries() {
        let mut d = detector();
        prime(&mut d);
        let WriteDecision::Stamped(s1) = d.process_write(ObjectId(21)) else {
            panic!()
        };
        let WriteDecision::Stamped(s2) = d.process_write(ObjectId(22)) else {
            panic!()
        };
        d.process_completion(WriteCompletion {
            obj: ObjectId(22),
            seq: s2,
        });
        let _ = s1;
        assert_eq!(d.sweep(), 1, "21's stray entry swept");
        assert_eq!(d.dirty_len(), 0);
    }

    #[test]
    fn table_exhaustion_drops_writes() {
        let mut d = ConflictDetector::new(ConflictConfig {
            switch_id: SwitchId(1),
            table: TableConfig {
                stages: 1,
                slots_per_stage: 1,
                entry_bytes: 8,
            },
        });
        assert!(matches!(
            d.process_write(ObjectId(1)),
            WriteDecision::Stamped(_)
        ));
        // Any object hashing to the same single slot is dropped. With one
        // slot everything collides.
        assert_eq!(d.process_write(ObjectId(2)), WriteDecision::Dropped);
        assert_eq!(d.table_stats().insert_drops, 1);
    }

    #[test]
    fn new_incarnation_ignores_predecessor_completions_for_gating() {
        let mut d2 = ConflictDetector::new(ConflictConfig {
            switch_id: SwitchId(2),
            ..ConflictConfig::default()
        });
        // A completion stamped by switch 1 arrives after failover: it must
        // advance last_committed but NOT enable the fast path.
        d2.process_completion(WriteCompletion {
            obj: ObjectId(1),
            seq: SwitchSeq::new(SwitchId(1), 500),
        });
        assert!(!d2.fast_path_enabled());
        assert_eq!(d2.last_committed(), SwitchSeq::new(SwitchId(1), 500));
        assert_eq!(d2.process_read(ObjectId(9)), ReadDecision::Normal);
        // Its own write committing flips the gate.
        let WriteDecision::Stamped(seq) = d2.process_write(ObjectId(3)) else {
            panic!()
        };
        assert_eq!(seq.switch_id, SwitchId(2));
        d2.process_completion(WriteCompletion {
            obj: ObjectId(3),
            seq,
        });
        assert!(d2.fast_path_enabled());
    }

    #[test]
    fn last_committed_is_monotone() {
        let mut d = detector();
        prime(&mut d);
        let high = d.last_committed();
        // A duplicate/reordered completion for an old write must not regress.
        d.process_completion(WriteCompletion {
            obj: ObjectId(42),
            seq: SwitchSeq::new(SwitchId(1), 0),
        });
        assert_eq!(d.last_committed(), high.max(SwitchSeq::new(SwitchId(1), 0)));
        assert!(d.last_committed() >= high);
    }
}
